// Fig. 2 reproduction: the Team Design Skills Growth Survey instrument —
// the Teamwork element exactly as the paper shows it, plus the scale
// anchors and the full element list.

#include <cstdio>

#include "survey/instrument.hpp"

int main() {
  using namespace pblpar::survey;

  std::printf("Fig. 2 — Team Design Skills Growth Survey [12]\n\n");

  std::printf("Class Emphasis scale: ");
  for (int s = 1; s <= 5; ++s) {
    std::printf("%s%d: %s", s > 1 ? " | " : "", s,
                emphasis_scale_description(s).c_str());
  }
  std::printf("\nPersonal Growth scale:\n");
  for (int s = 1; s <= 5; ++s) {
    std::printf("  %d: %s\n", s, growth_scale_description(s).c_str());
  }

  for (const ElementSpec& spec : instrument()) {
    std::printf("\n%s\n", spec.name.c_str());
    std::printf("  [definition] %s\n", spec.definition.c_str());
    for (std::size_t c = 0; c < spec.components.size(); ++c) {
      std::printf("  [component %zu] %s\n", c + 1,
                  spec.components[c].c_str());
    }
  }

  std::printf(
      "\n%zu elements, %zu items per category; answered twice per "
      "semester in both categories.\n",
      kElementCount, total_item_count());
  return 0;
}
