// Ablation of a DESIGN.md design choice: the calibrated latent-trait
// cohort model vs a naive generator (independent Likert draws with the
// right means only). Shows why calibration is necessary to reproduce the
// paper's dispersion and correlation structure.

#include <cmath>
#include <cstdio>

#include "classroom/analysis.hpp"
#include "classroom/calibrate.hpp"
#include "classroom/targets.hpp"
#include "util/table.hpp"

namespace {

using namespace pblpar;

/// Naive baseline: keep the calibrated means but zero the student trait
/// and element factors (pure item noise) and zero latent correlation.
classroom::ModelParams naive_params() {
  classroom::ModelParams params = classroom::calibrated_paper_params();
  params.w_student = {{{0.0, 0.0}, {0.0, 0.0}}};
  params.w_element = 0.0;
  for (auto& half : params.rho_latent) {
    half.fill(0.0);
  }
  return params;
}

struct Fit {
  double mean_error = 0.0;   // max |element mean - target|
  double sd_error = 0.0;     // max |overall sd - target| / target
  double r_error = 0.0;      // max |element r - target|
};

Fit evaluate(const classroom::ModelParams& params) {
  classroom::CohortConfig config;
  config.cohort_size = 8000;
  config.seed = 4242;
  const auto study = classroom::generate_cohort(params, config);
  const auto analysis =
      classroom::analyze(study.first_half, study.second_half);
  const auto& targets = classroom::PaperTargets::published();

  Fit fit;
  for (std::size_t e = 0; e < survey::kElementCount; ++e) {
    const survey::Element element = survey::kAllElements[e];
    fit.mean_error = std::max(
        fit.mean_error,
        std::fabs(study.first_half.cohort_element_mean(
                      survey::Category::ClassEmphasis, element) -
                  targets.elements[e].emphasis_mean[0]));
    fit.r_error = std::max(
        fit.r_error, std::fabs(analysis.correlations[e].first_half.r -
                               targets.elements[e].correlation[0]));
    fit.r_error = std::max(
        fit.r_error, std::fabs(analysis.correlations[e].second_half.r -
                               targets.elements[e].correlation[1]));
  }
  fit.sd_error = std::max(
      std::fabs(analysis.emphasis_effect.sd_first -
                targets.emphasis_overall_sd[0]) /
          targets.emphasis_overall_sd[0],
      std::fabs(analysis.growth_effect.sd_second -
                targets.growth_overall_sd[1]) /
          targets.growth_overall_sd[1]);
  return fit;
}

}  // namespace

int main() {
  const Fit calibrated = evaluate(classroom::calibrated_paper_params());
  const Fit naive = evaluate(naive_params());

  util::Table table(
      "Calibration ablation (8000-student cohorts, worst-case errors vs "
      "the paper's statistics)");
  table.columns({"error metric", "calibrated model", "naive (means only)"},
                {util::Align::Left, util::Align::Right, util::Align::Right});
  table.row({"max |element mean - paper|",
             util::Table::num(calibrated.mean_error, 3),
             util::Table::num(naive.mean_error, 3)});
  table.row({"max relative overall-SD error",
             util::Table::num(calibrated.sd_error * 100.0, 1) + "%",
             util::Table::num(naive.sd_error * 100.0, 1) + "%"});
  table.row({"max |emphasis-growth r - paper|",
             util::Table::num(calibrated.r_error, 3),
             util::Table::num(naive.r_error, 3)});
  table.note(
      "Matching the means is easy; without the latent student/element "
      "factors the naive model collapses the overall SDs (independent "
      "items average out) and produces ~zero correlations, so Tables "
      "1-4 cannot be reproduced. The calibrated model is necessary, "
      "not decorative.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
