// Table 2 reproduction: Cohen's d (effect size) of Course Emphasis
// between the two survey sittings, with the paper's pooled-SD formula
//   d = (M2 - M1) / sqrt((SD1^2 + SD2^2) / 2).

#include <cstdio>

#include "classroom/study.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();
  const classroom::EffectRow& effect = study.analysis.emphasis_effect;

  util::Table table("Table 2. Cohen's d of Course Emphasis");
  table.columns({"", "First Half Survey", "Second Half Survey"},
                {util::Align::Left, util::Align::Right, util::Align::Right});
  table.row({"Mean (paper)", "4.023068", "4.124365"});
  table.row({"Mean (ours)", util::Table::num(effect.mean_first, 6),
             util::Table::num(effect.mean_second, 6)});
  table.row({"Standard deviation (paper)", "0.232416", "0.172052"});
  table.row({"Standard deviation (ours)",
             util::Table::num(effect.sd_first, 6),
             util::Table::num(effect.sd_second, 6)});
  table.row({"Sample size", "124", "124"});
  table.separator();
  table.row({"Cohen's d (paper)", "0.50", "medium effect"});
  table.row({"Cohen's d (ours)", util::Table::num(effect.cohens_d, 2),
             stats::to_string(stats::interpret_cohens_d(
                 effect.cohens_d)) + " effect"});
  table.note("Scale anchors: 4 = significant emphasis, 5 = major emphasis.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
