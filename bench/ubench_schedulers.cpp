// Scheduler shoot-out for the TeachMP runtime: static / dynamic / guided
// against the work-stealing schedule, on a uniform and a tail-heavy cost
// profile, across thread counts — plus the devirtualized for_each against
// the std::function-based for_loop on a trivial body.
//
// Host rows are real time (min over repeats); Sim rows are deterministic
// virtual Pi time, where dynamic,1's serialized shared-counter claims and
// steal's mostly-local deque pops are modelled explicitly. Results go to
// BENCH_rt.json in the working directory.
//
// --smoke runs a tiny shape in well under a second; the bench-smoke ctest
// label uses it so the bench binary itself stays exercised by the suite.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/parallel.hpp"

namespace {

using namespace pblpar;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Busy work proportional to `units`; volatile so the optimizer keeps it.
void spin(std::int64_t units) {
  volatile double sink = 0.0;
  for (std::int64_t k = 0; k < units; ++k) {
    sink = sink + static_cast<double>(k);
  }
}

struct LoopRow {
  std::string backend;   // "host" | "sim"
  std::string profile;   // "uniform" | "skewed"
  int threads = 0;
  std::string schedule;
  double seconds = 0.0;
};

/// Host run of `total` iterations where [heavy_from, total) spin
/// `heavy_units` and the rest `base_units`; min over `repeats`.
double time_host_loop(int threads, rt::Schedule schedule, std::int64_t total,
                      std::int64_t heavy_from, std::int64_t base_units,
                      std::int64_t heavy_units, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(threads), [&](rt::TeamContext& tc) {
      rt::for_each(tc, rt::Range::upto(total), schedule,
                   [&](std::int64_t i) {
                     spin(i >= heavy_from ? heavy_units : base_units);
                   });
    });
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Deterministic Sim run of the same shape: the body is free, the cost
/// model charges the per-iteration ops, and the backend charges its own
/// claim costs (serialized shared counter vs mostly-local deque pops).
double sim_loop_makespan(int threads, rt::Schedule schedule,
                         std::int64_t total, std::int64_t heavy_from,
                         double base_ops, double heavy_ops) {
  rt::CostModel cost;
  cost.ops_fn = [=](std::int64_t i) {
    return i >= heavy_from ? heavy_ops : base_ops;
  };
  const rt::RunResult run = rt::parallel_for(
      rt::ParallelConfig::sim_pi(threads), rt::Range::upto(total), schedule,
      [](std::int64_t) {}, cost);
  return run.elapsed_seconds();
}

/// Trivial-body loop through either the templated for_each (body inlined)
/// or the std::function for_loop (one indirect call per iteration).
double time_trivial_loop(bool devirtualized, std::int64_t total,
                         int repeats) {
  std::vector<double> data(static_cast<std::size_t>(total), 0.0);
  const auto body = [&data](std::int64_t i) {
    data[static_cast<std::size_t>(i)] =
        0.5 * static_cast<double>(i) + 1.0;
  };
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(1), [&](rt::TeamContext& tc) {
      if (devirtualized) {
        rt::for_each(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      } else {
        rt::for_loop(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      }
    });
    best = std::min(best, seconds_since(start));
  }
  volatile double keep = data[static_cast<std::size_t>(total / 2)];
  (void)keep;
  return best;
}

void append_json_row(std::string& out, const LoopRow& row, bool first) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s\n    {\"backend\":\"%s\",\"profile\":\"%s\","
                "\"threads\":%d,\"schedule\":\"%s\",\"seconds\":%.9f}",
                first ? "" : ",", row.backend.c_str(), row.profile.c_str(),
                row.threads, row.schedule.c_str(), row.seconds);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // Shape: `total` iterations of a small spin; the skewed profile makes
  // the last eighth `kHeavyFactor` times heavier — the tail a static
  // block split dumps on the last thread, and enough cheap iterations
  // that dynamic,1's per-iteration claim overhead is visible.
  const std::int64_t total = smoke ? 4096 : (1 << 17);
  const std::int64_t base_units = 16;
  constexpr std::int64_t kHeavyFactor = 24;
  const int repeats = smoke ? 2 : 7;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4, 8};

  const std::vector<rt::Schedule> schedules = {
      rt::Schedule::static_block(), rt::Schedule::dynamic(1),
      rt::Schedule::dynamic(16), rt::Schedule::guided(1),
      rt::Schedule::steal()};

  std::vector<LoopRow> rows;
  std::printf("==== scheduler shoot-out: %lld iterations, heavy tail x%lld "
              "====\n",
              static_cast<long long>(total),
              static_cast<long long>(kHeavyFactor));
  for (const char* profile : {"uniform", "skewed"}) {
    const bool skewed = std::strcmp(profile, "skewed") == 0;
    const std::int64_t heavy_from = skewed ? total - total / 8 : total;
    for (const int threads : thread_counts) {
      for (const rt::Schedule& schedule : schedules) {
        const double seconds =
            time_host_loop(threads, schedule, total, heavy_from, base_units,
                           base_units * kHeavyFactor, repeats);
        rows.push_back(LoopRow{"host", profile, threads,
                               schedule.to_string(), seconds});
        std::printf("host %-8s t=%d %-10s %9.3f ms\n", profile, threads,
                    schedule.to_string().c_str(), seconds * 1e3);
      }
    }
  }

  // Sim rows: virtual Pi time, deterministic. Same shape scaled down (the
  // simulator retires one event per claim/chunk, so fewer iterations keep
  // the bench quick) with ops chosen so claim overhead matters.
  const std::int64_t sim_total = smoke ? 1024 : 8192;
  const std::int64_t sim_heavy_from = sim_total - sim_total / 8;
  for (const int threads : thread_counts) {
    for (const rt::Schedule& schedule : schedules) {
      const double seconds =
          sim_loop_makespan(threads, schedule, sim_total, sim_heavy_from,
                            2e3, 2e3 * kHeavyFactor);
      rows.push_back(LoopRow{"sim", "skewed", threads, schedule.to_string(),
                             seconds});
      std::printf("sim  %-8s t=%d %-10s %9.3f ms (virtual)\n", "skewed",
                  threads, schedule.to_string().c_str(), seconds * 1e3);
    }
  }

  // Devirtualization: identical trivial body through both drivers.
  const std::int64_t devirt_total = smoke ? (1 << 16) : (1 << 21);
  const int devirt_repeats = smoke ? 2 : 7;
  const double wrapper_s =
      time_trivial_loop(false, devirt_total, devirt_repeats);
  const double inlined_s =
      time_trivial_loop(true, devirt_total, devirt_repeats);
  std::printf("devirt: for_loop %.3f ms, for_each %.3f ms over %lld trivial "
              "iterations\n",
              wrapper_s * 1e3, inlined_s * 1e3,
              static_cast<long long>(devirt_total));

  // Acceptance probes: does steal beat dynamic,1 on the skewed loop at
  // every measured thread count >= 4 (host real time and sim virtual
  // time), and does the inlined driver beat the type-erased one?
  const auto loop_seconds = [&rows](const std::string& backend,
                                    const std::string& profile, int threads,
                                    const std::string& schedule) {
    for (const LoopRow& row : rows) {
      if (row.backend == backend && row.profile == profile &&
          row.threads == threads && row.schedule == schedule) {
        return row.seconds;
      }
    }
    return -1.0;
  };
  bool steal_wins_host = true;
  bool steal_wins_sim = true;
  for (const int threads : thread_counts) {
    if (threads < 4) {
      continue;
    }
    steal_wins_host =
        steal_wins_host && loop_seconds("host", "skewed", threads, "steal") <
                               loop_seconds("host", "skewed", threads,
                                            "dynamic,1");
    steal_wins_sim =
        steal_wins_sim && loop_seconds("sim", "skewed", threads, "steal") <
                              loop_seconds("sim", "skewed", threads,
                                           "dynamic,1");
  }
  const bool devirt_wins = inlined_s < wrapper_s;
  std::printf("checks: steal<dynamic,1 skewed 4+t host=%s sim=%s, "
              "for_each<for_loop=%s\n",
              steal_wins_host ? "yes" : "no", steal_wins_sim ? "yes" : "no",
              devirt_wins ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_schedulers\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"loops\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(json, rows[i], i == 0);
  }
  json += "\n  ],\n  \"devirt\": {";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"iterations\":%lld,\"for_loop_seconds\":%.9f,"
                "\"for_each_seconds\":%.9f",
                static_cast<long long>(devirt_total), wrapper_s, inlined_s);
  json += buffer;
  json += "},\n  \"checks\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\"steal_beats_dynamic1_skewed_host\":%s,"
                "\"steal_beats_dynamic1_skewed_sim\":%s,"
                "\"for_each_beats_for_loop\":%s",
                steal_wins_host ? "true" : "false",
                steal_wins_sim ? "true" : "false",
                devirt_wins ? "true" : "false");
  json += buffer;
  json += "}\n}\n";

  std::ofstream out("BENCH_rt.json");
  out << json;
  std::printf("wrote BENCH_rt.json (%zu loop rows)\n", rows.size());
  return 0;
}
