// Scheduler shoot-out for the TeachMP runtime: static / dynamic / guided
// against the work-stealing schedule, on a uniform and a tail-heavy cost
// profile, across thread counts — plus region-launch latency (persistent
// pool vs per-region spawn) and the devirtualized for_each against the
// std::function-based for_loop on a trivial body.
//
// Host rows are real time (min over repeats); launch rows are medians of
// per-region samples (launch cost is paid on every region, so the typical
// cost is the honest number, and the median shrugs off the occasional
// region that eats a scheduler preemption mid-handoff); Sim rows are
// deterministic virtual Pi time, where dynamic,1's
// serialized shared-counter claims and steal's mostly-local deque pops
// are modelled explicitly. Results go to BENCH_rt.json in the working
// directory.
//
// --smoke runs a tiny shape in well under a second; the bench-smoke ctest
// label uses it so the bench binary itself stays exercised by the suite.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mp/comm.hpp"
#include "mp/mailbox.hpp"
#include "rt/cancel.hpp"
#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "rt/steal_deque.hpp"

namespace {

using namespace pblpar;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Busy work proportional to `units`; volatile so the optimizer keeps it.
void spin(std::int64_t units) {
  volatile double sink = 0.0;
  for (std::int64_t k = 0; k < units; ++k) {
    sink = sink + static_cast<double>(k);
  }
}

struct LoopRow {
  std::string backend;   // "host" | "sim"
  std::string profile;   // "uniform" | "skewed"
  int threads = 0;
  std::string schedule;
  double seconds = 0.0;
};

/// Host run of `total` iterations where [heavy_from, total) spin
/// `heavy_units` and the rest `base_units`; min over `repeats`. The warm
/// pool is part of what is measured: regions launch on parked workers,
/// exactly like the second and later regions of any real program.
double time_host_loop(int threads, rt::Schedule schedule, std::int64_t total,
                      std::int64_t heavy_from, std::int64_t base_units,
                      std::int64_t heavy_units, int repeats) {
  rt::warm_up(rt::ParallelConfig::host(threads));
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(threads), [&](rt::TeamContext& tc) {
      rt::for_each(tc, rt::Range::upto(total), schedule,
                   [&](std::int64_t i) {
                     spin(i >= heavy_from ? heavy_units : base_units);
                   });
    });
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Median latency of an empty parallel region — the pure launch + join
/// cost — on the persistent pool or the per-region spawn path. One
/// untimed region first so the pool's workers exist (or the allocator
/// and thread stacks are warm on the spawn path). Each region is timed
/// individually and the median taken: on a loaded machine a few samples
/// absorb a preemption mid-handoff, and those tails say nothing about
/// what a region launch costs.
double time_region_launch(int threads, bool pooled, int repeats) {
  rt::ParallelConfig config = rt::ParallelConfig::host(threads);
  if (!pooled) {
    config = config.unpooled();
  }
  rt::parallel(config, [](rt::TeamContext&) {});
  std::vector<double> samples(static_cast<std::size_t>(repeats), 0.0);
  for (double& sample : samples) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(config, [](rt::TeamContext&) {});
    sample = seconds_since(start);
  }
  const auto mid = samples.begin() + samples.size() / 2;
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct LaunchRow {
  int threads = 0;
  double spawn_seconds = 0.0;
  double pool_seconds = 0.0;
};

/// Median latency from an external cancel() to rt::Cancelled surfacing
/// out of the region — the cooperative drain cost the runtime promises.
/// A helper thread waits until the loop has demonstrably started, stamps
/// the clock, and cancels; the region runs dynamic,1 over a range far too
/// large to finish, so every sample measures the drain, not completion.
double time_cancel_drain(int threads, bool pooled, int repeats) {
  rt::ParallelConfig base = rt::ParallelConfig::host(threads);
  if (!pooled) {
    base = base.unpooled();
  }
  rt::parallel(base, [](rt::TeamContext&) {});
  std::vector<double> samples(static_cast<std::size_t>(repeats), 0.0);
  for (double& sample : samples) {
    rt::CancelSource source;
    std::atomic<bool> started{false};
    std::atomic<std::int64_t> cancelled_at_ns{0};
    std::thread canceller([&] {
      while (!started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      cancelled_at_ns.store(std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count(),
                            std::memory_order_release);
      source.cancel();
    });
    try {
      rt::parallel(
          base.cancellable(source.token()), [&](rt::TeamContext& tc) {
            rt::for_each(tc, rt::Range::upto(std::int64_t{1} << 30),
                         rt::Schedule::dynamic(1), [&](std::int64_t) {
                           started.store(true, std::memory_order_release);
                           spin(16);
                         });
          });
    } catch (const rt::Cancelled&) {
      const auto end_ns =
          std::chrono::steady_clock::now().time_since_epoch().count();
      sample = static_cast<double>(
                   end_ns - cancelled_at_ns.load(std::memory_order_acquire)) *
               1e-9;
    }
    canceller.join();
  }
  const auto mid = samples.begin() + samples.size() / 2;
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct CancelRow {
  int threads = 0;
  double spawn_seconds = 0.0;
  double pool_seconds = 0.0;
};

/// Deterministic Sim run of the same shape: the body is free, the cost
/// model charges the per-iteration ops, and the backend charges its own
/// claim costs (serialized shared counter vs mostly-local deque pops).
double sim_loop_makespan(int threads, rt::Schedule schedule,
                         std::int64_t total, std::int64_t heavy_from,
                         double base_ops, double heavy_ops) {
  rt::CostModel cost;
  cost.ops_fn = [=](std::int64_t i) {
    return i >= heavy_from ? heavy_ops : base_ops;
  };
  const rt::RunResult run = rt::parallel_for(
      rt::ParallelConfig::sim_pi(threads), rt::Range::upto(total), schedule,
      [](std::int64_t) {}, cost);
  return run.elapsed_seconds();
}

/// Trivial-body loop through either the templated for_each (body inlined)
/// or the std::function for_loop (one indirect call per iteration).
double time_trivial_loop(bool devirtualized, std::int64_t total,
                         int repeats) {
  std::vector<double> data(static_cast<std::size_t>(total), 0.0);
  const auto body = [&data](std::int64_t i) {
    data[static_cast<std::size_t>(i)] =
        0.5 * static_cast<double>(i) + 1.0;
  };
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(1), [&](rt::TeamContext& tc) {
      if (devirtualized) {
        rt::for_each(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      } else {
        rt::for_loop(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      }
    });
    best = std::min(best, seconds_since(start));
  }
  volatile double keep = data[static_cast<std::size_t>(total / 2)];
  (void)keep;
  return best;
}

// --- Lock-free core baselines -----------------------------------------

/// The mutex-protected span deque the Chase–Lev implementation replaced:
/// identical interface, every owner pop and every steal under one lock.
class LockedSpanDeque {
 public:
  void install(rt::StealSpan span) {
    std::lock_guard<std::mutex> guard(mu_);
    lo_ = span.lo;
    hi_ = span.hi;
  }

  bool take(std::int64_t* chunk_index) {
    std::lock_guard<std::mutex> guard(mu_);
    if (lo_ >= hi_) {
      return false;
    }
    *chunk_index = lo_++;
    return true;
  }

  rt::StealOutcome steal(std::int64_t* chunk_index) {
    std::lock_guard<std::mutex> guard(mu_);
    if (lo_ >= hi_) {
      return rt::StealOutcome::kEmpty;
    }
    *chunk_index = --hi_;
    return rt::StealOutcome::kGot;
  }

 private:
  std::mutex mu_;
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
};

/// Drain `chunks` chunk indices split across `threads` deques: each
/// worker empties its own deque, then sweeps the victims round-robin —
/// the host backend's steal loop, minus the loop body. Both deque types
/// share the install/take/steal interface, so the harness is templated
/// and measures only the claim protocol. Min over repeats; exactly-once
/// delivery is verified on every repeat (a lost or duplicated chunk is a
/// broken deque, not a slow one — abort loudly).
template <class Deque>
double time_steal_drain(int threads, std::int64_t chunks, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    std::vector<std::unique_ptr<Deque>> deques;
    for (int t = 0; t < threads; ++t) {
      deques.push_back(std::make_unique<Deque>());
      deques.back()->install(rt::steal_initial_span(chunks, 1, threads, t));
    }
    std::atomic<std::int64_t> claimed{0};
    // The workers stamp their own start and end; the drain time is
    // max(end) - min(start). Timing from the launching thread's barrier
    // arrivals would race the scheduler: on a loaded (or single-core)
    // host, the workers can finish the whole drain before the launcher
    // gets another slice, and the "measured" interval collapses to zero.
    std::atomic<std::int64_t> first_start_ns{
        std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> last_end_ns{0};
    std::barrier sync(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        sync.arrive_and_wait();  // released together
        const std::int64_t t0 = std::chrono::steady_clock::now()
                                    .time_since_epoch()
                                    .count();
        std::int64_t local = 0;
        std::int64_t chunk_index = 0;
        while (deques[static_cast<std::size_t>(t)]->take(&chunk_index)) {
          ++local;
        }
        for (int step = 1; step < threads; ++step) {
          Deque& victim = *deques[static_cast<std::size_t>((t + step) %
                                                           threads)];
          for (;;) {
            const rt::StealOutcome outcome = victim.steal(&chunk_index);
            if (outcome == rt::StealOutcome::kEmpty) {
              break;
            }
            if (outcome == rt::StealOutcome::kGot) {
              ++local;
            }
            // kLost: someone else's CAS won; retry the same victim.
          }
        }
        const std::int64_t t1 = std::chrono::steady_clock::now()
                                    .time_since_epoch()
                                    .count();
        std::int64_t seen = first_start_ns.load(std::memory_order_relaxed);
        while (t0 < seen && !first_start_ns.compare_exchange_weak(
                                seen, t0, std::memory_order_relaxed)) {
        }
        seen = last_end_ns.load(std::memory_order_relaxed);
        while (t1 > seen && !last_end_ns.compare_exchange_weak(
                                seen, t1, std::memory_order_relaxed)) {
        }
        claimed.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    best = std::min(best, static_cast<double>(last_end_ns.load() -
                                              first_start_ns.load()) *
                              1e-9);
    if (claimed.load(std::memory_order_relaxed) != chunks) {
      std::fprintf(stderr,
                   "steal drain lost chunks: claimed %lld of %lld\n",
                   static_cast<long long>(claimed.load()),
                   static_cast<long long>(chunks));
      std::exit(1);
    }
  }
  return best;
}

/// The mutex+condvar mailbox the lock-free MPSC queue replaced, reduced
/// to what the ping-pong needs: push with notify_all (the old behaviour)
/// and a timed any-message pop under the same lock.
class LockedMailbox {
 public:
  void push(mp::RawMessage message) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_all();
  }

  bool pop(mp::RawMessage* out, double timeout_s) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_until(lock, deadline, [&] { return !queue_.empty(); })) {
      return false;
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<mp::RawMessage> queue_;
};

mp::RawMessage ping_message() {
  mp::RawMessage message;
  message.source = 0;
  message.tag = 0;
  message.type_hash = mp::type_hash_of<int>();
  message.payload = mp::Codec<int>::encode(1);
  return message;
}

/// Per-round-trip latency of a two-mailbox ping-pong through the locked
/// baseline: min over `repeats` blocks of `round_trips` exchanges (the
/// same min-over-repeats the loop rows use — a context-switch storm in
/// one block should not masquerade as mailbox cost). One untimed warm-up
/// exchange parks/wakes both sides before any clock starts.
double time_mailbox_rtt_locked(int round_trips, int repeats) {
  LockedMailbox to_echo;
  LockedMailbox to_origin;
  std::thread echo([&] {
    mp::RawMessage message;
    for (int i = 0; i < repeats * round_trips + 1; ++i) {
      to_echo.pop(&message, 60.0);
      to_origin.push(message);
    }
  });
  mp::RawMessage back;
  to_echo.push(ping_message());
  to_origin.pop(&back, 60.0);  // warm-up exchange
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < round_trips; ++i) {
      to_echo.push(ping_message());
      to_origin.pop(&back, 60.0);
    }
    best = std::min(best, seconds_since(start));
  }
  echo.join();
  return best / round_trips;
}

/// Same ping-pong through the real lock-free mp::Mailbox. Each box has
/// exactly one consumer (echo drains to_echo, main drains to_origin), so
/// the MPSC single-consumer invariant holds.
double time_mailbox_rtt_lockfree(int round_trips, int repeats) {
  mp::AbortState abort;
  mp::Mailbox to_echo(abort, 60.0, 1);
  mp::Mailbox to_origin(abort, 60.0, 0);
  std::thread echo([&] {
    mp::RawMessage message;
    for (int i = 0; i < repeats * round_trips + 1; ++i) {
      to_echo.pop_matching_timed(mp::kAnySource, mp::kAnyTag, 60.0,
                                 &message);
      to_origin.push(message);
    }
  });
  mp::RawMessage back;
  to_echo.push(ping_message());
  to_origin.pop_matching_timed(mp::kAnySource, mp::kAnyTag, 60.0, &back);
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < round_trips; ++i) {
      to_echo.push(ping_message());
      to_origin.pop_matching_timed(mp::kAnySource, mp::kAnyTag, 60.0, &back);
    }
    best = std::min(best, seconds_since(start));
  }
  echo.join();
  return best / round_trips;
}

void append_json_row(std::string& out, const LoopRow& row, bool first) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s\n    {\"backend\":\"%s\",\"profile\":\"%s\","
                "\"threads\":%d,\"schedule\":\"%s\",\"seconds\":%.9f}",
                first ? "" : ",", row.backend.c_str(), row.profile.c_str(),
                row.threads, row.schedule.c_str(), row.seconds);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // Shape: `total` iterations of a small spin; the skewed profile makes
  // the last eighth `kHeavyFactor` times heavier — the tail a static
  // block split dumps on the last thread, and enough cheap iterations
  // that dynamic,1's per-iteration claim overhead is visible.
  const std::int64_t total = smoke ? 4096 : (1 << 17);
  const std::int64_t base_units = 16;
  constexpr std::int64_t kHeavyFactor = 24;
  const int repeats = smoke ? 2 : 15;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4, 8};

  const std::vector<rt::Schedule> schedules = {
      rt::Schedule::static_block(), rt::Schedule::dynamic(1),
      rt::Schedule::dynamic(16), rt::Schedule::guided(1),
      rt::Schedule::steal()};

  std::vector<LoopRow> rows;
  std::printf("==== scheduler shoot-out: %lld iterations, heavy tail x%lld "
              "====\n",
              static_cast<long long>(total),
              static_cast<long long>(kHeavyFactor));
  for (const char* profile : {"uniform", "skewed"}) {
    const bool skewed = std::strcmp(profile, "skewed") == 0;
    const std::int64_t heavy_from = skewed ? total - total / 8 : total;
    for (const int threads : thread_counts) {
      for (const rt::Schedule& schedule : schedules) {
        const double seconds =
            time_host_loop(threads, schedule, total, heavy_from, base_units,
                           base_units * kHeavyFactor, repeats);
        rows.push_back(LoopRow{"host", profile, threads,
                               schedule.to_string(), seconds});
        std::printf("host %-8s t=%d %-10s %9.3f ms\n", profile, threads,
                    schedule.to_string().c_str(), seconds * 1e3);
      }
    }
  }

  // Sim rows: virtual Pi time, deterministic. Same shape scaled down (the
  // simulator retires one event per claim/chunk, so fewer iterations keep
  // the bench quick) with ops chosen so claim overhead matters.
  const std::int64_t sim_total = smoke ? 1024 : 8192;
  const std::int64_t sim_heavy_from = sim_total - sim_total / 8;
  for (const int threads : thread_counts) {
    for (const rt::Schedule& schedule : schedules) {
      const double seconds =
          sim_loop_makespan(threads, schedule, sim_total, sim_heavy_from,
                            2e3, 2e3 * kHeavyFactor);
      rows.push_back(LoopRow{"sim", "skewed", threads, schedule.to_string(),
                             seconds});
      std::printf("sim  %-8s t=%d %-10s %9.3f ms (virtual)\n", "skewed",
                  threads, schedule.to_string().c_str(), seconds * 1e3);
    }
  }

  // Region-launch latency: what one empty parallel() costs on the
  // persistent pool (parked workers, generation handoff) vs the spawn
  // path (fresh threads per region) — the number that decides whether a
  // thread-count sweep measures the loop or the fork.
  const int launch_repeats = smoke ? 50 : 500;
  std::vector<LaunchRow> launch_rows;
  for (const int threads : thread_counts) {
    LaunchRow row;
    row.threads = threads;
    row.spawn_seconds = time_region_launch(threads, false, launch_repeats);
    row.pool_seconds = time_region_launch(threads, true, launch_repeats);
    launch_rows.push_back(row);
    std::printf("launch t=%d spawn %8.2f us, pool %8.2f us (%.1fx)\n",
                threads, row.spawn_seconds * 1e6, row.pool_seconds * 1e6,
                row.pool_seconds > 0.0
                    ? row.spawn_seconds / row.pool_seconds
                    : 0.0);
  }

  // Cancellation-drain latency: how long after an external cancel() the
  // region actually returns control (as rt::Cancelled), pool vs spawn.
  // Chunk-boundary polling means this is roughly one dynamic,1 chunk plus
  // the abortable-barrier drain — it must stay in launch-latency
  // territory, not loop-runtime territory.
  const int cancel_repeats = smoke ? 10 : 100;
  std::vector<CancelRow> cancel_rows;
  for (const int threads : thread_counts) {
    CancelRow row;
    row.threads = threads;
    row.spawn_seconds = time_cancel_drain(threads, false, cancel_repeats);
    row.pool_seconds = time_cancel_drain(threads, true, cancel_repeats);
    cancel_rows.push_back(row);
    std::printf("cancel t=%d spawn %8.2f us, pool %8.2f us\n", threads,
                row.spawn_seconds * 1e6, row.pool_seconds * 1e6);
  }

  // Devirtualization: identical trivial body through both drivers.
  const std::int64_t devirt_total = smoke ? (1 << 16) : (1 << 21);
  const int devirt_repeats = smoke ? 2 : 7;
  const double wrapper_s =
      time_trivial_loop(false, devirt_total, devirt_repeats);
  const double inlined_s =
      time_trivial_loop(true, devirt_total, devirt_repeats);
  std::printf("devirt: for_loop %.3f ms, for_each %.3f ms over %lld trivial "
              "iterations\n",
              wrapper_s * 1e3, inlined_s * 1e3,
              static_cast<long long>(devirt_total));

  // Lock-free core: the Chase–Lev steal drain at t=8 against the
  // mutex-protected deque it replaced, and the lock-free mailbox round
  // trip against the locked one. "Not worse" is the bar — the rewrite
  // exists to remove lock convoys, so regressing past the margin means
  // something is wrong with the claim protocol or the parking path.
  const int steal_threads = 8;
  const std::int64_t steal_chunks = smoke ? (1 << 12) : (1 << 16);
  const int steal_repeats = smoke ? 4 : 9;
  const int round_trips = smoke ? 256 : 4096;
  const int rtt_repeats = smoke ? 3 : 9;
  // Up to three measurement attempts, keeping the min per implementation
  // (the same min-over-repeats policy every row uses): under a parallel
  // ctest run, one side of a comparison can get starved for a whole
  // attempt, and a guard verdict from a single attempt would flake. A
  // genuine convoy regression reproduces on every attempt.
  double chaselev_s = 1e300;
  double locked_deque_s = 1e300;
  double lockfree_rtt_s = 1e300;
  double locked_rtt_s = 1e300;
  for (int attempt = 0; attempt < 3; ++attempt) {
    chaselev_s = std::min(
        chaselev_s, time_steal_drain<rt::ChaseLevSpan>(
                        steal_threads, steal_chunks, steal_repeats));
    locked_deque_s = std::min(
        locked_deque_s, time_steal_drain<LockedSpanDeque>(
                            steal_threads, steal_chunks, steal_repeats));
    lockfree_rtt_s = std::min(
        lockfree_rtt_s, time_mailbox_rtt_lockfree(round_trips, rtt_repeats));
    locked_rtt_s = std::min(
        locked_rtt_s, time_mailbox_rtt_locked(round_trips, rtt_repeats));
    if (chaselev_s <= 2.0 * locked_deque_s &&
        lockfree_rtt_s <= 2.0 * locked_rtt_s) {
      break;
    }
  }
  std::printf("steal-drain t=%d, %lld chunks: chaselev %8.3f ms, "
              "mutex %8.3f ms (%.2fx)\n",
              steal_threads, static_cast<long long>(steal_chunks),
              chaselev_s * 1e3, locked_deque_s * 1e3,
              chaselev_s > 0.0 ? locked_deque_s / chaselev_s : 0.0);
  std::printf("mailbox rtt over %d round trips: lock-free %8.3f us, "
              "locked %8.3f us (%.2fx)\n",
              round_trips, lockfree_rtt_s * 1e6, locked_rtt_s * 1e6,
              lockfree_rtt_s > 0.0 ? locked_rtt_s / lockfree_rtt_s : 0.0);

  // The committed check booleans use a 1.25x margin: lock-free must sit
  // at or below the locked baseline, give or take scheduler noise.
  const bool chaselev_not_worse = chaselev_s <= 1.25 * locked_deque_s;
  const bool mailbox_not_worse = lockfree_rtt_s <= 1.25 * locked_rtt_s;

  // Acceptance probes: does steal beat dynamic,1 on the skewed loop at
  // every measured thread count >= 4 (host real time and sim virtual
  // time), and does the inlined driver beat the type-erased one?
  const auto loop_seconds = [&rows](const std::string& backend,
                                    const std::string& profile, int threads,
                                    const std::string& schedule) {
    for (const LoopRow& row : rows) {
      if (row.backend == backend && row.profile == profile &&
          row.threads == threads && row.schedule == schedule) {
        return row.seconds;
      }
    }
    return -1.0;
  };
  bool steal_wins_host = true;
  bool steal_wins_sim = true;
  for (const int threads : thread_counts) {
    if (threads < 4) {
      continue;
    }
    steal_wins_host =
        steal_wins_host && loop_seconds("host", "skewed", threads, "steal") <
                               loop_seconds("host", "skewed", threads,
                                            "dynamic,1");
    steal_wins_sim =
        steal_wins_sim && loop_seconds("sim", "skewed", threads, "steal") <
                              loop_seconds("sim", "skewed", threads,
                                           "dynamic,1");
  }
  const bool devirt_wins = inlined_s < wrapper_s;

  // Pool checks: launching on parked workers must beat spawning by >= 5x
  // at 4 threads (the Pi-class team width); uniform host loops must not
  // degrade from 1 to 4 threads any more (launch off the critical path);
  // and dynamic,1's wait-free inlined claims must sit within 1.25x of
  // static on the uniform loop at 1 thread — the pure per-iteration
  // claim-overhead margin, measured without any multi-thread scheduling
  // noise.
  const auto launch_of = [&launch_rows](int threads) {
    for (const LaunchRow& row : launch_rows) {
      if (row.threads == threads) {
        return row;
      }
    }
    return LaunchRow{};
  };
  const int pool_check_threads =
      std::find(thread_counts.begin(), thread_counts.end(), 4) !=
              thread_counts.end()
          ? 4
          : thread_counts.back();
  const LaunchRow check_row = launch_of(pool_check_threads);
  const bool pool_beats_spawn =
      check_row.pool_seconds > 0.0 &&
      check_row.spawn_seconds >= 5.0 * check_row.pool_seconds;
  const int t_lo = thread_counts.front();
  // "More threads must not be slower" is only a property the hardware
  // can deliver when the box is at least as wide as the team; a 1-core
  // container serializes every member onto the same CPU and the check
  // would measure the OS scheduler, not the runtime. Gate it on the
  // machine width and pass it vacuously on narrow boxes.
  const bool static_check_applicable =
      rt::hardware_threads() >= pool_check_threads;
  const bool static_no_degrade =
      !static_check_applicable ||
      loop_seconds("host", "uniform", pool_check_threads, "static") <=
          loop_seconds("host", "uniform", t_lo, "static");
  const bool dynamic1_close =
      loop_seconds("host", "uniform", t_lo, "dynamic,1") <=
      1.25 * loop_seconds("host", "uniform", t_lo, "static");

  // Cancellation must drain in launch-latency territory: the pooled
  // cancel drain at the Pi-class team width stays within 100x of a
  // pooled empty-region launch (a deliberately loose multiple — the
  // drain includes one in-flight chunk and an OS-scheduler wakeup — but
  // tight enough to catch a drain that degenerates into running the
  // rest of the loop).
  const auto cancel_of = [&cancel_rows](int threads) {
    for (const CancelRow& row : cancel_rows) {
      if (row.threads == threads) {
        return row;
      }
    }
    return CancelRow{};
  };
  const CancelRow cancel_check_row = cancel_of(pool_check_threads);
  const bool cancel_drain_fast =
      check_row.pool_seconds > 0.0 &&
      cancel_check_row.pool_seconds <= 100.0 * check_row.pool_seconds;

  std::printf("checks: steal<dynamic,1 skewed 4+t host=%s sim=%s, "
              "for_each<for_loop=%s, pool>=5x spawn@t%d=%s, "
              "static t%d<=t%d uniform=%s, dynamic,1<=1.25x static@t%d=%s, "
              "cancel drain<=100x pool launch@t%d=%s\n",
              steal_wins_host ? "yes" : "no", steal_wins_sim ? "yes" : "no",
              devirt_wins ? "yes" : "no", pool_check_threads,
              pool_beats_spawn ? "yes" : "no", pool_check_threads, t_lo,
              static_no_degrade ? "yes" : "no", t_lo,
              dynamic1_close ? "yes" : "no", pool_check_threads,
              cancel_drain_fast ? "yes" : "no");
  std::printf("checks: chaselev<=1.25x mutex steal@t%d=%s, "
              "lock-free<=1.25x locked mailbox rtt=%s\n",
              steal_threads, chaselev_not_worse ? "yes" : "no",
              mailbox_not_worse ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_schedulers\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"loops\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(json, rows[i], i == 0);
  }
  json += "\n  ],\n  \"launch\": [";
  char buffer[384];
  for (std::size_t i = 0; i < launch_rows.size(); ++i) {
    const LaunchRow& row = launch_rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"threads\":%d,\"spawn_seconds\":%.9f,"
                  "\"pool_seconds\":%.9f}",
                  i == 0 ? "" : ",", row.threads, row.spawn_seconds,
                  row.pool_seconds);
    json += buffer;
  }
  json += "\n  ],\n  \"cancel\": [";
  for (std::size_t i = 0; i < cancel_rows.size(); ++i) {
    const CancelRow& row = cancel_rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"threads\":%d,\"spawn_seconds\":%.9f,"
                  "\"pool_seconds\":%.9f}",
                  i == 0 ? "" : ",", row.threads, row.spawn_seconds,
                  row.pool_seconds);
    json += buffer;
  }
  json += "\n  ],\n  \"devirt\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\"iterations\":%lld,\"for_loop_seconds\":%.9f,"
                "\"for_each_seconds\":%.9f",
                static_cast<long long>(devirt_total), wrapper_s, inlined_s);
  json += buffer;
  json += "},\n  \"lockfree\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\n    \"steal_t8\":{\"chunks\":%lld,"
                "\"chaselev_seconds\":%.9f,\"mutex_seconds\":%.9f},",
                static_cast<long long>(steal_chunks), chaselev_s,
                locked_deque_s);
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "\n    \"mailbox_rtt\":{\"round_trips\":%d,"
                "\"lockfree_seconds\":%.9f,\"locked_seconds\":%.9f}\n  ",
                round_trips, lockfree_rtt_s, locked_rtt_s);
  json += buffer;
  json += "},\n  \"checks\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\"hardware_threads\":%d,"
                "\"static_check_applicable\":%s,"
                "\"steal_beats_dynamic1_skewed_host\":%s,",
                rt::hardware_threads(),
                static_check_applicable ? "true" : "false",
                steal_wins_host ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "\"steal_beats_dynamic1_skewed_sim\":%s,"
                "\"for_each_beats_for_loop\":%s,"
                "\"pool_launch_beats_spawn\":%s,"
                "\"static_uniform_no_degradation\":%s,"
                "\"dynamic1_within_1p25x_static_uniform\":%s,"
                "\"cancel_drain_within_100x_pool_launch\":%s",
                steal_wins_sim ? "true" : "false",
                devirt_wins ? "true" : "false",
                pool_beats_spawn ? "true" : "false",
                static_no_degrade ? "true" : "false",
                dynamic1_close ? "true" : "false",
                cancel_drain_fast ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                ",\"chaselev_steal_not_worse_than_mutex_t8\":%s,"
                "\"mailbox_rtt_not_worse_than_locked\":%s",
                chaselev_not_worse ? "true" : "false",
                mailbox_not_worse ? "true" : "false");
  json += buffer;
  json += "}\n}\n";

  std::ofstream out("BENCH_rt.json");
  out << json;
  std::printf("wrote BENCH_rt.json (%zu loop rows)\n", rows.size());

  // Exit non-zero — failing the bench-smoke ctest — only past a looser
  // 2x guard band: wide enough that scheduler noise on a loaded (or
  // single-core) box does not flake the tier-1 suite, tight enough to
  // catch a lock-free path that degenerated into a convoy.
  const bool lockfree_guard = chaselev_s <= 2.0 * locked_deque_s &&
                              lockfree_rtt_s <= 2.0 * locked_rtt_s;
  if (!lockfree_guard) {
    std::fprintf(stderr,
                 "lock-free guard band exceeded: steal %.3f ms vs %.3f ms, "
                 "rtt %.3f us vs %.3f us\n",
                 chaselev_s * 1e3, locked_deque_s * 1e3, lockfree_rtt_s * 1e6,
                 locked_rtt_s * 1e6);
    return 1;
  }
  return 0;
}
