// Scheduler shoot-out for the TeachMP runtime: static / dynamic / guided
// against the work-stealing schedule, on a uniform and a tail-heavy cost
// profile, across thread counts — plus region-launch latency (persistent
// pool vs per-region spawn) and the devirtualized for_each against the
// std::function-based for_loop on a trivial body.
//
// Host rows are real time (min over repeats); launch rows are medians of
// per-region samples (launch cost is paid on every region, so the typical
// cost is the honest number, and the median shrugs off the occasional
// region that eats a scheduler preemption mid-handoff); Sim rows are
// deterministic virtual Pi time, where dynamic,1's
// serialized shared-counter claims and steal's mostly-local deque pops
// are modelled explicitly. Results go to BENCH_rt.json in the working
// directory.
//
// --smoke runs a tiny shape in well under a second; the bench-smoke ctest
// label uses it so the bench binary itself stays exercised by the suite.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/cancel.hpp"
#include "rt/for_each.hpp"
#include "rt/parallel.hpp"

namespace {

using namespace pblpar;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Busy work proportional to `units`; volatile so the optimizer keeps it.
void spin(std::int64_t units) {
  volatile double sink = 0.0;
  for (std::int64_t k = 0; k < units; ++k) {
    sink = sink + static_cast<double>(k);
  }
}

struct LoopRow {
  std::string backend;   // "host" | "sim"
  std::string profile;   // "uniform" | "skewed"
  int threads = 0;
  std::string schedule;
  double seconds = 0.0;
};

/// Host run of `total` iterations where [heavy_from, total) spin
/// `heavy_units` and the rest `base_units`; min over `repeats`. The warm
/// pool is part of what is measured: regions launch on parked workers,
/// exactly like the second and later regions of any real program.
double time_host_loop(int threads, rt::Schedule schedule, std::int64_t total,
                      std::int64_t heavy_from, std::int64_t base_units,
                      std::int64_t heavy_units, int repeats) {
  rt::warm_up(rt::ParallelConfig::host(threads));
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(threads), [&](rt::TeamContext& tc) {
      rt::for_each(tc, rt::Range::upto(total), schedule,
                   [&](std::int64_t i) {
                     spin(i >= heavy_from ? heavy_units : base_units);
                   });
    });
    best = std::min(best, seconds_since(start));
  }
  return best;
}

/// Median latency of an empty parallel region — the pure launch + join
/// cost — on the persistent pool or the per-region spawn path. One
/// untimed region first so the pool's workers exist (or the allocator
/// and thread stacks are warm on the spawn path). Each region is timed
/// individually and the median taken: on a loaded machine a few samples
/// absorb a preemption mid-handoff, and those tails say nothing about
/// what a region launch costs.
double time_region_launch(int threads, bool pooled, int repeats) {
  rt::ParallelConfig config = rt::ParallelConfig::host(threads);
  if (!pooled) {
    config = config.unpooled();
  }
  rt::parallel(config, [](rt::TeamContext&) {});
  std::vector<double> samples(static_cast<std::size_t>(repeats), 0.0);
  for (double& sample : samples) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(config, [](rt::TeamContext&) {});
    sample = seconds_since(start);
  }
  const auto mid = samples.begin() + samples.size() / 2;
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct LaunchRow {
  int threads = 0;
  double spawn_seconds = 0.0;
  double pool_seconds = 0.0;
};

/// Median latency from an external cancel() to rt::Cancelled surfacing
/// out of the region — the cooperative drain cost the runtime promises.
/// A helper thread waits until the loop has demonstrably started, stamps
/// the clock, and cancels; the region runs dynamic,1 over a range far too
/// large to finish, so every sample measures the drain, not completion.
double time_cancel_drain(int threads, bool pooled, int repeats) {
  rt::ParallelConfig base = rt::ParallelConfig::host(threads);
  if (!pooled) {
    base = base.unpooled();
  }
  rt::parallel(base, [](rt::TeamContext&) {});
  std::vector<double> samples(static_cast<std::size_t>(repeats), 0.0);
  for (double& sample : samples) {
    rt::CancelSource source;
    std::atomic<bool> started{false};
    std::atomic<std::int64_t> cancelled_at_ns{0};
    std::thread canceller([&] {
      while (!started.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      cancelled_at_ns.store(std::chrono::steady_clock::now()
                                .time_since_epoch()
                                .count(),
                            std::memory_order_release);
      source.cancel();
    });
    try {
      rt::parallel(
          base.cancellable(source.token()), [&](rt::TeamContext& tc) {
            rt::for_each(tc, rt::Range::upto(std::int64_t{1} << 30),
                         rt::Schedule::dynamic(1), [&](std::int64_t) {
                           started.store(true, std::memory_order_release);
                           spin(16);
                         });
          });
    } catch (const rt::Cancelled&) {
      const auto end_ns =
          std::chrono::steady_clock::now().time_since_epoch().count();
      sample = static_cast<double>(
                   end_ns - cancelled_at_ns.load(std::memory_order_acquire)) *
               1e-9;
    }
    canceller.join();
  }
  const auto mid = samples.begin() + samples.size() / 2;
  std::nth_element(samples.begin(), mid, samples.end());
  return *mid;
}

struct CancelRow {
  int threads = 0;
  double spawn_seconds = 0.0;
  double pool_seconds = 0.0;
};

/// Deterministic Sim run of the same shape: the body is free, the cost
/// model charges the per-iteration ops, and the backend charges its own
/// claim costs (serialized shared counter vs mostly-local deque pops).
double sim_loop_makespan(int threads, rt::Schedule schedule,
                         std::int64_t total, std::int64_t heavy_from,
                         double base_ops, double heavy_ops) {
  rt::CostModel cost;
  cost.ops_fn = [=](std::int64_t i) {
    return i >= heavy_from ? heavy_ops : base_ops;
  };
  const rt::RunResult run = rt::parallel_for(
      rt::ParallelConfig::sim_pi(threads), rt::Range::upto(total), schedule,
      [](std::int64_t) {}, cost);
  return run.elapsed_seconds();
}

/// Trivial-body loop through either the templated for_each (body inlined)
/// or the std::function for_loop (one indirect call per iteration).
double time_trivial_loop(bool devirtualized, std::int64_t total,
                         int repeats) {
  std::vector<double> data(static_cast<std::size_t>(total), 0.0);
  const auto body = [&data](std::int64_t i) {
    data[static_cast<std::size_t>(i)] =
        0.5 * static_cast<double>(i) + 1.0;
  };
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rt::parallel(rt::ParallelConfig::host(1), [&](rt::TeamContext& tc) {
      if (devirtualized) {
        rt::for_each(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      } else {
        rt::for_loop(tc, rt::Range::upto(total), rt::Schedule::static_block(),
                     body);
      }
    });
    best = std::min(best, seconds_since(start));
  }
  volatile double keep = data[static_cast<std::size_t>(total / 2)];
  (void)keep;
  return best;
}

void append_json_row(std::string& out, const LoopRow& row, bool first) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s\n    {\"backend\":\"%s\",\"profile\":\"%s\","
                "\"threads\":%d,\"schedule\":\"%s\",\"seconds\":%.9f}",
                first ? "" : ",", row.backend.c_str(), row.profile.c_str(),
                row.threads, row.schedule.c_str(), row.seconds);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // Shape: `total` iterations of a small spin; the skewed profile makes
  // the last eighth `kHeavyFactor` times heavier — the tail a static
  // block split dumps on the last thread, and enough cheap iterations
  // that dynamic,1's per-iteration claim overhead is visible.
  const std::int64_t total = smoke ? 4096 : (1 << 17);
  const std::int64_t base_units = 16;
  constexpr std::int64_t kHeavyFactor = 24;
  const int repeats = smoke ? 2 : 15;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4, 8};

  const std::vector<rt::Schedule> schedules = {
      rt::Schedule::static_block(), rt::Schedule::dynamic(1),
      rt::Schedule::dynamic(16), rt::Schedule::guided(1),
      rt::Schedule::steal()};

  std::vector<LoopRow> rows;
  std::printf("==== scheduler shoot-out: %lld iterations, heavy tail x%lld "
              "====\n",
              static_cast<long long>(total),
              static_cast<long long>(kHeavyFactor));
  for (const char* profile : {"uniform", "skewed"}) {
    const bool skewed = std::strcmp(profile, "skewed") == 0;
    const std::int64_t heavy_from = skewed ? total - total / 8 : total;
    for (const int threads : thread_counts) {
      for (const rt::Schedule& schedule : schedules) {
        const double seconds =
            time_host_loop(threads, schedule, total, heavy_from, base_units,
                           base_units * kHeavyFactor, repeats);
        rows.push_back(LoopRow{"host", profile, threads,
                               schedule.to_string(), seconds});
        std::printf("host %-8s t=%d %-10s %9.3f ms\n", profile, threads,
                    schedule.to_string().c_str(), seconds * 1e3);
      }
    }
  }

  // Sim rows: virtual Pi time, deterministic. Same shape scaled down (the
  // simulator retires one event per claim/chunk, so fewer iterations keep
  // the bench quick) with ops chosen so claim overhead matters.
  const std::int64_t sim_total = smoke ? 1024 : 8192;
  const std::int64_t sim_heavy_from = sim_total - sim_total / 8;
  for (const int threads : thread_counts) {
    for (const rt::Schedule& schedule : schedules) {
      const double seconds =
          sim_loop_makespan(threads, schedule, sim_total, sim_heavy_from,
                            2e3, 2e3 * kHeavyFactor);
      rows.push_back(LoopRow{"sim", "skewed", threads, schedule.to_string(),
                             seconds});
      std::printf("sim  %-8s t=%d %-10s %9.3f ms (virtual)\n", "skewed",
                  threads, schedule.to_string().c_str(), seconds * 1e3);
    }
  }

  // Region-launch latency: what one empty parallel() costs on the
  // persistent pool (parked workers, generation handoff) vs the spawn
  // path (fresh threads per region) — the number that decides whether a
  // thread-count sweep measures the loop or the fork.
  const int launch_repeats = smoke ? 50 : 500;
  std::vector<LaunchRow> launch_rows;
  for (const int threads : thread_counts) {
    LaunchRow row;
    row.threads = threads;
    row.spawn_seconds = time_region_launch(threads, false, launch_repeats);
    row.pool_seconds = time_region_launch(threads, true, launch_repeats);
    launch_rows.push_back(row);
    std::printf("launch t=%d spawn %8.2f us, pool %8.2f us (%.1fx)\n",
                threads, row.spawn_seconds * 1e6, row.pool_seconds * 1e6,
                row.pool_seconds > 0.0
                    ? row.spawn_seconds / row.pool_seconds
                    : 0.0);
  }

  // Cancellation-drain latency: how long after an external cancel() the
  // region actually returns control (as rt::Cancelled), pool vs spawn.
  // Chunk-boundary polling means this is roughly one dynamic,1 chunk plus
  // the abortable-barrier drain — it must stay in launch-latency
  // territory, not loop-runtime territory.
  const int cancel_repeats = smoke ? 10 : 100;
  std::vector<CancelRow> cancel_rows;
  for (const int threads : thread_counts) {
    CancelRow row;
    row.threads = threads;
    row.spawn_seconds = time_cancel_drain(threads, false, cancel_repeats);
    row.pool_seconds = time_cancel_drain(threads, true, cancel_repeats);
    cancel_rows.push_back(row);
    std::printf("cancel t=%d spawn %8.2f us, pool %8.2f us\n", threads,
                row.spawn_seconds * 1e6, row.pool_seconds * 1e6);
  }

  // Devirtualization: identical trivial body through both drivers.
  const std::int64_t devirt_total = smoke ? (1 << 16) : (1 << 21);
  const int devirt_repeats = smoke ? 2 : 7;
  const double wrapper_s =
      time_trivial_loop(false, devirt_total, devirt_repeats);
  const double inlined_s =
      time_trivial_loop(true, devirt_total, devirt_repeats);
  std::printf("devirt: for_loop %.3f ms, for_each %.3f ms over %lld trivial "
              "iterations\n",
              wrapper_s * 1e3, inlined_s * 1e3,
              static_cast<long long>(devirt_total));

  // Acceptance probes: does steal beat dynamic,1 on the skewed loop at
  // every measured thread count >= 4 (host real time and sim virtual
  // time), and does the inlined driver beat the type-erased one?
  const auto loop_seconds = [&rows](const std::string& backend,
                                    const std::string& profile, int threads,
                                    const std::string& schedule) {
    for (const LoopRow& row : rows) {
      if (row.backend == backend && row.profile == profile &&
          row.threads == threads && row.schedule == schedule) {
        return row.seconds;
      }
    }
    return -1.0;
  };
  bool steal_wins_host = true;
  bool steal_wins_sim = true;
  for (const int threads : thread_counts) {
    if (threads < 4) {
      continue;
    }
    steal_wins_host =
        steal_wins_host && loop_seconds("host", "skewed", threads, "steal") <
                               loop_seconds("host", "skewed", threads,
                                            "dynamic,1");
    steal_wins_sim =
        steal_wins_sim && loop_seconds("sim", "skewed", threads, "steal") <
                              loop_seconds("sim", "skewed", threads,
                                           "dynamic,1");
  }
  const bool devirt_wins = inlined_s < wrapper_s;

  // Pool checks: launching on parked workers must beat spawning by >= 5x
  // at 4 threads (the Pi-class team width); uniform host loops must not
  // degrade from 1 to 4 threads any more (launch off the critical path);
  // and dynamic,1's wait-free inlined claims must sit within 1.25x of
  // static on the uniform loop at 1 thread — the pure per-iteration
  // claim-overhead margin, measured without any multi-thread scheduling
  // noise.
  const auto launch_of = [&launch_rows](int threads) {
    for (const LaunchRow& row : launch_rows) {
      if (row.threads == threads) {
        return row;
      }
    }
    return LaunchRow{};
  };
  const int pool_check_threads =
      std::find(thread_counts.begin(), thread_counts.end(), 4) !=
              thread_counts.end()
          ? 4
          : thread_counts.back();
  const LaunchRow check_row = launch_of(pool_check_threads);
  const bool pool_beats_spawn =
      check_row.pool_seconds > 0.0 &&
      check_row.spawn_seconds >= 5.0 * check_row.pool_seconds;
  const int t_lo = thread_counts.front();
  const bool static_no_degrade =
      loop_seconds("host", "uniform", pool_check_threads, "static") <=
      loop_seconds("host", "uniform", t_lo, "static");
  const bool dynamic1_close =
      loop_seconds("host", "uniform", t_lo, "dynamic,1") <=
      1.25 * loop_seconds("host", "uniform", t_lo, "static");

  // Cancellation must drain in launch-latency territory: the pooled
  // cancel drain at the Pi-class team width stays within 100x of a
  // pooled empty-region launch (a deliberately loose multiple — the
  // drain includes one in-flight chunk and an OS-scheduler wakeup — but
  // tight enough to catch a drain that degenerates into running the
  // rest of the loop).
  const auto cancel_of = [&cancel_rows](int threads) {
    for (const CancelRow& row : cancel_rows) {
      if (row.threads == threads) {
        return row;
      }
    }
    return CancelRow{};
  };
  const CancelRow cancel_check_row = cancel_of(pool_check_threads);
  const bool cancel_drain_fast =
      check_row.pool_seconds > 0.0 &&
      cancel_check_row.pool_seconds <= 100.0 * check_row.pool_seconds;

  std::printf("checks: steal<dynamic,1 skewed 4+t host=%s sim=%s, "
              "for_each<for_loop=%s, pool>=5x spawn@t%d=%s, "
              "static t%d<=t%d uniform=%s, dynamic,1<=1.25x static@t%d=%s, "
              "cancel drain<=100x pool launch@t%d=%s\n",
              steal_wins_host ? "yes" : "no", steal_wins_sim ? "yes" : "no",
              devirt_wins ? "yes" : "no", pool_check_threads,
              pool_beats_spawn ? "yes" : "no", pool_check_threads, t_lo,
              static_no_degrade ? "yes" : "no", t_lo,
              dynamic1_close ? "yes" : "no", pool_check_threads,
              cancel_drain_fast ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_schedulers\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"loops\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    append_json_row(json, rows[i], i == 0);
  }
  json += "\n  ],\n  \"launch\": [";
  char buffer[384];
  for (std::size_t i = 0; i < launch_rows.size(); ++i) {
    const LaunchRow& row = launch_rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"threads\":%d,\"spawn_seconds\":%.9f,"
                  "\"pool_seconds\":%.9f}",
                  i == 0 ? "" : ",", row.threads, row.spawn_seconds,
                  row.pool_seconds);
    json += buffer;
  }
  json += "\n  ],\n  \"cancel\": [";
  for (std::size_t i = 0; i < cancel_rows.size(); ++i) {
    const CancelRow& row = cancel_rows[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"threads\":%d,\"spawn_seconds\":%.9f,"
                  "\"pool_seconds\":%.9f}",
                  i == 0 ? "" : ",", row.threads, row.spawn_seconds,
                  row.pool_seconds);
    json += buffer;
  }
  json += "\n  ],\n  \"devirt\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\"iterations\":%lld,\"for_loop_seconds\":%.9f,"
                "\"for_each_seconds\":%.9f",
                static_cast<long long>(devirt_total), wrapper_s, inlined_s);
  json += buffer;
  json += "},\n  \"checks\": {";
  std::snprintf(buffer, sizeof(buffer),
                "\"steal_beats_dynamic1_skewed_host\":%s,"
                "\"steal_beats_dynamic1_skewed_sim\":%s,"
                "\"for_each_beats_for_loop\":%s,"
                "\"pool_launch_beats_spawn\":%s,"
                "\"static_uniform_no_degradation\":%s,"
                "\"dynamic1_within_1p25x_static_uniform\":%s,"
                "\"cancel_drain_within_100x_pool_launch\":%s",
                steal_wins_host ? "true" : "false",
                steal_wins_sim ? "true" : "false",
                devirt_wins ? "true" : "false",
                pool_beats_spawn ? "true" : "false",
                static_no_degrade ? "true" : "false",
                dynamic1_close ? "true" : "false",
                cancel_drain_fast ? "true" : "false");
  json += buffer;
  json += "}\n}\n";

  std::ofstream out("BENCH_rt.json");
  out << json;
  std::printf("wrote BENCH_rt.json (%zu loop rows)\n", rows.size());
  return 0;
}
