// The paper's future-work direction, made measurable: "extend the module
// to include writing code for multicore processors and distributed
// memory using MPI ... provide students with more flexibility in
// determining the correct memory architecture to use."
//
// Experiment 1: trapezoid integration with fixed total work on a
// simulated Pi *cluster* (TeachMPI, one rank per node) vs shared-memory
// TeachMP on a single Pi — where communication costs bite.
// Experiment 2: allreduce algorithm choice (binomial tree vs ring) as the
// vector grows — the bandwidth-vs-latency trade-off.
// Experiment 3: the fault-tolerant cluster engine under injected faults —
// what speculation and re-execution buy on a real MapReduce job.

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/jobs.hpp"
#include "mp/sim_world.hpp"
#include "patternlets/patternlets.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pblpar;

double curve(double x) { return 4.0 / (1.0 + x * x); }

/// A deterministic word-count corpus for the cluster-engine experiment.
std::vector<std::string> cluster_corpus(int documents) {
  static const char* kWords[] = {"cluster", "master", "worker", "task",
                                 "heartbeat", "shuffle", "reduce", "fault"};
  util::Rng rng(7);
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(documents));
  for (int d = 0; d < documents; ++d) {
    std::string text;
    for (int w = 0; w < 50; ++w) {
      text += kWords[rng.next_below(8)];
      text += ' ';
    }
    docs.push_back(std::move(text));
  }
  return docs;
}

/// Distributed word count on a 4-node cluster under one fault plan;
/// returns the engine profile observed at the master.
cluster::ClusterProfile cluster_wordcount_profile(
    const cluster::FaultPlan& faults, const cluster::ClusterOptions& options) {
  const std::vector<std::string> docs = cluster_corpus(120);
  cluster::jobs::JobTuning tuning;
  tuning.map_cost_ops = 2e6;  // make map work visible against the network
  cluster::ClusterProfile profile;
  mp::SimWorld::run(4, [&](mp::SimComm& comm) {
    (void)cluster::jobs::word_count(comm, docs, tuning, options, &faults,
                                    comm.rank() == 0 ? &profile : nullptr);
  });
  return profile;
}

/// Distributed trapezoid: block partition across ranks, allreduce-sum.
double cluster_trapezoid_seconds(int ranks, std::int64_t n,
                                 double* result_out) {
  const mp::ClusterReport report = mp::SimWorld::run(
      ranks, [&](mp::SimComm& comm) {
        const std::int64_t begin = comm.rank() * n / comm.size();
        const std::int64_t end = (comm.rank() + 1) * n / comm.size();
        const double h = 1.0 / static_cast<double>(n);
        double local = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          const double x0 = h * static_cast<double>(i);
          local += 0.5 * h * (curve(x0) + curve(x0 + h));
        }
        // ~10 flops per trapezoid on the node.
        comm.context().compute(10.0 * static_cast<double>(end - begin));
        const double total =
            comm.allreduce(local, [](double a, double b) { return a + b; });
        if (comm.rank() == 0 && result_out != nullptr) {
          *result_out = total;
        }
      });
  return report.machine.makespan_s;
}

}  // namespace

int main() {
  constexpr std::int64_t kN = 4'000'000;

  // --- Experiment 1: shared memory vs distributed memory ------------------
  util::Table scaling(
      "Future work: trapezoid (4M intervals) — one shared-memory Pi vs a "
      "TeachMPI Pi cluster");
  scaling.columns({"configuration", "virtual time (ms)", "speedup vs 1 Pi "
                                                         "core"},
                  {util::Align::Left, util::Align::Right,
                   util::Align::Right});

  const double serial =
      patternlets::trapezoid_integration(rt::ParallelConfig::sim_pi(1),
                                         &curve, 0.0, 1.0, kN)
          .run.elapsed_seconds();
  scaling.row({"1 Pi, 1 thread (serial)", util::Table::num(serial * 1e3, 2),
               "1.00x"});

  const double shared =
      patternlets::trapezoid_integration(rt::ParallelConfig::sim_pi(4),
                                         &curve, 0.0, 1.0, kN)
          .run.elapsed_seconds();
  scaling.row({"1 Pi, 4 threads (TeachMP shared memory)",
               util::Table::num(shared * 1e3, 2),
               util::Table::num(serial / shared, 2) + "x"});

  for (const int nodes : {2, 4, 8, 16}) {
    double integral = 0.0;
    const double elapsed = cluster_trapezoid_seconds(nodes, kN, &integral);
    scaling.row({std::to_string(nodes) +
                     " Pi nodes, TeachMPI (distributed memory)",
                 util::Table::num(elapsed * 1e3, 2),
                 util::Table::num(serial / elapsed, 2) + "x"});
  }
  scaling.note(
      "Shape: 4 shared-memory threads ~= 4 single-core nodes (tiny "
      "message volume), and the cluster keeps scaling past one Pi's 4 "
      "cores — the reason to teach MPI next, exactly as the paper "
      "proposes. Network latency bounds small-node-count gains.");
  std::printf("%s\n", scaling.to_ascii().c_str());

  // --- Experiment 2: allreduce algorithm choice ----------------------------
  util::Table allreduce_table(
      "Allreduce on an 8-node Pi cluster: binomial tree vs ring (virtual "
      "ms)");
  allreduce_table.columns({"vector doubles", "tree", "ring", "winner"},
                          {util::Align::Right, util::Align::Right,
                           util::Align::Right, util::Align::Left});
  for (const std::size_t elements : {64UL, 1024UL, 16384UL, 131072UL}) {
    const auto time_with = [&](bool ring) {
      const mp::ClusterReport report = mp::SimWorld::run(
          8, [&](mp::SimComm& comm) {
            std::vector<double> data(elements, 1.0);
            if (ring) {
              (void)comm.ring_allreduce_sum(std::move(data));
            } else {
              (void)comm.allreduce(
                  data, [](std::vector<double> a,
                           const std::vector<double>& b) {
                    for (std::size_t i = 0; i < a.size(); ++i) {
                      a[i] += b[i];
                    }
                    return a;
                  });
            }
          });
      return report.machine.makespan_s;
    };
    const double tree = time_with(false);
    const double ring = time_with(true);
    allreduce_table.row({std::to_string(elements),
                         util::Table::num(tree * 1e3, 2),
                         util::Table::num(ring * 1e3, 2),
                         ring < tree ? "ring" : "tree"});
  }
  allreduce_table.note(
      "Small vectors: the latency-bound tree wins (fewer hops). Large "
      "vectors: the bandwidth-optimal ring wins (each node moves "
      "2(n-1)/n of the data instead of log2(n) full copies).");
  std::printf("%s\n", allreduce_table.to_ascii().c_str());

  // --- Experiment 3: fault tolerance on the cluster engine -----------------
  util::Table faults_table(
      "Distributed word count, 4-node Pi cluster: injected faults vs the "
      "engine's defenses (identical output in every row)");
  faults_table.columns({"scenario", "tasks done (ms)", "makespan (ms)",
                        "attempts", "speculative", "requeues", "dead"},
                       {util::Align::Left, util::Align::Right,
                        util::Align::Right, util::Align::Right,
                        util::Align::Right, util::Align::Right,
                        util::Align::Right});

  const auto add_row = [&](const char* name, const cluster::FaultPlan& plan,
                           const cluster::ClusterOptions& options) {
    const cluster::ClusterProfile profile =
        cluster_wordcount_profile(plan, options);
    faults_table.row(
        {name, util::Table::num(profile.stats.completion_s * 1e3, 2),
         util::Table::num(profile.stats.makespan_s * 1e3, 2),
         std::to_string(profile.stats.attempts),
         std::to_string(profile.stats.speculative_attempts),
         std::to_string(profile.stats.requeues),
         std::to_string(profile.stats.dead_workers)});
  };

  cluster::FaultPlan no_faults;
  add_row("clean run", no_faults, {});

  cluster::FaultPlan straggler;
  straggler.stragglers.push_back(cluster::StragglerFault{1, 10.0});
  cluster::ClusterOptions no_speculation;
  no_speculation.max_live_attempts = 1;
  add_row("rank 1 runs 10x slow, speculation off", straggler, no_speculation);
  add_row("rank 1 runs 10x slow, speculation on", straggler, {});

  cluster::FaultPlan crash;
  crash.crashes.push_back(cluster::CrashFault{2, 1});
  add_row("rank 2 crashes on its 2nd task", crash, {});

  faults_table.note(
      "The paper's cluster future-work, taken one step further: real "
      "clusters fail. Speculation gets a backup copy of the straggler's "
      "in-flight task done early ('tasks done' recovers toward the clean "
      "run), though the synchronous shuffle still waits for the slow "
      "node — the reason production clusters also decommission "
      "stragglers. Heartbeat timeouts turn the crash into a re-executed "
      "task instead of a hang. Every scenario produces byte-identical "
      "word counts.");
  std::printf("%s", faults_table.to_ascii().c_str());
  return 0;
}
