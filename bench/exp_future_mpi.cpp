// The paper's future-work direction, made measurable: "extend the module
// to include writing code for multicore processors and distributed
// memory using MPI ... provide students with more flexibility in
// determining the correct memory architecture to use."
//
// Experiment 1: trapezoid integration with fixed total work on a
// simulated Pi *cluster* (TeachMPI, one rank per node) vs shared-memory
// TeachMP on a single Pi — where communication costs bite.
// Experiment 2: allreduce algorithm choice (binomial tree vs ring) as the
// vector grows — the bandwidth-vs-latency trade-off.

#include <cstdio>
#include <vector>

#include "mp/sim_world.hpp"
#include "patternlets/patternlets.hpp"
#include "util/table.hpp"

namespace {

using namespace pblpar;

double curve(double x) { return 4.0 / (1.0 + x * x); }

/// Distributed trapezoid: block partition across ranks, allreduce-sum.
double cluster_trapezoid_seconds(int ranks, std::int64_t n,
                                 double* result_out) {
  const mp::ClusterReport report = mp::SimWorld::run(
      ranks, [&](mp::SimComm& comm) {
        const std::int64_t begin = comm.rank() * n / comm.size();
        const std::int64_t end = (comm.rank() + 1) * n / comm.size();
        const double h = 1.0 / static_cast<double>(n);
        double local = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          const double x0 = h * static_cast<double>(i);
          local += 0.5 * h * (curve(x0) + curve(x0 + h));
        }
        // ~10 flops per trapezoid on the node.
        comm.context().compute(10.0 * static_cast<double>(end - begin));
        const double total =
            comm.allreduce(local, [](double a, double b) { return a + b; });
        if (comm.rank() == 0 && result_out != nullptr) {
          *result_out = total;
        }
      });
  return report.machine.makespan_s;
}

}  // namespace

int main() {
  constexpr std::int64_t kN = 4'000'000;

  // --- Experiment 1: shared memory vs distributed memory ------------------
  util::Table scaling(
      "Future work: trapezoid (4M intervals) — one shared-memory Pi vs a "
      "TeachMPI Pi cluster");
  scaling.columns({"configuration", "virtual time (ms)", "speedup vs 1 Pi "
                                                         "core"},
                  {util::Align::Left, util::Align::Right,
                   util::Align::Right});

  const double serial =
      patternlets::trapezoid_integration(rt::ParallelConfig::sim_pi(1),
                                         &curve, 0.0, 1.0, kN)
          .run.elapsed_seconds();
  scaling.row({"1 Pi, 1 thread (serial)", util::Table::num(serial * 1e3, 2),
               "1.00x"});

  const double shared =
      patternlets::trapezoid_integration(rt::ParallelConfig::sim_pi(4),
                                         &curve, 0.0, 1.0, kN)
          .run.elapsed_seconds();
  scaling.row({"1 Pi, 4 threads (TeachMP shared memory)",
               util::Table::num(shared * 1e3, 2),
               util::Table::num(serial / shared, 2) + "x"});

  for (const int nodes : {2, 4, 8, 16}) {
    double integral = 0.0;
    const double elapsed = cluster_trapezoid_seconds(nodes, kN, &integral);
    scaling.row({std::to_string(nodes) +
                     " Pi nodes, TeachMPI (distributed memory)",
                 util::Table::num(elapsed * 1e3, 2),
                 util::Table::num(serial / elapsed, 2) + "x"});
  }
  scaling.note(
      "Shape: 4 shared-memory threads ~= 4 single-core nodes (tiny "
      "message volume), and the cluster keeps scaling past one Pi's 4 "
      "cores — the reason to teach MPI next, exactly as the paper "
      "proposes. Network latency bounds small-node-count gains.");
  std::printf("%s\n", scaling.to_ascii().c_str());

  // --- Experiment 2: allreduce algorithm choice ----------------------------
  util::Table allreduce_table(
      "Allreduce on an 8-node Pi cluster: binomial tree vs ring (virtual "
      "ms)");
  allreduce_table.columns({"vector doubles", "tree", "ring", "winner"},
                          {util::Align::Right, util::Align::Right,
                           util::Align::Right, util::Align::Left});
  for (const std::size_t elements : {64UL, 1024UL, 16384UL, 131072UL}) {
    const auto time_with = [&](bool ring) {
      const mp::ClusterReport report = mp::SimWorld::run(
          8, [&](mp::SimComm& comm) {
            std::vector<double> data(elements, 1.0);
            if (ring) {
              (void)comm.ring_allreduce_sum(std::move(data));
            } else {
              (void)comm.allreduce(
                  data, [](std::vector<double> a,
                           const std::vector<double>& b) {
                    for (std::size_t i = 0; i < a.size(); ++i) {
                      a[i] += b[i];
                    }
                    return a;
                  });
            }
          });
      return report.machine.makespan_s;
    };
    const double tree = time_with(false);
    const double ring = time_with(true);
    allreduce_table.row({std::to_string(elements),
                         util::Table::num(tree * 1e3, 2),
                         util::Table::num(ring * 1e3, 2),
                         ring < tree ? "ring" : "tree"});
  }
  allreduce_table.note(
      "Small vectors: the latency-bound tree wins (fewer hops). Large "
      "vectors: the bandwidth-optimal ring wins (each node moves "
      "2(n-1)/n of the data instead of log2(n) full copies).");
  std::printf("%s", allreduce_table.to_ascii().c_str());
  return 0;
}
