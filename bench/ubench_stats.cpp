// Microbenchmarks of the statistics kernels used by the survey analysis.

#include <benchmark/benchmark.h>

#include "stats/correlation.hpp"
#include "stats/special.hpp"
#include "stats/tests.hpp"
#include "util/rng.hpp"

namespace {

using namespace pblpar;

std::vector<double> sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.normal(4.0, 0.25);
  }
  return values;
}

void BM_PairedTTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = sample(n, 1);
  const auto b = sample(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::paired_t_test(a, b).p_two_tailed);
  }
}
BENCHMARK(BM_PairedTTest)->Arg(124)->Arg(4096);

void BM_Pearson(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = sample(n, 3);
  const auto y = sample(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::pearson(x, y).p_two_tailed);
  }
}
BENCHMARK(BM_Pearson)->Arg(124)->Arg(4096);

void BM_StudentTTwoTailedP(benchmark::State& state) {
  double t = 0.5;
  for (auto _ : state) {
    t += 1e-9;
    benchmark::DoNotOptimize(stats::student_t_two_tailed_p(t, 123.0));
  }
}
BENCHMARK(BM_StudentTTwoTailedP);

void BM_Ibeta(benchmark::State& state) {
  double x = 0.3;
  for (auto _ : state) {
    x = x < 0.69 ? x + 1e-9 : 0.3;
    benchmark::DoNotOptimize(stats::ibeta(61.5, 0.5, x));
  }
}
BENCHMARK(BM_Ibeta);

}  // namespace
