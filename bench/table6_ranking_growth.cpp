// Table 6 reproduction: ranking of student perception of Personal Growth
// (composite scores), both survey sittings, plus the discussion-section
// checks (growth spread shrinks in half 2; Implementation's emphasis-
// growth gap nearly closes).

#include <cmath>
#include <cstdio>

#include "classroom/study.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();

  util::Table table(
      "Table 6. Ranking of Student Perception of Personal Growth");
  table.columns({"Rank", "First Half (ours)", "score",
                 "Second Half (ours)", "score"},
                {util::Align::Right, util::Align::Left, util::Align::Right,
                 util::Align::Left, util::Align::Right});
  const auto& first = study.analysis.growth_ranking[0];
  const auto& second = study.analysis.growth_ranking[1];
  for (std::size_t i = 0; i < first.size(); ++i) {
    table.row({std::to_string(i + 1), first[i].name,
               util::Table::num(first[i].value, 2), second[i].name,
               util::Table::num(second[i].value, 2)});
  }
  table.note("Paper half 1: Teamwork 4.14 first, Evaluation and Decision "
             "Making 3.36 last, with a wide spread;");
  table.note("half 2: Teamwork 4.33 and Implementation 4.22 on top, spread "
             "much narrower.");
  std::printf("%s", table.to_ascii().c_str());

  const double spread_first = first.front().value - first.back().value;
  const double spread_second = second.front().value - second.back().value;
  std::printf(
      "\nGrowth spread: %.2f (half 1, paper 0.78) vs %.2f (half 2, paper "
      "0.56) — more selective growth early, as the paper reports.\n",
      spread_first, spread_second);

  for (const classroom::EmphasisGrowthGap& gap :
       study.analysis.second_half_gaps) {
    if (gap.element == survey::Element::Implementation) {
      std::printf(
          "Implementation emphasis-growth gap, half 2: %.2f (paper 0.03; "
          "redesign threshold 0.2).\n",
          std::fabs(gap.gap));
    }
  }
  return 0;
}
