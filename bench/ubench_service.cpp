// Load generator for the campus server (src/service): many tenants
// submitting mixed jobs — patternlet loops, drug-design sweeps, MapReduce
// word counts, simulated-cluster word counts — through one multi-tenant
// service::Server. Four phases:
//
//   fairness     lanes=1 saturation: dispatch order is the stride
//                scheduler's alone, so per-tenant completions in a window
//                must track the 8/4/2/1 weights (within 1.25x).
//   burst        both lanes gated, then >= 1000 submissions pile up
//                in flight; the admission queue must absorb them and the
//                drain must finish with every job Done.
//   backpressure depth=64 + Reject: the flood past the limit is shed,
//                every rejected ticket carries retry_after > 0, and the
//                queue high-water never passes the limit.
//   latency      open-loop seeded arrivals of the mixed job types from 4
//                tenants; reports p50/p99 sojourn and throughput.
//
// Results go to BENCH_service.json in the working directory. --smoke
// shrinks the fairness window and the arrival count (it still drives the
// full >= 1000-job burst — that is the tentpole capacity claim) so the
// bench-smoke ctest finishes in well under a second of work on the
// deterministic phases.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "drugdesign/drugdesign.hpp"
#include "rt/parallel.hpp"
#include "service/jobs.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

namespace {

using pblpar::service::AdmissionPolicy;
using pblpar::service::Job;
using pblpar::service::JobContext;
using pblpar::service::JobOptions;
using pblpar::service::JobOutcome;
using pblpar::service::JobResult;
using pblpar::service::JobStatus;
using pblpar::service::JobTicket;
using pblpar::service::Server;
using pblpar::service::ServerOptions;
using pblpar::service::ServerStats;
using pblpar::service::TenantConfig;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A job that spins until released; pins one lane so submissions queue
/// up behind it deterministically.
struct Gate {
  std::atomic<bool> open{false};

  Job job() {
    Job gate_job;
    gate_job.kind = "gate";
    gate_job.run = [this](JobContext& context) {
      while (!open.load(std::memory_order_acquire) &&
             !context.cancel_token().cancel_requested()) {
        std::this_thread::yield();
      }
      return JobOutcome{};
    };
    return gate_job;
  }
};

struct TenantShare {
  std::string name;
  double weight = 0.0;
  std::int64_t window_completions = 0;
  double share = 0.0;
  double expected = 0.0;
  double ratio = 0.0;  // share / expected
};

struct FairnessResult {
  std::int64_t window = 0;
  std::vector<TenantShare> tenants;
  double max_ratio = 0.0;
  double min_ratio = 0.0;
  std::uint64_t light_first_completion = 0;
  bool within_1p25x = false;
  bool light_not_starved = false;
};

// The four course tenants with deliberately skewed shares: the intro
// section bought 8x the cluster time of the seminar.
const std::vector<TenantConfig> kTenants = {
    {"physics", 8.0}, {"chem", 4.0}, {"bio", 2.0}, {"cs", 1.0}};

FairnessResult run_fairness(std::int64_t jobs_per_tenant,
                            std::int64_t window) {
  std::vector<TenantConfig> tenants = kTenants;
  tenants.push_back({"ops", 1.0});  // gate-only tenant
  ServerOptions options;
  options.lanes = 1;  // dispatch order == stride-scheduler order
  options.max_queue_depth = static_cast<int>(
      jobs_per_tenant * static_cast<std::int64_t>(kTenants.size()) + 8);
  Server server(tenants, options);

  Gate gate;
  server.submit("ops", gate.job());
  std::vector<std::vector<JobTicket>> tickets(kTenants.size());
  for (std::int64_t j = 0; j < jobs_per_tenant; ++j) {
    for (std::size_t t = 0; t < kTenants.size(); ++t) {
      tickets[t].push_back(server.submit(
          kTenants[t].name,
          pblpar::service::jobs::patternlet(64, pblpar::rt::Schedule::dynamic(16),
                                            2)));
    }
  }
  gate.open.store(true, std::memory_order_release);
  server.drain();

  // The gate finishes first (completion 1); the fairness window is the
  // next `window` completions, while every tenant still has backlog.
  FairnessResult result;
  result.window = window;
  double weight_sum = 0.0;
  for (const TenantConfig& tenant : kTenants) {
    weight_sum += tenant.weight;
  }
  for (std::size_t t = 0; t < kTenants.size(); ++t) {
    TenantShare share;
    share.name = kTenants[t].name;
    share.weight = kTenants[t].weight;
    std::uint64_t first = 0;
    for (const JobTicket& ticket : tickets[t]) {
      const std::uint64_t seq = ticket.wait().completion_seq;
      if (first == 0 || seq < first) {
        first = seq;
      }
      if (seq >= 2 && seq < 2 + static_cast<std::uint64_t>(window)) {
        ++share.window_completions;
      }
    }
    if (kTenants[t].weight == 1.0) {
      result.light_first_completion = first;
    }
    share.share = static_cast<double>(share.window_completions) /
                  static_cast<double>(window);
    share.expected = kTenants[t].weight / weight_sum;
    share.ratio = share.share / share.expected;
    result.tenants.push_back(share);
  }
  result.max_ratio = result.tenants.front().ratio;
  result.min_ratio = result.tenants.front().ratio;
  for (const TenantShare& share : result.tenants) {
    result.max_ratio = std::max(result.max_ratio, share.ratio);
    result.min_ratio = std::min(result.min_ratio, share.ratio);
  }
  result.within_1p25x = result.max_ratio <= 1.25 && result.min_ratio >= 0.8;
  // One full stride cycle (sum of weights = 15 dispatches) guarantees
  // every tenant a dispatch; + the gate completion = 16.
  result.light_not_starved =
      result.light_first_completion > 0 && result.light_first_completion <= 16;
  return result;
}

struct BurstResult {
  std::int64_t submitted = 0;
  int in_flight_high_water = 0;
  int queue_depth_high_water = 0;
  int depth_limit = 0;
  double drain_seconds = 0.0;
  double throughput_jobs_per_s = 0.0;
  std::int64_t completed = 0;
  bool sustained_1000 = false;
  bool depth_bounded = false;
  bool all_done = false;
};

BurstResult run_burst(std::int64_t jobs) {
  std::vector<TenantConfig> tenants = kTenants;
  tenants.push_back({"ops", 1.0});
  ServerOptions options;
  options.lanes = 2;
  options.max_queue_depth = static_cast<int>(jobs + 8);
  Server server(tenants, options);

  Gate gate;  // one Gate releases both lane-pinning jobs
  server.submit("ops", gate.job());
  server.submit("ops", gate.job());
  std::vector<JobTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(jobs));
  for (std::int64_t j = 0; j < jobs; ++j) {
    tickets.push_back(server.submit(
        kTenants[static_cast<std::size_t>(j) % kTenants.size()].name,
        pblpar::service::jobs::patternlet(32, pblpar::rt::Schedule::dynamic(8),
                                          1)));
  }
  const ServerStats loaded = server.stats();
  const double release_at = now_s();
  gate.open.store(true, std::memory_order_release);
  server.drain();
  const double drained_at = now_s();

  BurstResult result;
  result.submitted = jobs;
  result.in_flight_high_water = loaded.in_flight_high_water;
  result.queue_depth_high_water = loaded.queue_depth_high_water;
  result.depth_limit = options.max_queue_depth;
  result.drain_seconds = drained_at - release_at;
  result.throughput_jobs_per_s =
      result.drain_seconds > 0.0
          ? static_cast<double>(jobs) / result.drain_seconds
          : 0.0;
  for (const JobTicket& ticket : tickets) {
    if (ticket.wait().status == JobStatus::Done) {
      ++result.completed;
    }
  }
  result.sustained_1000 = result.in_flight_high_water >= 1000;
  result.depth_bounded =
      server.stats().queue_depth_high_water <= options.max_queue_depth;
  result.all_done = result.completed == jobs;
  return result;
}

struct BackpressureResult {
  int depth_limit = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  double min_retry_after_s = 0.0;
  int queue_depth_high_water = 0;
  std::int64_t completed = 0;
  bool all_rejected_have_retry_after = false;
  bool depth_bounded = false;
};

BackpressureResult run_backpressure(int depth, std::int64_t flood) {
  std::vector<TenantConfig> tenants = kTenants;
  tenants.push_back({"ops", 1.0});
  ServerOptions options;
  options.lanes = 1;
  options.max_queue_depth = depth;
  options.admission = AdmissionPolicy::Reject;
  Server server(tenants, options);

  Gate gate;
  JobTicket gate_ticket = server.submit("ops", gate.job());
  while (gate_ticket.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  BackpressureResult result;
  result.depth_limit = depth;
  result.all_rejected_have_retry_after = true;
  result.min_retry_after_s = -1.0;
  std::vector<JobTicket> tickets;
  for (std::int64_t j = 0; j < depth + flood; ++j) {
    tickets.push_back(server.submit(
        kTenants[static_cast<std::size_t>(j) % kTenants.size()].name,
        pblpar::service::jobs::patternlet(32, pblpar::rt::Schedule::dynamic(8),
                                          1)));
    const JobTicket& ticket = tickets.back();
    if (ticket.status() == JobStatus::Rejected) {
      ++result.rejected;
      const JobResult rejected = ticket.wait();
      if (rejected.retry_after_s <= 0.0) {
        result.all_rejected_have_retry_after = false;
      }
      if (result.min_retry_after_s < 0.0 ||
          rejected.retry_after_s < result.min_retry_after_s) {
        result.min_retry_after_s = rejected.retry_after_s;
      }
    } else {
      ++result.accepted;
    }
  }
  gate.open.store(true, std::memory_order_release);
  server.drain();
  for (const JobTicket& ticket : tickets) {
    if (ticket.wait().status == JobStatus::Done) {
      ++result.completed;
    }
  }
  const ServerStats stats = server.stats();
  result.queue_depth_high_water = stats.queue_depth_high_water;
  result.depth_bounded = stats.queue_depth_high_water <= depth;
  return result;
}

struct LatencyResult {
  std::int64_t jobs = 0;
  double arrival_rate_hz = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double makespan_s = 0.0;
  double throughput_jobs_per_s = 0.0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;
  bool no_failures = false;
};

Job make_mixed_job(pblpar::util::Rng& rng) {
  const double pick = rng.next_double();
  if (pick < 0.70) {
    return pblpar::service::jobs::patternlet(
        rng.uniform_int(512, 4096), pblpar::rt::Schedule::steal(), 4);
  }
  if (pick < 0.85) {
    std::vector<std::string> documents(
        static_cast<std::size_t>(rng.uniform_int(4, 12)),
        "students measure speedup and amdahl ceilings on shared lab "
        "machines while the campus server keeps tenants honest");
    return pblpar::service::jobs::mapreduce_word_count(std::move(documents));
  }
  if (pick < 0.95) {
    pblpar::drugdesign::Config config;
    config.num_ligands = static_cast<int>(rng.uniform_int(8, 24));
    config.max_ligand_len = 4;
    config.protein_len = 200;
    config.seed = rng.next_u64();
    return pblpar::service::jobs::drugdesign_sweep(config);
  }
  return pblpar::service::jobs::cluster_word_count(
      {"distributed word count on simulated ranks",
       "rank zero masters the job"},
      3);
}

LatencyResult run_latency(std::int64_t jobs, double rate_hz,
                          std::uint64_t seed) {
  ServerOptions options;
  options.lanes = 2;
  options.max_queue_depth = static_cast<int>(jobs + 8);
  Server server(kTenants, options);

  pblpar::util::Rng rng(seed);
  // Open loop: arrival times are drawn up front (exponential gaps) and
  // honoured with sleep_until, independent of completions — a slow
  // server cannot slow the arrivals down, which is what makes queueing
  // visible in the sojourn times.
  const auto start = std::chrono::steady_clock::now();
  std::vector<JobTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(jobs));
  double arrival_s = 0.0;
  for (std::int64_t j = 0; j < jobs; ++j) {
    arrival_s += -std::log(1.0 - rng.next_double()) / rate_hz;
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(arrival_s));
    const std::size_t tenant = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(kTenants.size())));
    tickets.push_back(server.submit(kTenants[tenant].name,
                                    make_mixed_job(rng)));
  }
  server.drain();
  const double makespan =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  LatencyResult result;
  result.jobs = jobs;
  result.arrival_rate_hz = rate_hz;
  result.makespan_s = makespan;
  std::vector<double> sojourns;
  for (const JobTicket& ticket : tickets) {
    const JobResult job_result = ticket.wait();
    switch (job_result.status) {
      case JobStatus::Done:
        ++result.done;
        sojourns.push_back(job_result.queued_s + job_result.service_s);
        break;
      case JobStatus::Failed:
        ++result.failed;
        break;
      case JobStatus::Rejected:
        ++result.rejected;
        break;
      default:
        break;
    }
  }
  std::sort(sojourns.begin(), sojourns.end());
  const auto percentile = [&](double p) {
    if (sojourns.empty()) {
      return 0.0;
    }
    const auto index = static_cast<std::size_t>(
        p * static_cast<double>(sojourns.size() - 1));
    return sojourns[index];
  };
  result.p50_s = percentile(0.50);
  result.p99_s = percentile(0.99);
  result.throughput_jobs_per_s =
      makespan > 0.0 ? static_cast<double>(result.done) / makespan : 0.0;
  result.no_failures =
      result.failed == 0 && result.rejected == 0 && result.done == jobs;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  pblpar::rt::warm_up(pblpar::rt::ParallelConfig::host(2));

  // Fairness window: a multiple of the weight sum (15), so the stride
  // schedule's proportions are exact within the window. Backlog per
  // tenant must exceed the heaviest tenant's window share (8/15 of the
  // window) or the window would measure a drained queue, not the
  // scheduler.
  const std::int64_t fairness_jobs = smoke ? 60 : 200;
  const std::int64_t fairness_window = smoke ? 90 : 300;
  const FairnessResult fairness = run_fairness(fairness_jobs, fairness_window);
  std::printf("fairness (lanes=1, window=%lld):\n",
              static_cast<long long>(fairness.window));
  for (const TenantShare& share : fairness.tenants) {
    std::printf("  %-8s w=%.0f  %lld/%lld  share=%.3f expected=%.3f "
                "ratio=%.3f\n",
                share.name.c_str(), share.weight,
                static_cast<long long>(share.window_completions),
                static_cast<long long>(fairness.window), share.share,
                share.expected, share.ratio);
  }

  // The capacity claim is not scaled down in smoke mode: the queue is a
  // vector push under one lock, so 1200 pending submissions stay cheap.
  const std::int64_t burst_jobs = 1200;
  const BurstResult burst = run_burst(burst_jobs);
  std::printf("burst: %lld jobs, in-flight high water %d, drain %.3f s "
              "(%.0f jobs/s)\n",
              static_cast<long long>(burst.submitted),
              burst.in_flight_high_water, burst.drain_seconds,
              burst.throughput_jobs_per_s);

  const int backpressure_depth = 64;
  const std::int64_t backpressure_flood = smoke ? 100 : 400;
  const BackpressureResult backpressure =
      run_backpressure(backpressure_depth, backpressure_flood);
  std::printf("backpressure: depth %d, accepted %lld, rejected %lld, min "
              "retry-after %.6f s, high water %d\n",
              backpressure.depth_limit,
              static_cast<long long>(backpressure.accepted),
              static_cast<long long>(backpressure.rejected),
              backpressure.min_retry_after_s,
              backpressure.queue_depth_high_water);

  const std::int64_t latency_jobs = smoke ? 60 : 400;
  const double latency_rate_hz = smoke ? 2000.0 : 1500.0;
  const LatencyResult latency =
      run_latency(latency_jobs, latency_rate_hz, 0xC0FFEEULL);
  std::printf("latency: %lld open-loop jobs @ %.0f Hz, p50 %.6f s, p99 "
              "%.6f s, %.0f jobs/s\n",
              static_cast<long long>(latency.jobs), latency.arrival_rate_hz,
              latency.p50_s, latency.p99_s, latency.throughput_jobs_per_s);

  const bool checks_fair = fairness.within_1p25x;
  const bool checks_light = fairness.light_not_starved;
  const bool checks_burst =
      burst.sustained_1000 && burst.all_done && burst.depth_bounded;
  const bool checks_backpressure =
      backpressure.all_rejected_have_retry_after &&
      backpressure.rejected > 0 && backpressure.depth_bounded &&
      backpressure.completed == backpressure.accepted;
  const bool checks_latency = latency.no_failures;
  std::printf("checks: fair-share<=1.25x=%s light-not-starved=%s "
              "burst>=1000=%s backpressure=%s latency-no-failures=%s\n",
              checks_fair ? "yes" : "no", checks_light ? "yes" : "no",
              checks_burst ? "yes" : "no",
              checks_backpressure ? "yes" : "no",
              checks_latency ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_service\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  char buffer[512];
  json += "  \"fairness\": {\n    \"lanes\": 1,\n";
  std::snprintf(buffer, sizeof(buffer),
                "    \"window\": %lld,\n    \"max_ratio\": %.4f,\n"
                "    \"min_ratio\": %.4f,\n"
                "    \"light_first_completion\": %llu,\n    \"tenants\": [",
                static_cast<long long>(fairness.window), fairness.max_ratio,
                fairness.min_ratio,
                static_cast<unsigned long long>(
                    fairness.light_first_completion));
  json += buffer;
  for (std::size_t i = 0; i < fairness.tenants.size(); ++i) {
    const TenantShare& share = fairness.tenants[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n      {\"name\":\"%s\",\"weight\":%.1f,"
                  "\"window_completions\":%lld,\"share\":%.4f,"
                  "\"expected\":%.4f,\"ratio\":%.4f}",
                  i == 0 ? "" : ",", share.name.c_str(), share.weight,
                  static_cast<long long>(share.window_completions),
                  share.share, share.expected, share.ratio);
    json += buffer;
  }
  json += "\n    ]\n  },\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"burst\": {\"submitted\":%lld,"
                "\"in_flight_high_water\":%d,\"queue_depth_high_water\":%d,"
                "\"depth_limit\":%d,\"drain_seconds\":%.6f,"
                "\"throughput_jobs_per_s\":%.1f,\"completed\":%lld},\n",
                static_cast<long long>(burst.submitted),
                burst.in_flight_high_water, burst.queue_depth_high_water,
                burst.depth_limit, burst.drain_seconds,
                burst.throughput_jobs_per_s,
                static_cast<long long>(burst.completed));
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"backpressure\": {\"depth_limit\":%d,\"accepted\":%lld,"
                "\"rejected\":%lld,\"min_retry_after_s\":%.9f,"
                "\"queue_depth_high_water\":%d,\"completed\":%lld},\n",
                backpressure.depth_limit,
                static_cast<long long>(backpressure.accepted),
                static_cast<long long>(backpressure.rejected),
                backpressure.min_retry_after_s,
                backpressure.queue_depth_high_water,
                static_cast<long long>(backpressure.completed));
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"latency\": {\"jobs\":%lld,\"arrival_rate_hz\":%.0f,"
                "\"p50_s\":%.6f,\"p99_s\":%.6f,\"makespan_s\":%.6f,"
                "\"throughput_jobs_per_s\":%.1f,\"done\":%lld,"
                "\"failed\":%lld,\"rejected\":%lld},\n",
                static_cast<long long>(latency.jobs),
                latency.arrival_rate_hz, latency.p50_s, latency.p99_s,
                latency.makespan_s, latency.throughput_jobs_per_s,
                static_cast<long long>(latency.done),
                static_cast<long long>(latency.failed),
                static_cast<long long>(latency.rejected));
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"checks\": {\"fair_share_within_1p25x\":%s,"
                "\"light_tenant_not_starved\":%s,"
                "\"burst_sustains_1000_in_flight\":%s,"
                "\"queue_depth_bounded\":%s,"
                "\"rejected_report_retry_after\":%s,"
                "\"latency_no_failures\":%s}\n}\n",
                checks_fair ? "true" : "false",
                checks_light ? "true" : "false",
                checks_burst ? "true" : "false",
                (burst.depth_bounded && backpressure.depth_bounded)
                    ? "true"
                    : "false",
                checks_backpressure ? "true" : "false",
                checks_latency ? "true" : "false");
  json += buffer;

  std::ofstream out("BENCH_service.json");
  out << json;
  std::printf("wrote BENCH_service.json\n");

  // Every phase here is structural (gated queues, deterministic stride
  // order), not timing-sensitive, so the exit guard re-uses the committed
  // checks directly — except raw latency numbers, which only report.
  if (!(checks_fair && checks_light && checks_burst && checks_backpressure &&
        checks_latency)) {
    std::fprintf(stderr, "service bench checks failed\n");
    return 1;
  }
  return 0;
}
