// Assignment 5 reproduction: the in-text Drug Design experiment.
// Sequential vs OpenMP(TeachMP) vs C++11-threads run times on the
// simulated Pi; thread count 4 -> 5; max ligand length 5 -> 7; and the
// program-size comparison the paper's students report.

#include <cstdio>

#include "drugdesign/drugdesign.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  drugdesign::Config config;
  config.num_ligands = 240;
  config.protein_len = 1000;
  config.seed = 2018;

  util::Table table(
      "Assignment 5: Drug Design on the simulated Raspberry Pi 3B+ (240 "
      "ligands, protein 1000)");
  table.columns({"approach", "threads", "max ligand len",
                 "virtual time (ms)", "speedup vs seq", "best score"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right,
                 util::Align::Right});

  double sequential_time[8] = {0.0};
  for (const auto& row : drugdesign::run_assignment5_experiment(config)) {
    if (row.approach == "sequential") {
      sequential_time[row.max_ligand_len] = row.time_seconds;
    }
    table.row({row.approach, std::to_string(row.threads),
               std::to_string(row.max_ligand_len),
               util::Table::num(row.time_seconds * 1e3, 2),
               util::Table::num(
                   sequential_time[row.max_ligand_len] / row.time_seconds,
                   2) +
                   "x",
               std::to_string(row.best_score)});
  }
  table.note("Paper shape reproduced: OpenMP fastest (dynamic schedule "
             "balances irregular ligand costs);");
  table.note("C++11 fixed blocks trail; a 5th thread on 4 cores gains "
             "nothing; max ligand 5 -> 7 multiplies run time.");
  std::printf("%s", table.to_ascii().c_str());

  const auto lines = drugdesign::exemplar_source_lines();
  std::printf(
      "\nProgram size vs performance (paper's question): sequential %d "
      "lines, OpenMP %d (+%d for pragmas),\nC++11 threads %d (+%d for "
      "thread management) — OpenMP buys the speedup almost for free.\n",
      lines.sequential, lines.openmp, lines.openmp - lines.sequential,
      lines.cxx11_threads, lines.cxx11_threads - lines.sequential);
  return 0;
}
