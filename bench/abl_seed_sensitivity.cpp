// Ablation: are the reproduced classroom conclusions an artifact of the
// default cohort seed? Re-run the 124-student study over 25 independent
// seeds and summarize the distribution of each headline statistic.

#include <cstdio>

#include "classroom/analysis.hpp"
#include "classroom/calibrate.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  constexpr int kCohorts = 25;
  std::vector<double> emphasis_d;
  std::vector<double> growth_d;
  std::vector<double> emphasis_diff;
  std::vector<double> growth_diff;
  int both_significant = 0;
  int teamwork_top_everywhere = 0;
  int growth_spread_shrinks = 0;
  int all_correlations_positive = 0;

  for (int cohort = 0; cohort < kCohorts; ++cohort) {
    classroom::CohortConfig config;
    config.cohort_size = 124;
    config.seed = 9000 + static_cast<std::uint64_t>(cohort);
    const auto study =
        classroom::generate_cohort(classroom::calibrated_paper_params(),
                                   config);
    const auto analysis =
        classroom::analyze(study.first_half, study.second_half);

    emphasis_d.push_back(analysis.emphasis_effect.cohens_d);
    growth_d.push_back(analysis.growth_effect.cohens_d);
    emphasis_diff.push_back(analysis.emphasis_ttest.mean_difference);
    growth_diff.push_back(analysis.growth_ttest.mean_difference);
    if (analysis.emphasis_ttest.significant(0.05) &&
        analysis.growth_ttest.significant(0.05)) {
      ++both_significant;
    }
    bool teamwork_top = true;
    for (int half = 0; half < 2; ++half) {
      teamwork_top =
          teamwork_top &&
          analysis.emphasis_ranking[static_cast<std::size_t>(half)]
                  .front()
                  .name == "Teamwork" &&
          analysis.growth_ranking[static_cast<std::size_t>(half)]
                  .front()
                  .name == "Teamwork";
    }
    teamwork_top_everywhere += teamwork_top ? 1 : 0;
    const auto spread = [](const std::vector<stats::RankedItem>& r) {
      return r.front().value - r.back().value;
    };
    growth_spread_shrinks += spread(analysis.growth_ranking[0]) >
                                     spread(analysis.growth_ranking[1])
                                 ? 1
                                 : 0;
    bool positive = true;
    for (const auto& row : analysis.correlations) {
      positive = positive && row.first_half.r > 0 && row.second_half.r > 0;
    }
    all_correlations_positive += positive ? 1 : 0;
  }

  const auto fmt = [](const std::vector<double>& values) {
    const stats::Summary s = stats::summarize(values);
    return util::Table::num(s.mean, 3) + " +/- " +
           util::Table::num(s.sd, 3);
  };

  util::Table table(
      "Seed sensitivity: 25 independent 124-student cohorts (paper values "
      "in brackets)");
  table.columns({"statistic", "distribution / frequency"},
                {util::Align::Left, util::Align::Left});
  table.row({"Cohen's d, emphasis [0.50]", fmt(emphasis_d)});
  table.row({"Cohen's d, growth [0.86]", fmt(growth_d)});
  table.row({"mean shift, emphasis [0.10]", fmt(emphasis_diff)});
  table.row({"mean shift, growth [0.20]", fmt(growth_diff)});
  table.row({"both t-tests significant",
             std::to_string(both_significant) + "/25"});
  table.row({"Teamwork tops all four rankings",
             std::to_string(teamwork_top_everywhere) + "/25"});
  table.row({"growth spread shrinks in half 2",
             std::to_string(growth_spread_shrinks) + "/25"});
  table.row({"all 14 correlations positive",
             std::to_string(all_correlations_positive) + "/25"});
  table.note(
      "Every qualitative conclusion of the paper holds in (nearly) every "
      "re-drawn cohort; the point estimates scatter around the paper's "
      "values as 124-student sampling noise predicts.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
