// Chaotic-wire benchmark: the ack/retry/dedup reliability layer against
// seeded transport chaos on the deterministic SimWorld. Results go to
// BENCH_chaos.json in the working directory.
//
// Phases:
//
//   1. goodput under drop — a fixed fan-in workload (every worker rank
//      streams payload messages to rank 0 through cluster::ReliableComm)
//      at 0%, 1% and 5% symmetric drop (data and acks both ride the
//      lossy wire). Goodput is payload bytes over virtual completion
//      time; every run must deliver exactly once, in order, with
//      nothing abandoned.
//   2. bounded retransmit overhead — retransmits / data_sent must stay
//      under a generous bound per drop level (a dropped data frame or a
//      dropped ack each cost one retransmit, so the expected overhead
//      is ~2p plus timer slack; the bars leave ~4x headroom).
//   3. byte-identity — the 5%-drop run repeated from the same seed must
//      replay its whole trajectory exactly: delivered contents, every
//      retry counter, and the virtual completion instant.
//
// Everything here is virtual-time and seeded, so the numbers are exact
// and --smoke (the bench-smoke ctest) only shrinks the workload.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/reliable.hpp"
#include "mp/chaos.hpp"
#include "mp/sim_world.hpp"

namespace {

using pblpar::cluster::ReliabilityOptions;
using pblpar::cluster::ReliableComm;
using pblpar::cluster::RetryStats;
using pblpar::mp::ClusterSpec;
using pblpar::mp::SimComm;
using pblpar::mp::SimWorld;

ReliabilityOptions bench_reliability() {
  ReliabilityOptions options;
  options.enabled = true;
  options.ack_timeout_s = 0.01;
  options.max_backoff_s = 0.1;
  options.jitter_s = 0.001;
  options.recv_timeout_s = 120.0;
  return options;
}

/// Keep servicing the wire after this rank's own work is flushed so a
/// peer whose last ack chaos ate can still finish its flush.
void linger(ReliableComm<SimComm>& reliable) {
  pblpar::mp::RawMessage raw;
  while (reliable.recv_raw_timed(pblpar::mp::kAnySource, /*tag=*/1 << 28,
                                 /*timeout_s=*/2.0, &raw)) {
  }
}

struct DropRun {
  double drop = 0.0;
  std::int64_t payload_bytes = 0;   // logical payload delivered
  double completion_s = 0.0;        // virtual time of the last delivery
  double goodput_mb_s = 0.0;
  std::uint64_t data_sent = 0;      // summed over sender ranks
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t duplicates_dropped = 0;
  double overhead = 0.0;            // retransmits / data_sent
  bool delivered_exactly_once = false;
  bool pass = false;
};

/// Fingerprint of one run: retry counters per sender, a content
/// checksum, and the bit pattern of the completion instant.
struct RunTrace {
  DropRun row;
  std::vector<std::uint64_t> fingerprint;
};

RunTrace run_drop_level(double drop, int ranks, int messages_per_sender,
                        int doubles_per_message, double overhead_bar) {
  RunTrace trace;
  DropRun& row = trace.row;
  row.drop = drop;
  const int senders = ranks - 1;
  row.payload_bytes = static_cast<std::int64_t>(senders) *
                      messages_per_sender * doubles_per_message *
                      static_cast<std::int64_t>(sizeof(double));

  ClusterSpec spec;
  spec.chaos.seed = 42;
  spec.chaos.all.drop = drop;

  std::vector<RetryStats> stats(static_cast<std::size_t>(ranks));
  bool exactly_once = true;
  std::uint64_t checksum = 0;
  double completion = 0.0;
  SimWorld::run(
      ranks,
      [&](SimComm& comm) {
        ReliableComm<SimComm> reliable(comm, bench_reliability());
        if (comm.rank() != 0) {
          std::vector<double> payload(
              static_cast<std::size_t>(doubles_per_message));
          for (int m = 0; m < messages_per_sender; ++m) {
            for (std::size_t i = 0; i < payload.size(); ++i) {
              payload[i] = comm.rank() * 1e6 + m + static_cast<double>(i);
            }
            reliable.send(0, 7, payload);
          }
          if (reliable.flush() != 0) {
            exactly_once = false;  // abandoned payload never landed
          }
        } else {
          // In-order per link: drain each sender round-robin and verify
          // both ordering and contents as they arrive.
          for (int m = 0; m < messages_per_sender; ++m) {
            for (int s = 1; s < ranks; ++s) {
              const std::vector<double> payload =
                  reliable.recv<std::vector<double>>(s, 7);
              if (payload.size() !=
                      static_cast<std::size_t>(doubles_per_message) ||
                  payload[0] != s * 1e6 + m) {
                exactly_once = false;
              }
              checksum = checksum * 1099511628211ULL +
                         static_cast<std::uint64_t>(payload[0]);
            }
          }
          completion = comm.context().now();
        }
        stats[static_cast<std::size_t>(comm.rank())] = reliable.retry_stats();
        linger(reliable);
      },
      spec);

  for (const RetryStats& s : stats) {
    row.data_sent += s.data_sent;
    row.retransmits += s.retransmits;
    row.abandoned += s.abandoned;
    row.duplicates_dropped += s.duplicates_dropped;
  }
  row.completion_s = completion;
  row.goodput_mb_s =
      static_cast<double>(row.payload_bytes) / 1.0e6 / completion;
  row.overhead = row.data_sent > 0 ? static_cast<double>(row.retransmits) /
                                         static_cast<double>(row.data_sent)
                                   : 0.0;
  row.delivered_exactly_once = exactly_once;
  row.pass = exactly_once && row.abandoned == 0 &&
             row.overhead <= overhead_bar;

  for (const RetryStats& s : stats) {
    trace.fingerprint.push_back(s.data_sent);
    trace.fingerprint.push_back(s.retransmits);
    trace.fingerprint.push_back(s.acks_sent);
    trace.fingerprint.push_back(s.acks_received);
    trace.fingerprint.push_back(s.duplicates_dropped);
    trace.fingerprint.push_back(s.out_of_order_stashed);
  }
  trace.fingerprint.push_back(checksum);
  std::uint64_t time_bits = 0;
  std::memcpy(&time_bits, &completion, sizeof(time_bits));
  trace.fingerprint.push_back(time_bits);
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const int ranks = 4;
  const int messages = smoke ? 40 : 400;
  const int doubles = smoke ? 256 : 1024;  // 2 KiB / 8 KiB per message

  // Expected retransmit fraction at symmetric drop p is ~2p (a lost
  // data frame or a lost ack each cost one resend), cascading a little;
  // the bars leave ~4x headroom so only a broken retry loop trips them.
  const double kDrops[3] = {0.0, 0.01, 0.05};
  const double kOverheadBars[3] = {0.02, 0.10, 0.40};

  RunTrace traces[3];
  for (int i = 0; i < 3; ++i) {
    traces[i] =
        run_drop_level(kDrops[i], ranks, messages, doubles, kOverheadBars[i]);
    const DropRun& row = traces[i].row;
    std::printf(
        "drop %.0f%%: %lld KiB in %.4fs virtual -> %.2f MB/s goodput, "
        "%llu data + %llu retransmit(s) (overhead %.4f, bar %.2f), "
        "%llu dup(s) dropped, abandoned=%llu exactly_once=%s pass=%s\n",
        row.drop * 100.0, static_cast<long long>(row.payload_bytes >> 10),
        row.completion_s, row.goodput_mb_s,
        static_cast<unsigned long long>(row.data_sent),
        static_cast<unsigned long long>(row.retransmits), row.overhead,
        kOverheadBars[i],
        static_cast<unsigned long long>(row.duplicates_dropped),
        static_cast<unsigned long long>(row.abandoned),
        row.delivered_exactly_once ? "yes" : "no", row.pass ? "yes" : "no");
  }

  // Chaos must actually bite at 5% — otherwise the overhead bars above
  // are vacuous.
  const bool chaos_bit = traces[2].row.retransmits > 0;

  // Byte-identity: the 5%-drop trajectory replays exactly from its seed.
  const RunTrace replay =
      run_drop_level(kDrops[2], ranks, messages, doubles, kOverheadBars[2]);
  const bool identical = replay.fingerprint == traces[2].fingerprint;
  std::printf("replay: 5%%-drop run repeated -> %s (%zu fingerprint words)\n",
              identical ? "bit-identical" : "DIVERGED",
              replay.fingerprint.size());

  const bool pass = traces[0].row.pass && traces[1].row.pass &&
                    traces[2].row.pass && chaos_bit && identical;
  std::printf("checks: goodput_rows=%s chaos_bit=%s replay_identical=%s\n",
              (traces[0].row.pass && traces[1].row.pass && traces[2].row.pass)
                  ? "yes"
                  : "no",
              chaos_bit ? "yes" : "no", identical ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_chaos\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"drop_levels\": [\n";
  char buffer[512];
  for (int i = 0; i < 3; ++i) {
    const DropRun& row = traces[i].row;
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"drop\":%.2f,\"payload_bytes\":%lld,\"completion_s\":%.6f,"
        "\"goodput_mb_s\":%.3f,\"data_sent\":%llu,\"retransmits\":%llu,"
        "\"duplicates_dropped\":%llu,\"abandoned\":%llu,\"overhead\":%.4f,"
        "\"overhead_bar\":%.2f,\"exactly_once\":%s,\"pass\":%s}%s\n",
        row.drop, static_cast<long long>(row.payload_bytes),
        row.completion_s, row.goodput_mb_s,
        static_cast<unsigned long long>(row.data_sent),
        static_cast<unsigned long long>(row.retransmits),
        static_cast<unsigned long long>(row.duplicates_dropped),
        static_cast<unsigned long long>(row.abandoned), row.overhead,
        kOverheadBars[i], row.delivered_exactly_once ? "true" : "false",
        row.pass ? "true" : "false", i < 2 ? "," : "");
    json += buffer;
  }
  json += "  ],\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"chaos_bit\": %s,\n  \"replay_identical\": %s,\n"
                "  \"pass\": %s\n}\n",
                chaos_bit ? "true" : "false", identical ? "true" : "false",
                pass ? "true" : "false");
  json += buffer;

  std::ofstream out("BENCH_chaos.json");
  out << json;
  out.close();
  std::printf("wrote BENCH_chaos.json\n");
  return pass ? 0 : 1;
}
