// Microbenchmarks of the MapReduce framework: word count scaling with
// threads and the combiner's effect on shuffle volume.

#include <benchmark/benchmark.h>

#include "mapreduce/job.hpp"
#include "mapreduce/jobs.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace {

using namespace pblpar;

std::vector<std::string> corpus(int documents) {
  static const char* kWords[] = {"parallel", "openmp",  "threads", "memory",
                                 "shared",   "barrier", "reduce",  "team",
                                 "pi",       "core"};
  util::Rng rng(99);
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(documents));
  for (int d = 0; d < documents; ++d) {
    std::string text;
    for (int w = 0; w < 60; ++w) {
      text += kWords[rng.next_below(10)];
      text += ' ';
    }
    docs.push_back(std::move(text));
  }
  return docs;
}

void BM_WordCountThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto docs = corpus(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapreduce::word_count(docs, threads));
  }
}
BENCHMARK(BM_WordCountThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_WordCountCombinerEffect(benchmark::State& state) {
  const bool use_combiner = state.range(0) != 0;
  const auto docs = corpus(200);
  std::vector<std::pair<int, std::string>> inputs;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    inputs.emplace_back(static_cast<int>(d), docs[d]);
  }
  for (auto _ : state) {
    mapreduce::Job<int, std::string, std::string, long> job;
    job.threads(4).map([](const int&, const std::string& text,
                          mapreduce::Emitter<std::string, long>& out) {
      for (std::string& word : util::tokenize_words(text)) {
        out.emit(std::move(word), 1L);
      }
    });
    const auto sum = [](const std::string&, const std::vector<long>& v) {
      long total = 0;
      for (const long c : v) {
        total += c;
      }
      return total;
    };
    if (use_combiner) {
      job.combine(sum);
    }
    job.reduce(sum);
    benchmark::DoNotOptimize(job.run(inputs));
  }
}
BENCHMARK(BM_WordCountCombinerEffect)->Arg(0)->Arg(1);

void BM_InvertedIndex(benchmark::State& state) {
  const auto docs = corpus(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapreduce::inverted_index(docs, 4));
  }
}
BENCHMARK(BM_InvertedIndex);

}  // namespace
