// Microbenchmarks of the MapReduce framework: word count scaling with
// threads, the combiner's effect on shuffle volume, and the distributed
// driver on the simulated cluster engine. main() also emits
// BENCH_mapreduce.json with the deterministic virtual-time fault-
// tolerance numbers (clean / straggler / crash) before running the
// google-benchmark suite.

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "cluster/jobs.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/jobs.hpp"
#include "mp/sim_world.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace {

using namespace pblpar;

std::vector<std::string> corpus(int documents) {
  static const char* kWords[] = {"parallel", "openmp",  "threads", "memory",
                                 "shared",   "barrier", "reduce",  "team",
                                 "pi",       "core"};
  util::Rng rng(99);
  std::vector<std::string> docs;
  docs.reserve(static_cast<std::size_t>(documents));
  for (int d = 0; d < documents; ++d) {
    std::string text;
    for (int w = 0; w < 60; ++w) {
      text += kWords[rng.next_below(10)];
      text += ' ';
    }
    docs.push_back(std::move(text));
  }
  return docs;
}

void BM_WordCountThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto docs = corpus(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapreduce::word_count(docs, threads));
  }
}
BENCHMARK(BM_WordCountThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_WordCountCombinerEffect(benchmark::State& state) {
  const bool use_combiner = state.range(0) != 0;
  const auto docs = corpus(200);
  std::vector<std::pair<int, std::string>> inputs;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    inputs.emplace_back(static_cast<int>(d), docs[d]);
  }
  for (auto _ : state) {
    mapreduce::Job<int, std::string, std::string, long> job;
    job.threads(4).map([](const int&, const std::string& text,
                          mapreduce::Emitter<std::string, long>& out) {
      for (std::string& word : util::tokenize_words(text)) {
        out.emit(std::move(word), 1L);
      }
    });
    const auto sum = [](const std::string&, const std::vector<long>& v) {
      long total = 0;
      for (const long c : v) {
        total += c;
      }
      return total;
    };
    if (use_combiner) {
      job.combine(sum);
    }
    job.reduce(sum);
    benchmark::DoNotOptimize(job.run(inputs));
  }
}
BENCHMARK(BM_WordCountCombinerEffect)->Arg(0)->Arg(1);

void BM_InvertedIndex(benchmark::State& state) {
  const auto docs = corpus(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapreduce::inverted_index(docs, 4));
  }
}
BENCHMARK(BM_InvertedIndex);

// Host wall time of one whole simulated distributed word count (engine
// scheduling + shuffle + reduce on a 4-node virtual Pi cluster).
void BM_DistWordCountSimCluster(benchmark::State& state) {
  const auto docs = corpus(60);
  for (auto _ : state) {
    mp::SimWorld::run(4, [&](mp::SimComm& comm) {
      benchmark::DoNotOptimize(cluster::jobs::word_count(comm, docs));
    });
  }
}
BENCHMARK(BM_DistWordCountSimCluster);

/// One fault-injection scenario of the distributed word count, measured
/// in deterministic virtual seconds.
struct ClusterScenario {
  const char* name;
  cluster::FaultPlan faults;
};

cluster::ClusterProfile run_scenario(const ClusterScenario& scenario,
                                     const std::vector<std::string>& docs) {
  cluster::ClusterProfile profile;
  cluster::jobs::JobTuning tuning;
  tuning.map_cost_ops = 2e6;  // make map work visible against the network
  mp::SimWorld::run(4, [&](mp::SimComm& comm) {
    (void)cluster::jobs::word_count(comm, docs, tuning, {},
                                    &scenario.faults,
                                    comm.rank() == 0 ? &profile : nullptr);
  });
  return profile;
}

void emit_bench_json(const char* path) {
  const auto docs = corpus(120);
  ClusterScenario clean{"wordcount_clean", {}};
  ClusterScenario straggler{"wordcount_straggler_10x", {}};
  straggler.faults.stragglers.push_back(cluster::StragglerFault{1, 10.0});
  ClusterScenario crash{"wordcount_worker_crash", {}};
  crash.faults.crashes.push_back(cluster::CrashFault{2, 1});

  std::ofstream out(path);
  out.precision(17);
  out << "{\"schema\":\"pblpar.bench.v1\",\"suite\":\"mapreduce\","
      << "\"results\":[";
  bool first = true;
  for (const ClusterScenario* scenario : {&clean, &straggler, &crash}) {
    const cluster::ClusterProfile profile = run_scenario(*scenario, docs);
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << scenario->name
        << "\",\"value\":" << profile.stats.makespan_s
        << ",\"unit\":\"virtual_s\",\"extra\":{"
        << "\"attempts\":" << profile.stats.attempts
        << ",\"speculative_attempts\":" << profile.stats.speculative_attempts
        << ",\"requeues\":" << profile.stats.requeues
        << ",\"dead_workers\":" << profile.stats.dead_workers
        << ",\"completion_s\":" << profile.stats.completion_s << "}}";
  }
  out << "]}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  emit_bench_json("BENCH_mapreduce.json");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
