// Assignment 2 learning artifact: the data race on a shared counter —
// why it is "difficult to reproduce and debug", and how scope fixes it.
// Sweeps thread counts and shows the detector's verdicts.

#include <cstdio>

#include "patternlets/patternlets.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  util::Table table(
      "Assignment 2: shared counter, racy vs scoped-private versions");
  table.columns({"threads", "increments/thread", "racy final",
                 "races (racy)", "fixed final", "races (fixed)"},
                {util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right,
                 util::Align::Right});
  for (const int threads : {2, 3, 4, 8}) {
    const auto demo = patternlets::shared_memory_race_demo(threads, 50);
    table.row({std::to_string(threads), "50",
               std::to_string(demo.racy_final),
               std::to_string(demo.races_in_racy_version),
               std::to_string(demo.fixed_final),
               std::to_string(demo.races_in_fixed_version)});
  }
  table.note(
      "The simulator serializes real code, so even the racy version's "
      "value is correct here — exactly why races are hard to catch by "
      "testing. The happens-before detector flags them anyway; making "
      "the accumulator thread-private (scope matters) silences it.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
