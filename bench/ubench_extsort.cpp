// Out-of-core tier benchmark: the parallel external sort and the
// memory-budgeted spillable MapReduce shuffle, against their in-memory
// baselines. Results go to BENCH_extsort.json in the working directory.
//
// Three phases, in a deliberate order:
//
//   1. bounded-RSS proof — sort a dataset 8x the memory budget and check
//      the process high-water RSS grew by a small multiple of the budget,
//      not by the dataset. This phase MUST run first: getrusage's
//      ru_maxrss is a lifetime high-water mark, so any later phase that
//      materializes a big vector would mask the measurement.
//   2. crossover sweep — sort_file vs std::sort across sizes with a fixed
//      budget, showing where the external path takes over and what it
//      costs when it does.
//   3. spill-shuffle overhead — the word-count job with and without a
//      shuffle budget of dataset/4 and dataset/2; the acceptance bar is
//      spilling <= 1.5x the in-memory run at budgets >= dataset/4.
//
// --smoke runs tiny shapes of all three phases in a couple of seconds;
// the bench-smoke ctest label uses it so the binary stays exercised.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

#include "mapreduce/defs.hpp"
#include "mapreduce/job.hpp"
#include "oocore/extsort.hpp"
#include "oocore/io.hpp"
#include "oocore/scratch.hpp"
#include "rt/parallel.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using pblpar::oocore::ExtSortOptions;
using pblpar::oocore::ExtSortReport;
using pblpar::oocore::ScratchDir;
using pblpar::oocore::SpillReader;
using pblpar::oocore::SpillWriter;
using pblpar::util::Rng;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process high-water resident set in bytes (0 where unsupported).
std::int64_t max_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

/// Order-independent permutation checksum: (count, sum, xor) of records.
struct Checksum {
  std::int64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t xored = 0;

  void add(std::uint64_t value) {
    ++count;
    sum += value;
    xored ^= value;
  }
  bool operator==(const Checksum& other) const {
    return count == other.count && sum == other.sum && xored == other.xored;
  }
};

/// Stream-generate a file of random records WITHOUT materializing the
/// dataset in memory — the bounded-RSS phase depends on that.
Checksum write_random_file(const fs::path& path, std::int64_t records,
                           std::uint64_t seed) {
  Rng rng(seed);
  Checksum checksum;
  SpillWriter writer(path, std::size_t{1} << 20);
  std::vector<std::uint64_t> block(std::size_t{1} << 16);
  std::int64_t left = records;
  while (left > 0) {
    const auto n = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(block.size()), left));
    for (std::size_t i = 0; i < n; ++i) {
      block[i] = rng.next_u64();
      checksum.add(block[i]);
    }
    writer.write(block.data(), n * sizeof(std::uint64_t));
    left -= static_cast<std::int64_t>(n);
  }
  writer.close();
  return checksum;
}

/// Stream-verify a sorted file: non-decreasing and checksum-matching,
/// again without loading it whole.
bool verify_sorted_file(const fs::path& path, const Checksum& expected) {
  Checksum seen;
  SpillReader reader(path, std::size_t{1} << 20);
  std::vector<std::uint64_t> block(std::size_t{1} << 16);
  std::uint64_t previous = 0;
  bool first = true;
  for (;;) {
    const std::size_t got =
        reader.read(block.data(), block.size() * sizeof(std::uint64_t));
    if (got == 0) {
      break;
    }
    const std::size_t n = got / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < n; ++i) {
      if (!first && block[i] < previous) {
        return false;
      }
      previous = block[i];
      first = false;
      seen.add(block[i]);
    }
  }
  return seen == expected;
}

struct BoundedRssResult {
  std::int64_t dataset_bytes = 0;
  std::int64_t budget_bytes = 0;
  std::int64_t rss_before_bytes = 0;
  std::int64_t rss_after_bytes = 0;
  std::int64_t rss_growth_bytes = 0;
  double seconds = 0.0;
  int initial_runs = 0;
  int merge_passes = 0;
  bool sorted_ok = false;
  bool pass = false;
};

/// Phase 1: dataset = 8x budget, streamed in and out; the external sort's
/// peak memory must scale with the budget, not the dataset.
BoundedRssResult run_bounded_rss(std::int64_t budget_bytes) {
  BoundedRssResult result;
  result.budget_bytes = budget_bytes;
  result.dataset_bytes = 8 * budget_bytes;
  const std::int64_t records =
      result.dataset_bytes / static_cast<std::int64_t>(sizeof(std::uint64_t));

  ScratchDir staging("pblpar-extsort-bench");
  const fs::path input = staging.next_path("input");
  const fs::path output = staging.next_path("output");
  const Checksum checksum = write_random_file(input, records, 12345);

  ExtSortOptions opts;
  opts.memory_budget_bytes = static_cast<std::size_t>(budget_bytes);
  opts.io_buffer_bytes =
      std::min<std::size_t>(std::size_t{256} << 10,
                            static_cast<std::size_t>(budget_bytes) / 4);

  result.rss_before_bytes = max_rss_bytes();
  const double start = now_s();
  const ExtSortReport report = pblpar::oocore::sort_file<std::uint64_t>(
      input, output, opts);
  result.seconds = now_s() - start;
  result.rss_after_bytes = max_rss_bytes();
  result.rss_growth_bytes = result.rss_after_bytes - result.rss_before_bytes;
  result.initial_runs = report.initial_runs;
  result.merge_passes = report.merge_passes;
  result.sorted_ok = report.external && verify_sorted_file(output, checksum);
  // "Bounded": the high-water mark moved by a small multiple of the
  // budget (run buffers + I/O buffers + allocator slack), and nowhere
  // near the dataset itself.
  result.pass = result.sorted_ok &&
                result.rss_growth_bytes < 4 * budget_bytes &&
                result.rss_growth_bytes < result.dataset_bytes / 2;
  return result;
}

struct CrossoverRow {
  std::int64_t records = 0;
  std::int64_t bytes = 0;
  bool external = false;
  double std_sort_seconds = 0.0;
  double ext_sort_seconds = 0.0;
  double ratio = 0.0;
};

/// Phase 2: sort_file (fixed budget) vs std::sort across dataset sizes.
CrossoverRow run_crossover_point(std::int64_t records,
                                 std::int64_t budget_bytes, int repeats) {
  CrossoverRow row;
  row.records = records;
  row.bytes = records * static_cast<std::int64_t>(sizeof(std::uint64_t));

  ScratchDir staging("pblpar-extsort-bench");
  const fs::path input = staging.next_path("input");
  const Checksum checksum = write_random_file(input, records, 999);

  // std::sort baseline: data already in memory, pure sort time.
  std::vector<std::uint64_t> data(static_cast<std::size_t>(records));
  {
    SpillReader reader(input, std::size_t{1} << 20);
    reader.read(data.data(), data.size() * sizeof(std::uint64_t));
  }
  row.std_sort_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    std::vector<std::uint64_t> copy = data;
    const double start = now_s();
    std::sort(copy.begin(), copy.end());
    row.std_sort_seconds = std::min(row.std_sort_seconds, now_s() - start);
  }
  data.clear();
  data.shrink_to_fit();

  ExtSortOptions opts;
  opts.memory_budget_bytes = static_cast<std::size_t>(budget_bytes);
  opts.io_buffer_bytes = std::size_t{256} << 10;
  row.ext_sort_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const fs::path output = staging.next_path("output");
    const double start = now_s();
    const ExtSortReport report = pblpar::oocore::sort_file<std::uint64_t>(
        input, output, opts);
    row.ext_sort_seconds = std::min(row.ext_sort_seconds, now_s() - start);
    row.external = report.external;
    if (r + 1 == repeats && !verify_sorted_file(output, checksum)) {
      row.ratio = -1.0;  // flag verification failure loudly in the JSON
      return row;
    }
    std::error_code ec;
    fs::remove(output, ec);
  }
  row.ratio = row.ext_sort_seconds / row.std_sort_seconds;
  return row;
}

struct SpillShuffleResult {
  std::int64_t input_bytes = 0;
  double in_memory_seconds = 0.0;
  double quarter_budget_seconds = 0.0;
  double half_budget_seconds = 0.0;
  std::int64_t quarter_spilled_runs = 0;
  std::int64_t quarter_spilled_bytes = 0;
  double quarter_overhead = 0.0;
  double half_overhead = 0.0;
  bool identical = false;
  bool pass = false;
};

/// Phase 3: the Assignment-5 word-count job, unbudgeted vs budgets of
/// dataset/4 and dataset/2. `overhead_bar` is the acceptance threshold
/// for the budgeted/in-memory ratio; --smoke passes infinity because a
/// one-repeat run sharing a loaded ctest box can't hold a timing bar.
SpillShuffleResult run_spill_shuffle(int documents, int repeats,
                                     double overhead_bar) {
  std::vector<std::string> texts;
  texts.reserve(static_cast<std::size_t>(documents));
  std::int64_t input_bytes = 0;
  for (int d = 0; d < documents; ++d) {
    std::string text;
    for (int w = 0; w < 24; ++w) {
      text += "token" + std::to_string((d * 31 + w * 11) % 409) + " ";
    }
    input_bytes += static_cast<std::int64_t>(text.size());
    texts.push_back(std::move(text));
  }
  const auto inputs = pblpar::mapreduce::defs::indexed(texts);

  SpillShuffleResult result;
  result.input_bytes = input_bytes;

  pblpar::mapreduce::Job<int, std::string, std::string, long> job;
  pblpar::mapreduce::defs::WordCountDef{}.configure(job);

  const auto time_runs = [&](std::vector<std::pair<std::string, long>>* out,
                             pblpar::mapreduce::RunReport* report) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
      const double start = now_s();
      auto rows = job.run(inputs, report);
      best = std::min(best, now_s() - start);
      if (out != nullptr) {
        *out = std::move(rows);
      }
    }
    return best;
  };

  std::vector<std::pair<std::string, long>> baseline;
  result.in_memory_seconds = time_runs(&baseline, nullptr);

  pblpar::mapreduce::RunReport quarter_report;
  std::vector<std::pair<std::string, long>> quarter_rows;
  job.memory_budget_bytes(std::max<std::int64_t>(input_bytes / 4, 1 << 16));
  result.quarter_budget_seconds = time_runs(&quarter_rows, &quarter_report);
  result.quarter_spilled_runs = quarter_report.spilled_runs;
  result.quarter_spilled_bytes = quarter_report.spilled_bytes;

  job.memory_budget_bytes(std::max<std::int64_t>(input_bytes / 2, 1 << 16));
  result.half_budget_seconds = time_runs(nullptr, nullptr);

  result.quarter_overhead =
      result.quarter_budget_seconds / result.in_memory_seconds;
  result.half_overhead =
      result.half_budget_seconds / result.in_memory_seconds;
  result.identical = baseline == quarter_rows;
  result.pass = result.identical && result.quarter_spilled_runs > 0 &&
                result.quarter_overhead <= overhead_bar &&
                result.half_overhead <= overhead_bar;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  // Phase 1 first: ru_maxrss is a lifetime high-water mark.
  const std::int64_t budget =
      smoke ? (std::int64_t{1} << 20) : (std::int64_t{8} << 20);
  const BoundedRssResult rss = run_bounded_rss(budget);
  std::printf(
      "bounded-rss: dataset %lld MiB vs budget %lld MiB -> rss growth "
      "%.1f MiB in %.2fs (%d runs, %d merge passes) sorted=%s pass=%s\n",
      static_cast<long long>(rss.dataset_bytes >> 20),
      static_cast<long long>(rss.budget_bytes >> 20),
      static_cast<double>(rss.rss_growth_bytes) / (1 << 20), rss.seconds,
      rss.initial_runs, rss.merge_passes, rss.sorted_ok ? "yes" : "no",
      rss.pass ? "yes" : "no");

  // Phase 2: crossover sweep with a fixed budget.
  const std::int64_t crossover_budget =
      smoke ? (std::int64_t{1} << 20) : (std::int64_t{4} << 20);
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{1 << 14, 1 << 18}
            : std::vector<std::int64_t>{1 << 14, 1 << 16, 1 << 18, 1 << 20,
                                        1 << 22};
  std::vector<CrossoverRow> crossover;
  for (const std::int64_t records : sizes) {
    crossover.push_back(
        run_crossover_point(records, crossover_budget, smoke ? 1 : 3));
    const CrossoverRow& row = crossover.back();
    std::printf(
        "crossover: %8lld records (%5lld KiB) %s std::sort %.4fs "
        "ext %.4fs ratio %.2f\n",
        static_cast<long long>(row.records),
        static_cast<long long>(row.bytes >> 10),
        row.external ? "external " : "in-budget",
        row.std_sort_seconds, row.ext_sort_seconds, row.ratio);
  }
  bool crossover_ok = true;
  double largest_in_budget_ratio = 0.0;
  bool saw_external = false;
  for (const CrossoverRow& row : crossover) {
    if (row.ratio < 0.0) {
      crossover_ok = false;  // a verification failure
    }
    if (!row.external) {
      largest_in_budget_ratio = row.ratio;
    } else {
      saw_external = true;
    }
  }
  // In-budget sort_file pays file I/O on top of the same std::sort; the
  // external rows just need to exist and verify. Timing bars only hold
  // on an otherwise-idle box, so --smoke (which runs inside a parallel
  // ctest schedule) keeps the structural checks and drops the ratios.
  const double in_budget_bar =
      smoke ? std::numeric_limits<double>::infinity() : 5.0;
  crossover_ok = crossover_ok && saw_external &&
                 largest_in_budget_ratio <= in_budget_bar;

  // Phase 3: spillable shuffle vs in-memory shuffle.
  const double overhead_bar =
      smoke ? std::numeric_limits<double>::infinity() : 1.5;
  const SpillShuffleResult shuffle =
      run_spill_shuffle(smoke ? 800 : 20000, smoke ? 1 : 3, overhead_bar);
  std::printf(
      "spill-shuffle: input %lld KiB, in-memory %.4fs, budget/4 %.4fs "
      "(%.2fx, %lld runs), budget/2 %.4fs (%.2fx) identical=%s pass=%s\n",
      static_cast<long long>(shuffle.input_bytes >> 10),
      shuffle.in_memory_seconds, shuffle.quarter_budget_seconds,
      shuffle.quarter_overhead,
      static_cast<long long>(shuffle.quarter_spilled_runs),
      shuffle.half_budget_seconds, shuffle.half_overhead,
      shuffle.identical ? "yes" : "no", shuffle.pass ? "yes" : "no");

  std::printf("checks: bounded_rss=%s crossover=%s spill_overhead<=1.5x=%s\n",
              rss.pass ? "yes" : "no", crossover_ok ? "yes" : "no",
              shuffle.pass ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_extsort\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"bounded_rss\": {\"dataset_bytes\":%lld,\"budget_bytes\":%lld,"
      "\"rss_growth_bytes\":%lld,\"seconds\":%.6f,\"initial_runs\":%d,"
      "\"merge_passes\":%d,\"sorted_ok\":%s,\"pass\":%s},\n",
      static_cast<long long>(rss.dataset_bytes),
      static_cast<long long>(rss.budget_bytes),
      static_cast<long long>(rss.rss_growth_bytes), rss.seconds,
      rss.initial_runs, rss.merge_passes, rss.sorted_ok ? "true" : "false",
      rss.pass ? "true" : "false");
  json += buffer;
  json += "  \"crossover\": {\n";
  std::snprintf(buffer, sizeof(buffer), "    \"budget_bytes\": %lld,\n",
                static_cast<long long>(crossover_budget));
  json += buffer;
  json += "    \"rows\": [";
  for (std::size_t i = 0; i < crossover.size(); ++i) {
    const CrossoverRow& row = crossover[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "%s\n      {\"records\":%lld,\"bytes\":%lld,\"external\":%s,"
        "\"std_sort_seconds\":%.6f,\"ext_sort_seconds\":%.6f,"
        "\"ratio\":%.4f}",
        i == 0 ? "" : ",", static_cast<long long>(row.records),
        static_cast<long long>(row.bytes), row.external ? "true" : "false",
        row.std_sort_seconds, row.ext_sort_seconds, row.ratio);
    json += buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "\n    ],\n    \"pass\": %s\n  },\n",
                crossover_ok ? "true" : "false");
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"spill_shuffle\": {\"input_bytes\":%lld,"
      "\"in_memory_seconds\":%.6f,\"quarter_budget_seconds\":%.6f,"
      "\"half_budget_seconds\":%.6f,\"quarter_overhead\":%.4f,"
      "\"half_overhead\":%.4f,\"quarter_spilled_runs\":%lld,"
      "\"quarter_spilled_bytes\":%lld,\"identical\":%s,\"pass\":%s},\n",
      static_cast<long long>(shuffle.input_bytes),
      shuffle.in_memory_seconds, shuffle.quarter_budget_seconds,
      shuffle.half_budget_seconds, shuffle.quarter_overhead,
      shuffle.half_overhead,
      static_cast<long long>(shuffle.quarter_spilled_runs),
      static_cast<long long>(shuffle.quarter_spilled_bytes),
      shuffle.identical ? "true" : "false", shuffle.pass ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  \"pass\": %s\n}\n",
                (rss.pass && crossover_ok && shuffle.pass) ? "true"
                                                           : "false");
  json += buffer;

  std::ofstream out("BENCH_extsort.json");
  out << json;
  out.close();
  std::printf("wrote BENCH_extsort.json\n");
  return (rss.pass && crossover_ok && shuffle.pass) ? 0 : 1;
}
