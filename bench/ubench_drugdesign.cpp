// Microbenchmarks of the drug-design workload: host-side LCS scoring
// throughput and end-to-end simulated solver runs.

#include <benchmark/benchmark.h>

#include "drugdesign/drugdesign.hpp"

namespace {

using namespace pblpar;

void BM_MatchScore(benchmark::State& state) {
  const int ligand_len = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const std::string protein = drugdesign::generate_protein(750, rng);
  const auto ligands = drugdesign::generate_ligands(64, ligand_len, rng);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        drugdesign::match_score(ligands[index % ligands.size()], protein));
    ++index;
  }
}
BENCHMARK(BM_MatchScore)->Arg(5)->Arg(7);

void BM_SolveTeachMpSimulated(benchmark::State& state) {
  drugdesign::Config config;
  config.num_ligands = 60;
  config.protein_len = 300;
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        drugdesign::solve_teachmp(config).elapsed_seconds);
  }
}
BENCHMARK(BM_SolveTeachMpSimulated)->Arg(1)->Arg(4);

void BM_SolveMapReduceHost(benchmark::State& state) {
  drugdesign::Config config;
  config.num_ligands = 60;
  config.protein_len = 300;
  config.threads = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drugdesign::solve_mapreduce(config).best_score);
  }
}
BENCHMARK(BM_SolveMapReduceHost);

}  // namespace
