// The architecture study questions of Assignments 2 and 3, answered from
// the sbc knowledge module: board inventory, Flynn taxonomy, memory
// architectures, SoC advantages, and the ARM-vs-x86 comparison the course
// uses to bridge from its Intel x86 lectures.

#include <cstdio>

#include "sbc/architecture.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const sbc::BoardDescription& pi = sbc::raspberry_pi_3bplus();
  std::printf("Q (A2): Identify the components on the Raspberry Pi B+.\n");
  util::Table components(pi.name + " (" + pi.soc + ")");
  components.columns({"component", "detail", "on SoC"},
                     {util::Align::Left, util::Align::Left,
                      util::Align::Left});
  for (const sbc::Component& component : pi.components) {
    components.row(
        {component.name, component.detail, component.on_soc ? "yes" : "no"});
  }
  std::printf("%s\n", components.to_ascii().c_str());

  std::printf("Q (A2): How many cores does the Pi's CPU have?  A: %d @ %.1f "
              "GHz (%s)\n\n",
              pi.cores, pi.clock_ghz, pi.isa.c_str());

  std::printf("Q (A3): Classify parallel computers by Flynn's taxonomy.\n");
  for (const sbc::FlynnClass f :
       {sbc::FlynnClass::SISD, sbc::FlynnClass::SIMD, sbc::FlynnClass::MISD,
        sbc::FlynnClass::MIMD}) {
    std::printf("  %-4s — %s\n", sbc::to_string(f).c_str(),
                sbc::describe(f).c_str());
  }
  std::printf("  The Pi itself: %s.\n\n",
              sbc::to_string(pi.flynn()).c_str());

  std::printf(
      "Q (A3): Memory architectures; which does OpenMP use and why?\n");
  for (const sbc::MemoryArchitecture a :
       {sbc::MemoryArchitecture::SharedUMA,
        sbc::MemoryArchitecture::SharedNUMA,
        sbc::MemoryArchitecture::Distributed,
        sbc::MemoryArchitecture::Hybrid}) {
    std::printf("  %-26s %s\n", sbc::to_string(a).c_str(),
                sbc::describe(a).c_str());
  }
  std::printf("  OpenMP: %s.\n\n",
              sbc::to_string(sbc::openmp_architecture()).c_str());

  std::printf("Q (A3): Advantages of a System-on-Chip?\n");
  for (const std::string& advantage : sbc::soc_advantages()) {
    std::printf("  - %s\n", advantage.c_str());
  }

  std::printf("\nQ (intro): ARM (RISC, the Pi) vs Intel x86 (CISC, the "
              "lectures):\n");
  util::Table isa("ISA comparison");
  isa.columns({"aspect", "ARM (Pi)", "x86 (lecture)"},
              {util::Align::Left, util::Align::Left, util::Align::Left});
  for (const sbc::IsaComparisonRow& row : sbc::isa_comparison()) {
    isa.row({row.aspect, row.arm, row.x86});
  }
  std::printf("%s", isa.to_ascii().c_str());
  return 0;
}
