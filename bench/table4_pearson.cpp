// Table 4 reproduction: Pearson correlation between Class Emphasis and
// Personal Growth per skill element, both survey sittings, with
// Guilford-band interpretation.

#include <cstdio>

#include "classroom/study.hpp"
#include "classroom/targets.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();
  const classroom::PaperTargets& targets =
      classroom::PaperTargets::published();

  util::Table table(
      "Table 4. Pearson Correlation Between Class Emphasis and Personal "
      "Growth (paper r / our r, N = 124)");
  table.columns({"Skill", "r h1 (paper)", "r h1 (ours)", "p h1",
                 "r h2 (paper)", "r h2 (ours)", "p h2", "band (ours, h1)"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Left});
  for (std::size_t e = 0; e < survey::kElementCount; ++e) {
    const classroom::CorrelationRow& row = study.analysis.correlations[e];
    table.row({survey::to_string(row.element),
               util::Table::num(targets.elements[e].correlation[0], 2),
               util::Table::num(row.first_half.r, 2),
               util::Table::pvalue(row.first_half.p_two_tailed),
               util::Table::num(targets.elements[e].correlation[1], 2),
               util::Table::num(row.second_half.r, 2),
               util::Table::pvalue(row.second_half.p_two_tailed),
               stats::to_string(row.first_half.band())});
  }
  table.note(
      "Paper's shape: all correlations positive and significant at "
      "p < 0.001; Teamwork weakest in half 1 (low band);");
  table.note(
      "Evaluation and Decision Making strongest (high band). Reproduced "
      "above.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
