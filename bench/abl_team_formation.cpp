// Ablation of a DESIGN.md design choice: criteria-balanced team formation
// (greedy snake draft + local search) vs uniformly random teams, on the
// paper's roster shape (124 students, 26 teams, 26 women).

#include <cstdio>

#include "course/student.hpp"
#include "course/teams.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  util::Table table(
      "Team formation ablation: balanced vs random (mean over 20 rosters)");
  table.columns({"metric", "balanced", "random"},
                {util::Align::Left, util::Align::Right, util::Align::Right});

  double balanced_ability = 0.0;
  double random_ability = 0.0;
  double balanced_gpa = 0.0;
  double random_gpa = 0.0;
  int balanced_isolated = 0;
  int random_isolated = 0;
  int balanced_friends = 0;
  int random_friends = 0;
  constexpr int kTrials = 20;

  for (int trial = 0; trial < kTrials; ++trial) {
    util::Rng rng(1000 + static_cast<std::uint64_t>(trial));
    const auto roster =
        course::generate_roster(course::RosterConfig::paper_cohort(), rng);
    const std::vector<std::pair<int, int>> friends{
        {0, 1}, {2, 3}, {4, 5}, {10, 20}, {30, 40}};

    const auto balanced =
        course::form_teams(roster, 26, course::FormationConfig{}, rng,
                           friends);
    const auto random = course::form_random_teams(roster, 26, rng);

    const auto bm = course::measure_balance(roster, balanced.teams, friends);
    const auto rm = course::measure_balance(roster, random.teams, friends);
    balanced_ability += bm.ability_spread;
    random_ability += rm.ability_spread;
    balanced_gpa += bm.gpa_spread;
    random_gpa += rm.gpa_spread;
    balanced_isolated += bm.isolated_females;
    random_isolated += rm.isolated_females;
    balanced_friends += bm.friend_pairs_together;
    random_friends += rm.friend_pairs_together;
  }

  const auto mean = [&](double total) {
    return util::Table::num(total / kTrials, 3);
  };
  table.row({"team mean-ability spread (max-min)", mean(balanced_ability),
             mean(random_ability)});
  table.row({"team mean-GPA spread (max-min)", mean(balanced_gpa),
             mean(random_gpa)});
  table.row({"isolated women (teams with exactly 1)",
             mean(balanced_isolated), mean(random_isolated)});
  table.row({"friend pairs left together", mean(balanced_friends),
             mean(random_friends)});
  table.note(
      "The paper's criteria-based formation (gender, experience, GPA, "
      "writing, no friend groups) dominates random assignment on every "
      "balance metric, supporting its design choice [14].");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
