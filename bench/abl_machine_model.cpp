// Ablation of the simulator's machine-model parameters: do the paper's
// qualitative Assignment 5 conclusions survive when the modelled
// overheads are off by an order of magnitude? (They should — the claims
// are structural, not tuned.)

#include <cstdio>

#include "drugdesign/drugdesign.hpp"
#include "util/table.hpp"

namespace {

using namespace pblpar;

struct Shape {
  double speedup4 = 0.0;        // sequential / teachmp(4)
  bool openmp_beats_naive = false;
  bool fifth_thread_no_gain = false;
  double len7_over_len5 = 0.0;
};

Shape measure(const sim::MachineSpec& machine) {
  drugdesign::Config config;
  config.num_ligands = 120;
  config.protein_len = 600;
  config.machine = machine;

  Shape shape;
  const double seq = drugdesign::solve_sequential(config).elapsed_seconds;
  config.threads = 4;
  const double omp4 = drugdesign::solve_teachmp(config).elapsed_seconds;
  const double naive4 =
      drugdesign::solve_cxx11_threads(config).elapsed_seconds;
  config.threads = 5;
  const double omp5 = drugdesign::solve_teachmp(config).elapsed_seconds;

  drugdesign::Config long_config = config;
  long_config.threads = 4;
  long_config.max_ligand_len = 7;
  const double omp4_len7 =
      drugdesign::solve_teachmp(long_config).elapsed_seconds;

  shape.speedup4 = seq / omp4;
  shape.openmp_beats_naive = omp4 < naive4;
  shape.fifth_thread_no_gain = omp5 >= omp4 * 0.99;
  shape.len7_over_len5 = omp4_len7 / omp4;
  return shape;
}

sim::MachineSpec scaled(double overhead_factor, double contention) {
  sim::MachineSpec spec = sim::MachineSpec::raspberry_pi_3bplus();
  spec.fork_cost_us *= overhead_factor;
  spec.join_cost_us *= overhead_factor;
  spec.barrier_cost_us_per_thread *= overhead_factor;
  spec.mutex_acquire_cost_us *= overhead_factor;
  spec.sched_chunk_cost_us *= overhead_factor;
  spec.mem_contention_beta = contention;
  return spec;
}

}  // namespace

int main() {
  util::Table table(
      "Machine-model sensitivity: Assignment 5 conclusions under scaled "
      "overheads");
  table.columns({"machine variant", "speedup (4 threads)",
                 "OpenMP < naive threads", "5th thread no gain",
                 "len 7 / len 5 cost"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right});

  const std::vector<std::pair<std::string, sim::MachineSpec>> variants = {
      {"baseline Pi 3B+", scaled(1.0, 0.20)},
      {"overheads / 10", scaled(0.1, 0.20)},
      {"overheads x 10", scaled(10.0, 0.20)},
      {"no memory contention", scaled(1.0, 0.0)},
      {"heavy contention (beta 0.5)", scaled(1.0, 0.5)},
  };
  for (const auto& [name, machine] : variants) {
    const Shape shape = measure(machine);
    table.row({name, util::Table::num(shape.speedup4, 2) + "x",
               shape.openmp_beats_naive ? "yes" : "NO",
               shape.fifth_thread_no_gain ? "yes" : "NO",
               util::Table::num(shape.len7_over_len5, 2) + "x"});
  }
  table.note(
      "Three of the paper's claims (parallel speedup, useless 5th "
      "thread, ligand-length blowup) hold across an order of magnitude "
      "of overhead mis-calibration and any contention setting. The "
      "OpenMP-vs-naive ordering flips only at x10 overheads, where the "
      "per-chunk claim cost of the dynamic schedule swamps its "
      "load-balancing win — itself the textbook caveat about dynamic "
      "scheduling granularity.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
