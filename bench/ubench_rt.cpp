// Microbenchmarks of the TeachMP runtime and the machine simulator:
// region fork/join cost, loop scheduling overhead per schedule, and the
// simulator's event throughput.

#include <benchmark/benchmark.h>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"

namespace {

using namespace pblpar;

void BM_HostRegionForkJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const rt::RunResult result =
        rt::parallel(rt::ParallelConfig::host(threads),
                     [](rt::TeamContext&) {});
    benchmark::DoNotOptimize(result.host_seconds);
  }
}
BENCHMARK(BM_HostRegionForkJoin)->Arg(2)->Arg(4)->Arg(8);

void BM_HostParallelForSchedule(benchmark::State& state) {
  const int schedule_kind = static_cast<int>(state.range(0));
  const rt::Schedule schedule =
      schedule_kind == 0   ? rt::Schedule::static_block()
      : schedule_kind == 1 ? rt::Schedule::dynamic(1)
                           : rt::Schedule::guided(1);
  std::vector<double> data(4096, 1.0);
  for (auto _ : state) {
    const auto reduced = rt::parallel_reduce<double>(
        rt::ParallelConfig::host(4),
        rt::Range::upto(static_cast<std::int64_t>(data.size())), schedule,
        0.0,
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(reduced.value);
  }
}
BENCHMARK(BM_HostParallelForSchedule)->Arg(0)->Arg(1)->Arg(2);

void BM_SimMachineEventThroughput(benchmark::State& state) {
  // How fast the simulator retires compute events (the practical limit on
  // experiment sizes).
  const std::int64_t events = state.range(0);
  for (auto _ : state) {
    sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
    const sim::ExecutionReport report =
        machine.run([events](sim::Context& root) {
          for (std::int64_t i = 0; i < events; ++i) {
            root.compute(100.0);
          }
        });
    benchmark::DoNotOptimize(report.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimMachineEventThroughput)->Arg(1000);

void BM_SimParallelForDynamic(benchmark::State& state) {
  const std::int64_t iterations = state.range(0);
  for (auto _ : state) {
    const rt::RunResult result = rt::parallel_for(
        rt::ParallelConfig::sim_pi(4), rt::Range::upto(iterations),
        rt::Schedule::dynamic(8), [](std::int64_t) {},
        rt::CostModel::uniform(1e4));
    benchmark::DoNotOptimize(result.elapsed_seconds());
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_SimParallelForDynamic)->Arg(512);

}  // namespace
