// Microbenchmarks of the TeachMP runtime and the machine simulator:
// region fork/join cost, loop scheduling overhead per schedule (traced
// and untraced, so the observability layer's cost is visible), and the
// simulator's event throughput.
//
// Before the benchmarks run, this binary prints the trace showcase: a
// per-thread chunk timeline for static/dynamic/guided/steal schedules on
// both the Host and the Sim backend, with the load-imbalance ratio and
// barrier-wait fraction the tracing layer computes (steal timelines also
// list each chunk migration).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "rt/host_backend.hpp"
#include "rt/parallel.hpp"
#include "rt/reduce.hpp"
#include "rt/trace.hpp"

namespace {

using namespace pblpar;

rt::Schedule schedule_for(int kind) {
  return kind == 0   ? rt::Schedule::static_chunk(4)
         : kind == 1 ? rt::Schedule::dynamic(2)
         : kind == 2 ? rt::Schedule::guided(1)
                     : rt::Schedule::steal(2);
}

void print_timeline(const char* backend_name, const rt::ParallelConfig& base,
                    rt::Schedule schedule) {
  // Triangular cost: later iterations are heavier, so static schedules
  // show visible imbalance while dynamic/guided rebalance.
  rt::CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return 2e4 * (1.0 + double(i)); };
  const auto spin = [](std::int64_t i) {
    // Real work for the host backend, proportional to the modelled cost.
    volatile double sink = 0.0;
    for (std::int64_t k = 0; k < 60 * (1 + i); ++k) {
      sink = sink + double(k);
    }
  };
  const rt::RunResult result = rt::parallel_for(
      base.traced(), rt::Range::upto(48), schedule, spin, cost);
  std::printf("--- %s, schedule(%s) ---\n", backend_name,
              schedule.to_string().c_str());
  std::printf("%s", result.profile->timeline_chart(0).c_str());
  std::printf("load imbalance %.3f, barrier-wait fraction %.3f\n\n",
              result.profile->load_imbalance(),
              result.profile->barrier_wait_fraction());
}

void print_trace_showcase() {
  std::printf(
      "==== TeachMP trace showcase: 48 triangular iterations, 4 threads "
      "====\n\n");
  for (const int kind : {0, 1, 2, 3}) {
    print_timeline("Host (real time)", rt::ParallelConfig::host(4),
                   schedule_for(kind));
  }
  for (const int kind : {0, 1, 2, 3}) {
    print_timeline("Sim (virtual Pi time)", rt::ParallelConfig::sim_pi(4),
                   schedule_for(kind));
  }
  std::printf("==== end trace showcase ====\n\n");
}

void BM_HostRegionForkJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const rt::RunResult result =
        rt::parallel(rt::ParallelConfig::host(threads),
                     [](rt::TeamContext&) {});
    benchmark::DoNotOptimize(result.host_seconds);
  }
}
BENCHMARK(BM_HostRegionForkJoin)->Arg(2)->Arg(4)->Arg(8);

void BM_HostParallelForSchedule(benchmark::State& state) {
  const int schedule_kind = static_cast<int>(state.range(0));
  const rt::Schedule schedule =
      schedule_kind == 0   ? rt::Schedule::static_block()
      : schedule_kind == 1 ? rt::Schedule::dynamic(1)
                           : rt::Schedule::guided(1);
  std::vector<double> data(4096, 1.0);
  for (auto _ : state) {
    const auto reduced = rt::parallel_reduce<double>(
        rt::ParallelConfig::host(4),
        rt::Range::upto(static_cast<std::int64_t>(data.size())), schedule,
        0.0,
        [&](std::int64_t i) { return data[static_cast<std::size_t>(i)]; },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(reduced.value);
  }
}
BENCHMARK(BM_HostParallelForSchedule)->Arg(0)->Arg(1)->Arg(2);

void BM_HostParallelForTracing(benchmark::State& state) {
  // Arg: 0 = tracing off, 1 = tracing on. Comparing the two rows shows
  // what the observability layer costs (off must match the pre-trace
  // baseline: the hot path is a single null check per chunk).
  const bool traced = state.range(0) != 0;
  rt::ParallelConfig config = rt::ParallelConfig::host(4);
  config.record_trace = traced;
  for (auto _ : state) {
    const rt::RunResult result =
        rt::parallel_for(config, rt::Range::upto(4096),
                         rt::Schedule::dynamic(16), [](std::int64_t) {});
    benchmark::DoNotOptimize(result.host_seconds);
    if (traced) {
      benchmark::DoNotOptimize(result.profile->chunks.size());
    }
  }
}
BENCHMARK(BM_HostParallelForTracing)->Arg(0)->Arg(1);

void BM_PoolSnapshot(benchmark::State& state) {
  // Whole-pool stats sample from outside any region: a handful of relaxed
  // loads plus the seqlocked live-counter cut. This is the "free to call
  // from a dashboard thread" claim, measured.
  rt::warm_up(rt::ParallelConfig::host(4));
  for (auto _ : state) {
    const rt::PoolSnapshot snap = rt::pool_snapshot();
    benchmark::DoNotOptimize(snap.pooled_regions);
    benchmark::DoNotOptimize(snap.live.coherent);
  }
}
BENCHMARK(BM_PoolSnapshot);

void BM_SimMachineEventThroughput(benchmark::State& state) {
  // How fast the simulator retires compute events (the practical limit on
  // experiment sizes).
  const std::int64_t events = state.range(0);
  for (auto _ : state) {
    sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
    const sim::ExecutionReport report =
        machine.run([events](sim::Context& root) {
          for (std::int64_t i = 0; i < events; ++i) {
            root.compute(100.0);
          }
        });
    benchmark::DoNotOptimize(report.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimMachineEventThroughput)->Arg(1000);

void BM_SimParallelForDynamic(benchmark::State& state) {
  const std::int64_t iterations = state.range(0);
  for (auto _ : state) {
    const rt::RunResult result = rt::parallel_for(
        rt::ParallelConfig::sim_pi(4), rt::Range::upto(iterations),
        rt::Schedule::dynamic(8), [](std::int64_t) {},
        rt::CostModel::uniform(1e4));
    benchmark::DoNotOptimize(result.elapsed_seconds());
  }
  state.SetItemsProcessed(state.iterations() * iterations);
}
BENCHMARK(BM_SimParallelForDynamic)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  print_trace_showcase();
  benchmark::RunSpecifiedBenchmarks();
  const rt::PoolSnapshot pool = rt::pool_snapshot();
  std::printf(
      "\npool snapshot: %d persistent workers, %llu pooled regions, "
      "%llu spawned fallbacks%s\n",
      pool.workers, static_cast<unsigned long long>(pool.pooled_regions),
      static_cast<unsigned long long>(pool.spawned_regions),
      pool.busy ? " (busy)" : "");
  benchmark::Shutdown();
  return 0;
}
