// TeachMPI data-path benchmark: the zero-copy payload pipeline and the
// large-payload collectives against in-bench naive baselines that
// replicate the old per-hop decode/re-encode algorithms. Results go to
// BENCH_mp.json in the working directory.
//
// Phases:
//
//   1. large bcast — the zero-copy consumer path (a payload already in
//      wire form, broadcast raw through refcounted frames, read through
//      a typed view) vs a naive binomial tree that decodes and
//      re-encodes the payload at every hop (the pre-overhaul
//      algorithm). Bar: >= 2x at 8 ranks, 2 MiB.
//   2. large allgather — allgather_view (move-in, O(n) messages, one
//      packed broadcast frame aliased by every view) vs the old
//      algorithm verbatim: typed gather, non-root prefill of the result
//      with n copies of the local value, then one per-hop-copy bcast
//      per rank. Same bar.
//   3. copy discipline — instrumented codec counters prove the new
//      bcast copies each payload byte at most once per rank, and a
//      move-send -> recv_view round trip copies nothing at all.
//   4. ring allreduce — the generalized ring on a count that does not
//      divide by the world size, checked for exact int64 sums.
//   5. allgather message count — on the deterministic SimWorld, the new
//      allgather must cost exactly 2(n-1) messages (O(n), down from
//      n*ceil(log2 n)).
//
// Timing bars only hold on an otherwise-idle box; --smoke (the
// bench-smoke ctest) keeps every structural/counter check and drops the
// speedup ratios.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "mp/sim_world.hpp"
#include "mp/world.hpp"

namespace {

using pblpar::mp::Buffer;
using pblpar::mp::Codec;
using pblpar::mp::Comm;
using pblpar::mp::CopyStats;
using pblpar::mp::PayloadView;
using pblpar::mp::SimComm;
using pblpar::mp::SimWorld;
using pblpar::mp::World;
using pblpar::mp::WorldOptions;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WorldOptions bench_options() {
  WorldOptions options;
  options.recv_timeout_s = 60.0;
  return options;
}

// --- naive baselines: the pre-overhaul collective algorithms ---------------
//
// Same binomial tree shape as the current code, but every hop receives
// into a fresh container (decode copy + allocation) and re-encodes for
// each child (encode copy + allocation) — store-and-forward with two
// copies per edge, exactly what the element-wise bcast used to do.

constexpr int kNaiveTag = 1001;

template <class T>
void naive_bcast(Comm& comm, T& value, int root) {
  const int size = comm.size();
  const int relative = (comm.rank() - root + size) % size;
  int mask = 1;
  int parent = -1;
  while (mask < size) {
    if ((relative & mask) != 0) {
      parent = ((relative ^ mask) + root) % size;
      break;
    }
    mask <<= 1;
  }
  if (parent >= 0) {
    value = comm.recv<T>(parent, kNaiveTag);
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (relative + m < size) {
      const int child = (relative + m + root) % size;
      comm.send(child, kNaiveTag, value);  // lvalue: encode copy per child
    }
  }
}

// The seed allgather, replicated faithfully: a typed gather to rank 0
// (encode + decode copy per message), a prefill of the non-root result
// vectors with n copies of the local value (the old gather returned {}
// off-root, so the old allgather shaped its result by assignment), then
// one naive bcast per result slot rooted at 0, each hop paying its
// decode + re-encode.
template <class T>
std::vector<T> naive_allgather(Comm& comm, const T& value) {
  std::vector<T> collected;
  if (comm.rank() == 0) {
    collected.assign(static_cast<std::size_t>(comm.size()), value);
    for (int r = 1; r < comm.size(); ++r) {
      collected[static_cast<std::size_t>(r)] = comm.recv<T>(r, kNaiveTag);
    }
  } else {
    comm.send(0, kNaiveTag, value);  // lvalue: encode copy
    collected.assign(static_cast<std::size_t>(comm.size()), value);
  }
  for (int r = 0; r < comm.size(); ++r) {
    naive_bcast(comm, collected[static_cast<std::size_t>(r)], 0);
  }
  return collected;
}

/// Best-of-`reps` wall time of `op`, measured on rank 0 with barriers
/// fencing every repetition so all ranks enter and leave together.
template <class Op>
double timed_collective(Comm& comm, int reps, Op&& op) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    comm.barrier();
    const double start = now_s();
    op();
    comm.barrier();
    best = std::min(best, now_s() - start);
  }
  return best;
}

struct SpeedupRow {
  int ranks = 0;
  std::int64_t payload_bytes = 0;
  double naive_seconds = 0.0;
  double new_seconds = 0.0;
  double speedup = 0.0;
  bool correct = false;
  bool pass = false;
};

SpeedupRow run_bcast_phase(int ranks, std::size_t doubles, int reps,
                           double bar) {
  SpeedupRow row;
  row.ranks = ranks;
  row.payload_bytes =
      static_cast<std::int64_t>(doubles * sizeof(double));
  bool correct = true;
  double naive = 0.0;
  double fresh = 0.0;
  World::run(
      ranks,
      [&](Comm& comm) {
        std::vector<double> seed(doubles);
        for (std::size_t i = 0; i < doubles; ++i) {
          seed[i] = static_cast<double>(i % 8191) * 0.5;
        }
        // The new consumer keeps its payload in wire form, as the
        // MapReduce shuffle does: a refcounted Buffer, broadcast raw and
        // read through a typed view at every rank.
        Buffer blob;
        if (comm.rank() == 0) {
          blob = Codec<std::vector<double>>::encode(
              std::vector<double>(seed));
        }

        const double naive_best =
            timed_collective(comm, reps, [&] {
              std::vector<double> data;
              if (comm.rank() == 0) {
                data = seed;
              }
              naive_bcast(comm, data, 0);
              if (data.size() != doubles || data[1] != seed[1]) {
                correct = false;
              }
            });
        const double new_best =
            timed_collective(comm, reps, [&] {
              Buffer data = comm.rank() == 0 ? blob : Buffer{};
              comm.bcast_raw(data, 0);
              const std::span<const double> view =
                  Codec<std::vector<double>>::view(data);
              if (view.size() != doubles || view[1] != seed[1]) {
                correct = false;
              }
            });
        if (comm.rank() == 0) {
          naive = naive_best;
          fresh = new_best;
        }
      },
      bench_options());
  row.naive_seconds = naive;
  row.new_seconds = fresh;
  row.speedup = naive / fresh;
  row.correct = correct;
  row.pass = correct && row.speedup >= bar;
  return row;
}

SpeedupRow run_allgather_phase(int ranks, std::size_t doubles_per_rank,
                               int reps, double bar) {
  SpeedupRow row;
  row.ranks = ranks;
  row.payload_bytes =
      static_cast<std::int64_t>(doubles_per_rank * sizeof(double));
  bool correct = true;
  double naive = 0.0;
  double fresh = 0.0;
  World::run(
      ranks,
      [&](Comm& comm) {
        std::vector<double> mine(doubles_per_rank);
        for (std::size_t i = 0; i < doubles_per_rank; ++i) {
          mine[i] = comm.rank() + static_cast<double>(i % 509);
        }
        const auto check = [&](const std::vector<std::vector<double>>& all) {
          if (all.size() != static_cast<std::size_t>(comm.size())) {
            correct = false;
            return;
          }
          for (int r = 0; r < comm.size(); ++r) {
            const auto& got = all[static_cast<std::size_t>(r)];
            if (got.size() != doubles_per_rank ||
                got[1] != r + static_cast<double>(1 % 509)) {
              correct = false;
            }
          }
        };

        const double naive_best = timed_collective(
            comm, reps, [&] { check(naive_allgather(comm, mine)); });
        // The new consumer moves its vector in and reads every rank's
        // elements through views of the one packed broadcast frame. The
        // scratch copy keeps `mine` reusable across reps and is charged
        // to the new path's time.
        const double new_best = timed_collective(comm, reps, [&] {
          std::vector<double> scratch = mine;
          const std::vector<PayloadView<double>> views =
              comm.allgather_view(std::move(scratch));
          if (views.size() != static_cast<std::size_t>(comm.size())) {
            correct = false;
            return;
          }
          for (int r = 0; r < comm.size(); ++r) {
            const PayloadView<double>& view =
                views[static_cast<std::size_t>(r)];
            if (view.size() != doubles_per_rank ||
                view[1] != r + static_cast<double>(1 % 509)) {
              correct = false;
            }
          }
        });
        if (comm.rank() == 0) {
          naive = naive_best;
          fresh = new_best;
        }
      },
      bench_options());
  row.naive_seconds = naive;
  row.new_seconds = fresh;
  row.speedup = naive / fresh;
  row.correct = correct;
  row.pass = correct && row.speedup >= bar;
  return row;
}

struct CopyDisciplineResult {
  int ranks = 0;
  std::int64_t payload_bytes = 0;
  double bcast_copies_per_rank = 0.0;  // copied bytes / (ranks * payload)
  std::uint64_t zero_copy_copies = 0;  // move-send -> recv_view round
  bool pass = false;
};

CopyDisciplineResult run_copy_discipline(int ranks, std::size_t bytes) {
  CopyDisciplineResult result;
  result.ranks = ranks;
  result.payload_bytes = static_cast<std::int64_t>(bytes);

  // Instrumented bcast: one encode at the root plus one assembly per
  // non-root rank — `ranks` whole-payload copies in total, nothing per
  // tree edge. The counters are process-global, so the whole world is
  // accounted at once (barrier frames carry empty payloads).
  double copied = 0.0;
  World::run(
      ranks,
      [&](Comm& comm) {
        std::string text;
        if (comm.rank() == 0) {
          text.assign(bytes, 'b');
        }
        comm.barrier();
        if (comm.rank() == 0) {
          pblpar::mp::payload_copy_reset_stats();
        }
        comm.bcast(text, 0);
        comm.barrier();
        if (comm.rank() == 0) {
          copied = static_cast<double>(pblpar::mp::payload_copy_stats().bytes);
        }
      },
      bench_options());
  result.bcast_copies_per_rank =
      copied / (static_cast<double>(ranks) * static_cast<double>(bytes));

  // Move-of-ownership send into a zero-copy typed view: no counted
  // payload copy anywhere on the path.
  std::uint64_t copies = ~std::uint64_t{0};
  World::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<std::uint64_t> values(bytes / sizeof(std::uint64_t), 7);
          pblpar::mp::payload_copy_reset_stats();
          comm.send(1, 1, std::move(values));
          (void)comm.recv<std::int32_t>(1, 2);  // ack: view consumed
          copies = pblpar::mp::payload_copy_stats().copies;
          // The ack decode above counted one tiny scalar copy.
          copies -= 1;
        } else {
          const PayloadView<std::uint64_t> view =
              comm.recv_view<std::uint64_t>(0, 1);
          std::uint64_t sum = 0;
          for (const std::uint64_t v : view) {
            sum += v;
          }
          comm.send(0, 2, static_cast<std::int32_t>(sum % 97));
        }
      },
      bench_options());
  result.zero_copy_copies = copies;

  // The ack encode on rank 1 also counts one scalar copy; allow the two
  // 4-byte frames, nothing payload-sized.
  result.pass = result.bcast_copies_per_rank <= 1.01 &&
                result.zero_copy_copies <= 1;
  return result;
}

struct RingResult {
  int ranks = 0;
  std::int64_t elements = 0;
  bool exact = false;
  bool pass = false;
};

RingResult run_ring_phase(int ranks, std::int64_t elements) {
  RingResult result;
  result.ranks = ranks;
  result.elements = elements;
  bool exact = true;
  World::run(
      ranks,
      [&](Comm& comm) {
        std::vector<std::int64_t> data(static_cast<std::size_t>(elements));
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = comm.rank() + 1 + static_cast<std::int64_t>(i % 13);
        }
        comm.ring_allreduce(
            data, [](std::int64_t a, std::int64_t b) { return a + b; });
        const std::int64_t n = comm.size();
        for (std::size_t i = 0; i < data.size(); ++i) {
          const std::int64_t expected =
              n * (n + 1) / 2 + n * static_cast<std::int64_t>(i % 13);
          if (data[i] != expected) {
            exact = false;
            break;
          }
        }
      },
      bench_options());
  result.exact = exact;
  result.pass = exact;
  return result;
}

struct MessageCountResult {
  int ranks = 0;
  std::uint64_t messages = 0;
  std::uint64_t expected = 0;
  bool pass = false;
};

MessageCountResult run_message_count(int ranks) {
  MessageCountResult result;
  result.ranks = ranks;
  result.expected = static_cast<std::uint64_t>(2 * (ranks - 1));
  const pblpar::mp::ClusterReport report =
      SimWorld::run(ranks, [](SimComm& comm) {
        const std::vector<std::int32_t> all = comm.allgather(comm.rank());
        if (all.size() != static_cast<std::size_t>(comm.size())) {
          std::abort();
        }
      });
  result.messages = report.messages;
  result.pass = result.messages == result.expected;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  const int ranks = 8;
  const double bar =
      smoke ? 0.0 : 2.0;  // --smoke keeps correctness, drops the ratio
  const std::size_t bcast_doubles =
      smoke ? (std::size_t{1} << 16) : (std::size_t{1} << 18);  // 2 MiB full
  const std::size_t gather_doubles =
      smoke ? (std::size_t{1} << 13) : (std::size_t{1} << 15);  // 256 KiB/rank
  const int reps = smoke ? 1 : 5;

  const SpeedupRow bcast =
      run_bcast_phase(ranks, bcast_doubles, reps, bar);
  std::printf(
      "bcast: %d ranks, %lld KiB payload -> naive %.4fs new %.4fs "
      "(%.2fx) correct=%s pass=%s\n",
      bcast.ranks, static_cast<long long>(bcast.payload_bytes >> 10),
      bcast.naive_seconds, bcast.new_seconds, bcast.speedup,
      bcast.correct ? "yes" : "no", bcast.pass ? "yes" : "no");

  const SpeedupRow gather =
      run_allgather_phase(ranks, gather_doubles, reps, bar);
  std::printf(
      "allgather: %d ranks, %lld KiB/rank -> naive %.4fs new %.4fs "
      "(%.2fx) correct=%s pass=%s\n",
      gather.ranks, static_cast<long long>(gather.payload_bytes >> 10),
      gather.naive_seconds, gather.new_seconds, gather.speedup,
      gather.correct ? "yes" : "no", gather.pass ? "yes" : "no");

  const CopyDisciplineResult copies = run_copy_discipline(
      4, smoke ? (std::size_t{1} << 19) : (std::size_t{1} << 21));
  std::printf(
      "copy-discipline: bcast %.3f copies/rank (bar 1.01), "
      "move-send->view %llu copies (bar 1) pass=%s\n",
      copies.bcast_copies_per_rank,
      static_cast<unsigned long long>(copies.zero_copy_copies),
      copies.pass ? "yes" : "no");

  const RingResult ring = run_ring_phase(ranks, 100'003);
  std::printf("ring-allreduce: %lld int64s on %d ranks (indivisible) "
              "exact=%s pass=%s\n",
              static_cast<long long>(ring.elements), ring.ranks,
              ring.exact ? "yes" : "no", ring.pass ? "yes" : "no");

  const MessageCountResult messages = run_message_count(ranks);
  std::printf(
      "allgather-messages: %llu on %d sim ranks (expected %llu = 2(n-1)) "
      "pass=%s\n",
      static_cast<unsigned long long>(messages.messages), messages.ranks,
      static_cast<unsigned long long>(messages.expected),
      messages.pass ? "yes" : "no");

  const bool pass = bcast.pass && gather.pass && copies.pass &&
                    ring.pass && messages.pass;
  std::printf(
      "checks: bcast>=2x=%s allgather>=2x=%s copies<=1/hop=%s "
      "ring_exact=%s messages_linear=%s\n",
      bcast.pass ? "yes" : "no", gather.pass ? "yes" : "no",
      copies.pass ? "yes" : "no", ring.pass ? "yes" : "no",
      messages.pass ? "yes" : "no");

  std::string json = "{\n  \"bench\": \"ubench_mp\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  char buffer[512];
  const auto speedup_json = [&](const char* name, const SpeedupRow& row) {
    std::snprintf(
        buffer, sizeof(buffer),
        "  \"%s\": {\"ranks\":%d,\"payload_bytes\":%lld,"
        "\"naive_seconds\":%.6f,\"new_seconds\":%.6f,\"speedup\":%.4f,"
        "\"correct\":%s,\"pass\":%s},\n",
        name, row.ranks, static_cast<long long>(row.payload_bytes),
        row.naive_seconds, row.new_seconds, row.speedup,
        row.correct ? "true" : "false", row.pass ? "true" : "false");
    json += buffer;
  };
  speedup_json("bcast", bcast);
  speedup_json("allgather", gather);
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"copy_discipline\": {\"ranks\":%d,\"payload_bytes\":%lld,"
      "\"bcast_copies_per_rank\":%.4f,\"zero_copy_copies\":%llu,"
      "\"pass\":%s},\n",
      copies.ranks, static_cast<long long>(copies.payload_bytes),
      copies.bcast_copies_per_rank,
      static_cast<unsigned long long>(copies.zero_copy_copies),
      copies.pass ? "true" : "false");
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"ring_allreduce\": {\"ranks\":%d,\"elements\":%lld,"
      "\"exact\":%s,\"pass\":%s},\n",
      ring.ranks, static_cast<long long>(ring.elements),
      ring.exact ? "true" : "false", ring.pass ? "true" : "false");
  json += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "  \"allgather_messages\": {\"ranks\":%d,\"messages\":%llu,"
      "\"expected\":%llu,\"pass\":%s},\n",
      messages.ranks, static_cast<unsigned long long>(messages.messages),
      static_cast<unsigned long long>(messages.expected),
      messages.pass ? "true" : "false");
  json += buffer;
  std::snprintf(buffer, sizeof(buffer), "  \"pass\": %s\n}\n",
                pass ? "true" : "false");
  json += buffer;

  std::ofstream out("BENCH_mp.json");
  out << json;
  out.close();
  std::printf("wrote BENCH_mp.json\n");
  return pass ? 0 : 1;
}
