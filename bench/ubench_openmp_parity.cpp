// When real OpenMP is available on the host, compare TeachMP's host
// backend against genuine `#pragma omp` constructs on identical
// reductions. TeachMP is a teaching runtime (std::function bodies,
// virtual dispatch); this bench documents the honesty gap.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace pblpar;

constexpr std::int64_t kN = 1 << 16;

double work(std::int64_t i) {
  const double x = static_cast<double>(i) * 1e-5;
  return x * x - x;
}

void BM_SerialReference(benchmark::State& state) {
  for (auto _ : state) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < kN; ++i) {
      sum += work(i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_SerialReference);

void BM_TeachMpHostReduce(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto reduced = rt::parallel_reduce<double>(
        rt::ParallelConfig::host(threads), rt::Range::upto(kN),
        rt::Schedule::static_block(), 0.0, &work,
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(reduced.value);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_TeachMpHostReduce)->Arg(1)->Arg(4);

#ifdef _OPENMP
void BM_RealOpenMpReduce(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double sum = 0.0;
#pragma omp parallel for reduction(+ : sum) num_threads(threads) \
    schedule(static)
    for (std::int64_t i = 0; i < kN; ++i) {
      sum += work(i);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_RealOpenMpReduce)->Arg(1)->Arg(4);
#endif

}  // namespace
