// Assignment 4 learning artifacts: trapezoidal integration with the
// reduction clause vs a critical section per iteration; barrier
// coordination; and the master-worker pattern's utilization.

#include <cmath>
#include <cstdio>

#include "patternlets/patternlets.hpp"
#include "util/table.hpp"

namespace {
double curve(double x) { return 4.0 / (1.0 + x * x); }  // integrates to pi
}

int main() {
  using namespace pblpar;

  std::printf("== Trapezoid: reduction clause vs critical-per-iteration ==\n");
  util::Table trapezoid_table("pi via trapezoids, 4 threads, virtual ms");
  trapezoid_table.columns(
      {"n", "reduction (ms)", "critical/iter (ms)", "penalty", "value"},
      {util::Align::Right, util::Align::Right, util::Align::Right,
       util::Align::Right, util::Align::Right});
  for (const std::int64_t n : {10000L, 40000L, 160000L}) {
    const auto reduction = patternlets::trapezoid_integration(
        rt::ParallelConfig::sim_pi(4), &curve, 0.0, 1.0, n,
        rt::Schedule::static_block(),
        rt::ReduceStrategy::PerThreadPartials);
    const auto critical = patternlets::trapezoid_integration(
        rt::ParallelConfig::sim_pi(4), &curve, 0.0, 1.0, n,
        rt::Schedule::static_block(),
        rt::ReduceStrategy::CriticalPerIteration);
    trapezoid_table.row(
        {std::to_string(n),
         util::Table::num(reduction.run.elapsed_seconds() * 1e3, 3),
         util::Table::num(critical.run.elapsed_seconds() * 1e3, 3),
         util::Table::num(critical.run.elapsed_seconds() /
                              reduction.run.elapsed_seconds(),
                          1) +
             "x",
         util::Table::num(reduction.integral, 6)});
  }
  trapezoid_table.note(
      "The reduction clause's advantage grows with n: one merge per "
      "thread vs one lock per iteration.");
  std::printf("%s\n", trapezoid_table.to_ascii().c_str());

  std::printf("== Barrier: collective synchronization ==\n");
  for (const int threads : {2, 4, 8}) {
    const auto result =
        patternlets::barrier_coordination(rt::ParallelConfig::sim_pi(threads));
    std::printf(
        "  %d threads: phases separated = %s, virtual time %.3f ms\n",
        threads, result.phases_separated ? "yes" : "NO",
        result.run.elapsed_seconds() * 1e3);
  }

  std::printf("\n== Master-worker: utilization cost of an idle master ==\n");
  util::Table mw_table("100 tasks of 2e5 ops, virtual time");
  mw_table.columns({"threads", "workers", "time (ms)", "utilization"},
                   {util::Align::Right, util::Align::Right,
                    util::Align::Right, util::Align::Right});
  for (const int threads : {2, 3, 4, 5}) {
    const auto result = patternlets::master_worker(
        rt::ParallelConfig::sim_pi(threads), 100,
        rt::CostModel::uniform(2e5));
    mw_table.row(
        {std::to_string(threads), std::to_string(threads - 1),
         util::Table::num(result.run.elapsed_seconds() * 1e3, 3),
         util::Table::num(result.run.sim_report->utilization() * 100.0, 0) +
             "%"});
  }
  mw_table.note(
      "With 4 threads only 3 work while the master coordinates; a 5th "
      "thread restores 4 busy workers on 4 cores.");
  std::printf("%s", mw_table.to_ascii().c_str());
  return 0;
}
