// Microbenchmarks of the race detector: annotated access throughput and
// the cost of attaching the detector to a simulated run.

#include <benchmark/benchmark.h>

#include "race/detector.hpp"
#include "race/shared.hpp"
#include "sim/machine.hpp"

namespace {

using namespace pblpar;

void BM_DetectorAccessThroughput(benchmark::State& state) {
  race::Detector detector;
  detector.on_spawn(0, 1);
  int cells[64] = {};
  std::size_t index = 0;
  for (auto _ : state) {
    detector.on_write(0, &cells[index % 64], sizeof(int));
    detector.on_read(0, &cells[(index + 7) % 64], sizeof(int));
    ++index;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DetectorAccessThroughput);

void BM_VectorClockMerge(benchmark::State& state) {
  race::VectorClock a;
  race::VectorClock b;
  for (int t = 0; t < 16; ++t) {
    a.set(t, static_cast<std::uint64_t>(t));
    b.set(t, static_cast<std::uint64_t>(16 - t));
  }
  for (auto _ : state) {
    race::VectorClock merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.get(7));
  }
}
BENCHMARK(BM_VectorClockMerge);

void BM_SimRunDetectorOverhead(benchmark::State& state) {
  const bool attach = state.range(0) != 0;
  for (auto _ : state) {
    sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
    race::Detector detector;
    if (attach) {
      machine.set_observer(&detector);
    }
    race::Shared<long> counter(0);
    machine.run([&](sim::Context& root) {
      const sim::ThreadHandle worker =
          root.spawn([&](sim::Context& ctx) {
            for (int i = 0; i < 200; ++i) {
              counter.add(ctx, 1);
            }
          });
      root.join(worker);
    });
    benchmark::DoNotOptimize(counter.unsafe_value());
  }
}
BENCHMARK(BM_SimRunDetectorOverhead)->Arg(0)->Arg(1);

}  // namespace
