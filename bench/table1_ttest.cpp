// Table 1 reproduction: paired T-tests of Class Emphasis and Personal
// Growth between the two survey sittings, on the calibrated simulated
// cohort (N = 124).
//
// Note on fidelity: the paper reports (t = -2.63, p = 0.039) and
// (t = -5.11, p = 0.002), which are internally inconsistent — a |t| of
// 2.63 at N = 124 has two-tailed p ~ 0.0097, and 5.11 has p ~ 1e-6. We
// print our exactly computed p-values; the *shape* (both differences
// significant, growth's larger) is the reproduced claim. The paper lists
// differences as (first - second), hence its negative signs; we report
// (second - first).

#include <cstdio>

#include "classroom/study.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();
  const auto& analysis = study.analysis;

  util::Table table(
      "Table 1. T-test: Class Emphasis and Personal Growth (paper vs "
      "reproduced)");
  table.columns({"", "Mean Difference", "t", "N", "p-value"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Right});
  table.row({"Class Emphasis (paper)", "-0.10", "-2.63", "124", "0.039"});
  table.row({"Class Emphasis (ours)",
             util::Table::num(-analysis.emphasis_ttest.mean_difference, 2),
             util::Table::num(-analysis.emphasis_ttest.t, 2), "124",
             util::Table::pvalue(analysis.emphasis_ttest.p_two_tailed)});
  table.separator();
  table.row({"Personal Growth (paper)", "-0.20", "-5.11", "124", "0.002"});
  table.row({"Personal Growth (ours)",
             util::Table::num(-analysis.growth_ttest.mean_difference, 2),
             util::Table::num(-analysis.growth_ttest.t, 2), "124",
             util::Table::pvalue(analysis.growth_ttest.p_two_tailed)});
  table.note("Signs follow the paper's (first - second) convention.");
  table.note(
      "Shape reproduced: both shifts significant; growth's |t| larger "
      "than emphasis's.");
  std::printf("%s", table.to_ascii().c_str());

  // Confidence intervals (the paper's reference [16] urges reporting
  // intervals alongside tests).
  const auto emphasis_ci = stats::paired_mean_difference_ci(
      study.first_survey.per_student_overall(
          survey::Category::ClassEmphasis),
      study.second_survey.per_student_overall(
          survey::Category::ClassEmphasis));
  const auto growth_ci = stats::paired_mean_difference_ci(
      study.first_survey.per_student_overall(
          survey::Category::PersonalGrowth),
      study.second_survey.per_student_overall(
          survey::Category::PersonalGrowth));
  std::printf(
      "\n95%% CIs for the (second - first) shifts: emphasis [%.3f, %.3f], "
      "growth [%.3f, %.3f] — both exclude zero.\n",
      emphasis_ci.lower, emphasis_ci.upper, growth_ci.lower,
      growth_ci.upper);
  return 0;
}
