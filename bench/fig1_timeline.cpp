// Fig. 1 reproduction: the 15-week semester timeline of the PBL module —
// team formation, five two-week assignments with quizzes, the two survey
// sittings, midterm and final.

#include <cstdio>
#include <map>
#include <vector>

#include "course/assignments.hpp"
#include "course/timeline.hpp"

int main() {
  using namespace pblpar::course;

  std::printf("Fig. 1 — PBL module timeline (15-week semester)\n\n");

  std::map<int, std::vector<std::string>> by_week;
  for (const TimelineEvent& event : semester_timeline()) {
    by_week[event.week].push_back(event.label);
  }
  for (int week = 1; week <= kSemesterWeeks; ++week) {
    std::printf("  week %2d |", week);
    const auto it = by_week.find(week);
    if (it != by_week.end()) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        std::printf("%s %s", i ? ";" : "", it->second[i].c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\nAssignment contents:\n");
  for (const Assignment& assignment : five_assignments()) {
    std::printf("  A%d: %s (%zu study questions, %zu programs)\n",
                assignment.number, assignment.title.c_str(),
                assignment.study_questions.size(),
                assignment.programming_tasks.size());
  }
  std::printf(
      "\nPaper: teams formed week 1; five 2-week assignments; survey at "
      "mid-semester and end. Reproduced above.\n");
  return 0;
}
