// Table 3 reproduction: Cohen's d (effect size) of Personal Growth —
// the paper's headline result (d = 0.86, a 'large' effect).

#include <cstdio>

#include "classroom/study.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();
  const classroom::EffectRow& effect = study.analysis.growth_effect;

  util::Table table("Table 3. Cohen's d (Effect Size) of Personal Growth");
  table.columns({"", "First Half Survey", "Second Half Survey"},
                {util::Align::Left, util::Align::Right, util::Align::Right});
  table.row({"Mean (paper)", "3.81", "4.01"});
  table.row({"Mean (ours)", util::Table::num(effect.mean_first, 2),
             util::Table::num(effect.mean_second, 2)});
  table.row({"Standard deviation (paper)", "0.262204", "0.198497"});
  table.row({"Standard deviation (ours)",
             util::Table::num(effect.sd_first, 6),
             util::Table::num(effect.sd_second, 6)});
  table.row({"Sample size", "124", "124"});
  table.separator();
  table.row({"Cohen's d (paper)", "0.86", "large effect"});
  table.row({"Cohen's d (ours)", util::Table::num(effect.cohens_d, 2),
             stats::to_string(stats::interpret_cohens_d(
                 effect.cohens_d)) + " effect"});
  table.note(
      "Scale anchors: 3 = grew some / few new skills, 4 = significant "
      "growth / several skills.");
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
