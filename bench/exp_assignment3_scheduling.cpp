// Assignment 3 learning artifact: loop scheduling. Uniform vs imbalanced
// iterations under static/dynamic/guided schedules with chunks 1, 2, 3 —
// who wins where, in deterministic virtual time on the simulated Pi.
// After the summary table, each schedule kind's per-thread chunk timeline
// is printed (tracing layer), which is where the "why" becomes visible.

#include <cstdio>

#include "rt/parallel.hpp"
#include "rt/trace.hpp"
#include "util/table.hpp"

namespace {

double time_loop(pblpar::rt::Schedule schedule,
                 const pblpar::rt::CostModel& cost, std::int64_t n) {
  using namespace pblpar;
  return rt::parallel_for(rt::ParallelConfig::sim_pi(4),
                          rt::Range::upto(n), schedule,
                          [](std::int64_t) {}, cost)
      .elapsed_seconds();
}

}  // namespace

int main() {
  using namespace pblpar;
  constexpr std::int64_t kN = 1024;

  const rt::CostModel uniform = rt::CostModel::uniform(2e5);
  rt::CostModel triangular;  // cost grows with the index: imbalanced
  triangular.ops_fn = [](std::int64_t i) {
    return 4e2 * static_cast<double>(i);
  };

  const std::vector<std::pair<std::string, rt::Schedule>> schedules = {
      {"static (block)", rt::Schedule::static_block()},
      {"static,1", rt::Schedule::static_chunk(1)},
      {"static,2", rt::Schedule::static_chunk(2)},
      {"static,3", rt::Schedule::static_chunk(3)},
      {"dynamic,1", rt::Schedule::dynamic(1)},
      {"dynamic,2", rt::Schedule::dynamic(2)},
      {"dynamic,3", rt::Schedule::dynamic(3)},
      {"dynamic,16", rt::Schedule::dynamic(16)},
      {"guided,1", rt::Schedule::guided(1)},
      {"steal", rt::Schedule::steal()},
      {"steal,4", rt::Schedule::steal(4)},
  };

  util::Table table(
      "Assignment 3: schedules on the simulated Pi (1024 iterations, 4 "
      "threads, virtual ms)");
  table.columns({"schedule", "uniform work", "imbalanced work"},
                {util::Align::Left, util::Align::Right, util::Align::Right});
  for (const auto& [name, schedule] : schedules) {
    table.row({name,
               util::Table::num(time_loop(schedule, uniform, kN) * 1e3, 3),
               util::Table::num(time_loop(schedule, triangular, kN) * 1e3,
                                3)});
  }
  table.note(
      "Shape: on uniform work, static wins (no queue traffic) and "
      "dynamic,1 pays the most overhead; on imbalanced work the "
      "dynamic/guided schedules rebalance and win, while plain static "
      "is hostage to its heaviest block. Round-robin static,k already "
      "helps because heavy iterations interleave across threads. Steal "
      "starts like static but migrates the tail: near-static overhead "
      "on uniform work, near-dynamic balance on imbalanced work.");
  std::printf("%s", table.to_ascii().c_str());

  // Chunk timelines, one per schedule kind, on the imbalanced loop:
  // static block ends with one long lane, dynamic/guided pack the lanes.
  std::printf(
      "\nPer-thread chunk timelines (imbalanced work, 64 iterations, "
      "4 threads, virtual time):\n\n");
  rt::CostModel short_triangular;
  short_triangular.ops_fn = [](std::int64_t i) {
    return 8e3 * static_cast<double>(i + 1);
  };
  const std::vector<std::pair<std::string, rt::Schedule>> kinds = {
      {"static (block)", rt::Schedule::static_block()},
      {"static,4", rt::Schedule::static_chunk(4)},
      {"dynamic,2", rt::Schedule::dynamic(2)},
      {"guided,1", rt::Schedule::guided(1)},
      {"steal,2", rt::Schedule::steal(2)},
  };
  for (const auto& [name, schedule] : kinds) {
    const rt::RunResult run = rt::parallel_for(
        rt::ParallelConfig::sim_pi(4).traced(), rt::Range::upto(64),
        schedule, [](std::int64_t) {}, short_triangular);
    std::printf("%s\n%s  %s\n\n", name.c_str(),
                run.profile->timeline_chart(0).c_str(),
                run.profile->summary().c_str());
  }
  return 0;
}
