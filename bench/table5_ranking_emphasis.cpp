// Table 5 reproduction: ranking of student perception of the Course
// Emphasis (composite scores), both survey sittings.

#include <cstdio>

#include "classroom/study.hpp"
#include "classroom/targets.hpp"
#include "util/table.hpp"

int main() {
  using namespace pblpar;

  const classroom::SemesterStudy study =
      classroom::SemesterStudy::simulate();
  const classroom::PaperTargets& targets =
      classroom::PaperTargets::published();

  util::Table table(
      "Table 5. Ranking of Student Perception of the Course Emphasis");
  table.columns({"Rank", "First Half (ours)", "score",
                 "Second Half (ours)", "score"},
                {util::Align::Right, util::Align::Left, util::Align::Right,
                 util::Align::Left, util::Align::Right});
  const auto& first = study.analysis.emphasis_ranking[0];
  const auto& second = study.analysis.emphasis_ranking[1];
  for (std::size_t i = 0; i < first.size(); ++i) {
    table.row({std::to_string(i + 1), first[i].name,
               util::Table::num(first[i].value, 2), second[i].name,
               util::Table::num(second[i].value, 2)});
  }
  table.note("Paper half 1: Teamwork 4.38 > Implementation 4.16 > Problem "
             "Definition 4.09 > Idea Generation 4.04 >");
  table.note("Communication 4.02 > Information Gathering 3.81 > Evaluation "
             "and Decision Making 3.66.");
  std::printf("%s", table.to_ascii().c_str());

  // Shape check against the paper's half-1 order.
  const auto ranked_targets = [&](int half) {
    std::vector<std::pair<std::string, double>> items;
    for (std::size_t e = 0; e < survey::kElementCount; ++e) {
      items.emplace_back(
          survey::to_string(survey::kAllElements[e]),
          targets.elements[e].emphasis_mean[static_cast<std::size_t>(half)]);
    }
    return stats::rank_descending(items);
  };
  int order_matches = 0;
  const auto paper_first = ranked_targets(0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].name == paper_first[i].name) {
      ++order_matches;
    }
  }
  std::printf("\nHalf-1 rank order agreement with the paper: %d/7 positions.\n",
              order_matches);
  return 0;
}
