#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace pblpar::sim {
namespace {

/// Machine with every overhead zeroed and a 1 GHz clock so timing math is
/// exact: 1e9 ops == 1 virtual second.
MachineSpec exact_spec(int cores) {
  MachineSpec spec;
  spec.name = "exact";
  spec.cores = cores;
  spec.clock_ghz = 1.0;
  spec.ops_per_cycle = 1.0;
  spec.fork_cost_us = 0.0;
  spec.join_cost_us = 0.0;
  spec.barrier_cost_us_per_thread = 0.0;
  spec.mutex_acquire_cost_us = 0.0;
  spec.sched_chunk_cost_us = 0.0;
  spec.oversub_penalty = 0.0;
  spec.mem_contention_beta = 0.0;
  return spec;
}

TEST(MachineTest, RootBodyRunsAndReturns) {
  Machine machine(exact_spec(4));
  bool ran = false;
  const ExecutionReport report = machine.run([&](Context& ctx) {
    EXPECT_EQ(ctx.tid(), 0);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(report.makespan_s, 0.0);
  EXPECT_EQ(report.spawns, 0u);
}

TEST(MachineTest, SpawnedChildrenRunWithDistinctTids) {
  Machine machine(exact_spec(4));
  std::vector<int> seen;
  machine.run([&](Context& root) {
    std::vector<ThreadHandle> children;
    for (int i = 0; i < 3; ++i) {
      children.push_back(root.spawn([&](Context& child) {
        seen.push_back(child.tid());  // serialized real code: safe
      }));
    }
    for (const ThreadHandle child : children) {
      root.join(child);
    }
  });
  ASSERT_EQ(seen.size(), 3u);
  // tids 1..3 in some deterministic order
  std::vector<int> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3}));
}

TEST(MachineTest, JoinWaitsForChildWork) {
  Machine machine(exact_spec(4));
  double child_done_at = -1.0;
  double after_join = -1.0;
  machine.run([&](Context& root) {
    const ThreadHandle child = root.spawn([&](Context& ctx) {
      ctx.compute(1e9);
      child_done_at = ctx.now();
    });
    root.join(child);
    after_join = root.now();
  });
  EXPECT_DOUBLE_EQ(child_done_at, 1.0);
  EXPECT_GE(after_join, child_done_at);
}

TEST(MachineTest, JoinOfFinishedChildReturnsImmediately) {
  Machine machine(exact_spec(4));
  machine.run([&](Context& root) {
    const ThreadHandle child = root.spawn([](Context&) {});
    root.compute(1e9);  // child certainly done by now
    root.join(child);
    SUCCEED();
  });
}

TEST(MachineTest, SelfJoinIsRejected) {
  Machine machine(exact_spec(4));
  EXPECT_THROW(machine.run([](Context& root) {
                 root.join(ThreadHandle{0});
               }),
               util::PreconditionError);
}

TEST(MachineTest, BarrierSynchronizesParticipants) {
  Machine machine(exact_spec(4));
  const BarrierHandle barrier = machine.make_barrier(2);
  double slow_release = -1.0;
  double fast_release = -1.0;
  machine.run([&](Context& root) {
    const ThreadHandle child = root.spawn([&](Context& ctx) {
      ctx.barrier(barrier);  // arrives instantly, waits for root
      fast_release = ctx.now();
    });
    root.compute(2e9);
    root.barrier(barrier);
    slow_release = root.now();
    root.join(child);
  });
  EXPECT_DOUBLE_EQ(slow_release, 2.0);
  EXPECT_DOUBLE_EQ(fast_release, 2.0);
}

TEST(MachineTest, MutexProvidesMutualExclusionInVirtualTime) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  std::vector<double> section_starts;
  machine.run([&](Context& root) {
    auto worker = [&](Context& ctx) {
      ctx.lock(mutex);
      section_starts.push_back(ctx.now());
      ctx.compute(1e9);
      ctx.unlock(mutex);
    };
    const ThreadHandle a = root.spawn(worker);
    const ThreadHandle b = root.spawn(worker);
    root.join(a);
    root.join(b);
  });
  ASSERT_EQ(section_starts.size(), 2u);
  // Second critical section cannot start before the first ends.
  EXPECT_DOUBLE_EQ(section_starts[0], 0.0);
  EXPECT_DOUBLE_EQ(section_starts[1], 1.0);
}

TEST(MachineTest, ScopedLockReleasesOnScopeExit) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  machine.run([&](Context& root) {
    {
      ScopedLock lock(root, mutex);
      root.compute(1e6);
    }
    // Re-acquire must succeed (would self-deadlock if still held).
    ScopedLock again(root, mutex);
  });
}

TEST(MachineTest, UnlockWithoutOwnershipIsRejected) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  EXPECT_THROW(
      machine.run([&](Context& root) { root.unlock(mutex); }),
      util::PreconditionError);
}

TEST(MachineTest, RecursiveLockIsRejected) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  EXPECT_THROW(machine.run([&](Context& root) {
                 root.lock(mutex);
                 root.lock(mutex);
               }),
               util::PreconditionError);
}

TEST(MachineTest, DeadlockIsDetected) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  EXPECT_THROW(machine.run([&](Context& root) {
                 const ThreadHandle child = root.spawn([&](Context& ctx) {
                   ctx.lock(mutex);  // never unlocked
                 });
                 root.join(child);
                 root.lock(mutex);  // blocks forever
               }),
               DeadlockError);
}

TEST(MachineTest, BarrierWithMissingParticipantDeadlocks) {
  Machine machine(exact_spec(4));
  const BarrierHandle barrier = machine.make_barrier(3);
  EXPECT_THROW(machine.run([&](Context& root) {
                 const ThreadHandle child =
                     root.spawn([&](Context& ctx) { ctx.barrier(barrier); });
                 root.barrier(barrier);  // only 2 of 3 ever arrive
                 root.join(child);
               }),
               DeadlockError);
}

TEST(MachineTest, ExceptionInRootPropagates) {
  Machine machine(exact_spec(4));
  EXPECT_THROW(machine.run([](Context&) {
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
}

TEST(MachineTest, ExceptionInChildPropagatesAndUnblocksOthers) {
  Machine machine(exact_spec(4));
  const BarrierHandle barrier = machine.make_barrier(2);
  EXPECT_THROW(machine.run([&](Context& root) {
                 const ThreadHandle child = root.spawn([](Context&) -> void {
                   throw std::runtime_error("child failed");
                 });
                 root.barrier(barrier);  // would deadlock if not aborted
                 root.join(child);
               }),
               std::runtime_error);
}

TEST(MachineTest, MachineIsReusableAfterException) {
  Machine machine(exact_spec(4));
  EXPECT_THROW(machine.run([](Context&) {
                 throw std::runtime_error("first");
               }),
               std::runtime_error);
  const ExecutionReport report =
      machine.run([](Context& ctx) { ctx.compute(1e9); });
  EXPECT_DOUBLE_EQ(report.makespan_s, 1.0);
}

TEST(MachineTest, MachineIsReusableAfterNormalRun) {
  Machine machine(exact_spec(2));
  const ExecutionReport first =
      machine.run([](Context& ctx) { ctx.compute(1e9); });
  const ExecutionReport second =
      machine.run([](Context& ctx) { ctx.compute(2e9); });
  EXPECT_DOUBLE_EQ(first.makespan_s, 1.0);
  EXPECT_DOUBLE_EQ(second.makespan_s, 2.0);  // clock restarts per run
}

TEST(MachineTest, CountersTrackEvents) {
  Machine machine(exact_spec(4));
  const BarrierHandle barrier = machine.make_barrier(2);
  const MutexHandle mutex = machine.make_mutex();
  const ExecutionReport report = machine.run([&](Context& root) {
    const ThreadHandle child = root.spawn([&](Context& ctx) {
      ctx.lock(mutex);
      ctx.unlock(mutex);
      ctx.barrier(barrier);
    });
    root.barrier(barrier);
    root.compute(1e6);
    root.join(child);
  });
  EXPECT_EQ(report.spawns, 1u);
  EXPECT_EQ(report.joins, 1u);
  EXPECT_EQ(report.barrier_episodes, 1u);
  EXPECT_EQ(report.mutex_acquires, 1u);
  EXPECT_EQ(report.compute_calls, 1u);
  EXPECT_DOUBLE_EQ(report.total_ops, 1e6);
}

TEST(MachineTest, DeterministicAcrossRepeatedRuns) {
  const auto run_once = [] {
    Machine machine(MachineSpec::raspberry_pi_3bplus());
    return machine.run([](Context& root) {
      std::vector<ThreadHandle> children;
      for (int i = 0; i < 4; ++i) {
        children.push_back(root.spawn([i](Context& ctx) {
          ctx.compute(1e8 * (i + 1), 0.3);
        }));
      }
      for (const ThreadHandle child : children) {
        root.join(child);
      }
    });
  };
  const ExecutionReport a = run_once();
  const ExecutionReport b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.spawns, b.spawns);
  EXPECT_EQ(a.total_ops, b.total_ops);
  ASSERT_EQ(a.busy_s.size(), b.busy_s.size());
  for (std::size_t i = 0; i < a.busy_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.busy_s[i], b.busy_s[i]);
  }
}

TEST(MachineTest, TraceRecordsSegmentsWhenEnabled) {
  MachineSpec spec = exact_spec(2);
  spec.record_trace = true;
  Machine machine(spec);
  const ExecutionReport report = machine.run([](Context& root) {
    const ThreadHandle child =
        root.spawn([](Context& ctx) { ctx.compute(5e8); });
    root.compute(1e9);
    root.join(child);
  });
  ASSERT_FALSE(report.trace.empty());
  double traced_ops = 0.0;
  for (const TraceSegment& segment : report.trace) {
    EXPECT_LE(segment.start_s, segment.end_s);
    traced_ops += segment.ops;
  }
  EXPECT_NEAR(traced_ops, 1.5e9, 1.0);
}

TEST(MachineTest, YieldAllowsInterleavingOfReadyThreads) {
  Machine machine(exact_spec(4));
  std::vector<int> order;
  machine.run([&](Context& root) {
    const ThreadHandle a = root.spawn([&](Context& ctx) {
      order.push_back(ctx.tid());
      ctx.yield();
      order.push_back(ctx.tid());
    });
    const ThreadHandle b = root.spawn([&](Context& ctx) {
      order.push_back(ctx.tid());
      ctx.yield();
      order.push_back(ctx.tid());
    });
    root.join(a);
    root.join(b);
  });
  ASSERT_EQ(order.size(), 4u);
  // With yields, the two threads interleave: 1,2,1,2.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(MachineTest, RunRejectsNullBody) {
  Machine machine(exact_spec(1));
  EXPECT_THROW(machine.run(nullptr), util::PreconditionError);
}

TEST(MachineTest, InvalidHandlesAreRejected) {
  Machine machine(exact_spec(1));
  EXPECT_THROW(machine.run([](Context& root) {
                 root.barrier(BarrierHandle{99});
               }),
               util::PreconditionError);
  EXPECT_THROW(machine.run([](Context& root) { root.lock(MutexHandle{5}); }),
               util::PreconditionError);
  EXPECT_THROW(machine.run([](Context& root) {
                 root.join(ThreadHandle{42});
               }),
               util::PreconditionError);
}

TEST(MachineTest, MakeBarrierRejectsNonPositiveParticipants) {
  Machine machine(exact_spec(1));
  EXPECT_THROW(machine.make_barrier(0), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::sim
