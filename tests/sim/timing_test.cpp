#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace pblpar::sim {
namespace {

MachineSpec exact_spec(int cores) {
  MachineSpec spec;
  spec.name = "exact";
  spec.cores = cores;
  spec.clock_ghz = 1.0;  // 1e9 ops == 1 second
  spec.ops_per_cycle = 1.0;
  spec.fork_cost_us = 0.0;
  spec.join_cost_us = 0.0;
  spec.barrier_cost_us_per_thread = 0.0;
  spec.mutex_acquire_cost_us = 0.0;
  spec.sched_chunk_cost_us = 0.0;
  spec.oversub_penalty = 0.0;
  spec.mem_contention_beta = 0.0;
  return spec;
}

/// Run `threads` workers, each computing `ops_each` with the given memory
/// intensity, and return the report.
ExecutionReport run_workers(const MachineSpec& spec, int threads,
                            double ops_each, double mem_intensity = 0.0) {
  Machine machine(spec);
  return machine.run([&](Context& root) {
    std::vector<ThreadHandle> workers;
    for (int i = 1; i < threads; ++i) {
      workers.push_back(root.spawn([&](Context& ctx) {
        ctx.compute(ops_each, mem_intensity);
      }));
    }
    root.compute(ops_each, mem_intensity);
    for (const ThreadHandle worker : workers) {
      root.join(worker);
    }
  });
}

TEST(TimingTest, SequentialWorkTakesWorkOverRate) {
  const ExecutionReport report = run_workers(exact_spec(4), 1, 4e9);
  EXPECT_DOUBLE_EQ(report.makespan_s, 4.0);
}

TEST(TimingTest, PerfectSpeedupWhenThreadsEqualCores) {
  const ExecutionReport report = run_workers(exact_spec(4), 4, 1e9);
  EXPECT_DOUBLE_EQ(report.makespan_s, 1.0);
  EXPECT_NEAR(report.utilization(), 1.0, 1e-9);
}

TEST(TimingTest, TwoThreadsOnFourCoresLeaveCoresIdle) {
  const ExecutionReport report = run_workers(exact_spec(4), 2, 1e9);
  EXPECT_DOUBLE_EQ(report.makespan_s, 1.0);
  EXPECT_NEAR(report.effective_parallelism(), 2.0, 1e-9);
  EXPECT_NEAR(report.utilization(), 0.5, 1e-9);
}

TEST(TimingTest, OversubscriptionSharesCoresFairly) {
  // 8 threads, 4 cores, no oversubscription penalty: each runs at half
  // rate, so 1e9 ops each takes 2 seconds total.
  const ExecutionReport report = run_workers(exact_spec(4), 8, 1e9);
  EXPECT_DOUBLE_EQ(report.makespan_s, 2.0);
}

TEST(TimingTest, FixedWorkGainsNothingFromFifthThread) {
  // The paper's Assignment 5 observation: with 4e9 total ops on 4 cores,
  // adding a 5th thread does not help (and the penalty makes it slightly
  // worse).
  MachineSpec spec = exact_spec(4);
  const ExecutionReport four = run_workers(spec, 4, 1e9);

  spec.oversub_penalty = 0.06;
  const ExecutionReport five = run_workers(spec, 5, 4e9 / 5.0);
  EXPECT_DOUBLE_EQ(four.makespan_s, 1.0);
  EXPECT_GT(five.makespan_s, four.makespan_s);
  // But not catastrophically: within a few percent.
  EXPECT_LT(five.makespan_s, 1.10);
}

TEST(TimingTest, OversubscriptionPenaltyFormula) {
  // 5 threads of 0.8e9 ops on 4 cores, penalty 0.06:
  // share = 4/5, oversub = 1/(1 + 0.06 * 1/4) = 1/1.015
  // rate = 0.8e9/1.015 per thread -> t = 0.8e9 / rate = 1.015 s.
  MachineSpec spec = exact_spec(4);
  spec.oversub_penalty = 0.06;
  const ExecutionReport report = run_workers(spec, 5, 0.8e9);
  EXPECT_NEAR(report.makespan_s, 1.015, 1e-9);
}

TEST(TimingTest, MemoryContentionSlowsParallelMemoryBoundWork) {
  MachineSpec spec = exact_spec(4);
  spec.mem_contention_beta = 0.20;
  // 4 fully memory-bound threads: slowdown = 1 + 0.2 * 1.0 * 3 = 1.6.
  const ExecutionReport report = run_workers(spec, 4, 1e9, 1.0);
  EXPECT_NEAR(report.makespan_s, 1.6, 1e-9);
  // A single memory-bound thread is not slowed (no contention).
  const ExecutionReport solo = run_workers(spec, 1, 1e9, 1.0);
  EXPECT_DOUBLE_EQ(solo.makespan_s, 1.0);
}

TEST(TimingTest, ComputeBoundWorkIgnoresContentionCoefficient) {
  MachineSpec spec = exact_spec(4);
  spec.mem_contention_beta = 0.20;
  const ExecutionReport report = run_workers(spec, 4, 1e9, 0.0);
  EXPECT_DOUBLE_EQ(report.makespan_s, 1.0);
}

TEST(TimingTest, ForkCostIsChargedToParent) {
  MachineSpec spec = exact_spec(4);
  spec.fork_cost_us = 25.0;
  Machine machine(spec);
  const ExecutionReport report = machine.run([](Context& root) {
    std::vector<ThreadHandle> children;
    for (int i = 0; i < 3; ++i) {
      children.push_back(root.spawn([](Context&) {}));
    }
    for (const ThreadHandle child : children) {
      root.join(child);
    }
  });
  // 3 forks * 25 us; children and joins are free in this spec.
  EXPECT_NEAR(report.makespan_s, 75e-6, 1e-12);
}

TEST(TimingTest, BarrierCostScalesWithParticipants) {
  MachineSpec spec = exact_spec(4);
  spec.barrier_cost_us_per_thread = 1.5;
  Machine machine(spec);
  const BarrierHandle barrier = machine.make_barrier(4);
  const ExecutionReport report = machine.run([&](Context& root) {
    std::vector<ThreadHandle> children;
    for (int i = 1; i < 4; ++i) {
      children.push_back(
          root.spawn([&](Context& ctx) { ctx.barrier(barrier); }));
    }
    root.barrier(barrier);
    for (const ThreadHandle child : children) {
      root.join(child);
    }
  });
  // All four drain 6 us of barrier cost in parallel.
  EXPECT_NEAR(report.makespan_s, 6e-6, 1e-12);
}

TEST(TimingTest, UnbalancedWorkIsBoundedByTheSlowestThread) {
  Machine machine(exact_spec(4));
  const ExecutionReport report = machine.run([](Context& root) {
    std::vector<ThreadHandle> children;
    for (int i = 1; i <= 3; ++i) {
      children.push_back(root.spawn(
          [i](Context& ctx) { ctx.compute(1e9 * i); }));
    }
    root.compute(4e9);
    for (const ThreadHandle child : children) {
      root.join(child);
    }
  });
  // Loads 1,2,3 (children) + 4 (root): makespan = slowest = 4 s.
  EXPECT_DOUBLE_EQ(report.makespan_s, 4.0);
  EXPECT_DOUBLE_EQ(report.busy_s[0], 4.0);
}

TEST(TimingTest, WorkConservation) {
  // Total busy time equals total ops / rate regardless of thread count,
  // when no overheads or penalties apply.
  for (const int threads : {1, 2, 3, 4, 6, 8}) {
    const ExecutionReport report =
        run_workers(exact_spec(4), threads, 12e8 / threads);
    EXPECT_NEAR(report.total_busy_s(), 1.2, 1e-9) << threads << " threads";
  }
}

TEST(TimingTest, MakespanMonotoneInWork) {
  double previous = 0.0;
  for (const double ops : {1e8, 5e8, 1e9, 3e9}) {
    const ExecutionReport report = run_workers(exact_spec(4), 4, ops);
    EXPECT_GT(report.makespan_s, previous);
    previous = report.makespan_s;
  }
}

TEST(TimingTest, SpeedupVsBaseline) {
  const ExecutionReport seq = run_workers(exact_spec(4), 1, 4e9);
  const ExecutionReport par = run_workers(exact_spec(4), 4, 1e9);
  EXPECT_DOUBLE_EQ(par.speedup_vs(seq), 4.0);
}

TEST(TimingTest, PiSpecSpeedupShapeOnRealisticOverheads) {
  // With the default Pi spec (real overheads), a 4-thread run of
  // 1.4e9-op work should still get close to, but below, 4x.
  const MachineSpec pi = MachineSpec::raspberry_pi_3bplus();
  ExecutionReport seq;
  ExecutionReport par;
  {
    Machine machine(pi);
    seq = machine.run([](Context& root) { root.compute(5.6e9); });
  }
  {
    Machine machine(pi);
    par = machine.run([](Context& root) {
      std::vector<ThreadHandle> children;
      for (int i = 1; i < 4; ++i) {
        children.push_back(
            root.spawn([](Context& ctx) { ctx.compute(1.4e9); }));
      }
      root.compute(1.4e9);
      for (const ThreadHandle child : children) {
        root.join(child);
      }
    });
  }
  const double speedup = par.speedup_vs(seq);
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 4.0);
}

class ThreadCountTimingTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountTimingTest, FixedTotalWorkScalesWithMinThreadsCores) {
  const int threads = GetParam();
  const double total_ops = 8e9;
  const ExecutionReport report =
      run_workers(exact_spec(4), threads, total_ops / threads);
  const double expected =
      total_ops / (1e9 * std::min(threads, 4));
  EXPECT_NEAR(report.makespan_s, expected, 1e-9) << threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTimingTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace pblpar::sim
