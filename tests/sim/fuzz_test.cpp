// Property tests over randomly generated simulated programs: the
// simulator must be bit-deterministic, conserve modelled work, and never
// get slower when given more cores.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pblpar::sim {
namespace {

MachineSpec zero_overhead_spec(int cores) {
  MachineSpec spec;
  spec.cores = cores;
  spec.clock_ghz = 1.0;
  spec.fork_cost_us = 0.0;
  spec.join_cost_us = 0.0;
  spec.barrier_cost_us_per_thread = 0.0;
  spec.mutex_acquire_cost_us = 0.0;
  spec.oversub_penalty = 0.0;
  spec.mem_contention_beta = 0.0;
  return spec;
}

/// A random structured program: each body performs a random sequence of
/// compute / locked-compute / yield / spawn-and-join actions. All
/// randomness is derived from the seed, so the program itself is
/// deterministic.
struct ProgramBuilder {
  Machine* machine;
  MutexHandle mutex;
  double total_ops_issued = 0.0;
  bool use_memory_intensity = true;

  void body(Context& ctx, std::uint64_t seed, int depth) {
    util::Rng rng(seed);
    std::vector<ThreadHandle> children;
    const int actions = static_cast<int>(rng.uniform_int(2, 5));
    for (int a = 0; a < actions; ++a) {
      switch (rng.uniform_int(0, 3)) {
        case 0: {
          const double ops = rng.uniform(1e5, 5e6);
          const double mem =
              use_memory_intensity ? rng.uniform(0.0, 1.0) : 0.0;
          total_ops_issued += ops;  // serialized real code: safe
          ctx.compute(ops, mem);
          break;
        }
        case 1: {
          ScopedLock lock(ctx, mutex);
          const double ops = rng.uniform(1e4, 1e6);
          total_ops_issued += ops;
          ctx.compute(ops, 0.0);
          break;
        }
        case 2:
          ctx.yield();
          break;
        case 3:
          if (depth < 2 && children.size() < 3) {
            const std::uint64_t child_seed =
                seed * 31 + static_cast<std::uint64_t>(a) + 1;
            children.push_back(ctx.spawn(
                [this, child_seed, depth](Context& child_ctx) {
                  body(child_ctx, child_seed, depth + 1);
                }));
          }
          break;
      }
    }
    for (const ThreadHandle child : children) {
      ctx.join(child);
    }
  }
};

struct RunOutcome {
  ExecutionReport report;
  double total_ops_issued = 0.0;
};

RunOutcome run_program(std::uint64_t seed, const MachineSpec& spec,
                       bool use_memory_intensity) {
  Machine machine(spec);
  ProgramBuilder builder;
  builder.machine = &machine;
  builder.mutex = machine.make_mutex();
  builder.use_memory_intensity = use_memory_intensity;
  RunOutcome outcome;
  outcome.report = machine.run(
      [&](Context& root) { builder.body(root, seed, 0); });
  outcome.total_ops_issued = builder.total_ops_issued;
  return outcome;
}

class SimFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzzTest, BitwiseDeterministic) {
  const std::uint64_t seed = GetParam();
  const MachineSpec spec = MachineSpec::raspberry_pi_3bplus();
  const RunOutcome a = run_program(seed, spec, true);
  const RunOutcome b = run_program(seed, spec, true);
  EXPECT_DOUBLE_EQ(a.report.makespan_s, b.report.makespan_s);
  EXPECT_EQ(a.report.spawns, b.report.spawns);
  EXPECT_EQ(a.report.mutex_acquires, b.report.mutex_acquires);
  EXPECT_DOUBLE_EQ(a.report.total_ops, b.report.total_ops);
  ASSERT_EQ(a.report.busy_s.size(), b.report.busy_s.size());
  for (std::size_t i = 0; i < a.report.busy_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.report.busy_s[i], b.report.busy_s[i]);
  }
}

TEST_P(SimFuzzTest, AllIssuedWorkIsExecuted) {
  const std::uint64_t seed = GetParam();
  const RunOutcome outcome =
      run_program(seed, zero_overhead_spec(4), false);
  EXPECT_NEAR(outcome.report.total_ops, outcome.total_ops_issued, 1.0);
  // Zero overheads, no contention: busy time == ops / rate exactly.
  EXPECT_NEAR(outcome.report.total_busy_s(),
              outcome.total_ops_issued / 1e9, 1e-9);
}

TEST_P(SimFuzzTest, MoreCoresNeverSlower) {
  const std::uint64_t seed = GetParam();
  double previous = 1e100;
  for (const int cores : {1, 2, 4, 16}) {
    const RunOutcome outcome =
        run_program(seed, zero_overhead_spec(cores), true);
    EXPECT_LE(outcome.report.makespan_s, previous * (1.0 + 1e-12))
        << cores << " cores";
    previous = outcome.report.makespan_s;
  }
}

TEST_P(SimFuzzTest, MakespanBounds) {
  // Classic scheduling bounds: work/cores <= makespan (no overheads),
  // and makespan <= total work (serial worst case).
  const std::uint64_t seed = GetParam();
  const int cores = 4;
  const RunOutcome outcome =
      run_program(seed, zero_overhead_spec(cores), false);
  const double total_seconds = outcome.total_ops_issued / 1e9;
  EXPECT_GE(outcome.report.makespan_s,
            total_seconds / cores - 1e-9);
  EXPECT_LE(outcome.report.makespan_s, total_seconds + 1e-9);
}

TEST_P(SimFuzzTest, UtilizationIsAProbability) {
  const std::uint64_t seed = GetParam();
  const RunOutcome outcome =
      run_program(seed, MachineSpec::raspberry_pi_3bplus(), true);
  EXPECT_GE(outcome.report.utilization(), 0.0);
  EXPECT_LE(outcome.report.utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace pblpar::sim
