#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "sim/machine.hpp"
#include "util/error.hpp"

namespace pblpar::sim {
namespace {

MachineSpec exact_spec(int cores) {
  MachineSpec spec;
  spec.cores = cores;
  spec.clock_ghz = 1.0;
  spec.fork_cost_us = 0.0;
  spec.join_cost_us = 0.0;
  spec.barrier_cost_us_per_thread = 0.0;
  spec.mutex_acquire_cost_us = 0.0;
  spec.sched_chunk_cost_us = 0.0;
  spec.oversub_penalty = 0.0;
  spec.mem_contention_beta = 0.0;
  return spec;
}

TEST(ConditionTest, WaitBlocksUntilNotify) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  bool flag = false;
  double woke_at = -1.0;

  machine.run([&](Context& root) {
    const ThreadHandle consumer = root.spawn([&](Context& ctx) {
      ctx.lock(mutex);
      while (!flag) {
        ctx.wait(condition, mutex);
      }
      woke_at = ctx.now();
      ctx.unlock(mutex);
    });
    root.compute(1e9);  // producer works for 1 virtual second
    root.lock(mutex);
    flag = true;
    root.notify_one(condition);
    root.unlock(mutex);
    root.join(consumer);
  });

  EXPECT_DOUBLE_EQ(woke_at, 1.0);
}

TEST(ConditionTest, NotifyAllWakesEveryWaiter) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  bool open = false;
  int through = 0;

  machine.run([&](Context& root) {
    std::vector<ThreadHandle> waiters;
    for (int i = 0; i < 3; ++i) {
      waiters.push_back(root.spawn([&](Context& ctx) {
        ctx.lock(mutex);
        while (!open) {
          ctx.wait(condition, mutex);
        }
        ++through;
        ctx.unlock(mutex);
      }));
    }
    root.compute(1e8);
    root.lock(mutex);
    open = true;
    root.notify_all(condition);
    root.unlock(mutex);
    for (const ThreadHandle waiter : waiters) {
      root.join(waiter);
    }
  });
  EXPECT_EQ(through, 3);
}

TEST(ConditionTest, NotifyOneWakesExactlyOne) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  int tokens = 0;
  int consumed = 0;

  machine.run([&](Context& root) {
    std::vector<ThreadHandle> consumers;
    for (int i = 0; i < 2; ++i) {
      consumers.push_back(root.spawn([&](Context& ctx) {
        ctx.lock(mutex);
        while (tokens == 0) {
          ctx.wait(condition, mutex);
        }
        --tokens;
        ++consumed;
        ctx.unlock(mutex);
      }));
    }
    // Two tokens, one notify each: both consumers must run exactly once.
    for (int t = 0; t < 2; ++t) {
      root.compute(1e8);
      root.lock(mutex);
      ++tokens;
      root.notify_one(condition);
      root.unlock(mutex);
    }
    for (const ThreadHandle consumer : consumers) {
      root.join(consumer);
    }
  });
  EXPECT_EQ(consumed, 2);
  EXPECT_EQ(tokens, 0);
}

TEST(ConditionTest, ProducerConsumerQueue) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  std::deque<int> queue;
  std::vector<int> received;

  machine.run([&](Context& root) {
    const ThreadHandle consumer = root.spawn([&](Context& ctx) {
      for (int expected = 0; expected < 5; ++expected) {
        ctx.lock(mutex);
        while (queue.empty()) {
          ctx.wait(condition, mutex);
        }
        received.push_back(queue.front());
        queue.pop_front();
        ctx.unlock(mutex);
      }
    });
    for (int i = 0; i < 5; ++i) {
      root.compute(1e7);  // production takes time
      root.lock(mutex);
      queue.push_back(i);
      root.notify_one(condition);
      root.unlock(mutex);
    }
    root.join(consumer);
  });

  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ConditionTest, TimedWaitTimesOutAtTheDeadline) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  bool notified = true;
  double woke_at = -1.0;
  bool reacquired = false;

  machine.run([&](Context& root) {
    root.lock(mutex);
    // Nobody ever notifies: the wait must expire, advancing virtual time
    // to exactly the deadline, with the mutex re-acquired on wake.
    notified = root.wait_until(condition, mutex, 0.75);
    woke_at = root.now();
    reacquired = true;  // writing under the mutex proves we hold it
    root.unlock(mutex);
  });

  EXPECT_FALSE(notified);
  EXPECT_DOUBLE_EQ(woke_at, 0.75);
  EXPECT_TRUE(reacquired);
}

TEST(ConditionTest, TimedWaitReturnsTrueWhenNotifiedInTime) {
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  bool notified = false;
  double woke_at = -1.0;

  machine.run([&](Context& root) {
    const ThreadHandle waiter = root.spawn([&](Context& ctx) {
      ctx.lock(mutex);
      notified = ctx.wait_until(condition, mutex, 5.0);
      woke_at = ctx.now();
      ctx.unlock(mutex);
    });
    root.compute(2e8);  // 0.2 virtual seconds of work
    root.lock(mutex);
    root.notify_one(condition);
    root.unlock(mutex);
    root.join(waiter);
  });

  EXPECT_TRUE(notified);
  EXPECT_DOUBLE_EQ(woke_at, 0.2);
}

TEST(ConditionTest, TimedWaitCoexistsWithUntimedWaiters) {
  // One waiter with a deadline, one without, on the same condition: the
  // timed one expires and makes progress; the untimed one is woken by a
  // later notify. No deadlock is declared while a deadline is pending.
  Machine machine(exact_spec(4));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  bool open = false;
  bool timed_result = true;
  int through = 0;

  machine.run([&](Context& root) {
    const ThreadHandle timed = root.spawn([&](Context& ctx) {
      ctx.lock(mutex);
      timed_result = ctx.wait_until(condition, mutex, 0.1);
      ctx.unlock(mutex);
    });
    const ThreadHandle untimed = root.spawn([&](Context& ctx) {
      ctx.lock(mutex);
      while (!open) {
        ctx.wait(condition, mutex);
      }
      ++through;
      ctx.unlock(mutex);
    });
    root.join(timed);
    root.lock(mutex);
    open = true;
    root.notify_all(condition);
    root.unlock(mutex);
    root.join(untimed);
  });

  EXPECT_FALSE(timed_result);
  EXPECT_EQ(through, 1);
}

TEST(ConditionTest, WaitWithoutOwningMutexIsRejected) {
  Machine machine(exact_spec(2));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  EXPECT_THROW(machine.run([&](Context& root) {
                 root.wait(condition, mutex);  // never locked
               }),
               util::PreconditionError);
}

TEST(ConditionTest, InvalidHandlesAreRejected) {
  Machine machine(exact_spec(2));
  const MutexHandle mutex = machine.make_mutex();
  EXPECT_THROW(machine.run([&](Context& root) {
                 root.lock(mutex);
                 root.wait(ConditionHandle{9}, mutex);
               }),
               util::PreconditionError);
  EXPECT_THROW(machine.run([&](Context& root) {
                 root.notify_one(ConditionHandle{3});
               }),
               util::PreconditionError);
}

TEST(ConditionTest, ForgottenNotifyIsDetectedAsDeadlock) {
  Machine machine(exact_spec(2));
  const MutexHandle mutex = machine.make_mutex();
  const ConditionHandle condition = machine.make_condition();
  EXPECT_THROW(machine.run([&](Context& root) {
                 const ThreadHandle waiter =
                     root.spawn([&](Context& ctx) {
                       ctx.lock(mutex);
                       ctx.wait(condition, mutex);  // nobody notifies
                       ctx.unlock(mutex);
                     });
                 root.join(waiter);
               }),
               DeadlockError);
}

TEST(ConditionTest, NotifyWithNoWaitersIsANoOp) {
  Machine machine(exact_spec(2));
  const ConditionHandle condition = machine.make_condition();
  machine.run([&](Context& root) {
    root.notify_one(condition);
    root.notify_all(condition);
  });
  SUCCEED();
}

}  // namespace
}  // namespace pblpar::sim
