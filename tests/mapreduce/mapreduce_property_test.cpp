// Property tests: the parallel MapReduce jobs must agree exactly with
// straightforward serial references on randomized corpora.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapreduce/jobs.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace pblpar::mapreduce {
namespace {

std::vector<std::string> random_corpus(std::uint64_t seed, int documents) {
  static const char* kWords[] = {"alpha", "beta",  "gamma", "delta",
                                 "pi",    "core",  "team",  "openmp",
                                 "race",  "sum"};
  util::Rng rng(seed);
  std::vector<std::string> docs;
  for (int d = 0; d < documents; ++d) {
    std::string text;
    const int words = static_cast<int>(rng.uniform_int(0, 40));
    for (int w = 0; w < words; ++w) {
      text += kWords[rng.next_below(10)];
      text += rng.bernoulli(0.2) ? ", " : " ";
    }
    docs.push_back(std::move(text));
  }
  return docs;
}

class MapReducePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MapReducePropertyTest, WordCountMatchesSerialReference) {
  const auto docs = random_corpus(GetParam(), 50);

  std::map<std::string, long> reference;
  for (const std::string& doc : docs) {
    for (const std::string& word : util::tokenize_words(doc)) {
      ++reference[word];
    }
  }

  const auto parallel = word_count(docs, 4);
  const std::map<std::string, long> actual(parallel.begin(), parallel.end());
  EXPECT_EQ(actual, reference);
}

TEST_P(MapReducePropertyTest, InvertedIndexMatchesSerialReference) {
  const auto docs = random_corpus(GetParam() + 100, 30);

  std::map<std::string, std::vector<int>> reference;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    std::set<std::string> unique;
    for (const std::string& word : util::tokenize_words(docs[d])) {
      unique.insert(word);
    }
    for (const std::string& word : unique) {
      reference[word].push_back(static_cast<int>(d));
    }
  }

  const auto parallel = inverted_index(docs, 3);
  const std::map<std::string, std::vector<int>> actual(parallel.begin(),
                                                       parallel.end());
  EXPECT_EQ(actual, reference);
}

TEST_P(MapReducePropertyTest, GrepMatchesSerialReference) {
  const auto docs = random_corpus(GetParam() + 200, 60);
  const std::string pattern = "pi";

  std::vector<std::pair<int, std::string>> reference;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    if (docs[i].find(pattern) != std::string::npos) {
      reference.emplace_back(static_cast<int>(i), docs[i]);
    }
  }

  EXPECT_EQ(distributed_grep(docs, pattern, 5), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapReducePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace pblpar::mapreduce
