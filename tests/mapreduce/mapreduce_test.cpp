#include "mapreduce/job.hpp"
#include "mapreduce/jobs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "rt/cancel.hpp"

#include "util/error.hpp"
#include "util/text.hpp"

namespace pblpar::mapreduce {
namespace {

TEST(JobTest, RequiresMapAndReduce) {
  Job<int, int, int, int> job;
  EXPECT_THROW(job.run({}), util::PreconditionError);
  job.map([](const int&, const int&, Emitter<int, int>&) {});
  EXPECT_THROW(job.run({}), util::PreconditionError);
}

TEST(JobTest, EmptyInputGivesEmptyOutput) {
  Job<int, int, int, int> job;
  job.map([](const int& k, const int& v, Emitter<int, int>& out) {
       out.emit(k, v);
     })
      .reduce([](const int&, const std::vector<int>& vs) {
        return vs.front();
      });
  EXPECT_TRUE(job.run({}).empty());
}

TEST(JobTest, IdentityJobGroupsByKey) {
  Job<int, int, int, int> job;
  job.threads(3)
      .reducers(2)
      .map([](const int& k, const int& v, Emitter<int, int>& out) {
        out.emit(k % 3, v);
      })
      .reduce([](const int&, const std::vector<int>& vs) {
        int sum = 0;
        for (const int v : vs) {
          sum += v;
        }
        return sum;
      });
  std::vector<std::pair<int, int>> inputs;
  for (int i = 0; i < 30; ++i) {
    inputs.emplace_back(i, 1);
  }
  const auto output = job.run(inputs);
  ASSERT_EQ(output.size(), 3u);
  for (const auto& [key, count] : output) {
    EXPECT_EQ(count, 10) << "key " << key;
  }
  // Sorted by key.
  EXPECT_EQ(output[0].first, 0);
  EXPECT_EQ(output[1].first, 1);
  EXPECT_EQ(output[2].first, 2);
}

TEST(JobTest, CombinerDoesNotChangeResult) {
  const auto build = [](bool with_combiner) {
    Job<int, std::string, std::string, long> job;
    job.threads(4).reducers(3).map(
        [](const int&, const std::string& text,
           Emitter<std::string, long>& out) {
          for (const std::string& word : util::tokenize_words(text)) {
            out.emit(word, 1L);
          }
        });
    if (with_combiner) {
      job.combine([](const std::string&, const std::vector<long>& counts) {
        long sum = 0;
        for (const long c : counts) {
          sum += c;
        }
        return sum;
      });
    }
    job.reduce([](const std::string&, const std::vector<long>& counts) {
      long sum = 0;
      for (const long c : counts) {
        sum += c;
      }
      return sum;
    });
    return job;
  };

  std::vector<std::pair<int, std::string>> inputs;
  for (int i = 0; i < 20; ++i) {
    inputs.emplace_back(i, "the quick brown fox jumps over the lazy dog the");
  }
  const auto with = build(true).run(inputs);
  const auto without = build(false).run(inputs);
  EXPECT_EQ(with, without);
}

TEST(JobTest, ThreadCountInvariance) {
  std::vector<std::pair<int, std::string>> inputs;
  for (int i = 0; i < 40; ++i) {
    inputs.emplace_back(i, "alpha beta gamma alpha");
  }
  const auto run_with = [&](int threads) {
    Job<int, std::string, std::string, long> job;
    job.threads(threads)
        .map([](const int&, const std::string& text,
                Emitter<std::string, long>& out) {
          for (const std::string& word : util::tokenize_words(text)) {
            out.emit(word, 1L);
          }
        })
        .reduce([](const std::string&, const std::vector<long>& counts) {
          return static_cast<long>(counts.size());
        });
    return job.run(inputs);
  };
  const auto t1 = run_with(1);
  const auto t4 = run_with(4);
  const auto t7 = run_with(7);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t4, t7);
}

TEST(JobTest, ReducerCountInvariance) {
  // The sort-based shuffle and the pairwise merge of partition outputs
  // must give the same sorted result whatever the partition count —
  // including more partitions than keys, and the thread-derived default.
  std::vector<std::pair<int, std::string>> inputs;
  for (int i = 0; i < 36; ++i) {
    inputs.emplace_back(i, "delta echo foxtrot delta echo delta");
  }
  const auto run_with = [&](int reducers) {
    Job<int, std::string, std::string, long> job;
    job.threads(4)
        .reducers(reducers)
        .map([](const int&, const std::string& text,
                Emitter<std::string, long>& out) {
          for (const std::string& word : util::tokenize_words(text)) {
            out.emit(word, 1L);
          }
        })
        .reduce([](const std::string&, const std::vector<long>& counts) {
          long sum = 0;
          for (const long c : counts) {
            sum += c;
          }
          return sum;
        });
    return job.run(inputs);
  };
  const auto baseline = run_with(1);
  ASSERT_EQ(baseline.size(), 3u);
  for (const int reducers : {0, 2, 3, 5, 16}) {  // 0 = per-thread default
    EXPECT_EQ(run_with(reducers), baseline) << "reducers " << reducers;
  }
}

TEST(JobTest, ValueListsArriveInWorkerScanOrder) {
  // Pin the shuffle's grouping order: values of one key are grouped in
  // emission order (stable sort), so a single-threaded run must hand the
  // reducer the value list exactly as emitted.
  Job<int, int, int, int, std::vector<int>> job;
  job.threads(1).reducers(2).map(
      [](const int& k, const int& v, Emitter<int, int>& out) {
        out.emit(k % 2, v);
      });
  job.reduce([](const int&, const std::vector<int>& values) {
    return values;  // expose the grouped list itself
  });
  std::vector<std::pair<int, int>> inputs;
  for (int i = 0; i < 10; ++i) {
    inputs.emplace_back(i, 100 + i);
  }
  const auto output = job.run(inputs);
  ASSERT_EQ(output.size(), 2u);
  EXPECT_EQ(output[0].second, (std::vector<int>{100, 102, 104, 106, 108}));
  EXPECT_EQ(output[1].second, (std::vector<int>{101, 103, 105, 107, 109}));
}

TEST(WordCountTest, CountsAcrossDocuments) {
  const std::vector<std::string> docs{
      "To be or not to be",
      "that is the question",
      "Whether tis nobler to suffer",
  };
  const auto counts = word_count(docs);
  std::map<std::string, long> lookup(counts.begin(), counts.end());
  EXPECT_EQ(lookup["to"], 3);
  EXPECT_EQ(lookup["be"], 2);
  EXPECT_EQ(lookup["question"], 1);
  EXPECT_EQ(lookup.count("zzz"), 0u);
  // Output is sorted by word.
  EXPECT_TRUE(std::is_sorted(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(InvertedIndexTest, MapsWordsToDocuments) {
  const std::vector<std::string> docs{
      "apple banana",
      "banana cherry",
      "apple cherry apple",
  };
  const auto index = inverted_index(docs);
  std::map<std::string, std::vector<int>> lookup(index.begin(), index.end());
  EXPECT_EQ(lookup["apple"], (std::vector<int>{0, 2}));
  EXPECT_EQ(lookup["banana"], (std::vector<int>{0, 1}));
  EXPECT_EQ(lookup["cherry"], (std::vector<int>{1, 2}));
}

TEST(UrlAccessTest, CountsFirstField) {
  const std::vector<std::string> log{
      "/home 200 GET",
      "/about 200 GET",
      "/home 404 GET",
      "/home 200 POST",
      "",
  };
  const auto counts = url_access_counts(log);
  std::map<std::string, long> lookup(counts.begin(), counts.end());
  EXPECT_EQ(lookup["/home"], 3);
  EXPECT_EQ(lookup["/about"], 1);
  EXPECT_EQ(lookup.size(), 2u);
}

TEST(DistributedGrepTest, FindsLinesInOrder) {
  const std::vector<std::string> lines{
      "error: disk full",
      "all good",
      "another error: timeout",
      "ok",
  };
  const auto matches = distributed_grep(lines, "error");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].first, 0);
  EXPECT_EQ(matches[1].first, 2);
  EXPECT_EQ(matches[1].second, "another error: timeout");
}

TEST(MeanPerKeyTest, Averages) {
  const std::vector<std::pair<std::string, double>> samples{
      {"quiz", 8.0}, {"quiz", 10.0}, {"exam", 70.0}, {"exam", 90.0},
      {"exam", 80.0},
  };
  const auto means = mean_per_key(samples);
  std::map<std::string, double> lookup(means.begin(), means.end());
  EXPECT_DOUBLE_EQ(lookup["quiz"], 9.0);
  EXPECT_DOUBLE_EQ(lookup["exam"], 80.0);
}

/// Burn real host time so a wall-clock deadline can land mid-map.
void spin(int iters) {
  volatile int sink = 0;
  for (int i = 0; i < iters; ++i) {
    sink = sink + i;
  }
}

Job<int, int, int, int> heavy_counting_job() {
  Job<int, int, int, int> job;
  job.threads(4)
      .map([](const int&, const int&, Emitter<int, int>& out) {
        spin(50000);
        out.emit(0, 1);
      })
      .reduce([](const int&, const std::vector<int>& vs) {
        int sum = 0;
        for (const int v : vs) {
          sum += v;
        }
        return sum;
      });
  return job;
}

TEST(JobTest, DeadlineValidationRejectsNonPositiveBudgets) {
  Job<int, int, int, int> job;
  EXPECT_THROW(job.deadline(0.0), util::PreconditionError);
  EXPECT_THROW(job.deadline(-1.0), util::PreconditionError);
}

TEST(JobTest, RunReportIsBenignWithoutADeadline) {
  auto job = heavy_counting_job();
  RunReport report;
  const std::vector<std::pair<int, int>> inputs(16, {0, 1});
  const auto output = job.run(inputs, &report);
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output[0].second, 16);
  EXPECT_FALSE(report.deadline_hit);
  EXPECT_EQ(report.mapped_records, 16);
  EXPECT_EQ(report.total_records, 16);
}

TEST(JobTest, AbortDeadlinePolicyThrowsCancelled) {
  auto job = heavy_counting_job();
  job.deadline(0.002);  // DeadlinePolicy::Abort is the default
  // ~4000 records x tens of microseconds each >> 2 ms, so the deadline
  // reliably fires during the map phase.
  const std::vector<std::pair<int, int>> inputs(4000, {0, 1});
  EXPECT_THROW(job.run(inputs), rt::Cancelled);
}

TEST(JobTest, SalvageDeadlinePolicyKeepsEveryCompletedRecord) {
  auto job = heavy_counting_job();
  job.deadline(0.005, DeadlinePolicy::Salvage);
  const std::vector<std::pair<int, int>> inputs(4000, {0, 1});
  RunReport report;
  const auto output = job.run(inputs, &report);
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_EQ(report.total_records, 4000);
  EXPECT_LT(report.mapped_records, report.total_records);
  // Records never tear: each mapped record contributed exactly one
  // ("0", 1) pair, so the reduced count equals the salvaged record count.
  std::int64_t total = 0;
  for (const auto& [key, count] : output) {
    EXPECT_EQ(key, 0);
    total += count;
  }
  EXPECT_EQ(total, report.mapped_records);
}

TEST(JobTest, CancellableRejectsDisconnectedTokens) {
  Job<int, int, int, int> job;
  EXPECT_THROW(job.cancellable(rt::CancelToken{}), util::PreconditionError);
}

TEST(JobTest, FiredTokenUnderAbortThrowsCancelledWithTokenCause) {
  auto job = heavy_counting_job();
  rt::CancelSource source;
  source.cancel();
  job.cancellable(source.token());  // Abort is still the default policy
  const std::vector<std::pair<int, int>> inputs(64, {0, 1});
  try {
    job.run(inputs);
    FAIL() << "expected rt::Cancelled";
  } catch (const rt::Cancelled& cancelled) {
    EXPECT_EQ(cancelled.cause(), rt::CancelCause::Token);
  }
}

TEST(JobTest, FiredTokenUnderSalvageYieldsEmptyUsableOutput) {
  auto job = heavy_counting_job();
  rt::CancelSource source;
  source.cancel();
  // cut_policy arms Salvage without requiring a deadline: the fired
  // token cuts the map at its first chunk boundary, and shuffle + reduce
  // still run (over zero records) so the caller gets a usable result.
  job.cut_policy(DeadlinePolicy::Salvage).cancellable(source.token());
  const std::vector<std::pair<int, int>> inputs(64, {0, 1});
  RunReport report;
  const auto output = job.run(inputs, &report);
  EXPECT_TRUE(output.empty());
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_EQ(report.mapped_records, 0);
  EXPECT_EQ(report.total_records, 64);
}

}  // namespace
}  // namespace pblpar::mapreduce
