#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "oocore/extsort.hpp"
#include "oocore/io.hpp"
#include "oocore/merge.hpp"
#include "oocore/scratch.hpp"
#include "oocore/spill.hpp"
#include "rt/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::oocore {
namespace {

namespace fs = std::filesystem;

/// Scratch directories created by this process in the system temp dir.
/// ScratchDir names embed the pid, so concurrently-running test binaries
/// cannot perturb the count.
std::size_t pid_scratch_entries() {
  const std::string pid_tag =
#if defined(_WIN32)
      "-" + std::to_string(_getpid()) + "-";
#else
      "-" + std::to_string(::getpid()) + "-";
#endif
  std::error_code ec;
  fs::directory_iterator it(fs::temp_directory_path(), ec);
  if (ec) {
    return 0;
  }
  std::size_t count = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pblpar-", 0) == 0 &&
        name.find(pid_tag) != std::string::npos) {
      ++count;
    }
  }
  return count;
}

/// Tmpdir-hygiene fixture: every test must leave the system temp dir
/// exactly as it found it — the RAII guards must have unlinked every
/// spill file and scratch directory, including on exception and
/// cancel-drain paths.
class OocoreTest : public ::testing::Test {
 protected:
  void SetUp() override { baseline_entries_ = pid_scratch_entries(); }
  void TearDown() override {
    EXPECT_EQ(pid_scratch_entries(), baseline_entries_)
        << "a test left scratch directories behind in the temp dir";
  }

 private:
  std::size_t baseline_entries_ = 0;
};

std::vector<std::uint64_t> random_records(std::int64_t count,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> records(static_cast<std::size_t>(count));
  for (auto& record : records) {
    record = rng.next_u64();
  }
  return records;
}

void write_records(const fs::path& path,
                   const std::vector<std::uint64_t>& records) {
  SpillWriter writer(path, std::size_t{64} << 10);
  writer.write(records.data(), records.size() * sizeof(std::uint64_t));
  writer.close();
}

std::vector<std::uint64_t> read_records(const fs::path& path) {
  const auto bytes = static_cast<std::size_t>(fs::file_size(path));
  EXPECT_EQ(bytes % sizeof(std::uint64_t), 0u);
  std::vector<std::uint64_t> records(bytes / sizeof(std::uint64_t));
  SpillReader reader(path, std::size_t{64} << 10);
  EXPECT_EQ(reader.read(records.data(), bytes), bytes);
  return records;
}

// --- ScratchDir -----------------------------------------------------------

TEST_F(OocoreTest, ScratchDirCreatesAndRemovesItself) {
  fs::path where;
  {
    ScratchDir scratch("pblpar-test");
    where = scratch.path();
    EXPECT_TRUE(fs::is_directory(where));
    EXPECT_EQ(scratch.live_entries(), 0u);
  }
  EXPECT_FALSE(fs::exists(where));
}

TEST_F(OocoreTest, ScratchDirHandsOutUniquePathsAndCountsEntries) {
  ScratchDir scratch("pblpar-test");
  const fs::path a = scratch.next_path("run");
  const fs::path b = scratch.next_path("run");
  EXPECT_NE(a, b);
  write_records(a, {1, 2, 3});
  write_records(b, {4});
  EXPECT_EQ(scratch.live_entries(), 2u);
}

TEST_F(OocoreTest, ScratchDirCleansUpOnException) {
  fs::path where;
  try {
    ScratchDir scratch("pblpar-test");
    where = scratch.path();
    write_records(scratch.next_path("run"), {1, 2, 3});
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(fs::exists(where));
}

// --- Option validation ----------------------------------------------------

TEST_F(OocoreTest, IoChaosValidateRejectsBadKnobs) {
  IoChaos chaos;
  chaos.short_write_probability = 1.5;
  EXPECT_THROW(chaos.validate(), util::PreconditionError);
  chaos.short_write_probability = -0.1;
  EXPECT_THROW(chaos.validate(), util::PreconditionError);
  chaos.short_write_probability = 0.5;
  chaos.slow_read_delay_s = -1.0;
  EXPECT_THROW(chaos.validate(), util::PreconditionError);
  chaos.slow_read_delay_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(chaos.validate(), util::PreconditionError);
  chaos.slow_read_delay_s = 0.001;
  EXPECT_NO_THROW(chaos.validate());
}

TEST_F(OocoreTest, BudgetFromMultiplierRejectsDegenerateMultipliers) {
  EXPECT_THROW(budget_from_multiplier(0.0, 1 << 20),
               util::PreconditionError);
  EXPECT_THROW(budget_from_multiplier(-0.5, 1 << 20),
               util::PreconditionError);
  EXPECT_THROW(
      budget_from_multiplier(std::numeric_limits<double>::quiet_NaN(),
                             1 << 20),
      util::PreconditionError);
  EXPECT_THROW(
      budget_from_multiplier(std::numeric_limits<double>::infinity(),
                             1 << 20),
      util::PreconditionError);
  EXPECT_THROW(budget_from_multiplier(0.25, 0), util::PreconditionError);
  EXPECT_EQ(budget_from_multiplier(0.25, 1 << 20), (1 << 20) / 4u);
}

TEST_F(OocoreTest, ExtSortOptionsValidateIsLoud) {
  ExtSortOptions opts;
  opts.memory_budget_bytes = 1024;  // below the 64 KiB floor
  EXPECT_THROW(opts.validate(), util::PreconditionError);
  opts.memory_budget_bytes = std::size_t{64} << 10;
  opts.io_buffer_bytes = std::size_t{1} << 20;  // budget can't hold 4 buffers
  EXPECT_THROW(opts.validate(), util::PreconditionError);
  opts.io_buffer_bytes = 4096;
  opts.max_fan_in = 1;
  EXPECT_THROW(opts.validate(), util::PreconditionError);
  opts.max_fan_in = 0;
  EXPECT_NO_THROW(opts.validate());
}

// --- Buffered spill I/O ---------------------------------------------------

TEST_F(OocoreTest, SpillRoundTripSurvivesChaos) {
  const std::vector<std::uint64_t> records = random_records(5000, 7);
  ScratchDir scratch("pblpar-test");
  const fs::path path = scratch.next_path("chaotic");
  IoChaos chaos;
  chaos.short_write_probability = 1.0;  // every write lands torn once
  chaos.slow_read_probability = 0.01;
  chaos.slow_read_delay_s = 1e-4;
  chaos.seed = 42;
  {
    SpillWriter writer(path, 4096, chaos, /*salt=*/1);
    writer.write(records.data(), records.size() * sizeof(std::uint64_t));
    writer.close();
  }
  std::vector<std::uint64_t> back(records.size());
  SpillReader reader(path, 4096, chaos, /*salt=*/2);
  ASSERT_EQ(reader.read(back.data(), back.size() * sizeof(std::uint64_t)),
            back.size() * sizeof(std::uint64_t));
  EXPECT_EQ(back, records);
}

TEST_F(OocoreTest, DoubleBufferedReaderMatchesPlainRead) {
  const std::vector<std::uint64_t> records = random_records(40000, 11);
  ScratchDir scratch("pblpar-test");
  const fs::path path = scratch.next_path("big");
  write_records(path, records);

  Prefetcher prefetcher;
  DoubleBufferedReader reader(path, 4096, prefetcher);
  std::vector<std::uint64_t> back(records.size());
  std::size_t off = 0;
  const auto total = back.size() * sizeof(std::uint64_t);
  auto* bytes = reinterpret_cast<char*>(back.data());
  // Odd-sized requests so reads straddle buffer swaps.
  while (off < total) {
    const std::size_t got =
        reader.read(bytes + off, std::min<std::size_t>(1234, total - off));
    ASSERT_GT(got, 0u);
    off += got;
  }
  EXPECT_EQ(reader.read(bytes, 1), 0u);  // exhausted
  EXPECT_EQ(back, records);
}

TEST_F(OocoreTest, RunWriterReaderRoundTripsWireRecords) {
  using Record = std::pair<std::string, long>;
  const std::vector<Record> records = {
      {"alpha", 1}, {"", -7}, {"a much longer key with spaces", 1L << 40}};
  ScratchDir scratch("pblpar-test");
  const fs::path path = scratch.next_path("wire");
  {
    SpillWriter sink(path, 4096);
    RunWriter<Record> writer(sink);
    for (const Record& record : records) {
      writer.push(record);
    }
    sink.close();
    EXPECT_EQ(writer.records(), 3);
  }
  SpillReader source(path, 4096);
  RunReader<Record> reader(source);
  std::vector<Record> back;
  Record record;
  while (reader.pull(&record)) {
    back.push_back(record);
  }
  EXPECT_EQ(back, records);
}

// --- LoserTree edge cases -------------------------------------------------

/// Minimal pull-source over an in-memory vector.
template <class T>
struct VecSrc {
  const std::vector<T>* values;
  std::size_t i = 0;
  bool pull(T* out) {
    if (i >= values->size()) {
      return false;
    }
    *out = (*values)[i++];
    return true;
  }
};

template <class T, class Less = std::less<T>>
std::vector<T> merge_all(const std::vector<std::vector<T>>& runs,
                         Less less = {}) {
  std::vector<VecSrc<T>> sources;
  sources.reserve(runs.size());
  for (const auto& run : runs) {
    sources.push_back(VecSrc<T>{&run});
  }
  std::vector<VecSrc<T>*> ptrs;
  for (auto& source : sources) {
    ptrs.push_back(&source);
  }
  LoserTree<T, VecSrc<T>, Less> tree(std::move(ptrs), less);
  std::vector<T> merged;
  T value;
  while (tree.pop(&value)) {
    merged.push_back(value);
  }
  return merged;
}

TEST_F(OocoreTest, LoserTreeEmptyFanIn) {
  EXPECT_TRUE(merge_all<int>({}).empty());
}

TEST_F(OocoreTest, LoserTreeSingleRunPassesThrough) {
  const std::vector<int> run = {1, 2, 2, 9};
  EXPECT_EQ(merge_all<int>({run}), run);
}

TEST_F(OocoreTest, LoserTreeAllEqualKeysDrainLowerSourcesFirst) {
  // Every head compares equal, so the tie-break alone decides: source 0
  // must drain completely before source 1 yields anything, and so on.
  std::vector<std::vector<int>> runs = {{7, 7, 7}, {7}, {7, 7}};
  std::vector<VecSrc<int>> sources;
  for (const auto& run : runs) {
    sources.push_back(VecSrc<int>{&run});
  }
  std::vector<VecSrc<int>*> ptrs;
  for (auto& source : sources) {
    ptrs.push_back(&source);
  }
  LoserTree<int, VecSrc<int>> tree(std::move(ptrs));
  std::vector<int> origin;
  int value = 0;
  int from = -1;
  while (tree.pop(&value, &from)) {
    origin.push_back(from);
  }
  EXPECT_EQ(origin, (std::vector<int>{0, 0, 0, 1, 2, 2}));
}

TEST_F(OocoreTest, LoserTreeWildlyDifferentRunLengths) {
  std::vector<std::vector<int>> runs(4);
  for (int i = 0; i < 1000; ++i) {
    runs[0].push_back(2 * i);
  }
  runs[1] = {55};
  runs[2] = {};  // empty run in the middle of the fan-in
  for (int i = 0; i < 37; ++i) {
    runs[3].push_back(30 * i);
  }
  std::vector<int> expected;
  for (const auto& run : runs) {
    expected.insert(expected.end(), run.begin(), run.end());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(merge_all<int>(runs), expected);
}

TEST_F(OocoreTest, LoserTreeNonPowerOfTwoFanInsMatchStdSort) {
  util::Rng rng(13);
  for (const int k : {3, 5, 6, 7, 9, 13}) {
    std::vector<std::vector<int>> runs(static_cast<std::size_t>(k));
    std::vector<int> expected;
    for (auto& run : runs) {
      const int length = static_cast<int>(rng.next_u64() % 50);
      for (int i = 0; i < length; ++i) {
        run.push_back(static_cast<int>(rng.next_u64() % 1000));
      }
      std::sort(run.begin(), run.end());
      expected.insert(expected.end(), run.begin(), run.end());
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(merge_all<int>(runs), expected) << "fan-in " << k;
  }
}

TEST_F(OocoreTest, LoserTreeMergeEqualsStableSortOfConcatenation) {
  // The identity the spillable shuffle rests on: merging individually
  // stable-sorted segments in segment order, ties to the lower source,
  // reproduces a stable_sort of their concatenation exactly.
  using Record = std::pair<int, int>;  // (key, provenance)
  util::Rng rng(29);
  std::vector<std::vector<Record>> runs(5);
  std::vector<Record> concat;
  int seq = 0;
  for (auto& run : runs) {
    const int length = static_cast<int>(rng.next_u64() % 80);
    for (int i = 0; i < length; ++i) {
      run.emplace_back(static_cast<int>(rng.next_u64() % 7), seq++);
    }
    std::stable_sort(
        run.begin(), run.end(),
        [](const Record& a, const Record& b) { return a.first < b.first; });
    concat.insert(concat.end(), run.begin(), run.end());
  }
  std::stable_sort(
      concat.begin(), concat.end(),
      [](const Record& a, const Record& b) { return a.first < b.first; });
  const auto key_less = [](const Record& a, const Record& b) {
    return a.first < b.first;
  };
  EXPECT_EQ((merge_all<Record, decltype(key_less)>(runs, key_less)), concat);
}

// --- External sort --------------------------------------------------------

ExtSortOptions small_budget_options() {
  ExtSortOptions opts;
  opts.memory_budget_bytes = std::size_t{64} << 10;
  opts.io_buffer_bytes = 4096;
  opts.threads = 4;
  return opts;
}

TEST_F(OocoreTest, SortFileInBudgetPathMatchesStdSort) {
  std::vector<std::uint64_t> records = random_records(1000, 17);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  const ExtSortReport report =
      sort_file<std::uint64_t>(in, out, small_budget_options());
  EXPECT_FALSE(report.external);
  EXPECT_EQ(report.records, 1000);
  std::sort(records.begin(), records.end());
  EXPECT_EQ(read_records(out), records);
}

TEST_F(OocoreTest, SortFileEmptyInput) {
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, {});
  const ExtSortReport report =
      sort_file<std::uint64_t>(in, out, small_budget_options());
  EXPECT_EQ(report.records, 0);
  EXPECT_EQ(report.initial_runs, 0);
  EXPECT_TRUE(read_records(out).empty());
}

TEST_F(OocoreTest, SortFileRejectsTornInput) {
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  {
    SpillWriter writer(in, 4096);
    const char bytes[11] = {};
    writer.write(bytes, sizeof(bytes));  // not a whole number of records
    writer.close();
  }
  EXPECT_THROW(sort_file<std::uint64_t>(in, out, small_budget_options()),
               util::PreconditionError);
}

TEST_F(OocoreTest, SortFileExternalMatchesStdSort) {
  // 512 KiB of records against a 64 KiB budget: must go external with
  // multiple runs, and the merged output must equal std::sort exactly.
  std::vector<std::uint64_t> records = random_records(65536, 23);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  const ExtSortReport report =
      sort_file<std::uint64_t>(in, out, small_budget_options());
  EXPECT_TRUE(report.external);
  EXPECT_GT(report.initial_runs, 1);
  EXPECT_GE(report.merge_passes, 1);
  EXPECT_GT(report.spilled_bytes, 0);
  std::sort(records.begin(), records.end());
  EXPECT_EQ(read_records(out), records);
}

TEST_F(OocoreTest, SortFileMultiPassMergeWithTinyFanIn) {
  std::vector<std::uint64_t> records = random_records(65536, 31);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  ExtSortOptions opts = small_budget_options();
  opts.max_fan_in = 2;  // force a deep merge cascade
  const ExtSortReport report = sort_file<std::uint64_t>(in, out, opts);
  EXPECT_TRUE(report.external);
  EXPECT_EQ(report.merge_fan_in, 2);
  EXPECT_GE(report.merge_passes, 3);
  std::sort(records.begin(), records.end());
  EXPECT_EQ(read_records(out), records);
}

TEST_F(OocoreTest, SortFileSurvivesIoChaos) {
  std::vector<std::uint64_t> records = random_records(20000, 37);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  ExtSortOptions opts = small_budget_options();
  opts.chaos.short_write_probability = 1.0;
  opts.chaos.slow_read_probability = 0.001;
  opts.chaos.slow_read_delay_s = 1e-4;
  opts.chaos.seed = 99;
  const ExtSortReport report = sort_file<std::uint64_t>(in, out, opts);
  EXPECT_TRUE(report.external);
  std::sort(records.begin(), records.end());
  EXPECT_EQ(read_records(out), records);
}

TEST_F(OocoreTest, SortFileCancelDrainLeavesNothingBehind) {
  const std::vector<std::uint64_t> records = random_records(65536, 41);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  rt::CancelSource source;
  source.cancel();  // fires at the first chunk-claim boundary
  ExtSortOptions opts = small_budget_options();
  opts.cancel = source.token();
  EXPECT_THROW(sort_file<std::uint64_t>(in, out, opts), rt::Cancelled);
  // The sort's own ScratchDir must have unwound with the throw; only this
  // test's input/output staging dir remains (checked by TearDown too).
  EXPECT_EQ(pid_scratch_entries(), 1u);
}

TEST_F(OocoreTest, SortFileTracedRecordsSpillAndMergeEvents) {
  std::vector<std::uint64_t> records = random_records(32768, 43);
  ScratchDir scratch("pblpar-test");
  const fs::path in = scratch.next_path("in");
  const fs::path out = scratch.next_path("out");
  write_records(in, records);
  ExtSortOptions opts = small_budget_options();
  opts.record_trace = true;
  const ExtSortReport report = sort_file<std::uint64_t>(in, out, opts);
  ASSERT_TRUE(report.external);
  ASSERT_GE(report.profiles.size(), 2u);  // run formation + >=1 merge pass

  const auto& formation = *report.profiles.front();
  ASSERT_EQ(static_cast<int>(formation.spills.size()), report.initial_runs);
  std::int64_t spilled_records = 0;
  for (const rt::SpillEvent& spill : formation.spills) {
    EXPECT_EQ(spill.phase, "extsort-run");
    EXPECT_GE(spill.end_s, spill.start_s);
    spilled_records += spill.records;
  }
  EXPECT_EQ(spilled_records, report.records);

  std::int64_t merge_events = 0;
  for (std::size_t i = 1; i < report.profiles.size(); ++i) {
    for (const rt::MergeEvent& merge : report.profiles[i]->merges) {
      EXPECT_GE(merge.fan_in, 1);
      EXPECT_LE(merge.fan_in, report.merge_fan_in);
      ++merge_events;
    }
  }
  EXPECT_GE(merge_events, 1);
}

TEST_F(OocoreTest, SortValuesGoesExternalAndMatchesStdSort) {
  std::vector<std::uint64_t> values = random_records(65536, 47);
  std::vector<std::uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  const ExtSortReport report =
      sort_values(values, small_budget_options());
  EXPECT_TRUE(report.external);
  EXPECT_EQ(values, expected);
}

}  // namespace
}  // namespace pblpar::oocore
