#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "cluster/wire.hpp"
#include "mapreduce/defs.hpp"
#include "mapreduce/job.hpp"
#include "rt/cancel.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace pblpar::mapreduce {
namespace {

namespace fs = std::filesystem;

std::size_t pid_scratch_entries() {
  const std::string pid_tag =
#if defined(_WIN32)
      "-" + std::to_string(_getpid()) + "-";
#else
      "-" + std::to_string(::getpid()) + "-";
#endif
  std::error_code ec;
  fs::directory_iterator it(fs::temp_directory_path(), ec);
  if (ec) {
    return 0;
  }
  std::size_t count = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("pblpar-", 0) == 0 &&
        name.find(pid_tag) != std::string::npos) {
      ++count;
    }
  }
  return count;
}

/// Tmpdir-hygiene fixture: a spilling job must never strand its shuffle
/// scratch directory, whatever path run() exits through.
class SpillShuffleTest : public ::testing::Test {
 protected:
  void SetUp() override { baseline_entries_ = pid_scratch_entries(); }
  void TearDown() override {
    EXPECT_EQ(pid_scratch_entries(), baseline_entries_)
        << "a spilling job left its scratch directory behind";
  }

 private:
  std::size_t baseline_entries_ = 0;
};

/// Byte-level fingerprint of a job's output: every key and value pushed
/// through the deterministic cluster wire codec, then FNV-1a over the
/// bytes. Two outputs fingerprint equal iff they are byte-identical.
template <class K, class V>
std::uint64_t fingerprint(const std::vector<std::pair<K, V>>& rows) {
  cluster::Writer writer;
  for (const auto& [key, value] : rows) {
    cluster::WireCodec<K>::write(writer, key);
    cluster::WireCodec<V>::write(writer, value);
  }
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::byte byte : writer.take()) {
    hash ^= static_cast<std::uint64_t>(byte);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Deterministic pseudo-documents: enough distinct words that a few-KiB
/// budget forces every worker to spill many times.
std::vector<std::string> make_documents(int count) {
  std::vector<std::string> documents;
  documents.reserve(static_cast<std::size_t>(count));
  for (int d = 0; d < count; ++d) {
    std::string text;
    for (int w = 0; w < 12; ++w) {
      text += "word" + std::to_string((d * 13 + w * 7) % 101) + " ";
    }
    text += "doc" + std::to_string(d % 17);
    documents.push_back(std::move(text));
  }
  return documents;
}

constexpr std::int64_t kTinyBudget = 4096;

/// Run `job` twice over `inputs` — in-memory and with a tiny budget —
/// and require byte-identical outputs plus real spill activity.
template <class JobT, class K1, class V1>
void expect_spill_identity(JobT& job,
                           const std::vector<std::pair<K1, V1>>& inputs) {
  job.threads(4).reducers(3);
  const auto in_memory = job.run(inputs);

  RunReport report;
  job.memory_budget_bytes(kTinyBudget);
  const auto spilled = job.run(inputs, &report);

  EXPECT_GT(report.spilled_runs, 0) << "budget never forced a spill";
  EXPECT_GT(report.spilled_bytes, 0);
  EXPECT_EQ(fingerprint(in_memory), fingerprint(spilled));
  EXPECT_EQ(in_memory, spilled);
}

TEST_F(SpillShuffleTest, WordCountSpillsByteIdentical) {
  Job<int, std::string, std::string, long> job;
  defs::WordCountDef{}.configure(job);
  expect_spill_identity(job, defs::indexed(make_documents(300)));
}

TEST_F(SpillShuffleTest, InvertedIndexSpillsByteIdentical) {
  Job<int, std::string, std::string, int, std::vector<int>> job;
  defs::InvertedIndexDef{}.configure(job);
  expect_spill_identity(job, defs::indexed(make_documents(300)));
}

TEST_F(SpillShuffleTest, UrlAccessCountsSpillsByteIdentical) {
  std::vector<std::string> lines;
  for (int i = 0; i < 2000; ++i) {
    lines.push_back("/page/" + std::to_string(i % 97) + " GET 200");
  }
  Job<int, std::string, std::string, long> job;
  defs::UrlAccessCountsDef{}.configure(job);
  expect_spill_identity(job, defs::indexed(lines));
}

TEST_F(SpillShuffleTest, DistributedGrepSpillsByteIdentical) {
  std::vector<std::string> lines;
  for (int i = 0; i < 2000; ++i) {
    lines.push_back("line " + std::to_string(i) +
                    (i % 3 == 0 ? " needle in the haystack" : " hay only"));
  }
  Job<int, std::string, int, std::string> job;
  defs::DistributedGrepDef{"needle"}.configure(job);
  expect_spill_identity(job, defs::indexed(lines));
}

TEST_F(SpillShuffleTest, MeanPerKeySpillsByteIdentical) {
  std::vector<std::pair<std::string, double>> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.emplace_back("sensor" + std::to_string(i % 59),
                         0.25 * static_cast<double>(i % 1000));
  }
  Job<std::string, double, std::string, double> job;
  defs::MeanPerKeyDef{}.configure(job);
  expect_spill_identity(job, samples);
}

TEST_F(SpillShuffleTest, BudgetKnobRejectsNonPositiveBytes) {
  Job<int, std::string, std::string, long> job;
  EXPECT_THROW(job.memory_budget_bytes(0), util::PreconditionError);
  EXPECT_THROW(job.memory_budget_bytes(-1024), util::PreconditionError);
}

TEST_F(SpillShuffleTest, SpillSurvivesIoChaos) {
  const auto inputs = defs::indexed(make_documents(200));
  Job<int, std::string, std::string, long> job;
  defs::WordCountDef{}.configure(job);
  job.threads(4).reducers(4);
  const auto in_memory = job.run(inputs);

  oocore::IoChaos chaos;
  chaos.short_write_probability = 1.0;
  chaos.slow_read_probability = 0.01;
  chaos.slow_read_delay_s = 1e-4;
  chaos.seed = 7;
  RunReport report;
  job.memory_budget_bytes(kTinyBudget).io_chaos(chaos);
  const auto spilled = job.run(inputs, &report);
  EXPECT_GT(report.spilled_runs, 0);
  EXPECT_EQ(in_memory, spilled);
}

TEST_F(SpillShuffleTest, TracedSpillRecordsSpillAndMergeEvents) {
  const auto inputs = defs::indexed(make_documents(200));
  Job<int, std::string, std::string, long> job;
  defs::WordCountDef{}.configure(job);
  RunReport report;
  job.threads(4).reducers(3).memory_budget_bytes(kTinyBudget).traced();
  const auto rows = job.run(inputs, &report);
  EXPECT_FALSE(rows.empty());
  ASSERT_NE(report.map_profile, nullptr);
  ASSERT_NE(report.reduce_profile, nullptr);

  ASSERT_FALSE(report.map_profile->spills.empty());
  std::int64_t spill_bytes = 0;
  for (const rt::SpillEvent& spill : report.map_profile->spills) {
    EXPECT_EQ(spill.phase, "shuffle");
    EXPECT_GE(spill.end_s, spill.start_s);
    spill_bytes += spill.bytes;
  }
  EXPECT_EQ(spill_bytes, report.spilled_bytes);

  ASSERT_FALSE(report.reduce_profile->merges.empty());
  for (const rt::MergeEvent& merge : report.reduce_profile->merges) {
    EXPECT_GE(merge.fan_in, 1);
    EXPECT_GT(merge.records, 0);
  }

  // The events flow through the PR-1 schema exports too.
  const std::string json = report.map_profile->to_json();
  EXPECT_NE(json.find("\"spills\""), std::string::npos);
  EXPECT_NE(report.reduce_profile->to_json().find("\"merges\""),
            std::string::npos);
}

TEST_F(SpillShuffleTest, AbortCancelDropsSpillFiles) {
  const auto inputs = defs::indexed(make_documents(400));
  rt::CancelSource source;
  Job<int, std::string, std::string, long> job;
  defs::WordCountDef{}.configure(job);
  std::atomic<int> mapped{0};
  job.map([&source, &mapped](const int&, const std::string& text,
                             Emitter<std::string, long>& out) {
       // Cancel mid-map, well after the tiny budget has forced spills.
       if (mapped.fetch_add(1) == 150) {
         source.cancel();
       }
       for (std::string& word : util::tokenize_words(text)) {
         out.emit(std::move(word), 1L);
       }
     })
      .threads(4)
      .reducers(3)
      .memory_budget_bytes(kTinyBudget)
      .cancellable(source.token());
  EXPECT_THROW(job.run(inputs), rt::Cancelled);
  // TearDown asserts the scratch directory (and every spill run in it)
  // died with the throw.
}

TEST_F(SpillShuffleTest, SalvageAfterSpillStillReduces) {
  const auto inputs = defs::indexed(make_documents(400));
  Job<int, std::string, std::string, long> baseline_job;
  defs::WordCountDef{}.configure(baseline_job);
  baseline_job.threads(4).reducers(3);
  const auto full = baseline_job.run(inputs);
  std::map<std::string, long> full_counts(full.begin(), full.end());

  rt::CancelSource source;
  Job<int, std::string, std::string, long> job;
  defs::WordCountDef{}.configure(job);
  std::atomic<int> mapped{0};
  job.map([&source, &mapped](const int&, const std::string& text,
                             Emitter<std::string, long>& out) {
       if (mapped.fetch_add(1) == 150) {
         source.cancel();
       }
       for (std::string& word : util::tokenize_words(text)) {
         out.emit(std::move(word), 1L);
       }
     })
      .threads(4)
      .reducers(3)
      .memory_budget_bytes(kTinyBudget)
      .cancellable(source.token())
      .cut_policy(DeadlinePolicy::Salvage);
  RunReport report;
  const auto salvaged = job.run(inputs, &report);
  EXPECT_TRUE(report.deadline_hit);
  EXPECT_LT(report.mapped_records, report.total_records);
  EXPECT_FALSE(salvaged.empty());
  // A salvaged count can never exceed the full run's count for that key:
  // the kept records are a subset of the input.
  for (const auto& [word, count] : salvaged) {
    ASSERT_TRUE(full_counts.count(word) > 0) << word;
    EXPECT_LE(count, full_counts[word]) << word;
  }
}

}  // namespace
}  // namespace pblpar::mapreduce
