#include <gtest/gtest.h>

#include <cmath>

#include "classroom/analysis.hpp"
#include "classroom/calibrate.hpp"
#include "classroom/model.hpp"
#include "classroom/study.hpp"
#include "classroom/targets.hpp"
#include "util/error.hpp"

namespace pblpar::classroom {
namespace {

// --- Targets -------------------------------------------------------------------

TEST(TargetsTest, OverallMeansMatchTable2And3) {
  const PaperTargets& targets = PaperTargets::published();
  // Table 2's means are the averages of Table 5's element means (and
  // likewise Tables 3/6); verify the transcription is self-consistent.
  EXPECT_NEAR(targets.emphasis_overall_mean(0), 4.023068, 0.01);
  EXPECT_NEAR(targets.emphasis_overall_mean(1), 4.124365, 0.01);
  EXPECT_NEAR(targets.growth_overall_mean(0), 3.81, 0.01);
  EXPECT_NEAR(targets.growth_overall_mean(1), 4.01, 0.01);
}

TEST(TargetsTest, TeamworkIsTopRankedEverywhere) {
  const PaperTargets& targets = PaperTargets::published();
  const ElementTargets& teamwork = targets.of(survey::Element::Teamwork);
  for (const ElementTargets& element : targets.elements) {
    EXPECT_LE(element.emphasis_mean[0], teamwork.emphasis_mean[0]);
    EXPECT_LE(element.growth_mean[1], teamwork.growth_mean[1]);
  }
}

TEST(TargetsTest, EveryMeanRisesInSecondHalf) {
  for (const ElementTargets& element : PaperTargets::published().elements) {
    EXPECT_GT(element.emphasis_mean[1], element.emphasis_mean[0]);
    EXPECT_GT(element.growth_mean[1], element.growth_mean[0]);
  }
}

// --- Discretized mean map ---------------------------------------------------------

TEST(DiscretizedMeanTest, MidScaleIsIdentityLike) {
  // Far from the clamp boundaries the rounding is unbiased.
  EXPECT_NEAR(discretized_mean(3.0, 0.9), 3.0, 1e-9);
}

TEST(DiscretizedMeanTest, MonotoneInMu) {
  double previous = 0.0;
  for (double mu = 1.0; mu <= 5.0; mu += 0.25) {
    const double value = discretized_mean(mu, 0.9);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

TEST(DiscretizedMeanTest, ClampPullsExtremeMeansInward) {
  EXPECT_GT(discretized_mean(0.0, 0.9), 1.0);
  EXPECT_LT(discretized_mean(6.5, 0.9), 5.0);
  EXPECT_LT(discretized_mean(4.8, 0.9), 4.8);  // ceiling effect
}

TEST(DiscretizedMeanTest, RejectsBadSd) {
  EXPECT_THROW(discretized_mean(3.0, 0.0), util::PreconditionError);
}

// --- Generator -----------------------------------------------------------------

TEST(GeneratorTest, ResponsesAreValidAndDeterministic) {
  CohortConfig config;
  config.cohort_size = 50;
  config.seed = 123;
  const GeneratedStudy a = generate_cohort(calibrated_paper_params(), config);
  const GeneratedStudy b = generate_cohort(calibrated_paper_params(), config);

  ASSERT_EQ(a.first_half.cohort_size(), 50u);
  ASSERT_EQ(a.second_half.cohort_size(), 50u);
  for (const auto& response : a.first_half.responses) {
    EXPECT_NO_THROW(survey::validate(response));
  }
  // Bitwise deterministic.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.first_half.responses[i].emphasis[0].definition,
              b.first_half.responses[i].emphasis[0].definition);
    EXPECT_EQ(a.second_half.responses[i].growth[3].components,
              b.second_half.responses[i].growth[3].components);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CohortConfig a_config;
  a_config.cohort_size = 30;
  a_config.seed = 1;
  CohortConfig b_config = a_config;
  b_config.seed = 2;
  const GeneratedStudy a =
      generate_cohort(calibrated_paper_params(), a_config);
  const GeneratedStudy b =
      generate_cohort(calibrated_paper_params(), b_config);
  int differences = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (a.first_half.responses[i].emphasis[0].definition !=
        b.first_half.responses[i].emphasis[0].definition) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(GeneratorTest, RejectsTinyCohort) {
  CohortConfig config;
  config.cohort_size = 1;
  EXPECT_THROW(generate_cohort(calibrated_paper_params(), config),
               util::PreconditionError);
}

// --- Calibration quality ----------------------------------------------------------
// These are the acceptance gates of the reproduction: a large generated
// cohort must land on the paper's published statistics.

class CalibrationQualityTest : public ::testing::Test {
 protected:
  static const GeneratedStudy& big_cohort() {
    static const GeneratedStudy kStudy = [] {
      CohortConfig config;
      config.cohort_size = 20000;
      config.seed = 777;
      return generate_cohort(calibrated_paper_params(), config);
    }();
    return kStudy;
  }
};

TEST_F(CalibrationQualityTest, ElementMeansWithinFiveHundredths) {
  const PaperTargets& targets = PaperTargets::published();
  const GeneratedStudy& study = big_cohort();
  for (std::size_t e = 0; e < survey::kElementCount; ++e) {
    const survey::Element element = survey::kAllElements[e];
    const auto& sittings = {&study.first_half, &study.second_half};
    int half = 0;
    for (const auto* sitting : sittings) {
      EXPECT_NEAR(sitting->cohort_element_mean(
                      survey::Category::ClassEmphasis, element),
                  targets.elements[e].emphasis_mean[
                      static_cast<std::size_t>(half)],
                  0.05)
          << survey::to_string(element) << " emphasis half " << half;
      EXPECT_NEAR(sitting->cohort_element_mean(
                      survey::Category::PersonalGrowth, element),
                  targets.elements[e].growth_mean[
                      static_cast<std::size_t>(half)],
                  0.05)
          << survey::to_string(element) << " growth half " << half;
      ++half;
    }
  }
}

TEST_F(CalibrationQualityTest, CorrelationsWithinEightHundredths) {
  const PaperTargets& targets = PaperTargets::published();
  const StudyAnalysis analysis =
      analyze(big_cohort().first_half, big_cohort().second_half);
  for (std::size_t e = 0; e < survey::kElementCount; ++e) {
    EXPECT_NEAR(analysis.correlations[e].first_half.r,
                targets.elements[e].correlation[0], 0.08)
        << survey::to_string(survey::kAllElements[e]) << " half 1";
    EXPECT_NEAR(analysis.correlations[e].second_half.r,
                targets.elements[e].correlation[1], 0.08)
        << survey::to_string(survey::kAllElements[e]) << " half 2";
  }
}

TEST_F(CalibrationQualityTest, OverallSdsWithinFifteenPercent) {
  const PaperTargets& targets = PaperTargets::published();
  const StudyAnalysis analysis =
      analyze(big_cohort().first_half, big_cohort().second_half);
  EXPECT_NEAR(analysis.emphasis_effect.sd_first,
              targets.emphasis_overall_sd[0],
              0.15 * targets.emphasis_overall_sd[0]);
  EXPECT_NEAR(analysis.emphasis_effect.sd_second,
              targets.emphasis_overall_sd[1],
              0.15 * targets.emphasis_overall_sd[1]);
  EXPECT_NEAR(analysis.growth_effect.sd_first,
              targets.growth_overall_sd[0],
              0.15 * targets.growth_overall_sd[0]);
  EXPECT_NEAR(analysis.growth_effect.sd_second,
              targets.growth_overall_sd[1],
              0.15 * targets.growth_overall_sd[1]);
}

TEST_F(CalibrationQualityTest, EffectSizesMatchTables2And3) {
  const StudyAnalysis analysis =
      analyze(big_cohort().first_half, big_cohort().second_half);
  // Paper: emphasis d = 0.50 (medium), growth d = 0.86 (large).
  EXPECT_NEAR(analysis.emphasis_effect.cohens_d, 0.50, 0.08);
  EXPECT_NEAR(analysis.growth_effect.cohens_d, 0.86, 0.10);
  EXPECT_GT(analysis.growth_effect.cohens_d,
            analysis.emphasis_effect.cohens_d);
}

// --- Full paper-scale study -------------------------------------------------------

class SemesterStudyTest : public ::testing::Test {
 protected:
  static const SemesterStudy& study() {
    static const SemesterStudy kStudy = SemesterStudy::simulate();
    return kStudy;
  }
};

TEST_F(SemesterStudyTest, CohortAndTeamsMatchPaperSetup) {
  EXPECT_EQ(study().roster.size(), 124u);
  EXPECT_EQ(study().teams.size(), 26u);
  EXPECT_EQ(study().first_survey.cohort_size(), 124u);
  EXPECT_EQ(study().second_survey.cohort_size(), 124u);
}

TEST_F(SemesterStudyTest, Table1BothShiftsSignificantAndPositive) {
  const StudyAnalysis& analysis = study().analysis;
  // The paper reports the difference as (first - second) = -0.10/-0.20;
  // our mean_difference is (second - first), so signs flip.
  EXPECT_GT(analysis.emphasis_ttest.mean_difference, 0.0);
  EXPECT_GT(analysis.growth_ttest.mean_difference, 0.0);
  EXPECT_TRUE(analysis.emphasis_ttest.significant(0.05));
  EXPECT_TRUE(analysis.growth_ttest.significant(0.05));
  EXPECT_GT(analysis.growth_ttest.t, analysis.emphasis_ttest.t);
}

TEST_F(SemesterStudyTest, Table1MeanDifferencesNearPaper) {
  const StudyAnalysis& analysis = study().analysis;
  EXPECT_NEAR(analysis.emphasis_ttest.mean_difference, 0.10, 0.06);
  EXPECT_NEAR(analysis.growth_ttest.mean_difference, 0.20, 0.08);
}

TEST_F(SemesterStudyTest, Tables2And3EffectBands) {
  const StudyAnalysis& analysis = study().analysis;
  // At N=124 the sampling noise is real; require the paper's bands, not
  // its point values: emphasis at least small-to-medium, growth large.
  EXPECT_GT(analysis.emphasis_effect.cohens_d, 0.25);
  EXPECT_LT(analysis.emphasis_effect.cohens_d, 0.80);
  EXPECT_GT(analysis.growth_effect.cohens_d, 0.55);
  EXPECT_LT(analysis.growth_effect.cohens_d, 1.20);
}

TEST_F(SemesterStudyTest, Table4AllPositiveAndSignificant) {
  for (const CorrelationRow& row : study().analysis.correlations) {
    EXPECT_GT(row.first_half.r, 0.15) << survey::to_string(row.element);
    EXPECT_GT(row.second_half.r, 0.15) << survey::to_string(row.element);
    EXPECT_LT(row.first_half.p_two_tailed, 0.001);
    EXPECT_LT(row.second_half.p_two_tailed, 0.001);
  }
}

TEST_F(SemesterStudyTest, Table4TeamworkWeakestEvalStrongest) {
  const auto& correlations = study().analysis.correlations;
  const auto r_of = [&](survey::Element element, int half) {
    for (const CorrelationRow& row : correlations) {
      if (row.element == element) {
        return half == 0 ? row.first_half.r : row.second_half.r;
      }
    }
    throw util::InvariantError("element missing");
  };
  // Paper: Teamwork is the weakest link in half 1 (r = 0.38, 'low');
  // Evaluation & Decision Making the strongest (r = 0.73, 'high').
  for (const CorrelationRow& row : correlations) {
    EXPECT_LE(r_of(survey::Element::Teamwork, 0), row.first_half.r + 1e-9);
  }
  EXPECT_GT(r_of(survey::Element::EvaluationAndDecisionMaking, 0),
            r_of(survey::Element::Teamwork, 0) + 0.15);
}

TEST_F(SemesterStudyTest, Tables5And6RankingShape) {
  const StudyAnalysis& analysis = study().analysis;
  for (int half = 0; half < 2; ++half) {
    // Teamwork tops every ranking (Tables 5 and 6).
    EXPECT_EQ(analysis.emphasis_ranking[static_cast<std::size_t>(half)]
                  .front()
                  .name,
              "Teamwork");
    EXPECT_EQ(
        analysis.growth_ranking[static_cast<std::size_t>(half)].front().name,
        "Teamwork");
    // Implementation ranks second.
    EXPECT_EQ(analysis.emphasis_ranking[static_cast<std::size_t>(half)][1]
                  .name,
              "Implementation");
  }
  // Growth half 1 bottom: Evaluation and Decision Making (3.36).
  EXPECT_EQ(analysis.growth_ranking[0].back().name,
            "Evaluation and Decision Making");
}

TEST_F(SemesterStudyTest, GrowthSpreadShrinksInSecondHalf) {
  // Table 6's narrative: selective growth in half 1 (large spread),
  // more equal growth in half 2.
  const auto spread = [](const std::vector<stats::RankedItem>& ranking) {
    return ranking.front().value - ranking.back().value;
  };
  const StudyAnalysis& analysis = study().analysis;
  EXPECT_GT(spread(analysis.growth_ranking[0]),
            spread(analysis.growth_ranking[1]));
}

TEST_F(SemesterStudyTest, ImplementationGapSmallInSecondHalf) {
  // Discussion section: Implementation's emphasis-growth gap in the
  // second half was 0.03 — essentially closed.
  for (const EmphasisGrowthGap& gap : study().analysis.second_half_gaps) {
    if (gap.element == survey::Element::Implementation) {
      EXPECT_LT(std::fabs(gap.gap), 0.15);
    }
  }
}

TEST_F(SemesterStudyTest, DeterministicAcrossCalls) {
  const SemesterStudy again = SemesterStudy::simulate();
  EXPECT_DOUBLE_EQ(again.analysis.growth_effect.cohens_d,
                   study().analysis.growth_effect.cohens_d);
  EXPECT_DOUBLE_EQ(again.analysis.emphasis_ttest.t,
                   study().analysis.emphasis_ttest.t);
}

TEST(AnalyzeTest, RejectsMismatchedCohorts) {
  survey::Administration a;
  survey::Administration b;
  a.responses.resize(5);
  b.responses.resize(4);
  EXPECT_THROW(analyze(a, b), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::classroom
