#include "mp/chaos.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "mp/sim_world.hpp"
#include "mp/world.hpp"
#include "util/error.hpp"

namespace pblpar::mp {
namespace {

ClusterSpec fast_net() {
  ClusterSpec spec;
  spec.net_latency_us = 0.0;
  spec.net_bandwidth_mb_s = 1e9;
  spec.send_overhead_us = 0.0;
  spec.node.fork_cost_us = 0.0;
  spec.node.join_cost_us = 0.0;
  spec.node.mutex_acquire_cost_us = 0.0;
  return spec;
}

TEST(TransportChaosTest, EmptyPlanIsUnarmed) {
  TransportChaos chaos;
  EXPECT_FALSE(chaos.armed());
  chaos.links.push_back(ChaosLinkRule{0, 1, LinkChaos{}});
  EXPECT_FALSE(chaos.armed());  // an empty per-link rule arms nothing
  chaos.all.drop = 0.1;
  EXPECT_TRUE(chaos.armed());
}

TEST(TransportChaosTest, FirstMatchingLinkRuleWins) {
  TransportChaos chaos;
  chaos.all.drop = 0.5;
  chaos.links.push_back(ChaosLinkRule{1, 0, LinkChaos{.drop = 0.1}});
  chaos.links.push_back(ChaosLinkRule{1, -1, LinkChaos{.drop = 0.2}});
  EXPECT_DOUBLE_EQ(chaos.link_for(1, 0).drop, 0.1);
  EXPECT_DOUBLE_EQ(chaos.link_for(1, 2).drop, 0.2);
  EXPECT_DOUBLE_EQ(chaos.link_for(0, 1).drop, 0.5);
}

TEST(TransportChaosTest, ValidateRejectsDegeneratePlans) {
  {
    TransportChaos chaos;
    chaos.all.drop = 1.0;  // severed cable, not chaos
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
  {
    TransportChaos chaos;
    chaos.all.duplicate = -0.1;
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
  {
    TransportChaos chaos;
    chaos.all.reorder = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
  {
    TransportChaos chaos;
    chaos.all.delay_probability = 0.5;  // armed, but delay_s stays 0
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
  {
    TransportChaos chaos;
    chaos.all.delay_probability = 0.5;
    chaos.all.delay_s = std::numeric_limits<double>::infinity();
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
  {
    TransportChaos chaos;
    chaos.links.push_back(ChaosLinkRule{-2, 0, LinkChaos{.drop = 0.1}});
    EXPECT_THROW(chaos.validate(), util::PreconditionError);
  }
}

TEST(TransportChaosTest, WorldRunRejectsInvalidPlanLoudly) {
  WorldOptions options;
  options.chaos.all.drop = 1.0;
  EXPECT_THROW(World::run(2, [](Comm&) {}, options),
               util::PreconditionError);
}

TEST(TransportChaosTest, SimRunRejectsInvalidPlanLoudly) {
  ClusterSpec spec = fast_net();
  spec.chaos.all.delay_probability = 2.0;
  spec.chaos.all.delay_s = 0.1;
  EXPECT_THROW(SimWorld::run(2, [](SimComm&) {}, spec),
               util::PreconditionError);
}

TEST(TransportChaosTest, SimDropCountsAndDeliversTheRest) {
  constexpr int kSends = 200;
  ClusterSpec spec = fast_net();
  spec.chaos.seed = 7;
  spec.chaos.links.push_back(
      ChaosLinkRule{1, 0, LinkChaos{.drop = 0.3}});

  std::uint64_t dropped = 0;
  int received = 0;
  SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 1) {
          for (int i = 0; i < kSends; ++i) {
            comm.send(0, 5, i);
          }
        } else {
          // Drain until the wire stays silent for a while (virtual time
          // is cheap); drops must never block the receiver forever.
          RawMessage msg;
          while (comm.recv_raw_timed(1, 5, 1.0, &msg)) {
            ++received;
          }
          dropped = comm.wire_stats(1).chaos_dropped;
        }
      },
      spec);

  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(received + static_cast<int>(dropped), kSends);
}

TEST(TransportChaosTest, SimDuplicateDeliversGhostCopies) {
  constexpr int kSends = 100;
  ClusterSpec spec = fast_net();
  spec.chaos.seed = 11;
  spec.chaos.links.push_back(
      ChaosLinkRule{1, 0, LinkChaos{.duplicate = 0.5}});

  std::uint64_t duplicated = 0;
  int received = 0;
  SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 1) {
          for (int i = 0; i < kSends; ++i) {
            comm.send(0, 5, i);
          }
        } else {
          RawMessage msg;
          while (comm.recv_raw_timed(1, 5, 1.0, &msg)) {
            ++received;
          }
          const WireStats stats = comm.wire_stats(1);
          duplicated = stats.chaos_duplicated;
          // Logical send counters are pre-chaos: ghosts are not sends.
          EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kSends));
        }
      },
      spec);

  EXPECT_GT(duplicated, 0u);
  EXPECT_EQ(received, kSends + static_cast<int>(duplicated));
}

TEST(TransportChaosTest, SimReorderSwapsAdjacentMessages) {
  ClusterSpec spec = fast_net();
  spec.chaos.links.push_back(
      ChaosLinkRule{1, 0, LinkChaos{.reorder = 1.0}});

  std::vector<int> order;
  SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 1) {
          comm.send(0, 5, 1);
          comm.send(0, 5, 2);
        } else {
          order.push_back(comm.recv<int>(1, 5));
          order.push_back(comm.recv<int>(1, 5));
          EXPECT_EQ(comm.wire_stats(1).chaos_reordered, 1u);
        }
      },
      spec);
  // Message 1 was held back and released by message 2's push.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TransportChaosTest, SimDelayShiftsArrivalIntoVirtualFuture) {
  ClusterSpec spec = fast_net();
  spec.chaos.links.push_back(ChaosLinkRule{
      1, 0, LinkChaos{.delay_probability = 1.0, .delay_s = 0.5}});

  SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 1) {
          comm.send(0, 5, 42);
        } else {
          const double before = comm.context().now();
          EXPECT_EQ(comm.recv<int>(1, 5), 42);
          const double waited = comm.context().now() - before;
          EXPECT_GT(waited, 0.0);
          EXPECT_LE(waited, 0.6);
          EXPECT_EQ(comm.wire_stats(1).chaos_delayed, 1u);
        }
      },
      spec);
}

/// The determinism contract: a chaotic Sim run is a pure function of
/// (workload, spec, seed) — counters AND delivered contents replay
/// bit-for-bit.
TEST(TransportChaosTest, SimChaosReplaysBitForBitFromTheSameSeed) {
  const auto run_once = [](std::uint64_t seed) {
    ClusterSpec spec = fast_net();
    spec.chaos.seed = seed;
    spec.chaos.all.drop = 0.15;
    spec.chaos.all.duplicate = 0.15;
    spec.chaos.all.reorder = 0.1;
    std::vector<std::uint64_t> fingerprint;
    std::vector<int> received;
    SimWorld::run(
        3,
        [&](SimComm& comm) {
          if (comm.rank() != 0) {
            for (int i = 0; i < 50; ++i) {
              comm.send(0, 5, comm.rank() * 1000 + i);
            }
          } else {
            RawMessage msg;
            while (comm.recv_raw_timed(kAnySource, 5, 1.0, &msg)) {
              received.push_back(Codec<int>::decode(msg.payload));
            }
            for (int r = 1; r < 3; ++r) {
              const WireStats stats = comm.wire_stats(r);
              fingerprint.push_back(stats.chaos_dropped);
              fingerprint.push_back(stats.chaos_duplicated);
              fingerprint.push_back(stats.chaos_reordered);
            }
          }
        },
        spec);
    fingerprint.push_back(static_cast<std::uint64_t>(received.size()));
    for (const int value : received) {
      fingerprint.push_back(static_cast<std::uint64_t>(value));
    }
    return fingerprint;
  };

  const std::vector<std::uint64_t> a = run_once(21);
  const std::vector<std::uint64_t> b = run_once(21);
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0] + a[1] + a[2] + a[3] + a[4] + a[5], 0u)
      << "plan never fired; the replay assertion is vacuous";
  // A different seed draws a different trajectory (overwhelmingly).
  EXPECT_NE(run_once(22), a);
}

/// Host-world smoke: chaos injects at the mailbox push and the counters
/// surface; exact trajectories are not asserted (threads race), only
/// conservation.
TEST(TransportChaosTest, HostWorldDuplicateAndDropConservation) {
  constexpr int kSends = 300;
  WorldOptions options;
  options.chaos.seed = 5;
  options.chaos.links.push_back(
      ChaosLinkRule{1, 0, LinkChaos{.drop = 0.2, .duplicate = 0.2}});

  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  int received = 0;
  World::run(
      2,
      [&](Comm& comm) {
        if (comm.rank() == 1) {
          for (int i = 0; i < kSends; ++i) {
            comm.send(0, 5, i);
          }
        } else {
          RawMessage msg;
          while (comm.recv_raw_timed(1, 5, 0.5, &msg)) {
            ++received;
          }
          const WireStats stats = comm.wire_stats(1);
          dropped = stats.chaos_dropped;
          duplicated = stats.chaos_duplicated;
        }
      },
      options);

  // Conservation at the push boundary: every logical send either landed
  // in the mailbox (plus a ghost when duplicated) or was dropped.
  // Reorder is unarmed, so no message can be stuck in the held slot.
  EXPECT_GT(dropped + duplicated, 0u);
  EXPECT_EQ(received, kSends - static_cast<int>(dropped) +
                          static_cast<int>(duplicated));
}

}  // namespace
}  // namespace pblpar::mp
