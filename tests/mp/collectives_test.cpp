#include "mp/collectives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "mp/sim_world.hpp"
#include "mp/world.hpp"
#include "util/error.hpp"

namespace pblpar::mp {
namespace {

WorldOptions fast_timeout() {
  WorldOptions options;
  options.recv_timeout_s = 5.0;
  return options;
}

// Payloads above the pipeline threshold so the segmented paths run.
constexpr std::size_t kBigDoubles =
    (3 * detail::kPipelineSegmentBytes) / sizeof(double) + 129;  // ~768 KiB, ragged

std::vector<double> rank_pattern(int rank, std::size_t count) {
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = static_cast<double>(rank) +
                static_cast<double>(i % 1024) * 0.001;
  }
  return values;
}

// --- Host world, parametrized over non-power-of-two and size-1 worlds ----

class HostCollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(HostCollectiveTest, LargeBcastDeliversEveryByte) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               std::vector<double> data;
               if (comm.rank() == 0) {
                 data = rank_pattern(7, kBigDoubles);
               }
               comm.bcast(data, 0);
               const std::vector<double> expected =
                   rank_pattern(7, kBigDoubles);
               ASSERT_EQ(data.size(), expected.size());
               EXPECT_TRUE(std::equal(data.begin(), data.end(),
                                      expected.begin()));
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, LargeBcastFromNonZeroRoot) {
  const int ranks = GetParam();
  const int root = ranks - 1;
  World::run(ranks,
             [root](Comm& comm) {
               std::string text;
               if (comm.rank() == root) {
                 text.assign(2 * detail::kPipelineSegmentBytes + 37, 'z');
               }
               comm.bcast(text, root);
               EXPECT_EQ(text.size(), 2 * detail::kPipelineSegmentBytes + 37);
               EXPECT_EQ(text.front(), 'z');
               EXPECT_EQ(text.back(), 'z');
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, AllgatherLargePayloads) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               constexpr std::size_t kPerRank = 1 << 15;  // 256 KiB each
               const std::vector<double> mine =
                   rank_pattern(comm.rank(), kPerRank);
               const std::vector<std::vector<double>> all =
                   comm.allgather(mine);
               ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
               for (int r = 0; r < comm.size(); ++r) {
                 const std::vector<double> expected =
                     rank_pattern(r, kPerRank);
                 ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                           expected.size());
                 EXPECT_TRUE(std::equal(
                     all[static_cast<std::size_t>(r)].begin(),
                     all[static_cast<std::size_t>(r)].end(),
                     expected.begin()))
                     << "rank " << r;
               }
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, AllgatherViewMatchesAllgather) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               constexpr std::size_t kPerRank = 20'001;
               const std::vector<PayloadView<double>> views =
                   comm.allgather_view(
                       rank_pattern(comm.rank(), kPerRank));
               ASSERT_EQ(views.size(), static_cast<std::size_t>(comm.size()));
               for (int r = 0; r < comm.size(); ++r) {
                 const std::vector<double> expected =
                     rank_pattern(r, kPerRank);
                 const PayloadView<double>& view =
                     views[static_cast<std::size_t>(r)];
                 ASSERT_EQ(view.size(), expected.size());
                 EXPECT_TRUE(std::equal(view.begin(), view.end(),
                                        expected.begin()))
                     << "rank " << r;
               }
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, ReduceElementwiseLargeVector) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               std::vector<double> data =
                   rank_pattern(comm.rank(), kBigDoubles);
               comm.reduce_elementwise(
                   data, [](double a, double b) { return a + b; }, 0);
               if (comm.rank() == 0) {
                 const int n = comm.size();
                 const double rank_sum = n * (n - 1) / 2.0;
                 for (std::size_t i = 0; i < kBigDoubles; i += 4097) {
                   const double expected =
                       rank_sum + n * static_cast<double>(i % 1024) * 0.001;
                   ASSERT_NEAR(data[i], expected, 1e-9) << "element " << i;
                 }
               }
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, AllreduceElementwiseMatchesOnEveryRank) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               std::vector<std::int64_t> data(100'000);
               for (std::size_t i = 0; i < data.size(); ++i) {
                 data[i] = comm.rank() + static_cast<std::int64_t>(i);
               }
               comm.allreduce_elementwise(
                   data,
                   [](std::int64_t a, std::int64_t b) { return a + b; });
               const int n = comm.size();
               const std::int64_t rank_sum = n * (n - 1) / 2;
               for (std::size_t i = 0; i < data.size(); i += 999) {
                 ASSERT_EQ(data[i],
                           rank_sum + n * static_cast<std::int64_t>(i))
                     << "element " << i;
               }
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, RingAllreduceAnyCountAnyType) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               // A count picked to not divide most world sizes.
               std::vector<std::int64_t> data(100'003);
               for (std::size_t i = 0; i < data.size(); ++i) {
                 data[i] = comm.rank() + 1 + static_cast<std::int64_t>(i % 7);
               }
               comm.ring_allreduce(
                   data,
                   [](std::int64_t a, std::int64_t b) { return a + b; });
               const std::int64_t n = comm.size();
               for (std::size_t i = 0; i < data.size(); i += 1001) {
                 const std::int64_t expected =
                     n * (n + 1) / 2 + n * static_cast<std::int64_t>(i % 7);
                 ASSERT_EQ(data[i], expected) << "element " << i;
               }
             },
             fast_timeout());
}

TEST_P(HostCollectiveTest, RawScatterGatherRoundTrip) {
  const int ranks = GetParam();
  World::run(ranks,
             [](Comm& comm) {
               std::vector<Buffer> blobs;
               if (comm.rank() == 0) {
                 for (int r = 0; r < comm.size(); ++r) {
                   blobs.push_back(Codec<std::vector<std::int32_t>>::encode(
                       std::vector<std::int32_t>(
                           static_cast<std::size_t>(r) + 1, r)));
                 }
               }
               Buffer mine = comm.scatter_raw(std::move(blobs), 0);
               const std::span<const std::int32_t> values =
                   Codec<std::vector<std::int32_t>>::view(mine);
               ASSERT_EQ(values.size(),
                         static_cast<std::size_t>(comm.rank()) + 1);
               EXPECT_EQ(values.front(), comm.rank());

               const std::vector<Buffer> gathered =
                   comm.gather_raw(Buffer(mine), 0);
               if (comm.rank() == 0) {
                 ASSERT_EQ(gathered.size(),
                           static_cast<std::size_t>(comm.size()));
                 for (int r = 0; r < comm.size(); ++r) {
                   const auto view =
                       Codec<std::vector<std::int32_t>>::view(
                           gathered[static_cast<std::size_t>(r)]);
                   ASSERT_EQ(view.size(), static_cast<std::size_t>(r) + 1);
                   EXPECT_EQ(view.front(), r);
                 }
               }
             },
             fast_timeout());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HostCollectiveTest,
                         ::testing::Values(1, 3, 5, 6, 8));

// --- Zero-copy accounting ----------------------------------------------

TEST(CopyDisciplineTest, RvalueSendToViewRecvCountsZeroCopies) {
  World::run(2,
             [](Comm& comm) {
               if (comm.rank() == 0) {
                 std::vector<double> values(1 << 16, 1.5);  // 512 KiB
                 payload_copy_reset_stats();
                 comm.send(1, 1, std::move(values));
                 // Adoption ships the vector's own heap block.
                 EXPECT_EQ(payload_copy_stats().copies, 0u);
               } else {
                 const PayloadView<double> view = comm.recv_view<double>(0, 1);
                 ASSERT_EQ(view.size(), std::size_t{1} << 16);
                 EXPECT_EQ(view[0], 1.5);
                 EXPECT_EQ(view[view.size() - 1], 1.5);
               }
             },
             fast_timeout());
}

TEST(CopyDisciplineTest, LargeBcastCopiesAtMostOncePerHop) {
  // A large contiguous bcast costs one counted copy at the root (encode)
  // and exactly one per non-root rank: the single-frame take() into the
  // caller's string on the default (unsegmented) host world, or the
  // segment assembly when segmentation is forced. Forwarding to tree
  // children shares refcounted buffers and must not add per-hop copies.
  // The copy counters are process-global, so the whole 4-rank world is
  // accounted at once.
  constexpr int kRanks = 4;
  for (const std::size_t segment : {std::size_t{0}, std::size_t{64} << 10}) {
    WorldOptions options = fast_timeout();
    options.pipeline_segment_bytes = segment;
    World::run(kRanks,
               [](Comm& comm) {
                 constexpr std::size_t kBytes =
                     3 * detail::kPipelineSegmentBytes;
                 std::string text;
                 if (comm.rank() == 0) {
                   text.assign(kBytes, 'p');
                 }
                 comm.barrier();
                 if (comm.rank() == 0) {
                   // Safe to reset here: every payload copy of the bcast
                   // happens after the root (reset first) sends data.
                   payload_copy_reset_stats();
                 }
                 comm.bcast(text, 0);
                 EXPECT_EQ(text.size(), kBytes);
                 comm.barrier();
                 if (comm.rank() == 0) {
                   const CopyStats stats = payload_copy_stats();
                   EXPECT_GE(stats.bytes, 4 * kBytes);
                   // Slack covers the barrier frames' tiny scalar copies.
                   EXPECT_LE(stats.bytes, 4 * kBytes + 4096);
                 }
               },
               options);
  }
}

TEST(CopyDisciplineTest, HostBcastRawForwardsWithoutAnyCopy) {
  // On the host a frame is a refcounted pointer and the default world
  // never segments, so a raw broadcast of any size moves through the
  // whole tree without a single payload copy.
  constexpr int kRanks = 4;
  World::run(kRanks,
             [](Comm& comm) {
               constexpr std::size_t kCount =
                   (std::size_t{2} << 20) / sizeof(double);  // 2 MiB
               Buffer payload;
               if (comm.rank() == 0) {
                 payload = Codec<std::vector<double>>::encode(
                     std::vector<double>(kCount, 0.5));
               }
               comm.barrier();
               if (comm.rank() == 0) {
                 payload_copy_reset_stats();
               }
               comm.bcast_raw(payload, 0);
               const std::span<const double> view =
                   Codec<std::vector<double>>::view(payload);
               ASSERT_EQ(view.size(), kCount);
               EXPECT_EQ(view[kCount - 1], 0.5);
               comm.barrier();
               if (comm.rank() == 0) {
                 EXPECT_EQ(payload_copy_stats().bytes, 0u);
               }
             },
             fast_timeout());
}

TEST(CopyDisciplineTest, AllgatherViewCopiesOnlyThePack) {
  // allgather_view's only counted copies are rank 0 packing the blobs
  // into the broadcast frame: sends adopt the moved vectors, the frame
  // forwards refcounted, and every view aliases it in place.
  constexpr int kRanks = 4;
  World::run(kRanks,
             [](Comm& comm) {
               // doubles: 256 KiB per rank
               constexpr std::size_t kPerRank = 1 << 15;
               comm.barrier();
               if (comm.rank() == 0) {
                 payload_copy_reset_stats();
               }
               const std::vector<PayloadView<double>> views =
                   comm.allgather_view(rank_pattern(comm.rank(), kPerRank));
               ASSERT_EQ(views.size(), static_cast<std::size_t>(kRanks));
               for (int r = 0; r < kRanks; ++r) {
                 const std::vector<double> expected =
                     rank_pattern(r, kPerRank);
                 const PayloadView<double>& view =
                     views[static_cast<std::size_t>(r)];
                 ASSERT_EQ(view.size(), kPerRank);
                 EXPECT_TRUE(std::equal(view.begin(), view.end(),
                                        expected.begin()))
                     << "rank " << r;
               }
               // The views alias one packed frame, laid out back to back
               // behind their length prefixes.
               EXPECT_EQ(static_cast<const void*>(views[1].begin()),
                         static_cast<const void*>(
                             reinterpret_cast<const std::byte*>(
                                 views[0].begin()) +
                             kPerRank * sizeof(double) +
                             sizeof(std::uint64_t)));
               comm.barrier();
               if (comm.rank() == 0) {
                 const CopyStats stats = payload_copy_stats();
                 EXPECT_EQ(stats.copies, static_cast<std::uint64_t>(kRanks));
                 EXPECT_EQ(stats.bytes, kRanks * kPerRank * sizeof(double));
               }
             },
             fast_timeout());
}

TEST(HostSegmentationTest, ForcedSegmentationDeliversTheSameBytes) {
  // The segmented network protocol exercised under real threads: a world
  // configured with a small segment size must deliver exactly what the
  // default single-frame world does, typed and raw.
  WorldOptions options = fast_timeout();
  options.pipeline_segment_bytes = std::size_t{64} << 10;
  World::run(6,
             [](Comm& comm) {
               constexpr std::size_t kCount =
                   (std::size_t{1} << 20) / sizeof(std::int32_t) + 33;
               std::vector<std::int32_t> data;
               if (comm.rank() == 4) {
                 data.resize(kCount);
                 for (std::size_t i = 0; i < kCount; ++i) {
                   data[i] = static_cast<std::int32_t>(i * 2654435761u);
                 }
               }
               comm.bcast(data, 4);
               ASSERT_EQ(data.size(), kCount);
               for (std::size_t i = 0; i < kCount; i += 9973) {
                 ASSERT_EQ(data[i],
                           static_cast<std::int32_t>(i * 2654435761u))
                     << "element " << i;
               }
               Buffer raw;
               if (comm.rank() == 1) {
                 raw = Codec<std::string>::encode(std::string(300'000, 'q'));
               }
               comm.bcast_raw(raw, 1);
               ASSERT_EQ(raw.size(), 300'000u);
               EXPECT_EQ(raw.view()[299'999], std::byte{'q'});
             },
             options);
}

// --- Simulated cluster: message-count and determinism contracts ---------

TEST(SimCollectiveTest, AllgatherUsesLinearMessageCount) {
  // gather (n-1 sends) + one packed broadcast (n-1 sends for a small
  // frame) = 2(n-1) messages, down from the old n*ceil(log2 n).
  for (const int ranks : {2, 3, 5, 8}) {
    const ClusterReport report = SimWorld::run(ranks, [](SimComm& comm) {
      const std::vector<std::int32_t> all = comm.allgather(comm.rank());
      ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
      for (int r = 0; r < comm.size(); ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
      }
    });
    EXPECT_EQ(report.messages,
              static_cast<std::uint64_t>(2 * (ranks - 1)))
        << "world size " << ranks;
  }
}

TEST(SimCollectiveTest, AllgatherViewKeepsTheLinearMessageCount) {
  const ClusterReport report = SimWorld::run(5, [](SimComm& comm) {
    std::vector<std::int64_t> mine(3, comm.rank());
    const std::vector<PayloadView<std::int64_t>> views =
        comm.allgather_view(std::move(mine));
    ASSERT_EQ(views.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      ASSERT_EQ(views[static_cast<std::size_t>(r)].size(), 3u);
      EXPECT_EQ(views[static_cast<std::size_t>(r)][0], r);
    }
  });
  EXPECT_EQ(report.messages, 8u);  // 2 * (n - 1), same as allgather
}

TEST(SimCollectiveTest, SingleRankAllgatherSendsNothing) {
  const ClusterReport report = SimWorld::run(1, [](SimComm& comm) {
    const std::vector<std::int32_t> all = comm.allgather(comm.rank());
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], 0);
  });
  EXPECT_EQ(report.messages, 0u);
}

TEST(SimCollectiveTest, PerRankWireCountersSumToTheTotals) {
  const ClusterReport report = SimWorld::run(6, [](SimComm& comm) {
    std::vector<double> data = rank_pattern(comm.rank(), 40'000);
    comm.allreduce_elementwise(
        data, [](double a, double b) { return a + b; });
    const WireStats mine = comm.wire_stats();
    EXPECT_GT(mine.messages, 0u);
    EXPECT_GT(mine.bytes, 0u);
  });
  ASSERT_EQ(report.rank_messages.size(), 6u);
  ASSERT_EQ(report.rank_bytes.size(), 6u);
  EXPECT_EQ(std::accumulate(report.rank_messages.begin(),
                            report.rank_messages.end(), std::uint64_t{0}),
            report.messages);
  EXPECT_EQ(std::accumulate(report.rank_bytes.begin(),
                            report.rank_bytes.end(), std::uint64_t{0}),
            report.payload_bytes);
}

TEST(SimCollectiveTest, LargeCollectivesAreDeterministicOnSim) {
  // Fingerprint = (makespan, messages, bytes, checksum of the results).
  const auto run_once = [] {
    double checksum = 0.0;
    const ClusterReport report = SimWorld::run(5, [&](SimComm& comm) {
      std::vector<double> data =
          rank_pattern(comm.rank(), kBigDoubles / 8);
      comm.bcast(data, 2);
      comm.allreduce_elementwise(
          data, [](double a, double b) { return a + b; });
      std::vector<double> ring = rank_pattern(comm.rank() + 1, 10'007);
      comm.ring_allreduce(ring,
                          [](double a, double b) { return a + b; });
      if (comm.rank() == 0) {
        checksum = std::accumulate(data.begin(), data.end(), 0.0) +
                   std::accumulate(ring.begin(), ring.end(), 0.0);
      }
    });
    return std::tuple(report.machine.makespan_s, report.messages,
                      report.payload_bytes, checksum);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(SimCollectiveTest, SegmentedBcastMatchesWholeFrameResults) {
  // The pipelined path (above the threshold) must deliver the same bytes
  // the single-frame path would; check against the known pattern on a
  // non-power-of-two world.
  SimWorld::run(6, [](SimComm& comm) {
    std::vector<std::int32_t> data;
    const std::size_t count = detail::kPipelineSegmentBytes;  // 1 MiB of int32s
    if (comm.rank() == 3) {
      data.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        data[i] = static_cast<std::int32_t>(i * 2654435761u);
      }
    }
    comm.bcast(data, 3);
    ASSERT_EQ(data.size(), count);
    for (std::size_t i = 0; i < count; i += 40'009) {
      ASSERT_EQ(data[i], static_cast<std::int32_t>(i * 2654435761u))
          << "element " << i;
    }
  });
}

TEST(SimCollectiveTest, RawPathsRunOnSimToo) {
  SimWorld::run(3, [](SimComm& comm) {
    std::vector<Buffer> blobs;
    if (comm.rank() == 0) {
      for (int r = 0; r < 3; ++r) {
        blobs.push_back(Codec<std::string>::encode(
            std::string(static_cast<std::size_t>(r + 1) * 100, 'a')));
      }
    }
    const Buffer mine = comm.scatter_raw(std::move(blobs), 0);
    EXPECT_EQ(mine.size(),
              static_cast<std::size_t>(comm.rank() + 1) * 100);

    Buffer big;
    if (comm.rank() == 1) {
      big = Codec<std::string>::encode(
          std::string(2 * detail::kPipelineSegmentBytes + 5, 'b'));
    }
    comm.bcast_raw(big, 1);
    EXPECT_EQ(big.size(), 2 * detail::kPipelineSegmentBytes + 5);
    const std::vector<Buffer> gathered = comm.gather_raw(big.slice(0, 10), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (const Buffer& blob : gathered) {
        EXPECT_EQ(blob.size(), 10u);
      }
    }
  });
}

}  // namespace
}  // namespace pblpar::mp
