#include "mp/buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "mp/message.hpp"
#include "util/error.hpp"

namespace pblpar::mp {
namespace {

std::vector<std::byte> make_bytes(std::size_t count) {
  std::vector<std::byte> bytes(count);
  for (std::size_t i = 0; i < count; ++i) {
    bytes[i] = static_cast<std::byte>(i & 0xff);
  }
  return bytes;
}

TEST(BufferTest, DefaultIsEmpty) {
  Buffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.data(), nullptr);
  EXPECT_FALSE(buffer.is_inline());
}

TEST(BufferTest, SmallPayloadsLiveInline) {
  const std::vector<std::byte> bytes = make_bytes(Buffer::kInlineCapacity);
  Buffer buffer = Buffer::copy_of(bytes.data(), bytes.size());
  EXPECT_TRUE(buffer.is_inline());
  ASSERT_EQ(buffer.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), buffer.data()));

  // Moving an inline buffer relocates the bytes into the new object.
  Buffer moved = std::move(buffer);
  EXPECT_TRUE(moved.is_inline());
  ASSERT_EQ(moved.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), moved.data()));
  EXPECT_TRUE(buffer.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(BufferTest, LargePayloadMoveIsAPointerSwap) {
  const std::vector<std::byte> bytes =
      make_bytes(Buffer::kInlineCapacity + 1);
  Buffer buffer = Buffer::copy_of(bytes.data(), bytes.size());
  EXPECT_FALSE(buffer.is_inline());
  const std::byte* stable = buffer.data();
  Buffer moved = std::move(buffer);
  EXPECT_EQ(moved.data(), stable);
  ASSERT_EQ(moved.size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), moved.data()));
}

TEST(BufferTest, CopiesShareLargeStorage) {
  Buffer a = Buffer::uninitialized(1 << 12);
  std::memset(a.mutable_data(), 0x5a, a.size());
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.size(), b.size());
}

TEST(BufferTest, AdoptVectorAboveThresholdIsZeroCopy) {
  std::vector<std::uint64_t> values(1024);
  std::iota(values.begin(), values.end(), 0u);
  const void* heap = values.data();
  payload_copy_reset_stats();
  Buffer buffer = Buffer::adopt(std::move(values));
  EXPECT_EQ(static_cast<const void*>(buffer.data()), heap);
  EXPECT_EQ(buffer.size(), 1024 * sizeof(std::uint64_t));
  EXPECT_EQ(payload_copy_stats().copies, 0u);
}

TEST(BufferTest, AdoptStringAboveThresholdIsZeroCopy) {
  std::string text(4096, 'q');
  const void* heap = text.data();
  Buffer buffer = Buffer::adopt(std::move(text));
  EXPECT_EQ(static_cast<const void*>(buffer.data()), heap);
  EXPECT_EQ(buffer.size(), 4096u);
}

TEST(BufferTest, AdoptEmptyAndTinyContainers) {
  Buffer empty = Buffer::adopt(std::vector<double>{});
  EXPECT_TRUE(empty.empty());
  Buffer tiny = Buffer::adopt(std::vector<double>{1.0, 2.0});
  EXPECT_TRUE(tiny.is_inline());
  EXPECT_EQ(tiny.size(), 2 * sizeof(double));
}

TEST(BufferTest, SliceSharesStorageAndChecksBounds) {
  Buffer whole = Buffer::uninitialized(1 << 12);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    whole.mutable_data()[i] = static_cast<std::byte>(i & 0xff);
  }
  Buffer part = whole.slice(256, 512);
  EXPECT_EQ(part.size(), 512u);
  EXPECT_EQ(part.data(), whole.data() + 256);  // shared, not copied
  EXPECT_THROW((void)whole.slice(4000, 200), util::PreconditionError);
  EXPECT_THROW((void)whole.slice(1 << 13, 1), util::PreconditionError);
  Buffer nothing = whole.slice(128, 0);
  EXPECT_TRUE(nothing.empty());
}

TEST(BufferTest, PoolRecyclesLargeBlocks) {
  buffer_pool_trim();
  buffer_pool_reset_stats();
  const std::byte* first = nullptr;
  {
    Buffer buffer = Buffer::uninitialized(1 << 20);
    first = buffer.data();
  }
  PoolStats stats = buffer_pool_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.recycled, 1u);
  {
    Buffer buffer = Buffer::uninitialized(1 << 20);
    EXPECT_EQ(buffer.data(), first);  // the same block came back
  }
  stats = buffer_pool_stats();
  EXPECT_EQ(stats.hits, 1u);
  buffer_pool_trim();
}

TEST(BufferTest, InlineBuffersBypassThePool) {
  buffer_pool_trim();
  buffer_pool_reset_stats();
  { Buffer buffer = Buffer::uninitialized(16); }
  const PoolStats stats = buffer_pool_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(CopyStatsTest, CopyOfCountsExactlyOneCopy) {
  const std::vector<std::byte> bytes = make_bytes(1 << 16);
  payload_copy_reset_stats();
  Buffer buffer = Buffer::copy_of(bytes.data(), bytes.size());
  const CopyStats stats = payload_copy_stats();
  EXPECT_EQ(stats.copies, 1u);
  EXPECT_EQ(stats.bytes, bytes.size());
  (void)buffer;
}

TEST(CodecTest, ScalarRoundTrip) {
  Buffer bytes = Codec<double>::encode(2.5);
  EXPECT_EQ(bytes.size(), sizeof(double));
  EXPECT_EQ(Codec<double>::decode(bytes), 2.5);
  EXPECT_THROW((void)Codec<std::int32_t>::decode(bytes), MpTypeError);
}

TEST(CodecTest, VectorRvalueEncodeAdoptsWithoutCopy) {
  std::vector<double> values(8192, 3.25);
  const void* heap = values.data();
  payload_copy_reset_stats();
  Buffer bytes = Codec<std::vector<double>>::encode(std::move(values));
  EXPECT_EQ(payload_copy_stats().copies, 0u);
  EXPECT_EQ(static_cast<const void*>(bytes.data()), heap);
  const std::span<const double> view =
      Codec<std::vector<double>>::view(bytes);
  ASSERT_EQ(view.size(), 8192u);
  EXPECT_EQ(view.front(), 3.25);
  EXPECT_EQ(payload_copy_stats().copies, 0u);  // view stays zero-copy
}

TEST(CodecTest, VectorViewRejectsRaggedAndMisalignedBytes) {
  Buffer bytes = Codec<std::vector<double>>::encode(
      std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_THROW((void)Codec<std::vector<std::int64_t>>::view(
                   bytes.view().subspan(1).first(2 * sizeof(std::int64_t))),
               MpError);  // size divides, but the start is misaligned
  EXPECT_THROW((void)Codec<std::vector<double>>::view(
                   bytes.view().first(sizeof(double) + 1)),
               MpTypeError);
}

TEST(CodecTest, EmptyStringDecodeIsWellDefined) {
  // Regression: an empty payload has data() == nullptr; handing that to
  // std::string(ptr, 0) is UB. The decode must special-case it.
  Buffer empty = Codec<std::string>::encode(std::string());
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(Codec<std::string>::decode(empty), std::string());
  EXPECT_EQ(Codec<std::string>::decode(ByteView()), std::string());
}

TEST(PayloadViewTest, SurvivesMovesOfInlinePayloads) {
  Buffer bytes =
      Codec<std::vector<std::int32_t>>::encode(std::vector<std::int32_t>{
          1, 2, 3, 4});  // 16 bytes: inline storage
  PayloadView<std::int32_t> view(std::move(bytes));
  PayloadView<std::int32_t> moved = std::move(view);
  ASSERT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved[0], 1);
  EXPECT_EQ(moved[3], 4);
  std::int64_t sum = 0;
  for (const std::int32_t v : moved) {
    sum += v;
  }
  EXPECT_EQ(sum, 10);
}

TEST(PayloadViewTest, ValidatesElementTypeUpFront) {
  Buffer bytes = Codec<std::vector<std::byte>>::encode(
      std::vector<std::byte>(7));  // 7 bytes can't be int32s
  EXPECT_THROW(PayloadView<std::int32_t> view(std::move(bytes)),
               MpTypeError);
}

}  // namespace
}  // namespace pblpar::mp
