#include "mp/sim_world.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace pblpar::mp {
namespace {

ClusterSpec fast_net() {
  // A cluster with negligible network costs: pure semantics testing.
  ClusterSpec spec;
  spec.net_latency_us = 0.0;
  spec.net_bandwidth_mb_s = 1e9;
  spec.send_overhead_us = 0.0;
  spec.node.fork_cost_us = 0.0;
  spec.node.join_cost_us = 0.0;
  spec.node.mutex_acquire_cost_us = 0.0;
  return spec;
}

TEST(SimWorldTest, RanksRunAndComplete) {
  std::set<int> seen;
  const ClusterReport report = SimWorld::run(5, [&](SimComm& comm) {
    EXPECT_EQ(comm.size(), 5);
    seen.insert(comm.rank());  // serialized real code: safe
  });
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(report.machine.spec.cores, 5);
}

TEST(SimWorldTest, PointToPointRoundTrip) {
  SimWorld::run(
      2,
      [](SimComm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 7, 42);
          EXPECT_EQ(comm.recv<int>(1, 8), 43);
        } else {
          comm.send(0, 8, comm.recv<int>(0, 7) + 1);
        }
      },
      fast_net());
}

TEST(SimWorldTest, CollectivesMatchHostSemantics) {
  for (const int ranks : {1, 2, 3, 4, 7}) {
    SimWorld::run(
        ranks,
        [ranks](SimComm& comm) {
          // bcast
          int token = comm.rank() == 0 ? 99 : -1;
          comm.bcast(token, 0);
          EXPECT_EQ(token, 99);
          // allreduce sum of ranks
          const int total = comm.allreduce(
              comm.rank(), [](int a, int b) { return a + b; });
          EXPECT_EQ(total, ranks * (ranks - 1) / 2);
          // gather at 1 (if it exists)
          const int root = ranks > 1 ? 1 : 0;
          const std::vector<int> all = comm.gather(comm.rank() * 2, root);
          if (comm.rank() == root) {
            ASSERT_EQ(all.size(), static_cast<std::size_t>(ranks));
            for (int r = 0; r < ranks; ++r) {
              EXPECT_EQ(all[static_cast<std::size_t>(r)], 2 * r);
            }
          }
          comm.barrier();
        },
        fast_net());
  }
}

TEST(SimWorldTest, AllgatherAndAllreduceAtOddSizesAndNonZeroRoots) {
  // The cluster shuffle leans on allreduce/allgather/scatter/gather with
  // variable-size payloads; exercise them away from powers of two and
  // away from root 0.
  for (const int ranks : {3, 5, 7}) {
    SimWorld::run(
        ranks,
        [ranks](SimComm& comm) {
          // allgather of variable-length strings.
          const std::string mine(
              static_cast<std::size_t>(comm.rank() + 1),
              static_cast<char>('a' + comm.rank()));
          const std::vector<std::string> all = comm.allgather(mine);
          ASSERT_EQ(all.size(), static_cast<std::size_t>(ranks));
          for (int r = 0; r < ranks; ++r) {
            EXPECT_EQ(all[static_cast<std::size_t>(r)],
                      std::string(static_cast<std::size_t>(r + 1),
                                  static_cast<char>('a' + r)));
          }
          // allreduce over doubles.
          const double total = comm.allreduce(
              0.5 * comm.rank(), [](double a, double b) { return a + b; });
          EXPECT_DOUBLE_EQ(total, 0.5 * ranks * (ranks - 1) / 2.0);
          // scatter/gather of variable-size vectors at the last rank.
          const int root = ranks - 1;
          std::vector<std::vector<int>> parts;
          if (comm.rank() == root) {
            for (int r = 0; r < ranks; ++r) {
              parts.emplace_back(static_cast<std::size_t>(r), r);
            }
          }
          const std::vector<int> part = comm.scatter(parts, root);
          EXPECT_EQ(part,
                    std::vector<int>(static_cast<std::size_t>(comm.rank()),
                                     comm.rank()));
          const auto collected = comm.gather(part, root);
          if (comm.rank() == root) {
            ASSERT_EQ(collected.size(), static_cast<std::size_t>(ranks));
            for (int r = 0; r < ranks; ++r) {
              EXPECT_EQ(collected[static_cast<std::size_t>(r)],
                        std::vector<int>(static_cast<std::size_t>(r), r));
            }
          }
        },
        fast_net());
  }
}

TEST(SimWorldTest, TimedRecvTimesOutAdvancingVirtualTime) {
  SimWorld::run(
      2,
      [](SimComm& comm) {
        if (comm.rank() == 1) {
          RawMessage msg;
          const double before = comm.context().now();
          const bool got = comm.recv_raw_timed(0, 5, 0.25, &msg);
          EXPECT_FALSE(got);  // nothing was ever sent
          EXPECT_NEAR(comm.context().now() - before, 0.25, 1e-9);
        }
      },
      fast_net());
}

TEST(SimWorldTest, ZeroAndNegativeTimeoutRecvIsAPoll) {
  SimWorld::run(
      2,
      [](SimComm& comm) {
        if (comm.rank() == 0) {
          RawMessage msg;
          // Rank 0 (the root thread) runs first, so nothing has been
          // sent yet: a zero (or negative, clamped) timeout scans the
          // inbox once, yields one deterministic scheduler step, and
          // reports false instead of blocking or throwing.
          EXPECT_FALSE(comm.recv_raw_timed(1, 5, 0.0, &msg));
          EXPECT_FALSE(comm.recv_raw_timed(1, 5, -0.5, &msg));
          EXPECT_EQ(comm.recv<int>(1, 5), 42);
          // Drained inbox: the poll still reports false immediately.
          EXPECT_FALSE(comm.recv_raw_timed(1, 5, 0.0, &msg));
        } else {
          comm.send(0, 5, 42);
        }
      },
      fast_net());
}

TEST(SimWorldTest, TimedRecvDeliversAMessageBeforeTheDeadline) {
  SimWorld::run(
      2,
      [](SimComm& comm) {
        if (comm.rank() == 0) {
          comm.context().compute_us(100.0);
          comm.send(1, 5, 42);
        } else {
          RawMessage msg;
          const bool got = comm.recv_raw_timed(0, 5, 10.0, &msg);
          ASSERT_TRUE(got);
          EXPECT_EQ(msg.source, 0);
          EXPECT_EQ(msg.tag, 5);
          EXPECT_LT(comm.context().now(), 1.0);  // did not wait out 10 s
        }
      },
      fast_net());
}

TEST(SimWorldTest, RingAllreduceOnCluster) {
  const int ranks = 4;
  SimWorld::run(
      ranks,
      [ranks](SimComm& comm) {
        std::vector<double> data(8, static_cast<double>(comm.rank()));
        const std::vector<double> reduced = comm.ring_allreduce_sum(data);
        for (const double v : reduced) {
          EXPECT_DOUBLE_EQ(v, ranks * (ranks - 1) / 2.0);
        }
      },
      fast_net());
}

TEST(SimWorldTest, MissingMessageIsDeadlockNotTimeout) {
  EXPECT_THROW(SimWorld::run(
                   2,
                   [](SimComm& comm) {
                     if (comm.rank() == 1) {
                       (void)comm.recv<int>(0, 5);  // never sent
                     }
                   },
                   fast_net()),
               sim::DeadlockError);
}

TEST(SimWorldTest, TypeMismatchThrows) {
  EXPECT_THROW(SimWorld::run(
                   2,
                   [](SimComm& comm) {
                     if (comm.rank() == 0) {
                       comm.send(1, 1, 3.5);
                     } else {
                       (void)comm.recv<int>(0, 1);
                     }
                   },
                   fast_net()),
               MpTypeError);
}

// --- network timing model ------------------------------------------------------

TEST(SimWorldTiming, LatencyIsChargedToTheReceiver) {
  ClusterSpec spec = fast_net();
  spec.net_latency_us = 500.0;
  double received_at = -1.0;
  const ClusterReport report = SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 0) {
          comm.send(1, 1, 7);
        } else {
          (void)comm.recv<int>(0, 1);
          received_at = comm.context().now();
        }
      },
      spec);
  EXPECT_NEAR(received_at, 500e-6, 1e-9);
  EXPECT_GE(report.machine.makespan_s, 500e-6);
}

TEST(SimWorldTiming, BandwidthScalesWithPayload) {
  ClusterSpec spec = fast_net();
  spec.net_bandwidth_mb_s = 10.0;  // 10 bytes per microsecond
  const auto time_for = [&](std::size_t doubles) {
    double done_at = 0.0;
    SimWorld::run(
        2,
        [&](SimComm& comm) {
          if (comm.rank() == 0) {
            comm.send(1, 1, std::vector<double>(doubles, 1.0));
          } else {
            (void)comm.recv<std::vector<double>>(0, 1);
            done_at = comm.context().now();
          }
        },
        spec);
    return done_at;
  };
  const double small = time_for(1000);    // 8 KB
  const double large = time_for(4000);    // 32 KB
  EXPECT_NEAR(large / small, 4.0, 0.05);  // ~linear in bytes
}

TEST(SimWorldTiming, MessageCountersTrack) {
  const ClusterReport report = SimWorld::run(
      3,
      [](SimComm& comm) {
        if (comm.rank() != 0) {
          comm.send(0, 1, std::vector<double>(16, 0.0));
        } else {
          for (int i = 0; i < 2; ++i) {
            (void)comm.recv<std::vector<double>>(kAnySource, 1);
          }
        }
      },
      fast_net());
  EXPECT_EQ(report.messages, 2u);
  EXPECT_EQ(report.payload_bytes, 2u * 16u * sizeof(double));
}

TEST(SimWorldTiming, ComputeAndCommunicationCompose) {
  // A rank that computes 1 ms then sends; the receiver finishes after
  // compute + transfer + latency.
  ClusterSpec spec = fast_net();
  spec.net_latency_us = 100.0;
  spec.send_overhead_us = 10.0;
  double done = 0.0;
  SimWorld::run(
      2,
      [&](SimComm& comm) {
        if (comm.rank() == 0) {
          comm.context().compute_us(1000.0);
          comm.send(1, 1, 42);
        } else {
          (void)comm.recv<int>(0, 1);
          done = comm.context().now();
        }
      },
      spec);
  // 1000us compute + 10us overhead + ~0 transfer + 100us latency.
  EXPECT_NEAR(done, 1110e-6, 1e-8);
}

TEST(SimWorldTiming, DeterministicAcrossRuns) {
  const auto run_once = [] {
    return SimWorld::run(4, [](SimComm& comm) {
             const int total = comm.allreduce(
                 comm.rank() + 1, [](int a, int b) { return a + b; });
             (void)total;
             comm.context().compute_us(50.0 * (comm.rank() + 1));
             comm.barrier();
           })
        .machine.makespan_s;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimWorldTest, Validation) {
  EXPECT_THROW(SimWorld::run(0, [](SimComm&) {}), util::PreconditionError);
  EXPECT_THROW(SimWorld::run(2, nullptr), util::PreconditionError);
  ClusterSpec bad;
  bad.net_bandwidth_mb_s = 0.0;
  EXPECT_THROW(SimWorld::run(2, [](SimComm&) {}, bad),
               util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::mp
