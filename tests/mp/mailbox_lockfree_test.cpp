// The lock-free MPSC mailbox: the timeout-overflow regression (huge and
// infinite timeouts must block, not return instantly), NaN rejection,
// poll semantics, per-(source, tag) FIFO order under concurrent senders
// with wildcard and exact matches interleaved, abort mid-wait, and an
// exactly-once delivery stress.

#include "mp/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "mp/comm.hpp"
#include "mp/message.hpp"
#include "util/error.hpp"

namespace pblpar::mp {
namespace {

RawMessage make_message(int source, int tag, int seq) {
  RawMessage message;
  message.source = source;
  message.tag = tag;
  message.type_hash = type_hash_of<int>();
  message.payload = Codec<int>::encode(seq);
  return message;
}

int seq_of(const RawMessage& message) {
  return Codec<int>::decode(message.payload);
}

// --- Timeout handling (the overflow regression) -----------------------

/// The old deadline computation overflowed the nanosecond rep for huge
/// timeouts — UB, a deadline in the past, and an instant (wrong) timeout.
/// A huge timeout must behave like "wait forever": block until the
/// delayed message arrives and return it.
TEST(MailboxTimeoutTest, HugeTimeoutBlocksUntilAMessageArrives) {
  AbortState abort;
  Mailbox box(abort, 2.0, 0);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    box.push(make_message(1, 7, 42));
  });
  RawMessage out;
  EXPECT_TRUE(box.pop_matching_timed(1, 7, 1e9, &out));
  EXPECT_EQ(seq_of(out), 42);
  sender.join();
}

TEST(MailboxTimeoutTest, InfiniteTimeoutBlocksUntilAMessageArrives) {
  AbortState abort;
  Mailbox box(abort, 2.0, 0);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    box.push(make_message(2, 3, 7));
  });
  RawMessage out;
  EXPECT_TRUE(box.pop_matching_timed(
      kAnySource, kAnyTag, std::numeric_limits<double>::infinity(), &out));
  EXPECT_EQ(seq_of(out), 7);
  sender.join();
}

TEST(MailboxTimeoutTest, NanTimeoutIsRejectedLoudly) {
  AbortState abort;
  Mailbox box(abort, 2.0, 0);
  RawMessage out;
  EXPECT_THROW(box.pop_matching_timed(
                   kAnySource, kAnyTag,
                   std::numeric_limits<double>::quiet_NaN(), &out),
               util::PreconditionError);
}

TEST(MailboxTimeoutTest, ZeroAndNegativeTimeoutsArePolls) {
  AbortState abort;
  Mailbox box(abort, 2.0, 0);
  box.push(make_message(0, 5, 1));
  RawMessage out;
  // No match for tag 9: both polls return immediately, empty-handed.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.pop_matching_timed(0, 9, 0.0, &out));
  EXPECT_FALSE(box.pop_matching_timed(0, 9, -1.0, &out));
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_s, 1.0);
  // The queued message is still there for a matching poll.
  EXPECT_TRUE(box.pop_matching_timed(0, 5, 0.0, &out));
  EXPECT_EQ(seq_of(out), 1);
}

TEST(MailboxTimeoutTest, ShortTimeoutStillTimesOut) {
  AbortState abort;
  Mailbox box(abort, 2.0, 0);
  RawMessage out;
  EXPECT_FALSE(box.pop_matching_timed(kAnySource, kAnyTag, 0.05, &out));
}

TEST(MailboxTimeoutTest, PopMatchingTimeoutNamesPendingMessages) {
  AbortState abort;
  Mailbox box(abort, 0.05, 3);
  box.push(make_message(1, 8, 0));
  try {
    box.pop_matching(1, 9);
    FAIL() << "expected MpDeadlockError";
  } catch (const MpDeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=9"), std::string::npos) << what;
    EXPECT_NE(what.find("(source=1, tag=8"), std::string::npos) << what;
  }
}

// --- FIFO and exactly-once under concurrency --------------------------

/// Four concurrent senders, two tags each, while the consumer interleaves
/// wildcard receives with exact (source, tag) receives. Whatever the
/// interleaving, messages of one (source, tag) pair must arrive in send
/// order — MPI's non-overtaking guarantee.
TEST(MailboxFifoTest, PerSourceTagOrderSurvivesWildcardInterleaving) {
  constexpr int kSenders = 4;
  constexpr int kTags = 2;
  constexpr int kEach = 200;  // messages per (source, tag) pair
  AbortState abort;
  Mailbox box(abort, 10.0, 0);

  std::vector<std::thread> senders;
  for (int source = 0; source < kSenders; ++source) {
    senders.emplace_back([&, source] {
      // Tags interleaved within one sender: seq s fixes the per-pair
      // send order the consumer must observe.
      for (int seq = 0; seq < kEach; ++seq) {
        for (int tag = 0; tag < kTags; ++tag) {
          box.push(make_message(source, tag, seq));
        }
      }
    });
  }

  std::map<std::pair<int, int>, int> next_seq;       // expected per pair
  std::map<std::pair<int, int>, int> remaining;      // not yet received
  for (int source = 0; source < kSenders; ++source) {
    for (int tag = 0; tag < kTags; ++tag) {
      next_seq[{source, tag}] = 0;
      remaining[{source, tag}] = kEach;
    }
  }
  const int total = kSenders * kTags * kEach;
  for (int i = 0; i < total; ++i) {
    RawMessage got;
    if (i % 2 == 0) {
      got = box.pop_matching(kAnySource, kAnyTag);
    } else {
      // Exact receive from some pair that still has messages in flight;
      // rotate so every pair gets exact-matched eventually.
      std::pair<int, int> target{-1, -1};
      for (const auto& [pair, left] : remaining) {
        if (left > 0) {
          target = pair;
          break;
        }
      }
      ASSERT_NE(target.first, -1);
      got = box.pop_matching(target.first, target.second);
      EXPECT_EQ(got.source, target.first);
      EXPECT_EQ(got.tag, target.second);
    }
    const std::pair<int, int> pair{got.source, got.tag};
    ASSERT_GT(remaining[pair], 0);
    --remaining[pair];
    // The FIFO check: each pair's stream arrives in exactly send order.
    ASSERT_EQ(seq_of(got), next_seq[pair])
        << "out-of-order delivery for (source=" << got.source
        << ", tag=" << got.tag << ")";
    ++next_seq[pair];
  }
  for (std::thread& sender : senders) {
    sender.join();
  }
  // Nothing left: a poll comes back empty.
  RawMessage leftover;
  EXPECT_FALSE(
      box.pop_matching_timed(kAnySource, kAnyTag, 0.0, &leftover));
}

/// Eight concurrent senders, distinct payloads; every message is
/// delivered exactly once, none lost, none duplicated.
TEST(MailboxStressTest, ConcurrentSendersDeliverExactlyOnce) {
  constexpr int kSenders = 8;
  constexpr int kEach = 500;
  AbortState abort;
  Mailbox box(abort, 10.0, 0);
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kEach; ++i) {
        box.push(make_message(s, 1, s * kEach + i));
      }
    });
  }
  std::set<int> seen;
  for (int i = 0; i < kSenders * kEach; ++i) {
    const RawMessage got = box.pop_matching(kAnySource, 1);
    EXPECT_TRUE(seen.insert(seq_of(got)).second)
        << "duplicate delivery of " << seq_of(got);
  }
  for (std::thread& sender : senders) {
    sender.join();
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kSenders * kEach));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), kSenders * kEach - 1);
}

// --- Abort ------------------------------------------------------------

TEST(MailboxAbortTest, AbortWakesABlockedPop) {
  AbortState abort;
  Mailbox box(abort, 60.0, 0);
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    RawMessage out;
    try {
      box.pop_matching(kAnySource, kAnyTag);
    } catch (const WorldAborted&) {
      threw.store(true, std::memory_order_release);
    }
    (void)out;
  });
  // Give the consumer a moment to park, then abort — the same order the
  // world uses: flag first, then interrupt.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  abort.aborted.store(true);
  box.interrupt();
  consumer.join();
  EXPECT_TRUE(threw.load(std::memory_order_acquire));
}

TEST(MailboxAbortTest, AbortWinsOverConcurrentSenders) {
  AbortState abort;
  Mailbox box(abort, 60.0, 0);
  std::atomic<bool> stop{false};
  // Senders hammer the queue with non-matching messages so the consumer
  // keeps draining (never idle-parks for long) while the abort lands.
  std::vector<std::thread> senders;
  for (int s = 0; s < 2; ++s) {
    senders.emplace_back([&, s] {
      int seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        box.push(make_message(s, 1, seq++));
        std::this_thread::yield();
      }
    });
  }
  std::atomic<bool> threw{false};
  std::thread consumer([&] {
    try {
      // Tag 99 never arrives; only the abort can end this wait.
      box.pop_matching(kAnySource, 99);
    } catch (const WorldAborted&) {
      threw.store(true, std::memory_order_release);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  abort.aborted.store(true);
  box.interrupt();
  consumer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& sender : senders) {
    sender.join();
  }
  EXPECT_TRUE(threw.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace pblpar::mp
