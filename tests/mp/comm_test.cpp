#include "mp/world.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>

#include "util/error.hpp"

namespace pblpar::mp {
namespace {

WorldOptions fast_timeout() {
  WorldOptions options;
  options.recv_timeout_s = 2.0;
  return options;
}

TEST(WorldTest, RanksAreDistinctAndComplete) {
  std::mutex mu;
  std::set<int> seen;
  World::run(6, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 6);
    std::lock_guard guard(mu);
    seen.insert(comm.rank());
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(WorldTest, SingleRankWorldWorks) {
  int visits = 0;
  World::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(WorldTest, RejectsBadArguments) {
  EXPECT_THROW(World::run(0, [](Comm&) {}), util::PreconditionError);
  EXPECT_THROW(World::run(2, nullptr), util::PreconditionError);
}

TEST(PointToPointTest, ScalarRoundTrip) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, 42);
      EXPECT_EQ(comm.recv<int>(1, 8), 43);
    } else {
      const int got = comm.recv<int>(0, 7);
      comm.send(0, 8, got + 1);
    }
  });
}

TEST(PointToPointTest, VectorAndStringPayloads) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.5, 2.5, 3.5});
      comm.send(1, 2, std::string("hello rank one"));
    } else {
      const auto values = comm.recv<std::vector<double>>(0, 1);
      EXPECT_EQ(values, (std::vector<double>{1.5, 2.5, 3.5}));
      EXPECT_EQ(comm.recv<std::string>(0, 2), "hello rank one");
    }
  });
}

TEST(PointToPointTest, EmptyStringAndEmptyVectorRoundTrip) {
  // Regression: decoding an empty payload used to hand std::string a
  // null pointer with size 0 (UB flagged by UBSan). Empty payloads must
  // round-trip cleanly.
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::string());
      comm.send(1, 2, std::vector<double>{});
      comm.send(1, 3, std::string("x"));
    } else {
      EXPECT_EQ(comm.recv<std::string>(0, 1), std::string());
      EXPECT_TRUE(comm.recv<std::vector<double>>(0, 2).empty());
      EXPECT_EQ(comm.recv<std::string>(0, 3), "x");
    }
  });
}

TEST(PointToPointTest, TagSelectionOutOfOrder) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 10, 100);
      comm.send(1, 20, 200);
    } else {
      // Receive the later-tagged message first.
      EXPECT_EQ(comm.recv<int>(0, 20), 200);
      EXPECT_EQ(comm.recv<int>(0, 10), 100);
    }
  });
}

TEST(PointToPointTest, SameTagPreservesFifoOrder) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send(1, 3, i);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 3), i);
      }
    }
  });
}

TEST(PointToPointTest, AnySourceReportsStatus) {
  World::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::set<int> sources;
      for (int i = 0; i < 2; ++i) {
        RecvStatus status;
        (void)comm.recv<int>(kAnySource, 5, &status);
        sources.insert(status.source);
        EXPECT_EQ(status.tag, 5);
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2}));
    } else {
      comm.send(0, 5, comm.rank());
    }
  });
}

TEST(PointToPointTest, SelfSendIsBuffered) {
  World::run(1, [](Comm& comm) {
    comm.send(0, 9, 77);
    EXPECT_EQ(comm.recv<int>(0, 9), 77);
  });
}

TEST(PointToPointTest, TypeMismatchThrows) {
  EXPECT_THROW(World::run(2,
                          [](Comm& comm) {
                            if (comm.rank() == 0) {
                              comm.send(1, 1, 3.14);
                            } else {
                              (void)comm.recv<int>(0, 1);
                            }
                          },
                          fast_timeout()),
               MpTypeError);
}

TEST(PointToPointTest, NegativeUserTagRejected) {
  EXPECT_THROW(World::run(2,
                          [](Comm& comm) {
                            if (comm.rank() == 0) {
                              comm.send(1, -5, 1);
                            } else {
                              (void)comm.recv<int>(0, kAnyTag);
                            }
                          },
                          fast_timeout()),
               util::PreconditionError);
}

TEST(PointToPointTest, MissingMessageTimesOutAsDeadlock) {
  EXPECT_THROW(World::run(2,
                          [](Comm& comm) {
                            if (comm.rank() == 1) {
                              (void)comm.recv<int>(0, 1);  // never sent
                            }
                          },
                          fast_timeout()),
               MpDeadlockError);
}

TEST(PointToPointTest, DeadlockDiagnosticNamesRankPeerTagAndQueue) {
  // A mismatched tag must produce a diagnostic a student can act on:
  // who blocked, what they were waiting for, and what actually arrived.
  WorldOptions options;
  options.recv_timeout_s = 0.2;
  try {
    World::run(2,
               [](Comm& comm) {
                 if (comm.rank() == 0) {
                   comm.send(1, 5, 41);
                 } else {
                   (void)comm.recv<int>(0, 6);  // wrong tag: 5 != 6
                 }
               },
               options);
    FAIL() << "expected MpDeadlockError";
  } catch (const MpDeadlockError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("recv(source=0, tag=6)"), std::string::npos) << what;
    EXPECT_NE(what.find("unmatched"), std::string::npos) << what;
    EXPECT_NE(what.find("(source=0, tag=5,"), std::string::npos) << what;
  }
}

TEST(PointToPointTest, TimedRecvReturnsFalseInsteadOfThrowing) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      RawMessage msg;
      EXPECT_FALSE(comm.recv_raw_timed(0, 9, 0.05, &msg));
    }
  });
}

TEST(PointToPointTest, ZeroTimeoutRecvIsANonBlockingPoll) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 9, 7);
    } else {
      RawMessage msg;
      // Poll until the in-flight message lands; every call returns
      // immediately, matched or not.
      while (!comm.recv_raw_timed(0, 9, 0.0, &msg)) {
      }
      EXPECT_EQ(msg.tag, 9);
      // Mailbox drained: a zero timeout reports false at once instead of
      // blocking, and a past deadline (negative timeout) behaves the same.
      EXPECT_FALSE(comm.recv_raw_timed(0, 9, 0.0, &msg));
      EXPECT_FALSE(comm.recv_raw_timed(0, 9, -1.0, &msg));
    }
  });
}

TEST(PointToPointTest, SendRecvRingShiftDoesNotDeadlock) {
  World::run(4, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    const int got = comm.sendrecv(next, 11, comm.rank(), prev, 11);
    EXPECT_EQ(got, prev);
  });
}

TEST(WorldTest, ExceptionInOneRankAbortsAndPropagates) {
  EXPECT_THROW(World::run(3,
                          [](Comm& comm) {
                            if (comm.rank() == 2) {
                              throw std::runtime_error("rank 2 died");
                            }
                            // Other ranks block; abort must wake them.
                            (void)comm.recv<int>(kAnySource, 1);
                          },
                          fast_timeout()),
               std::runtime_error);
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BarrierCompletes) {
  const int ranks = GetParam();
  std::atomic<int> arrived{0};
  World::run(ranks, [&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // After the barrier, every rank must have arrived.
    EXPECT_EQ(arrived.load(), ranks);
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int ranks = GetParam();
  for (int root = 0; root < ranks; ++root) {
    World::run(ranks, [&](Comm& comm) {
      int value = comm.rank() == root ? 1000 + root : -1;
      comm.bcast(value, root);
      EXPECT_EQ(value, 1000 + root);
    });
  }
}

TEST_P(CollectiveTest, BcastVectorPayload) {
  const int ranks = GetParam();
  World::run(ranks, [&](Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 0) {
      data = {1, 2, 3, 4, 5};
    }
    comm.bcast(data, 0);
    EXPECT_EQ(data, (std::vector<int>{1, 2, 3, 4, 5}));
  });
}

TEST_P(CollectiveTest, ReduceSumToEveryRoot) {
  const int ranks = GetParam();
  const int expected = ranks * (ranks - 1) / 2;
  for (int root = 0; root < ranks; ++root) {
    World::run(ranks, [&](Comm& comm) {
      const int total = comm.reduce(
          comm.rank(), [](int a, int b) { return a + b; }, root);
      if (comm.rank() == root) {
        EXPECT_EQ(total, expected);
      }
    });
  }
}

TEST_P(CollectiveTest, AllreduceMax) {
  const int ranks = GetParam();
  World::run(ranks, [&](Comm& comm) {
    const int maximum = comm.allreduce(
        comm.rank() * 10, [](int a, int b) { return std::max(a, b); });
    EXPECT_EQ(maximum, (ranks - 1) * 10);
  });
}

TEST_P(CollectiveTest, ScatterGatherRoundTrip) {
  const int ranks = GetParam();
  World::run(ranks, [&](Comm& comm) {
    std::vector<int> parts;
    if (comm.rank() == 0) {
      parts.resize(static_cast<std::size_t>(ranks));
      std::iota(parts.begin(), parts.end(), 100);
    }
    const int mine = comm.scatter(parts, 0);
    EXPECT_EQ(mine, 100 + comm.rank());

    const std::vector<int> collected = comm.gather(mine * 2, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(collected.size(), static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r) {
        EXPECT_EQ(collected[static_cast<std::size_t>(r)], (100 + r) * 2);
      }
    } else {
      EXPECT_TRUE(collected.empty());
    }
  });
}

TEST_P(CollectiveTest, AllgatherEveryoneSeesAll) {
  const int ranks = GetParam();
  World::run(ranks, [&](Comm& comm) {
    const std::vector<int> all = comm.allgather(comm.rank() * comm.rank());
    ASSERT_EQ(all.size(), static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r);
    }
  });
}

TEST_P(CollectiveTest, RingAllreduceSumMatchesNaive) {
  const int ranks = GetParam();
  const std::size_t elements = 2 * static_cast<std::size_t>(ranks) * 3;
  World::run(ranks, [&](Comm& comm) {
    std::vector<double> data(elements);
    for (std::size_t i = 0; i < elements; ++i) {
      data[i] = static_cast<double>(comm.rank()) +
                0.5 * static_cast<double>(i);
    }
    const std::vector<double> reduced = comm.ring_allreduce_sum(data);
    ASSERT_EQ(reduced.size(), elements);
    const double rank_sum = ranks * (ranks - 1) / 2.0;
    for (std::size_t i = 0; i < elements; ++i) {
      const double expected =
          rank_sum + 0.5 * static_cast<double>(i) * ranks;
      EXPECT_NEAR(reduced[i], expected, 1e-12) << "element " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(CollectiveTest2, RingAllreduceHandlesIndivisibleData) {
  // Element counts that don't divide by the world size used to be
  // rejected; the generalized ring uses uneven segments instead.
  World::run(3,
             [](Comm& comm) {
               std::vector<double> data(4);  // 4 % 3 != 0
               for (std::size_t i = 0; i < data.size(); ++i) {
                 data[i] = static_cast<double>(comm.rank()) +
                           static_cast<double>(i) * 0.25;
               }
               const std::vector<double> reduced =
                   comm.ring_allreduce_sum(data);
               ASSERT_EQ(reduced.size(), 4u);
               for (std::size_t i = 0; i < reduced.size(); ++i) {
                 // sum over ranks 0..2 of (rank + i/4)
                 EXPECT_NEAR(reduced[i],
                             3.0 + 3.0 * static_cast<double>(i) * 0.25, 1e-12)
                     << "element " << i;
               }
             },
             fast_timeout());
}

TEST(CollectiveTest2, RingAllreduceHandlesFewerElementsThanRanks) {
  World::run(5,
             [](Comm& comm) {
               std::vector<std::int64_t> data = {comm.rank() + 1,
                                                 2 * (comm.rank() + 1)};
               comm.ring_allreduce(
                   data, [](std::int64_t a, std::int64_t b) { return a + b; });
               // sum of 1..5 = 15
               ASSERT_EQ(data.size(), 2u);
               EXPECT_EQ(data[0], 15);
               EXPECT_EQ(data[1], 30);
             },
             fast_timeout());
}

TEST(CollectiveTest2, ReduceWithNonCommutativeUseStillDeterministic) {
  // The tree combines in a fixed order, so even order-sensitive ops give
  // reproducible (if mathematically arbitrary) results.
  std::vector<std::string> results;
  std::mutex mu;
  for (int repeat = 0; repeat < 3; ++repeat) {
    World::run(4, [&](Comm& comm) {
      const std::string combined = comm.reduce(
          std::string(1, static_cast<char>('a' + comm.rank())),
          [](const std::string& a, const std::string& b) { return a + b; },
          0);
      if (comm.rank() == 0) {
        std::lock_guard guard(mu);
        results.push_back(combined);
      }
    });
  }
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

}  // namespace
}  // namespace pblpar::mp
