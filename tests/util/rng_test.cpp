#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace pblpar::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, KnownFirstValueIsStable) {
  // Locks in cross-platform reproducibility of experiment seeds: if this
  // changes, every calibrated table in EXPERIMENTS.md changes.
  Rng rng(12345);
  const std::uint64_t first = rng.next_u64();
  Rng again(12345);
  EXPECT_EQ(first, again.next_u64());
  EXPECT_NE(first, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowRejectsZero) {
  Rng rng(9);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsScalesAndShifts) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NormalRejectsNegativeSd) {
  Rng rng(3);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliRejectsOutOfRange) {
  Rng rng(19);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
  EXPECT_THROW(rng.bernoulli(-0.1), PreconditionError);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Streams should not coincide.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, UniformRealRange) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

// Chi-squared sanity sweep over several bucket counts: uniformity of
// next_below across small moduli.
class RngUniformityTest : public ::testing::TestWithParam<int> {};

TEST_P(RngUniformityTest, NextBelowIsRoughlyUniform) {
  const int buckets = GetParam();
  Rng rng(41 + static_cast<std::uint64_t>(buckets));
  const int n = 20000 * buckets;
  std::vector<int> counts(static_cast<std::size_t>(buckets), 0);
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(static_cast<std::uint64_t>(buckets))];
  }
  const double expected = static_cast<double>(n) / buckets;
  double chi_sq = 0.0;
  for (const int count : counts) {
    const double d = count - expected;
    chi_sq += d * d / expected;
  }
  // Very loose bound: chi-squared with (buckets-1) dof has mean buckets-1
  // and sd sqrt(2(buckets-1)); 6 sigma keeps flakes out.
  const double dof = buckets - 1;
  EXPECT_LT(chi_sq, dof + 6.0 * std::sqrt(2.0 * dof));
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngUniformityTest,
                         ::testing::Values(2, 3, 5, 8, 13, 64));

}  // namespace
}  // namespace pblpar::util
