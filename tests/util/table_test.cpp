#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pblpar::util {
namespace {

Table sample() {
  Table t("Table X. Demo");
  t.columns({"Skill", "Mean"}, {Align::Left, Align::Right});
  t.row({"Teamwork", "4.38"});
  t.row({"Implementation", "4.16"});
  t.note("a. five-point scale");
  return t;
}

TEST(TableTest, AsciiContainsTitleHeadersAndCells) {
  const std::string text = sample().to_ascii();
  EXPECT_NE(text.find("Table X. Demo"), std::string::npos);
  EXPECT_NE(text.find("Skill"), std::string::npos);
  EXPECT_NE(text.find("Teamwork"), std::string::npos);
  EXPECT_NE(text.find("4.38"), std::string::npos);
  EXPECT_NE(text.find("a. five-point scale"), std::string::npos);
}

TEST(TableTest, AsciiRightAlignsNumericColumn) {
  Table t;
  t.columns({"k", "value"}, {Align::Left, Align::Right});
  t.row({"x", "1"});
  t.row({"y", "12345"});
  const std::string text = t.to_ascii();
  // The short value is padded on the left within a 5-wide column.
  EXPECT_NE(text.find("|     1 |"), std::string::npos);
  EXPECT_NE(text.find("| 12345 |"), std::string::npos);
}

TEST(TableTest, MarkdownShape) {
  const std::string md = sample().to_markdown();
  EXPECT_NE(md.find("| Skill | Mean |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(md.find("| Teamwork | 4.38 |"), std::string::npos);
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t;
  t.columns({"a", "b"});
  t.row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowCellCountMismatchThrows) {
  Table t;
  t.columns({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), PreconditionError);
}

TEST(TableTest, ColumnsAlignmentMismatchThrows) {
  Table t;
  EXPECT_THROW(t.columns({"a", "b"}, {Align::Left}), PreconditionError);
}

TEST(TableTest, EmptyColumnsThrows) {
  Table t;
  EXPECT_THROW(t.columns({}), PreconditionError);
}

TEST(TableTest, SeparatorRendersRuleInAscii) {
  Table t;
  t.columns({"a"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  const std::string text = t.to_ascii();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = text.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableTest, PvalueStyle) {
  EXPECT_EQ(Table::pvalue(0.0000001), "p < 0.001");
  EXPECT_EQ(Table::pvalue(0.039), "p = 0.039");
  EXPECT_EQ(Table::pvalue(0.5), "p = 0.500");
}

TEST(TableTest, RowCountTracksDataRows) {
  Table t = sample();
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace pblpar::util
