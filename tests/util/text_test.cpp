#include "util/text.hpp"

#include <gtest/gtest.h>

namespace pblpar::util {
namespace {

TEST(TextTest, ToLower) {
  EXPECT_EQ(to_lower("Hello WORLD"), "hello world");
  EXPECT_EQ(to_lower(""), "");
}

TEST(TextTest, SplitDropsEmptyPieces) {
  const auto pieces = split("a,,b,c,", ",");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(TextTest, SplitMultipleDelimiters) {
  const auto pieces = split("a b;c", " ;");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[2], "c");
}

TEST(TextTest, TokenizeWordsLowersAndKeepsApostrophes) {
  const auto words = tokenize_words("Don't STOP me now!");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "don't");
  EXPECT_EQ(words[1], "stop");
  EXPECT_EQ(words[2], "me");
  EXPECT_EQ(words[3], "now");
}

TEST(TextTest, TokenizeWordsOnEmptyAndPunctuation) {
  EXPECT_TRUE(tokenize_words("").empty());
  EXPECT_TRUE(tokenize_words("... !!! ???").empty());
}

TEST(TextTest, SplitLinesHandlesCrLf) {
  const auto lines = split_lines("one\r\ntwo\nthree");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(TextTest, JoinRoundTrips) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(TextTest, StartsWith) {
  EXPECT_TRUE(starts_with("teamwork", "team"));
  EXPECT_FALSE(starts_with("team", "teamwork"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(TextTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

}  // namespace
}  // namespace pblpar::util
