#include "cluster/dist_mapreduce.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "cluster/jobs.hpp"
#include "drugdesign/drugdesign.hpp"
#include "mapreduce/jobs.hpp"
#include "mp/sim_world.hpp"

namespace pblpar::cluster {
namespace {

std::vector<std::string> sample_documents() {
  return {
      "the quick brown fox jumps over the lazy dog",
      "the dog barks at the fox",
      "parallel programming teaches patience and the dog agrees",
      "a fox a dog a course",
      "threads race but messages queue",
      "the course covers threads openmp and mpi",
      "mpi ranks exchange messages over the network",
      "every rank runs the same program",
      "the master schedules and the workers compute",
      "speculation hides stragglers in the tail",
  };
}

std::vector<std::string> sample_log_lines() {
  return {
      "/index.html 200 alice", "/about.html 200 bob",
      "/index.html 304 carol", "/data.csv 200 alice",
      "/index.html 200 dave",  "/about.html 404 erin",
  };
}

/// Run `fn(comm)` on a simulated cluster and return rank 0's result,
/// asserting every rank computed an identical copy (the distributed
/// output is replicated).
template <class Fn>
auto on_sim_cluster(int nodes, const FaultPlan* faults, Fn fn) {
  using ResultT = decltype(fn(std::declval<mp::SimComm&>(),
                              std::declval<const FaultPlan*>()));
  std::vector<ResultT> per_rank(static_cast<std::size_t>(nodes));
  mp::SimWorld::run(nodes, [&](mp::SimComm& comm) {
    per_rank[static_cast<std::size_t>(comm.rank())] = fn(comm, faults);
  });
  for (int r = 1; r < nodes; ++r) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], per_rank[0])
        << "rank " << r << " disagrees with rank 0";
  }
  return per_rank[0];
}

TEST(DistMapReduceTest, WordCountMatchesThreadLocalByteForByte) {
  const auto expected = mapreduce::word_count(sample_documents(), 1);
  const auto actual =
      on_sim_cluster(4, nullptr, [](mp::SimComm& comm, const FaultPlan*) {
        return jobs::word_count(comm, sample_documents());
      });
  EXPECT_EQ(actual, expected);
}

TEST(DistMapReduceTest, AllFiveJobsMatchTheirThreadLocalCounterparts) {
  const std::vector<std::pair<std::string, double>> samples = {
      {"cpu", 0.5}, {"net", 0.125}, {"cpu", 1.5},
      {"disk", 2.0}, {"net", 0.375}, {"cpu", 0.25},
  };
  on_sim_cluster(3, nullptr, [&](mp::SimComm& comm, const FaultPlan*) {
    EXPECT_EQ(jobs::word_count(comm, sample_documents()),
              mapreduce::word_count(sample_documents(), 1));
    EXPECT_EQ(jobs::inverted_index(comm, sample_documents()),
              mapreduce::inverted_index(sample_documents(), 1));
    EXPECT_EQ(jobs::url_access_counts(comm, sample_log_lines()),
              mapreduce::url_access_counts(sample_log_lines(), 1));
    EXPECT_EQ(jobs::distributed_grep(comm, sample_documents(), "dog"),
              mapreduce::distributed_grep(sample_documents(), "dog", 1));
    EXPECT_EQ(jobs::mean_per_key(comm, samples),
              mapreduce::mean_per_key(samples, 1));
    return 0;
  });
}

TEST(DistMapReduceTest, OutputSurvivesAWorkerCrashUnchanged) {
  const auto expected = mapreduce::word_count(sample_documents(), 1);
  FaultPlan faults;
  faults.crashes.push_back(CrashFault{2, 1});
  ClusterOptions options;
  options.max_live_attempts = 1;  // no speculation: recovery must requeue
  ClusterProfile profile;
  const auto actual =
      on_sim_cluster(4, &faults, [&](mp::SimComm& comm, const FaultPlan* f) {
        return jobs::word_count(comm, sample_documents(), {}, options, f,
                                comm.rank() == 0 ? &profile : nullptr);
      });
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(profile.stats.dead_workers, 1);
  EXPECT_GE(profile.stats.requeues, 1);
}

TEST(DistMapReduceTest, OutputSurvivesAStragglerUnchanged) {
  const auto expected = mapreduce::inverted_index(sample_documents(), 1);
  FaultPlan faults;
  // 20x slow: each map slice stays under the heartbeat timeout, so the
  // straggler is never written off — speculation beats it instead.
  faults.stragglers.push_back(StragglerFault{1, 20.0});
  jobs::JobTuning tuning;
  tuning.map_cost_ops = 1e7;  // heavy enough that speculation pays
  ClusterProfile profile;
  const auto actual =
      on_sim_cluster(4, &faults, [&](mp::SimComm& comm, const FaultPlan* f) {
        return jobs::inverted_index(comm, sample_documents(), tuning, {}, f,
                                    comm.rank() == 0 ? &profile : nullptr);
      });
  EXPECT_EQ(actual, expected);
  EXPECT_GE(profile.stats.speculative_attempts, 1);
  EXPECT_TRUE(profile.dead_workers.empty());
}

TEST(DistMapReduceTest, SingleRankWorldStillMatches) {
  const auto expected = mapreduce::url_access_counts(sample_log_lines(), 1);
  const auto actual =
      on_sim_cluster(1, nullptr, [](mp::SimComm& comm, const FaultPlan*) {
        return jobs::url_access_counts(comm, sample_log_lines());
      });
  EXPECT_EQ(actual, expected);
}

TEST(DistMapReduceTest, EmptyInputProducesEmptyOutput) {
  const auto actual =
      on_sim_cluster(3, nullptr, [](mp::SimComm& comm, const FaultPlan*) {
        return jobs::word_count(comm, {});
      });
  EXPECT_TRUE(actual.empty());
}

TEST(DistMapReduceTest, DrugDesignSweepMatchesSequentialEvenUnderFaults) {
  drugdesign::Config config;
  config.num_ligands = 24;
  config.max_ligand_len = 5;
  config.protein_len = 60;
  const drugdesign::Result expected = drugdesign::solve_sequential(config);

  const drugdesign::Result clean = drugdesign::solve_cluster(config, 4);
  EXPECT_EQ(clean.best_score, expected.best_score);
  EXPECT_EQ(clean.best_ligands, expected.best_ligands);
  EXPECT_GT(clean.elapsed_seconds, 0.0);

  FaultPlan faults;
  faults.crashes.push_back(CrashFault{1, 2});
  faults.stragglers.push_back(StragglerFault{3, 30.0});
  ClusterProfile profile;
  const drugdesign::Result faulty =
      drugdesign::solve_cluster(config, 4, &faults, &profile);
  EXPECT_EQ(faulty.best_score, expected.best_score);
  EXPECT_EQ(faulty.best_ligands, expected.best_ligands);
  EXPECT_EQ(profile.stats.dead_workers, 1);
  // The crashed worker's task came back via a requeue or a speculative
  // duplicate, whichever the schedule reached first.
  EXPECT_GE(profile.stats.requeues + profile.stats.speculative_attempts, 1);
}

}  // namespace
}  // namespace pblpar::cluster
