#include "cluster/reliable.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "mp/chaos.hpp"
#include "mp/sim_world.hpp"
#include "util/error.hpp"

namespace pblpar::cluster {
namespace {

mp::ClusterSpec fast_net() {
  mp::ClusterSpec spec;
  spec.net_latency_us = 0.0;
  spec.net_bandwidth_mb_s = 1e9;
  spec.send_overhead_us = 0.0;
  spec.node.fork_cost_us = 0.0;
  spec.node.join_cost_us = 0.0;
  spec.node.mutex_acquire_cost_us = 0.0;
  return spec;
}

/// Short retransmit timers: virtual time is free, and tight timers keep
/// the loss-recovery machinery busy.
ReliabilityOptions fast_reliability() {
  ReliabilityOptions options;
  options.enabled = true;
  options.ack_timeout_s = 0.01;
  options.max_backoff_s = 0.1;
  options.jitter_s = 0.001;
  options.recv_timeout_s = 60.0;
  return options;
}

/// Keep servicing the wire (acking retransmits) for a grace window after
/// this rank's own work is flushed, so a peer whose last ack chaos ate
/// can still complete its flush — a rank that just exits re-creates the
/// very message loss the layer exists to absorb.
void linger(ReliableComm<mp::SimComm>& reliable, double window_s = 5.0) {
  mp::RawMessage raw;
  while (reliable.recv_raw_timed(mp::kAnySource, /*tag=*/1 << 28, window_s,
                                 &raw)) {
  }
}

TEST(ReliabilityOptionsTest, ValidateRejectsDegenerateTuning) {
  {
    ReliabilityOptions options;
    options.ack_timeout_s = 0.0;
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.backoff_factor = 0.5;
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.backoff_factor = std::numeric_limits<double>::infinity();
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.max_backoff_s = 0.01;  // below the 0.05 ack timeout
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.jitter_s = -1.0;
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.max_retransmits = -1;
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
  {
    ReliabilityOptions options;
    options.recv_timeout_s = 0.0;
    EXPECT_THROW(options.validate(), util::PreconditionError);
  }
}

TEST(ReliableCommTest, InOrderExactlyOnceDeliveryUnderDropAndDuplicate) {
  constexpr int kSends = 150;
  mp::ClusterSpec spec = fast_net();
  spec.chaos.seed = 3;
  spec.chaos.all.drop = 0.2;
  spec.chaos.all.duplicate = 0.2;

  RetryStats sender_stats;
  std::vector<int> received;
  mp::SimWorld::run(
      2,
      [&](mp::SimComm& comm) {
        ReliableComm<mp::SimComm> reliable(comm, fast_reliability());
        if (comm.rank() == 1) {
          for (int i = 0; i < kSends; ++i) {
            reliable.send(0, 5, i);
          }
          EXPECT_EQ(reliable.flush(), 0u);
          sender_stats = reliable.retry_stats();
        } else {
          for (int i = 0; i < kSends; ++i) {
            received.push_back(reliable.recv<int>(1, 5));
          }
          linger(reliable);  // keep acking the sender's retransmits
        }
      },
      spec);

  // Exactly once, in order — despite a 20% drop / 20% duplicate wire.
  std::vector<int> expected(kSends);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(received, expected);
  EXPECT_GT(sender_stats.retransmits, 0u);
  EXPECT_EQ(sender_stats.abandoned, 0u);
  EXPECT_EQ(sender_stats.data_sent, static_cast<std::uint64_t>(kSends));
}

TEST(ReliableCommTest, CollectivesSurviveChaosWithCorrectResults) {
  constexpr int kRanks = 4;
  mp::ClusterSpec spec = fast_net();
  spec.chaos.seed = 9;
  spec.chaos.all.drop = 0.1;
  spec.chaos.all.duplicate = 0.1;

  std::vector<RetryStats> stats(kRanks);
  mp::SimWorld::run(
      kRanks,
      [&](mp::SimComm& comm) {
        ReliableComm<mp::SimComm> reliable(comm, fast_reliability());

        int token = comm.rank() == 0 ? 1234 : -1;
        reliable.bcast(token, 0);
        EXPECT_EQ(token, 1234);

        const std::vector<int> all = reliable.allgather(comm.rank() * 3);
        ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
        for (int r = 0; r < kRanks; ++r) {
          EXPECT_EQ(all[static_cast<std::size_t>(r)], 3 * r);
        }

        std::vector<double> data(64);
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
        }
        reliable.ring_allreduce(data, [](double a, double b) { return a + b; });
        const double rank_sum = kRanks * (kRanks - 1) / 2.0;
        for (std::size_t i = 0; i < data.size(); ++i) {
          EXPECT_DOUBLE_EQ(data[i],
                           rank_sum + kRanks * static_cast<double>(i));
        }

        EXPECT_EQ(reliable.flush(), 0u);
        stats[static_cast<std::size_t>(comm.rank())] = reliable.retry_stats();
        linger(reliable);
      },
      spec);

  std::uint64_t total_retransmits = 0;
  std::uint64_t total_dups_dropped = 0;
  for (const RetryStats& s : stats) {
    total_retransmits += s.retransmits;
    total_dups_dropped += s.duplicates_dropped;
    EXPECT_EQ(s.abandoned, 0u);
  }
  EXPECT_GT(total_retransmits, 0u) << "chaos never bit; test is vacuous";
  EXPECT_GT(total_dups_dropped, 0u);
}

/// Retransmit counts are part of the determinism contract: the whole
/// recovery trajectory (not just the payload outcome) replays exactly.
TEST(ReliableCommTest, RetransmitCountsReplayExactlyOnSim) {
  const auto run_once = [] {
    mp::ClusterSpec spec = fast_net();
    spec.chaos.seed = 17;
    spec.chaos.all.drop = 0.15;
    spec.chaos.all.duplicate = 0.1;
    std::vector<std::uint64_t> fingerprint;
    mp::SimWorld::run(
        3,
        [&](mp::SimComm& comm) {
          ReliableComm<mp::SimComm> reliable(comm, fast_reliability());
          const std::vector<int> all = reliable.allgather(comm.rank() + 7);
          EXPECT_EQ(all, (std::vector<int>{7, 8, 9}));
          std::vector<double> sums =
              reliable.ring_allreduce_sum({1.0, 2.0, 3.0, 4.0});
          EXPECT_EQ(sums, (std::vector<double>{3.0, 6.0, 9.0, 12.0}));
          reliable.flush();
          const RetryStats& s = reliable.retry_stats();
          // Ranks are serialized by the simulator: safe shared push.
          fingerprint.push_back(s.data_sent);
          fingerprint.push_back(s.retransmits);
          fingerprint.push_back(s.acks_sent);
          fingerprint.push_back(s.acks_received);
          fingerprint.push_back(s.duplicates_dropped);
          fingerprint.push_back(s.out_of_order_stashed);
          linger(reliable);
        },
        spec);
    return fingerprint;
  };

  const std::vector<std::uint64_t> a = run_once();
  const std::vector<std::uint64_t> b = run_once();
  EXPECT_EQ(a, b);
  std::uint64_t retransmits = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    retransmits += a[r * 6 + 1];
  }
  EXPECT_GT(retransmits, 0u) << "plan never fired; replay check is vacuous";
}

TEST(ReliableCommTest, FlushAbandonsAfterBudgetWhenPeerNeverAcks) {
  mp::SimWorld::run(
      2,
      [&](mp::SimComm& comm) {
        ReliabilityOptions options = fast_reliability();
        options.max_retransmits = 3;
        ReliableComm<mp::SimComm> reliable(comm, options);
        if (comm.rank() == 1) {
          // Rank 0 never reads its inbox, so no ack ever comes back.
          reliable.send(0, 5, 42);
          const std::uint64_t abandoned = reliable.flush();
          EXPECT_EQ(abandoned, 1u);
          const RetryStats& stats = reliable.retry_stats();
          EXPECT_EQ(stats.retransmits, 3u);
          EXPECT_EQ(stats.abandoned, 1u);
        }
      },
      fast_net());
}

TEST(ReliableCommTest, FireAndForgetSkipsTheRetryMachinery) {
  mp::SimWorld::run(
      2,
      [&](mp::SimComm& comm) {
        ReliableComm<mp::SimComm> reliable(comm, fast_reliability());
        if (comm.rank() == 1) {
          reliable.send_raw_fire_and_forget(
              0, 5, mp::type_hash_of<int>(), mp::Codec<int>::encode(99));
          EXPECT_EQ(reliable.flush(), 0u);  // nothing pending
          const RetryStats& stats = reliable.retry_stats();
          EXPECT_EQ(stats.fire_and_forget_sent, 1u);
          EXPECT_EQ(stats.data_sent, 0u);
        } else {
          EXPECT_EQ(reliable.recv<int>(1, 5), 99);
          EXPECT_EQ(reliable.retry_stats().acks_sent, 0u);
        }
      },
      fast_net());
}

TEST(ReliableCommTest, UnenvelopedMessageFailsLoudly) {
  EXPECT_THROW(
      mp::SimWorld::run(
          2,
          [&](mp::SimComm& comm) {
            if (comm.rank() == 1) {
              comm.send(0, 5, 7);  // bare transport: no envelope
            } else {
              ReliableComm<mp::SimComm> reliable(comm, fast_reliability());
              reliable.recv<int>(1, 5);
            }
          },
          fast_net()),
      mp::MpError);
}

TEST(ReliableCommTest, RecvTimesOutAsDeadlockWhenNothingArrives) {
  mp::SimWorld::run(
      2,
      [&](mp::SimComm& comm) {
        if (comm.rank() == 0) {
          ReliabilityOptions options = fast_reliability();
          options.recv_timeout_s = 0.2;
          ReliableComm<mp::SimComm> reliable(comm, options);
          EXPECT_THROW(reliable.recv<int>(1, 5), mp::MpDeadlockError);
        }
      },
      fast_net());
}

}  // namespace
}  // namespace pblpar::cluster
