#include "cluster/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/jobs.hpp"
#include "mapreduce/jobs.hpp"
#include "mp/sim_world.hpp"
#include "rt/cancel.hpp"
#include "util/error.hpp"

namespace pblpar::cluster {
namespace {

std::vector<std::vector<std::byte>> index_tasks(int count) {
  std::vector<std::vector<std::byte>> tasks;
  for (int i = 0; i < count; ++i) {
    Writer writer;
    writer.i32(i);
    tasks.push_back(writer.take());
  }
  return tasks;
}

TaskFn square_task(double ops_per_task) {
  return [ops_per_task](TaskContext& ctx, int, mp::ByteView payload) {
    Reader reader(payload);
    const std::int32_t value = reader.i32();
    for (int s = 0; s < 4; ++s) {
      ctx.charge(ops_per_task / 4);
      ctx.progress();
    }
    Writer writer;
    writer.i32(value * value);
    return writer.take();
  };
}

void expect_squares(const std::vector<mp::Buffer>& results) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    Reader reader(results[i]);
    EXPECT_EQ(reader.i32(), static_cast<std::int32_t>(i * i)) << "task " << i;
  }
}

/// Task ids that run B restored, and a check that none of them was ever
/// assigned again.
std::set<int> restored_and_never_reassigned(const ClusterProfile& profile) {
  std::set<int> restored;
  for (const ClusterEvent& e : profile.events) {
    if (e.kind == "restore") {
      restored.insert(e.task);
    }
  }
  for (const ClusterEvent& e : profile.events) {
    if (e.kind == "assign" || e.kind == "spec-assign") {
      EXPECT_EQ(restored.count(e.task), 0u)
          << "restored task " << e.task << " was re-run:\n"
          << profile.event_log();
    }
  }
  return restored;
}

TEST(ClusterCheckpointTest, KilledMasterResumesWithoutRerunningDoneTasks) {
  constexpr int kTasks = 8;
  // Calibrate a deadline that lands mid-job, so the "killed" master's
  // wind-down checkpoint holds a strict subset of the results.
  const SimClusterRun clean =
      run_sim_cluster(3, index_tasks(kTasks), square_task(2e7));

  ClusterCheckpoint checkpoint;
  ClusterOptions options_a;
  options_a.job_deadline_s = clean.profile.stats.completion_s / 2.0;
  options_a.checkpoint_interval_s = 1e-3;
  options_a.on_checkpoint = [&checkpoint](const ClusterCheckpoint& snapshot) {
    checkpoint = snapshot;  // keep the latest
  };
  const SimClusterRun run_a =
      run_sim_cluster(3, index_tasks(kTasks), square_task(2e7), options_a);
  ASSERT_TRUE(run_a.job_cancelled);
  ASSERT_FALSE(checkpoint.empty());
  EXPECT_GE(run_a.profile.stats.checkpoints, 1);
  EXPECT_NE(run_a.profile.event_log().find("checkpoint"), std::string::npos);
  // The wind-down snapshot captured exactly the results that landed.
  const int done_in_a = checkpoint.completed_tasks();
  ASSERT_GT(done_in_a, 0);
  ASSERT_LT(done_in_a, kTasks);
  EXPECT_EQ(checkpoint.task_count(), kTasks);
  EXPECT_EQ(done_in_a,
            kTasks - static_cast<int>(run_a.incomplete_tasks.size()));

  // "Restart the master": a fresh engine run resumes from the snapshot.
  ClusterOptions options_b;
  options_b.restart_from = &checkpoint;
  const SimClusterRun run_b =
      run_sim_cluster(3, index_tasks(kTasks), square_task(2e7), options_b);
  EXPECT_FALSE(run_b.job_cancelled);
  EXPECT_EQ(run_b.profile.stats.restored_tasks, done_in_a);
  expect_squares(run_b.results);

  const std::set<int> restored =
      restored_and_never_reassigned(run_b.profile);
  EXPECT_EQ(static_cast<int>(restored.size()), done_in_a);
}

TEST(ClusterCheckpointTest, FullCheckpointRestoresEverythingInstantly) {
  constexpr int kTasks = 5;
  ClusterCheckpoint checkpoint;
  ClusterOptions options;
  options.checkpoint_interval_s = 1e-3;
  options.on_checkpoint = [&checkpoint](const ClusterCheckpoint& snapshot) {
    checkpoint = snapshot;
  };
  const SimClusterRun run_a =
      run_sim_cluster(3, index_tasks(kTasks), square_task(1e6), options);
  expect_squares(run_a.results);
  ASSERT_EQ(checkpoint.completed_tasks(), kTasks);

  ClusterOptions restart;
  restart.restart_from = &checkpoint;
  const SimClusterRun run_b =
      run_sim_cluster(3, index_tasks(kTasks), square_task(1e6), restart);
  EXPECT_EQ(run_b.profile.stats.restored_tasks, kTasks);
  EXPECT_EQ(run_b.profile.stats.attempts, 0);
  expect_squares(run_b.results);
  restored_and_never_reassigned(run_b.profile);
}

TEST(ClusterCheckpointTest, SerialMasterCheckpointsAndRestores) {
  constexpr int kTasks = 6;
  ClusterCheckpoint checkpoint;
  ClusterOptions options;
  options.checkpoint_interval_s = 1e-6;  // every task boundary
  options.on_checkpoint = [&checkpoint](const ClusterCheckpoint& snapshot) {
    checkpoint = snapshot;
  };
  const SimClusterRun run_a =
      run_sim_cluster(1, index_tasks(kTasks), square_task(1e6), options);
  expect_squares(run_a.results);
  EXPECT_GE(run_a.profile.stats.checkpoints, 2);
  ASSERT_EQ(checkpoint.completed_tasks(), kTasks);

  ClusterOptions restart;
  restart.restart_from = &checkpoint;
  const SimClusterRun run_b =
      run_sim_cluster(1, index_tasks(kTasks), square_task(1e6), restart);
  EXPECT_EQ(run_b.profile.stats.restored_tasks, kTasks);
  EXPECT_EQ(run_b.profile.stats.attempts, 0);
  expect_squares(run_b.results);
}

TEST(ClusterCheckpointTest, CheckpointAndRestartReplayDeterministically) {
  ClusterCheckpoint checkpoint;
  ClusterOptions options;
  options.job_deadline_s = 0.05;
  options.checkpoint_interval_s = 1e-3;
  options.on_checkpoint = [&checkpoint](const ClusterCheckpoint& snapshot) {
    checkpoint = snapshot;
  };
  const auto run_once = [&] {
    const SimClusterRun a =
        run_sim_cluster(3, index_tasks(8), square_task(2e7), options);
    ClusterOptions restart;
    restart.restart_from = &checkpoint;
    const SimClusterRun b =
        run_sim_cluster(3, index_tasks(8), square_task(2e7), restart);
    return std::make_pair(a.profile.event_log() + b.profile.event_log(),
                          checkpoint.bytes);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  EXPECT_NE(first.first.find("checkpoint"), std::string::npos);
  EXPECT_NE(first.first.find("restore"), std::string::npos);
}

TEST(ClusterCancelTokenTest, TokenFiredFromATaskBodyCancelsTheRun) {
  rt::CancelSource source;
  ClusterOptions options;
  options.cancel = source.token();
  // The third task to start pulls the plug mid-job; the master notices
  // at its next tick and drains.
  int started = 0;
  const TaskFn task_fn = [&](TaskContext& ctx, int task_id,
                             mp::ByteView payload) {
    if (++started == 3) {
      source.cancel();
    }
    return square_task(2e7)(ctx, task_id, payload);
  };
  const SimClusterRun run =
      run_sim_cluster(3, index_tasks(8), task_fn, options);
  EXPECT_TRUE(run.job_cancelled);
  EXPECT_FALSE(run.incomplete_tasks.empty());
  const std::string log = run.profile.event_log();
  EXPECT_NE(log.find("job-cancel"), std::string::npos) << log;
  EXPECT_EQ(log.find("job-deadline"), std::string::npos) << log;
}

TEST(ClusterCancelTokenTest, SerialRunHonoursTheTokenBetweenTasks) {
  rt::CancelSource source;
  ClusterOptions options;
  options.cancel = source.token();
  int executed = 0;
  const TaskFn task_fn = [&](TaskContext& ctx, int task_id,
                             mp::ByteView payload) {
    if (++executed == 2) {
      source.cancel();
    }
    return square_task(1e6)(ctx, task_id, payload);
  };
  const SimClusterRun run = run_sim_cluster(1, index_tasks(5), task_fn, options);
  EXPECT_TRUE(run.job_cancelled);
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(run.incomplete_tasks.size(), 3u);
  EXPECT_NE(run.profile.event_log().find("job-cancel"), std::string::npos);
}

TEST(ClusterCancelTokenTest, UnfiredTokenChangesNothing) {
  rt::CancelSource source;
  ClusterOptions with_token;
  with_token.cancel = source.token();
  const SimClusterRun run =
      run_sim_cluster(3, index_tasks(6), square_task(1e7), with_token);
  EXPECT_FALSE(run.job_cancelled);
  expect_squares(run.results);
}

TEST(ClusterOptionsTest, ValidateRejectsBadCheckpointAndReliabilityKnobs) {
  const auto expect_invalid = [](const ClusterOptions& options) {
    EXPECT_THROW(options.validate(), util::PreconditionError);
  };
  {
    ClusterOptions options;
    options.checkpoint_interval_s = -1.0;
    expect_invalid(options);
  }
  {
    ClusterOptions options;
    options.checkpoint_interval_s = std::numeric_limits<double>::quiet_NaN();
    expect_invalid(options);
  }
  {
    ClusterOptions options;
    options.on_checkpoint = [](const ClusterCheckpoint&) {};
    expect_invalid(options);  // armed sink without a positive interval
  }
  {
    ClusterOptions options;
    options.reliability.max_retransmits = -2;
    expect_invalid(options);
  }
  {
    ClusterOptions options;
    options.reliability.backoff_factor =
        std::numeric_limits<double>::quiet_NaN();
    expect_invalid(options);
  }
  {
    ClusterCheckpoint garbage;
    garbage.bytes.assign(64, std::byte{0x5A});
    ClusterOptions options;
    options.restart_from = &garbage;
    expect_invalid(options);  // bad magic
  }
  {
    ClusterCheckpoint truncated;
    truncated.bytes.assign(3, std::byte{0});
    ClusterOptions options;
    options.restart_from = &truncated;
    expect_invalid(options);
  }
}

TEST(ClusterChaosTest, EngineSurvivesWireChaosWithReliability) {
  FaultPlan faults;
  faults.transport.seed = 13;
  faults.transport.all.drop = 0.05;
  faults.transport.all.duplicate = 0.05;
  ClusterOptions options;
  options.reliability.enabled = true;
  options.reliability.ack_timeout_s = 0.005;
  options.reliability.max_backoff_s = 0.1;

  const auto run_once = [&] {
    return run_sim_cluster(4, index_tasks(10), square_task(1e7), options,
                           &faults);
  };
  const SimClusterRun run = run_once();
  expect_squares(run.results);
  EXPECT_TRUE(run.dead_workers.empty());
  EXPECT_GT(run.profile.retry.retransmits, 0u)
      << "chaos never cost a retransmit; the test is vacuous";
  EXPECT_NE(run.profile.to_json().find("\"retransmits\""), std::string::npos);

  // Chaos, recovery and scheduling replay bit-for-bit.
  const SimClusterRun again = run_once();
  EXPECT_EQ(run.profile.event_log(), again.profile.event_log());
  EXPECT_EQ(run.profile.to_json(), again.profile.to_json());
}

TEST(ClusterChaosTest, ChaosInBothFaultPlanAndSpecIsRejected) {
  FaultPlan faults;
  faults.transport.all.drop = 0.1;
  mp::ClusterSpec spec;
  spec.chaos.all.drop = 0.1;
  ClusterOptions options;
  options.reliability.enabled = true;
  EXPECT_THROW(run_sim_cluster(2, index_tasks(2), square_task(1e6), options,
                               &faults, spec),
               util::PreconditionError);
}

TEST(ClusterChaosTest, DistMapReduceStaysByteIdenticalUnderChaos) {
  const std::vector<std::string> documents = {
      "the quick brown fox jumps over the lazy dog",
      "the dog barks at the fox",
      "parallel programming teaches patience and the dog agrees",
      "threads race but messages queue",
      "the master schedules and the workers compute",
  };
  const auto expected = mapreduce::word_count(documents, 1);

  FaultPlan faults;
  faults.transport.seed = 29;
  faults.transport.all.drop = 0.03;
  faults.transport.all.duplicate = 0.03;
  ClusterOptions options;
  options.reliability.enabled = true;
  options.reliability.ack_timeout_s = 0.005;
  options.reliability.max_backoff_s = 0.1;

  mp::ClusterSpec spec;
  spec.chaos = faults.transport;

  std::vector<std::vector<std::pair<std::string, long>>> per_rank(4);
  ClusterProfile profile;
  mp::SimWorld::run(
      4,
      [&](mp::SimComm& comm) {
        per_rank[static_cast<std::size_t>(comm.rank())] = jobs::word_count(
            comm, documents, {}, options, nullptr,
            comm.rank() == 0 ? &profile : nullptr);
      },
      spec);

  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], expected)
        << "rank " << r;
  }
  EXPECT_GT(profile.retry.retransmits + profile.retry.duplicates_dropped, 0u)
      << "chaos never bit the job; byte-identity was not exercised";
}

TEST(ClusterChaosTest, DistMapReduceCancelSurfacesOnEveryRank) {
  const std::vector<std::string> documents(40, "w x y z w v u t s r q p");
  rt::CancelSource source;
  source.cancel();  // already tripped: the job must die immediately
  ClusterOptions options;
  options.cancel = source.token();

  int cancelled_ranks = 0;
  mp::SimWorld::run(3, [&](mp::SimComm& comm) {
    try {
      jobs::word_count(comm, documents, {}, options);
      ADD_FAILURE() << "rank " << comm.rank() << " was not cancelled";
    } catch (const ClusterCancelled&) {
      ++cancelled_ranks;  // serialized ranks: safe
    }
  });
  EXPECT_EQ(cancelled_ranks, 3);
}

}  // namespace
}  // namespace pblpar::cluster
