#include "cluster/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "mp/world.hpp"
#include "util/error.hpp"

namespace pblpar::cluster {
namespace {

std::vector<std::vector<std::byte>> index_tasks(int count) {
  std::vector<std::vector<std::byte>> tasks;
  for (int i = 0; i < count; ++i) {
    Writer writer;
    writer.i32(i);
    tasks.push_back(writer.take());
  }
  return tasks;
}

/// Square the task index, charging `ops_per_task` of modelled work in
/// four slices with heartbeat points between.
TaskFn square_task(double ops_per_task) {
  return [ops_per_task](TaskContext& ctx, int, mp::ByteView payload) {
    Reader reader(payload);
    const std::int32_t value = reader.i32();
    for (int s = 0; s < 4; ++s) {
      ctx.charge(ops_per_task / 4);
      ctx.progress();
    }
    Writer writer;
    writer.i32(value * value);
    return writer.take();
  };
}

void expect_squares(const std::vector<mp::Buffer>& results) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    Reader reader(results[i]);
    EXPECT_EQ(reader.i32(), static_cast<std::int32_t>(i * i)) << "task " << i;
  }
}

void expect_identical_results(const std::vector<mp::Buffer>& a,
                              const std::vector<mp::Buffer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const mp::ByteView va = a[i];
    const mp::ByteView vb = b[i];
    ASSERT_EQ(va.size(), vb.size()) << "task " << i;
    EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin())) << "task " << i;
  }
}

TEST(ClusterEngineTest, CleanRunCompletesEveryTask) {
  const SimClusterRun run =
      run_sim_cluster(4, index_tasks(9), square_task(1e7));
  ASSERT_EQ(run.results.size(), 9u);
  expect_squares(run.results);
  EXPECT_TRUE(run.dead_workers.empty());
  EXPECT_EQ(run.profile.stats.tasks, 9);
  EXPECT_EQ(run.profile.stats.workers, 3);
  EXPECT_GE(run.profile.stats.attempts, 9);
  EXPECT_EQ(run.profile.stats.requeues, 0);
  EXPECT_EQ(run.profile.stats.dead_workers, 0);
  EXPECT_GT(run.profile.stats.completion_s, 0.0);
  EXPECT_GE(run.profile.stats.makespan_s, run.profile.stats.completion_s);
}

TEST(ClusterEngineTest, SingleRankWorldRunsTasksInline) {
  const SimClusterRun run =
      run_sim_cluster(1, index_tasks(5), square_task(1e6));
  ASSERT_EQ(run.results.size(), 5u);
  expect_squares(run.results);
  EXPECT_EQ(run.profile.stats.workers, 0);
  EXPECT_EQ(run.profile.stats.attempts, 5);
}

TEST(ClusterEngineTest, CrashMidTaskIsDetectedAndReExecuted) {
  FaultPlan faults;
  faults.crashes.push_back(CrashFault{2, 1});  // rank 2 dies in its 2nd task
  ClusterOptions options;
  options.max_live_attempts = 1;  // no speculation: recovery must requeue
  const SimClusterRun run =
      run_sim_cluster(4, index_tasks(8), square_task(1e7), options, &faults);
  ASSERT_EQ(run.results.size(), 8u);
  expect_squares(run.results);
  ASSERT_EQ(run.dead_workers.size(), 1u);
  EXPECT_EQ(run.dead_workers.front(), 2);
  EXPECT_EQ(run.profile.stats.dead_workers, 1);
  EXPECT_GE(run.profile.stats.requeues, 1);
  EXPECT_GT(run.profile.stats.attempts, 8);
}

TEST(ClusterEngineTest, StragglerIsSpeculatedAndFirstFinisherWins) {
  FaultPlan faults;
  faults.stragglers.push_back(StragglerFault{1, 60.0});
  const SimClusterRun run =
      run_sim_cluster(4, index_tasks(6), square_task(1e7), {}, &faults);
  ASSERT_EQ(run.results.size(), 6u);
  expect_squares(run.results);
  // An idle fast worker duplicated the straggler's task and finished
  // first; the straggler was never declared dead (it heartbeats).
  EXPECT_GE(run.profile.stats.speculative_attempts, 1);
  EXPECT_TRUE(run.dead_workers.empty());
  bool superseded_duplicate = false;
  for (const ClusterEvent& e : run.profile.events) {
    if (e.kind == "dup-done") {
      superseded_duplicate = true;
    }
  }
  EXPECT_TRUE(superseded_duplicate);
}

TEST(ClusterEngineTest, AllWorkersDeadIsAClearErrorNotAHang) {
  FaultPlan faults;
  faults.crashes.push_back(CrashFault{1, 0});
  try {
    run_sim_cluster(2, index_tasks(3), square_task(1e7), {}, &faults);
    FAIL() << "expected ClusterError";
  } catch (const ClusterError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("worker(s) dead"), std::string::npos) << what;
    EXPECT_NE(what.find("outstanding"), std::string::npos) << what;
  }
}

TEST(ClusterEngineTest, LostResultIsDetectedAndRequeued) {
  FaultPlan faults;
  faults.drops.push_back(DropResultFault{1, 0});
  const SimClusterRun run =
      run_sim_cluster(2, index_tasks(3), square_task(1e7), {}, &faults);
  ASSERT_EQ(run.results.size(), 3u);
  expect_squares(run.results);
  EXPECT_EQ(run.profile.stats.lost_results, 1);
  EXPECT_GE(run.profile.stats.requeues, 1);
  EXPECT_TRUE(run.dead_workers.empty());
}

TEST(ClusterEngineTest, PoisonousTaskExhaustsItsAttemptBudget) {
  FaultPlan faults;
  for (int nth = 0; nth < 10; ++nth) {
    faults.drops.push_back(DropResultFault{1, nth});
  }
  EXPECT_THROW(
      run_sim_cluster(2, index_tasks(1), square_task(1e6), {}, &faults),
      ClusterError);
}

TEST(ClusterEngineTest, FaultInjectionIsDeterministic) {
  const auto run_once = [] {
    FaultPlan faults;
    faults.stragglers.push_back(StragglerFault{3, 25.0});
    faults.crashes.push_back(CrashFault{4, 2});
    faults.delay_jitter_s = 1e-3;
    faults.seed = 42;
    return run_sim_cluster(5, index_tasks(12), square_task(1e7), {}, &faults);
  };
  const SimClusterRun a = run_once();
  const SimClusterRun b = run_once();
  EXPECT_EQ(a.profile.event_log(), b.profile.event_log());
  EXPECT_EQ(a.profile.to_json(), b.profile.to_json());
  EXPECT_DOUBLE_EQ(a.report.machine.makespan_s, b.report.machine.makespan_s);
  expect_identical_results(a.results, b.results);
  expect_squares(a.results);
}

TEST(ClusterEngineTest, ProfileRecordsScheduleAndEventLog) {
  const SimClusterRun run =
      run_sim_cluster(3, index_tasks(4), square_task(1e7));
  ASSERT_NE(run.profile.schedule, nullptr);
  EXPECT_FALSE(run.profile.schedule->timeline_chart(0).empty());
  const std::string log = run.profile.event_log();
  EXPECT_NE(log.find("assign"), std::string::npos);
  EXPECT_NE(log.find("done"), std::string::npos);
  EXPECT_NE(log.find("all-done"), std::string::npos);
  EXPECT_NE(run.profile.summary().find("4 task(s)"), std::string::npos);
  EXPECT_NE(run.profile.to_json().find("\"schema\":\"pblpar.cluster.v1\""),
            std::string::npos);
}

TEST(ClusterEngineTest, RunsOnTheHostWorldToo) {
  std::vector<mp::Buffer> results;
  ClusterProfile profile;
  mp::World::run(3, [&](mp::Comm& comm) {
    ClusterRunResult result = run_cluster_tasks(
        comm, index_tasks(6), square_task(0.0), {}, nullptr,
        comm.rank() == 0 ? &profile : nullptr);
    if (result.is_master) {
      results = std::move(result.results);
    }
  });
  ASSERT_EQ(results.size(), 6u);
  expect_squares(results);
  EXPECT_EQ(profile.stats.tasks, 6);
  EXPECT_EQ(profile.stats.workers, 2);
}

TEST(ClusterEngineTest, Validation) {
  EXPECT_THROW(run_sim_cluster(0, index_tasks(1), square_task(0.0)),
               util::PreconditionError);
  EXPECT_THROW(run_sim_cluster(2, index_tasks(1), nullptr),
               util::PreconditionError);
  ClusterOptions bad;
  bad.heartbeat_interval_s = 1.0;
  bad.heartbeat_timeout_s = 0.5;
  EXPECT_THROW(run_sim_cluster(2, index_tasks(1), square_task(0.0), bad),
               util::PreconditionError);
}

TEST(ClusterEngineTest, OptionsValidateIsLoudOnEveryField) {
  const auto expect_invalid = [](const ClusterOptions& options) {
    EXPECT_THROW(options.validate(), util::PreconditionError);
  };
  ClusterOptions ok;
  EXPECT_NO_THROW(ok.validate());

  ClusterOptions nan_deadline;
  nan_deadline.job_deadline_s = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(nan_deadline);
  ClusterOptions negative_deadline;
  negative_deadline.job_deadline_s = -1.0;
  expect_invalid(negative_deadline);
  ClusterOptions infinite_deadline;
  infinite_deadline.job_deadline_s = std::numeric_limits<double>::infinity();
  expect_invalid(infinite_deadline);

  ClusterOptions nan_heartbeat;
  nan_heartbeat.heartbeat_interval_s = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(nan_heartbeat);
  ClusterOptions negative_timeout;
  negative_timeout.task_timeout_s = -0.5;
  expect_invalid(negative_timeout);
  ClusterOptions nan_tick;
  nan_tick.tick_s = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(nan_tick);
  ClusterOptions negative_speculation;
  negative_speculation.speculation_age_s = -2.0;
  expect_invalid(negative_speculation);
  ClusterOptions zero_attempts;
  zero_attempts.max_attempts_per_task = 0;
  expect_invalid(zero_attempts);
  ClusterOptions zero_live;
  zero_live.max_live_attempts = 0;
  expect_invalid(zero_live);
}

TEST(ClusterEngineTest, JobDeadlineCancelsTheRemainderDeterministically) {
  // Calibrate against an unconstrained run so the deadline lands mid-job
  // regardless of the machine model's absolute speed.
  const SimClusterRun clean =
      run_sim_cluster(3, index_tasks(8), square_task(2e7));
  ASSERT_FALSE(clean.job_cancelled);
  EXPECT_TRUE(clean.incomplete_tasks.empty());

  ClusterOptions options;
  options.job_deadline_s = clean.profile.stats.completion_s / 2.0;
  const auto run_once = [&options] {
    return run_sim_cluster(3, index_tasks(8), square_task(2e7), options);
  };
  const SimClusterRun run = run_once();
  EXPECT_TRUE(run.job_cancelled);
  ASSERT_FALSE(run.incomplete_tasks.empty());
  EXPECT_LT(run.incomplete_tasks.size(), 8u);
  EXPECT_EQ(run.profile.stats.cancelled_tasks,
            static_cast<int>(run.incomplete_tasks.size()));
  // Tasks that finished before the deadline keep their results; the
  // cancelled ones come back empty.
  for (std::size_t t = 0; t < run.results.size(); ++t) {
    const bool incomplete =
        std::find(run.incomplete_tasks.begin(), run.incomplete_tasks.end(),
                  static_cast<int>(t)) != run.incomplete_tasks.end();
    if (incomplete) {
      EXPECT_TRUE(run.results[t].empty()) << "task " << t;
    } else {
      Reader reader(run.results[t]);
      EXPECT_EQ(reader.i32(), static_cast<std::int32_t>(t * t))
          << "task " << t;
    }
  }
  const std::string log = run.profile.event_log();
  EXPECT_NE(log.find("job-deadline"), std::string::npos) << log;
  EXPECT_NE(log.find("cancel"), std::string::npos) << log;
  EXPECT_NE(run.profile.summary().find("cancelled at the job deadline"),
            std::string::npos);
  EXPECT_NE(run.profile.to_json().find("\"cancelled_tasks\""),
            std::string::npos);

  // Same deadline, same tasks: the drained schedule is bit-identical.
  const SimClusterRun again = run_once();
  EXPECT_EQ(run.profile.event_log(), again.profile.event_log());
  EXPECT_EQ(run.profile.to_json(), again.profile.to_json());
  expect_identical_results(run.results, again.results);
  EXPECT_EQ(run.incomplete_tasks, again.incomplete_tasks);
}

TEST(ClusterEngineTest, SerialRunHonoursTheJobDeadlineBetweenTasks) {
  const SimClusterRun clean =
      run_sim_cluster(1, index_tasks(4), square_task(1e7));
  ClusterOptions options;
  options.job_deadline_s = clean.profile.stats.completion_s / 2.0;
  const SimClusterRun run =
      run_sim_cluster(1, index_tasks(4), square_task(1e7), options);
  EXPECT_TRUE(run.job_cancelled);
  ASSERT_FALSE(run.incomplete_tasks.empty());
  // The task already in flight when the deadline passed still completed:
  // the serial path only polls between tasks.
  EXPECT_LT(run.incomplete_tasks.size(), 4u);
  Reader reader(run.results[0]);
  EXPECT_EQ(reader.i32(), 0);
  EXPECT_NE(run.profile.event_log().find("job-deadline"), std::string::npos);
}

TEST(ClusterFaultPlanTest, ValidateRejectsMalformedPlans) {
  FaultPlan ok;
  ok.crashes.push_back(CrashFault{1, 0});
  ok.stragglers.push_back(StragglerFault{2, 10.0});
  ok.drops.push_back(DropResultFault{3, 1});
  ok.delay_jitter_s = 1e-3;
  EXPECT_NO_THROW(ok.validate());

  FaultPlan negative_rank;
  negative_rank.crashes.push_back(CrashFault{-1, 0});
  EXPECT_THROW(negative_rank.validate(), util::PreconditionError);

  FaultPlan duplicate;
  duplicate.crashes.push_back(CrashFault{1, 0});
  duplicate.crashes.push_back(CrashFault{1, 2});
  EXPECT_THROW(duplicate.validate(), util::PreconditionError);

  FaultPlan jitter;
  jitter.delay_jitter_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(jitter.validate(), util::PreconditionError);

  FaultPlan slowdown;
  slowdown.stragglers.push_back(StragglerFault{1, 0.0});
  EXPECT_THROW(slowdown.validate(), util::PreconditionError);

  FaultPlan drop;
  drop.drops.push_back(DropResultFault{1, -1});
  EXPECT_THROW(drop.validate(), util::PreconditionError);
}

TEST(ClusterEngineTest, MalformedFaultPlanIsRejectedBeforeTheRunStarts) {
  FaultPlan faults;
  faults.crashes.push_back(CrashFault{-2, 0});
  EXPECT_THROW(
      run_sim_cluster(2, index_tasks(1), square_task(0.0), {}, &faults),
      util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::cluster
