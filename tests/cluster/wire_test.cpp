#include "cluster/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace pblpar::cluster {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  Writer writer;
  writer.u32(7u);
  writer.u64(1ull << 40);
  writer.i32(-3);
  writer.i64(-(1ll << 40));
  writer.f64(2.5);
  const std::vector<std::byte> bytes = writer.take();

  Reader reader(bytes);
  EXPECT_EQ(reader.u32(), 7u);
  EXPECT_EQ(reader.u64(), 1ull << 40);
  EXPECT_EQ(reader.i32(), -3);
  EXPECT_EQ(reader.i64(), -(1ll << 40));
  EXPECT_DOUBLE_EQ(reader.f64(), 2.5);
  EXPECT_TRUE(reader.done());
}

TEST(WireTest, StringsAndBlobs) {
  Writer inner;
  inner.i32(11);
  Writer writer;
  writer.str("hello wire");
  writer.str("");
  writer.blob(inner.take());
  const std::vector<std::byte> bytes = writer.take();

  Reader reader(bytes);
  EXPECT_EQ(reader.str(), "hello wire");
  EXPECT_EQ(reader.str(), "");
  const std::vector<std::byte> blob = reader.blob();
  Reader blob_reader(blob);
  EXPECT_EQ(blob_reader.i32(), 11);
  EXPECT_TRUE(reader.done());
}

TEST(WireTest, TruncatedDecodeThrows) {
  Writer writer;
  writer.i64(5);
  const std::vector<std::byte> bytes = writer.take();
  {
    Reader reader(bytes);
    (void)reader.i64();
    EXPECT_THROW((void)reader.i32(), WireError);
  }
  {
    // A length prefix larger than the remaining buffer.
    Writer bad;
    bad.u32(1000u);
    const std::vector<std::byte> bad_bytes = bad.take();
    Reader reader(bad_bytes);
    EXPECT_THROW((void)reader.str(), WireError);
    Reader reader2(bad_bytes);
    EXPECT_THROW((void)reader2.blob(), WireError);
  }
}

TEST(WireTest, CodecRoundTripsNestedTypes) {
  using Pairs = std::vector<std::pair<std::string, std::vector<int>>>;
  const Pairs value = {{"alpha", {1, 2, 3}}, {"", {}}, {"beta", {-7}}};

  Writer writer;
  WireCodec<Pairs>::write(writer, value);
  const std::vector<std::byte> bytes = writer.take();

  Reader reader(bytes);
  EXPECT_EQ(WireCodec<Pairs>::read(reader), value);
  EXPECT_TRUE(reader.done());
}

TEST(WireTest, EqualFieldSequencesEncodeToEqualBytes) {
  const auto encode = [] {
    Writer writer;
    writer.str("determinism");
    writer.f64(3.25);
    WireCodec<std::vector<long>>::write(writer, {4, 5, 6});
    return writer.take();
  };
  EXPECT_EQ(encode(), encode());
}

}  // namespace
}  // namespace pblpar::cluster
