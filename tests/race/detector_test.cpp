#include "race/detector.hpp"

#include <gtest/gtest.h>

#include "race/shared.hpp"
#include "race/vector_clock.hpp"
#include "sim/machine.hpp"

namespace pblpar::race {
namespace {

sim::MachineSpec quiet_spec() {
  sim::MachineSpec spec = sim::MachineSpec::raspberry_pi_3bplus();
  spec.fork_cost_us = 0.0;
  return spec;
}

// --- VectorClock unit tests -------------------------------------------------

TEST(VectorClockTest, GetOfUnseenTidIsZero) {
  VectorClock clock;
  EXPECT_EQ(clock.get(5), 0u);
}

TEST(VectorClockTest, SetAndTick) {
  VectorClock clock;
  clock.set(2, 7);
  EXPECT_EQ(clock.get(2), 7u);
  clock.tick(2);
  EXPECT_EQ(clock.get(2), 8u);
  clock.tick(0);
  EXPECT_EQ(clock.get(0), 1u);
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  VectorClock a;
  a.set(0, 3);
  a.set(1, 1);
  VectorClock b;
  b.set(1, 5);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 5u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClockTest, HappensBeforeOrEqual) {
  VectorClock a;
  a.set(0, 1);
  VectorClock b;
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.happens_before_or_equal(b));
  EXPECT_FALSE(b.happens_before_or_equal(a));
  EXPECT_TRUE(a.happens_before_or_equal(a));
}

TEST(VectorClockTest, IncomparableClocks) {
  VectorClock a;
  a.set(0, 2);
  VectorClock b;
  b.set(1, 2);
  EXPECT_FALSE(a.happens_before_or_equal(b));
  EXPECT_FALSE(b.happens_before_or_equal(a));
}

TEST(EpochTest, HappensBeforeChecksOwnComponent) {
  VectorClock now;
  now.set(3, 4);
  EXPECT_TRUE((Epoch{3, 4}).happens_before(now));
  EXPECT_FALSE((Epoch{3, 5}).happens_before(now));
  EXPECT_FALSE((Epoch{1, 1}).happens_before(now));
}

// --- Detector driven manually ----------------------------------------------

TEST(DetectorManualTest, UnorderedWritesRace) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].kind, RaceReport::Kind::WriteWrite);
}

TEST(DetectorManualTest, WriteThenReadRace) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_read(1, &x, sizeof x);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].kind, RaceReport::Kind::WriteThenRead);
}

TEST(DetectorManualTest, ReadThenWriteRace) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_read(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].kind, RaceReport::Kind::ReadThenWrite);
}

TEST(DetectorManualTest, ConcurrentReadsDoNotRace) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_read(0, &x, sizeof x);
  detector.on_read(1, &x, sizeof x);
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorManualTest, SpawnOrdersParentBeforeChild) {
  Detector detector;
  int x = 0;
  detector.on_write(0, &x, sizeof x);
  detector.on_spawn(0, 1);
  detector.on_write(1, &x, sizeof x);  // ordered by the spawn edge
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorManualTest, JoinOrdersChildBeforeParent) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_write(1, &x, sizeof x);
  detector.on_join(0, 1);
  detector.on_write(0, &x, sizeof x);
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorManualTest, MutexOrdersCriticalSections) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_mutex_acquire(0, 7);
  detector.on_write(0, &x, sizeof x);
  detector.on_mutex_release(0, 7);
  detector.on_mutex_acquire(1, 7);
  detector.on_write(1, &x, sizeof x);
  detector.on_mutex_release(1, 7);
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorManualTest, DifferentMutexesDoNotOrder) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_mutex_acquire(0, 7);
  detector.on_write(0, &x, sizeof x);
  detector.on_mutex_release(0, 7);
  detector.on_mutex_acquire(1, 8);
  detector.on_write(1, &x, sizeof x);
  detector.on_mutex_release(1, 8);
  ASSERT_EQ(detector.races().size(), 1u);
}

TEST(DetectorManualTest, BarrierOrdersAllParticipants) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  const int participants[] = {0, 1};
  detector.on_barrier(participants);
  detector.on_write(1, &x, sizeof x);
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorManualTest, DuplicateRacesAreDeduplicated) {
  Detector detector;
  int x = 0;
  detector.on_spawn(0, 1);
  for (int i = 0; i < 10; ++i) {
    detector.on_write(0, &x, sizeof x);
    detector.on_write(1, &x, sizeof x);
  }
  EXPECT_EQ(detector.races().size(), 1u);
}

TEST(DetectorManualTest, DistinctVariablesReportSeparately) {
  Detector detector;
  int x = 0;
  int y = 0;
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  detector.on_write(0, &y, sizeof y);
  detector.on_write(1, &y, sizeof y);
  EXPECT_EQ(detector.races().size(), 2u);
}

TEST(DetectorManualTest, LabelAppearsInDescription) {
  Detector detector;
  int x = 0;
  detector.label_address(&x, "sum");
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_NE(detector.races()[0].describe().find("'sum'"), std::string::npos);
  EXPECT_NE(detector.races()[0].describe().find("write-write"),
            std::string::npos);
}

TEST(DetectorManualTest, ResetClearsHistoryButKeepsLabels) {
  Detector detector;
  int x = 0;
  detector.label_address(&x, "sum");
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  detector.reset();
  EXPECT_TRUE(detector.race_free());
  detector.on_spawn(0, 1);
  detector.on_write(0, &x, sizeof x);
  detector.on_write(1, &x, sizeof x);
  ASSERT_EQ(detector.races().size(), 1u);
  EXPECT_EQ(detector.races()[0].label, "sum");
}

// --- Detector attached to the simulator -------------------------------------

TEST(DetectorSimTest, UnsynchronizedSharedCounterRaces) {
  sim::Machine machine(quiet_spec());
  Detector detector;
  machine.set_observer(&detector);

  Shared<int> counter(0);
  detector.label_address(counter.address(), "counter");

  machine.run([&](sim::Context& root) {
    auto worker = [&](sim::Context& ctx) {
      for (int i = 0; i < 5; ++i) {
        counter.add(ctx, 1);
        ctx.yield();
      }
    };
    const sim::ThreadHandle a = root.spawn(worker);
    const sim::ThreadHandle b = root.spawn(worker);
    root.join(a);
    root.join(b);
  });

  EXPECT_FALSE(detector.race_free());
  // The simulator serializes real code, so the *value* is right even
  // though the program is racy — exactly the trap the paper's Assignment
  // 2 teaches about ("difficult to reproduce and debug").
  EXPECT_EQ(counter.unsafe_value(), 10);
}

TEST(DetectorSimTest, MutexProtectedCounterIsRaceFree) {
  sim::Machine machine(quiet_spec());
  Detector detector;
  machine.set_observer(&detector);
  const sim::MutexHandle mutex = machine.make_mutex();

  Shared<int> counter(0);
  machine.run([&](sim::Context& root) {
    auto worker = [&](sim::Context& ctx) {
      for (int i = 0; i < 5; ++i) {
        sim::ScopedLock lock(ctx, mutex);
        counter.add(ctx, 1);
      }
    };
    const sim::ThreadHandle a = root.spawn(worker);
    const sim::ThreadHandle b = root.spawn(worker);
    root.join(a);
    root.join(b);
  });

  EXPECT_TRUE(detector.race_free()) << detector.races()[0].describe();
  EXPECT_EQ(counter.unsafe_value(), 10);
}

TEST(DetectorSimTest, JoinMakesParentReadSafe) {
  sim::Machine machine(quiet_spec());
  Detector detector;
  machine.set_observer(&detector);

  Shared<long> result(0);
  machine.run([&](sim::Context& root) {
    const sim::ThreadHandle child = root.spawn(
        [&](sim::Context& ctx) { result.write(ctx, 42); });
    root.join(child);
    EXPECT_EQ(result.read(root), 42);
  });
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorSimTest, BarrierSeparatesPhases) {
  sim::Machine machine(quiet_spec());
  Detector detector;
  machine.set_observer(&detector);
  const sim::BarrierHandle barrier = machine.make_barrier(2);

  Shared<int> cell(0);
  machine.run([&](sim::Context& root) {
    const sim::ThreadHandle child = root.spawn([&](sim::Context& ctx) {
      cell.write(ctx, 1);
      ctx.barrier(barrier);
    });
    root.barrier(barrier);
    EXPECT_EQ(cell.read(root), 1);  // happens-after the child's write
    root.join(child);
  });
  EXPECT_TRUE(detector.race_free());
}

TEST(DetectorSimTest, PerThreadPrivateAccumulatorsAreRaceFree) {
  // The "fix" students learn: keep partial sums private, publish under a
  // lock once.
  sim::Machine machine(quiet_spec());
  Detector detector;
  machine.set_observer(&detector);
  const sim::MutexHandle mutex = machine.make_mutex();

  Shared<int> total(0);
  machine.run([&](sim::Context& root) {
    auto worker = [&](sim::Context& ctx) {
      int private_sum = 0;  // untracked: thread-private by construction
      for (int i = 0; i < 100; ++i) {
        private_sum += 1;
      }
      sim::ScopedLock lock(ctx, mutex);
      total.add(ctx, private_sum);
    };
    const sim::ThreadHandle a = root.spawn(worker);
    const sim::ThreadHandle b = root.spawn(worker);
    root.join(a);
    root.join(b);
  });
  EXPECT_TRUE(detector.race_free());
  EXPECT_EQ(total.unsafe_value(), 200);
}

}  // namespace
}  // namespace pblpar::race
