#include "drugdesign/drugdesign.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace pblpar::drugdesign {
namespace {

Config small_config() {
  Config config;
  config.num_ligands = 60;
  config.max_ligand_len = 5;
  config.protein_len = 200;
  config.seed = 99;
  config.threads = 4;
  return config;
}

// --- Generators ----------------------------------------------------------------

TEST(GeneratorsTest, LigandsRespectLengthBounds) {
  util::Rng rng(5);
  const auto ligands = generate_ligands(500, 7, rng);
  ASSERT_EQ(ligands.size(), 500u);
  std::set<std::size_t> lengths;
  for (const std::string& ligand : ligands) {
    EXPECT_GE(ligand.size(), 1u);
    EXPECT_LE(ligand.size(), 7u);
    lengths.insert(ligand.size());
    for (const char ch : ligand) {
      EXPECT_GE(ch, 'a');
      EXPECT_LE(ch, 'z');
    }
  }
  EXPECT_EQ(lengths.size(), 7u);  // all lengths occur at 500 samples
}

TEST(GeneratorsTest, ProteinHasRequestedLength) {
  util::Rng rng(5);
  EXPECT_EQ(generate_protein(750, rng).size(), 750u);
  EXPECT_THROW(generate_protein(0, rng), util::PreconditionError);
  EXPECT_THROW(generate_ligands(0, 5, rng), util::PreconditionError);
}

TEST(GeneratorsTest, DeterministicInSeed) {
  util::Rng a(42);
  util::Rng b(42);
  EXPECT_EQ(generate_ligands(20, 5, a), generate_ligands(20, 5, b));
}

// --- Scoring ---------------------------------------------------------------------

TEST(MatchScoreTest, KnownLcsValues) {
  EXPECT_EQ(match_score("abc", "abc"), 3);
  EXPECT_EQ(match_score("abc", "xaxbxcx"), 3);
  EXPECT_EQ(match_score("ace", "abcde"), 3);
  EXPECT_EQ(match_score("zzz", "abcde"), 0);
  EXPECT_EQ(match_score("", "abc"), 0);
  EXPECT_EQ(match_score("abc", ""), 0);
  EXPECT_EQ(match_score("ba", "ab"), 1);
}

TEST(MatchScoreTest, BoundedByLigandLength) {
  util::Rng rng(7);
  const std::string protein = generate_protein(300, rng);
  for (const std::string& ligand : generate_ligands(50, 6, rng)) {
    const int score = match_score(ligand, protein);
    EXPECT_GE(score, 0);
    EXPECT_LE(score, static_cast<int>(ligand.size()));
  }
}

TEST(MatchScoreTest, SymmetricInArguments) {
  // LCS is symmetric; the cost is not (rows vs columns), but the score is.
  EXPECT_EQ(match_score("abcde", "badec"), match_score("badec", "abcde"));
}

TEST(MatchCostTest, ExponentialInLigandLinearInProtein) {
  // The exemplar's recursive scorer: doubling the ligand length squares
  // the 2^m factor; protein length enters linearly.
  EXPECT_DOUBLE_EQ(match_cost_ops(7, 750), 4.0 * match_cost_ops(5, 750));
  EXPECT_DOUBLE_EQ(match_cost_ops(3, 200), 2.0 * match_cost_ops(3, 100));
}

// --- Solvers agree ----------------------------------------------------------------

TEST(SolversTest, AllFourSolversFindTheSameBestScore) {
  const Config config = small_config();
  const Result sequential = solve_sequential(config);
  const Result teachmp = solve_teachmp(config);
  const Result threads = solve_cxx11_threads(config);
  const Result mapreduce = solve_mapreduce(config);

  EXPECT_EQ(sequential.best_score, teachmp.best_score);
  EXPECT_EQ(sequential.best_score, threads.best_score);
  EXPECT_EQ(sequential.best_score, mapreduce.best_score);

  // Same winning ligand set (sorted for comparison).
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(sequential.best_ligands), sorted(teachmp.best_ligands));
  EXPECT_EQ(sorted(sequential.best_ligands), sorted(threads.best_ligands));
  EXPECT_EQ(sorted(sequential.best_ligands),
            sorted(mapreduce.best_ligands));
}

TEST(SolversTest, SimulatedTimesAreDeterministic) {
  const Config config = small_config();
  EXPECT_DOUBLE_EQ(solve_teachmp(config).elapsed_seconds,
                   solve_teachmp(config).elapsed_seconds);
  EXPECT_DOUBLE_EQ(solve_cxx11_threads(config).elapsed_seconds,
                   solve_cxx11_threads(config).elapsed_seconds);
}

// --- The paper's in-text observations ----------------------------------------------

class Assignment5ShapeTest : public ::testing::Test {
 protected:
  static Config config() {
    Config c;
    c.num_ligands = 120;
    c.protein_len = 800;
    c.seed = 2018;
    c.threads = 4;
    return c;
  }
};

TEST_F(Assignment5ShapeTest, ParallelBeatsSequentialByNearCoreCount) {
  Config c = config();
  const double seq = solve_sequential(c).elapsed_seconds;
  const double omp = solve_teachmp(c).elapsed_seconds;
  const double speedup = seq / omp;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 4.2);
}

TEST_F(Assignment5ShapeTest, DynamicOpenMpBeatsNaiveThreadPartition) {
  // Ligand lengths are irregular; OpenMP's dynamic schedule balances,
  // the fixed block partition does not.
  Config c = config();
  const double omp = solve_teachmp(c).elapsed_seconds;
  const double naive = solve_cxx11_threads(c).elapsed_seconds;
  EXPECT_LT(omp, naive);
}

TEST_F(Assignment5ShapeTest, FifthThreadDoesNotHelp) {
  Config c = config();
  c.threads = 4;
  const double four = solve_teachmp(c).elapsed_seconds;
  c.threads = 5;
  const double five = solve_teachmp(c).elapsed_seconds;
  EXPECT_GE(five, four * 0.98);  // no gain beyond noise-free tolerance
}

TEST_F(Assignment5ShapeTest, LongerLigandsCostMore) {
  Config c = config();
  c.max_ligand_len = 5;
  const double len5 = solve_teachmp(c).elapsed_seconds;
  c.max_ligand_len = 7;
  const double len7 = solve_teachmp(c).elapsed_seconds;
  EXPECT_GT(len7, len5 * 1.15);
}

TEST(ExperimentTest, ProducesAllRows) {
  Config c;
  c.num_ligands = 40;
  c.protein_len = 150;
  const auto rows = run_assignment5_experiment(c);
  // 2 ligand lengths x (sequential + 3 approaches x 2 thread counts).
  ASSERT_EQ(rows.size(), 14u);
  for (const ExperimentRow& row : rows) {
    EXPECT_GT(row.time_seconds, 0.0);
    EXPECT_GT(row.best_score, 0);
  }
  // Within a ligand length, every approach agrees on the best score.
  EXPECT_EQ(rows[0].best_score, rows[1].best_score);
  EXPECT_EQ(rows[0].best_score, rows[2].best_score);
}

TEST(SourceLinesTest, OpenMpIsBarelyLongerThanSequential) {
  const SourceLines lines = exemplar_source_lines();
  EXPECT_GT(lines.openmp, lines.sequential);
  EXPECT_LT(lines.openmp - lines.sequential, 20);
  EXPECT_GT(lines.cxx11_threads, lines.openmp + 20);
}

}  // namespace
}  // namespace pblpar::drugdesign
