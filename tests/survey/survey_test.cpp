#include "survey/instrument.hpp"
#include "survey/response.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace pblpar::survey {
namespace {

TEST(InstrumentTest, SevenElementsInPaperOrder) {
  const auto& specs = instrument();
  ASSERT_EQ(specs.size(), 7u);
  EXPECT_EQ(specs[0].element, Element::Teamwork);
  EXPECT_EQ(specs[6].element, Element::Communication);
  for (std::size_t e = 0; e < specs.size(); ++e) {
    EXPECT_EQ(specs[e].element, kAllElements[e]);
  }
}

TEST(InstrumentTest, TeamworkMatchesFigureTwo) {
  const ElementSpec& teamwork = instrument().front();
  EXPECT_EQ(teamwork.definition,
            "Individuals participate effectively in groups or teams.");
  ASSERT_EQ(teamwork.components.size(), 4u);
  EXPECT_NE(teamwork.components[0].find("styles of thinking"),
            std::string::npos);
  EXPECT_NE(teamwork.components[1].find("roles"), std::string::npos);
  EXPECT_NE(teamwork.components[2].find("listening, speaking"),
            std::string::npos);
  EXPECT_NE(teamwork.components[3].find("cooperate"), std::string::npos);
}

TEST(InstrumentTest, EveryElementHasDefinitionAndComponents) {
  for (const ElementSpec& spec : instrument()) {
    EXPECT_FALSE(spec.definition.empty());
    EXPECT_GE(spec.components.size(), 3u);
    EXPECT_EQ(spec.item_count(), 1 + spec.components.size());
  }
}

TEST(InstrumentTest, TotalItemCount) {
  std::size_t expected = 0;
  for (const ElementSpec& spec : instrument()) {
    expected += spec.item_count();
  }
  EXPECT_EQ(total_item_count(), expected);
  EXPECT_EQ(total_item_count(), 35u);  // 7 elements x (1 + 4)
}

TEST(InstrumentTest, ScaleDescriptionsMatchPaper) {
  EXPECT_EQ(emphasis_scale_description(1), "Did not discuss");
  EXPECT_EQ(emphasis_scale_description(4), "Significant emphasis");
  EXPECT_EQ(emphasis_scale_description(5), "Major emphasis");
  EXPECT_EQ(growth_scale_description(3),
            "I grew some and gained a few new skills");
  EXPECT_EQ(growth_scale_description(5),
            "I experienced a tremendous growth and added many new skills");
  EXPECT_THROW(emphasis_scale_description(0), util::PreconditionError);
  EXPECT_THROW(growth_scale_description(6), util::PreconditionError);
}

TEST(InstrumentTest, IndexOfRoundTrips) {
  for (const Element element : kAllElements) {
    EXPECT_EQ(kAllElements[index_of(element)], element);
  }
}

TEST(InstrumentTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const Element element : kAllElements) {
    EXPECT_TRUE(names.insert(to_string(element)).second);
  }
}

// --- Responses ---------------------------------------------------------------

StudentResponse uniform_response(int score) {
  StudentResponse response;
  const auto& specs = instrument();
  for (std::size_t e = 0; e < kElementCount; ++e) {
    for (auto* category : {&response.emphasis, &response.growth}) {
      (*category)[e].definition = score;
      (*category)[e].components.assign(specs[e].components.size(), score);
    }
  }
  return response;
}

TEST(ResponseTest, ElementAverageAndComposite) {
  ElementResponse answer;
  answer.definition = 5;
  answer.components = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(answer.average(), (5 + 3 * 4) / 5.0);
  EXPECT_DOUBLE_EQ(answer.composite(), (5 + 3) / 2.0);
}

TEST(ResponseTest, CompositeWeighsDefinitionMoreThanAverage) {
  // With a high definition and low components, composite > average: the
  // two views differ, which is the instrument's point.
  ElementResponse answer;
  answer.definition = 5;
  answer.components = {2, 2, 2, 2};
  EXPECT_GT(answer.composite(), answer.average());
}

TEST(ResponseTest, OverallAverageUniform) {
  const StudentResponse response = uniform_response(4);
  EXPECT_DOUBLE_EQ(response.overall_average(Category::ClassEmphasis), 4.0);
  EXPECT_DOUBLE_EQ(response.overall_average(Category::PersonalGrowth), 4.0);
  EXPECT_DOUBLE_EQ(
      response.element_average(Category::ClassEmphasis, Element::Teamwork),
      4.0);
}

TEST(ResponseTest, ValidationAcceptsWellFormed) {
  EXPECT_NO_THROW(validate(uniform_response(1)));
  EXPECT_NO_THROW(validate(uniform_response(5)));
}

TEST(ResponseTest, ValidationRejectsOutOfRangeAndWrongShape) {
  StudentResponse bad_score = uniform_response(3);
  bad_score.emphasis[0].definition = 6;
  EXPECT_THROW(validate(bad_score), util::PreconditionError);

  StudentResponse bad_shape = uniform_response(3);
  bad_shape.growth[2].components.pop_back();
  EXPECT_THROW(validate(bad_shape), util::PreconditionError);

  StudentResponse zero = uniform_response(3);
  zero.growth[1].components[0] = 0;
  EXPECT_THROW(validate(zero), util::PreconditionError);
}

TEST(AdministrationTest, AggregatesOverCohort) {
  Administration sitting;
  sitting.responses.push_back(uniform_response(3));
  sitting.responses.push_back(uniform_response(5));

  EXPECT_EQ(sitting.cohort_size(), 2u);
  const auto overall = sitting.per_student_overall(Category::ClassEmphasis);
  ASSERT_EQ(overall.size(), 2u);
  EXPECT_DOUBLE_EQ(overall[0], 3.0);
  EXPECT_DOUBLE_EQ(overall[1], 5.0);
  EXPECT_DOUBLE_EQ(sitting.cohort_element_mean(Category::PersonalGrowth,
                                               Element::Implementation),
                   4.0);
  EXPECT_DOUBLE_EQ(sitting.cohort_element_composite(
                       Category::PersonalGrowth, Element::Implementation),
                   4.0);
}

TEST(AdministrationTest, EmptyCohortRejected) {
  Administration empty;
  EXPECT_THROW(
      empty.cohort_element_mean(Category::ClassEmphasis, Element::Teamwork),
      util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::survey
