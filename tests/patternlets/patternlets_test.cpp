#include "patternlets/patternlets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/error.hpp"

namespace pblpar::patternlets {
namespace {

rt::ParallelConfig sim_config(int threads) {
  return rt::ParallelConfig::sim_pi(threads);
}

// --- Assignment 2 ------------------------------------------------------------

TEST(ForkJoinTest, EveryThreadGreetsOnce) {
  const ForkJoinResult result = fork_join(sim_config(4));
  ASSERT_EQ(result.greeting_order.size(), 4u);
  std::set<int> distinct(result.greeting_order.begin(),
                         result.greeting_order.end());
  EXPECT_EQ(distinct.size(), 4u);
  ASSERT_TRUE(result.run.sim_report.has_value());
  EXPECT_EQ(result.run.sim_report->spawns, 3u);  // master + 3 forks
}

TEST(ForkJoinTest, HostBackendAlsoWorks) {
  const ForkJoinResult result = fork_join(rt::ParallelConfig::host(3));
  EXPECT_EQ(result.greeting_order.size(), 3u);
  EXPECT_FALSE(result.run.sim_report.has_value());
}

TEST(SpmdTest, EachThreadKnowsIdAndTeamSize) {
  const SpmdResult result = spmd(sim_config(5));
  ASSERT_EQ(result.reports.size(), 5u);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(result.reports[static_cast<std::size_t>(t)].first, t);
    EXPECT_EQ(result.reports[static_cast<std::size_t>(t)].second, 5);
  }
}

TEST(DataRaceDemoTest, RacyVersionRacesFixedVersionDoesNot) {
  const DataRaceDemoResult demo = shared_memory_race_demo(4, 10);
  // The simulator serializes real code, so even the racy version's value
  // is "right" — the lesson is that the detector still flags it.
  EXPECT_EQ(demo.racy_final, 40);
  EXPECT_GT(demo.races_in_racy_version, 0u);
  EXPECT_EQ(demo.fixed_final, 40);
  EXPECT_EQ(demo.races_in_fixed_version, 0u);
}

TEST(DataRaceDemoTest, Validation) {
  EXPECT_THROW(shared_memory_race_demo(1, 10), util::PreconditionError);
  EXPECT_THROW(shared_memory_race_demo(2, 0), util::PreconditionError);
}

// --- Assignment 3 ------------------------------------------------------------

TEST(LoopPatternletTest, EqualChunksAreContiguousBlocks) {
  const LoopAssignment assignment =
      parallel_loop_equal_chunks(sim_config(4), 16);
  EXPECT_EQ(assignment.executed.size(), 16u);
  for (int t = 0; t < 4; ++t) {
    const auto mine = assignment.iterations_of(t);
    ASSERT_EQ(mine.size(), 4u) << "thread " << t;
    // Contiguous block starting at t*4.
    for (std::size_t k = 0; k < mine.size(); ++k) {
      EXPECT_EQ(mine[k], t * 4 + static_cast<std::int64_t>(k));
    }
  }
}

TEST(LoopPatternletTest, StaticChunksRoundRobin) {
  // Chunk size 2 across 3 threads: thread 0 gets {0,1,6,7,...}.
  const LoopAssignment assignment = parallel_loop_chunks(
      sim_config(3), 12, rt::Schedule::static_chunk(2));
  const auto t0 = assignment.iterations_of(0);
  EXPECT_EQ(t0, (std::vector<std::int64_t>{0, 1, 6, 7}));
  const auto t2 = assignment.iterations_of(2);
  EXPECT_EQ(t2, (std::vector<std::int64_t>{4, 5, 10, 11}));
}

class ChunkSweepTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChunkSweepTest, AssignmentThreeChunkSizes) {
  // The paper's Assignment 3 asks for chunks of size one, two, and three,
  // static and dynamic.
  const std::int64_t chunk = GetParam();
  for (const rt::Schedule schedule :
       {rt::Schedule::static_chunk(chunk), rt::Schedule::dynamic(chunk)}) {
    const LoopAssignment assignment =
        parallel_loop_chunks(sim_config(4), 24, schedule);
    std::set<std::int64_t> covered;
    for (const auto& [tid, i] : assignment.executed) {
      EXPECT_TRUE(covered.insert(i).second) << "duplicate iteration " << i;
    }
    EXPECT_EQ(covered.size(), 24u);
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSweepTest, ::testing::Values(1, 2, 3));

TEST(ReductionPatternletTest, SumMatchesClosedForm) {
  const ReductionResult result = reduction_sum(sim_config(4), 1000);
  EXPECT_EQ(result.sum, 999L * 1000 / 2);
}

TEST(ReductionPatternletTest, CriticalStrategySameValueMoreTime) {
  const ReductionResult fast = reduction_sum(
      sim_config(4), 2000, rt::ReduceStrategy::PerThreadPartials);
  const ReductionResult slow = reduction_sum(
      sim_config(4), 2000, rt::ReduceStrategy::CriticalPerIteration);
  EXPECT_EQ(fast.sum, slow.sum);
  EXPECT_GT(slow.run.elapsed_seconds(), fast.run.elapsed_seconds());
}

// --- Assignment 4 ------------------------------------------------------------

double quadratic(double x) { return x * x; }
double half_circle(double x) {
  return std::sqrt(std::max(0.0, 1.0 - x * x));
}

TEST(TrapezoidTest, IntegratesQuadratic) {
  const TrapezoidResult result =
      trapezoid_integration(sim_config(4), &quadratic, 0.0, 3.0, 100000);
  EXPECT_NEAR(result.integral, 9.0, 1e-6);
}

TEST(TrapezoidTest, IntegratesHalfCircleToPi) {
  const TrapezoidResult result = trapezoid_integration(
      sim_config(4), &half_circle, -1.0, 1.0, 200000);
  EXPECT_NEAR(result.integral, std::numbers::pi / 2.0, 1e-4);
}

TEST(TrapezoidTest, SameAnswerAcrossSchedulesAndThreads) {
  const TrapezoidResult reference =
      trapezoid_integration(sim_config(1), &quadratic, 0.0, 1.0, 10000);
  for (const int threads : {2, 4, 5}) {
    for (const rt::Schedule schedule :
         {rt::Schedule::static_block(), rt::Schedule::dynamic(64)}) {
      const TrapezoidResult result = trapezoid_integration(
          sim_config(threads), &quadratic, 0.0, 1.0, 10000, schedule);
      EXPECT_NEAR(result.integral, reference.integral, 1e-9)
          << threads << " threads, " << schedule.to_string();
    }
  }
}

TEST(TrapezoidTest, ParallelIsFasterInVirtualTime) {
  const TrapezoidResult serial =
      trapezoid_integration(sim_config(1), &quadratic, 0.0, 1.0, 400000);
  const TrapezoidResult parallel =
      trapezoid_integration(sim_config(4), &quadratic, 0.0, 1.0, 400000);
  EXPECT_GT(serial.run.elapsed_seconds() /
                parallel.run.elapsed_seconds(),
            3.0);
}

TEST(TrapezoidTest, Validation) {
  EXPECT_THROW(
      trapezoid_integration(sim_config(2), nullptr, 0.0, 1.0, 10),
      util::PreconditionError);
  EXPECT_THROW(
      trapezoid_integration(sim_config(2), &quadratic, 1.0, 0.0, 10),
      util::PreconditionError);
  EXPECT_THROW(
      trapezoid_integration(sim_config(2), &quadratic, 0.0, 1.0, 0),
      util::PreconditionError);
}

TEST(BarrierDemoTest, PhasesAreSeparated) {
  for (const int threads : {2, 4, 8}) {
    const BarrierDemoResult result = barrier_coordination(
        sim_config(threads));
    EXPECT_TRUE(result.phases_separated) << threads << " threads";
  }
  const BarrierDemoResult host =
      barrier_coordination(rt::ParallelConfig::host(4));
  EXPECT_TRUE(host.phases_separated);
}

TEST(MasterWorkerTest, MasterCoordinatesWorkersProcessEverything) {
  const MasterWorkerResult result =
      master_worker(sim_config(4), 100, rt::CostModel::uniform(1e5));
  EXPECT_EQ(result.tasks_processed, 100);
  EXPECT_EQ(result.tasks_per_thread[0], 0);  // the master does no tasks
  std::int64_t sum = 0;
  for (std::size_t t = 1; t < result.tasks_per_thread.size(); ++t) {
    EXPECT_GT(result.tasks_per_thread[t], 0) << "worker " << t;
    sum += result.tasks_per_thread[t];
  }
  EXPECT_EQ(sum, 100);
}

TEST(MasterWorkerTest, NeedsAtLeastTwoThreads) {
  EXPECT_THROW(master_worker(sim_config(1), 10), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::patternlets
