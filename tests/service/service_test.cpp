#include "service/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "service/jobs.hpp"
#include "util/error.hpp"

namespace pblpar::service {
namespace {

std::vector<std::string> sample_documents() {
  return {
      "the quick brown fox jumps over the lazy dog",
      "the dog barks at the fox",
      "parallel programming teaches patience and the dog agrees",
      "every tenant submits jobs to the campus server",
  };
}

/// A job that parks its lane until release() — the tests' way of filling
/// the queue deterministically before any scheduling decision is made.
/// Polls its cancel token so shutdown still drains it.
struct Gate {
  std::atomic<bool> open{false};

  Job job() {
    Job gate_job;
    gate_job.kind = "gate";
    gate_job.run = [this](JobContext& context) {
      while (!open.load(std::memory_order_acquire) &&
             !context.cancel_token().cancel_requested()) {
        std::this_thread::yield();
      }
      return JobOutcome{};
    };
    return gate_job;
  }

  void release() { open.store(true, std::memory_order_release); }
};

/// Records job execution order (start order on the lane).
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> names;

  Job job(std::string name) {
    Job logged;
    logged.kind = name;
    logged.run = [this, name](JobContext&) {
      {
        std::lock_guard<std::mutex> guard(mu);
        names.push_back(name);
      }
      return JobOutcome{};
    };
    return logged;
  }

  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> guard(mu);
    return names;
  }
};

ServerOptions one_lane(int depth = 1024) {
  ServerOptions options;
  options.lanes = 1;
  options.max_queue_depth = depth;
  return options;
}

TEST(ServiceServerTest, SubmitRunsAndReports) {
  Server server({{"alice", 1.0}}, one_lane());
  JobTicket ticket = server.submit("alice", jobs::patternlet(256));
  const JobResult& result = ticket.wait();
  EXPECT_EQ(result.status, JobStatus::Done);
  EXPECT_EQ(result.outcome.work_items, 256);
  EXPECT_GE(result.queued_s, 0.0);
  EXPECT_GE(result.service_s, 0.0);
  EXPECT_EQ(result.completion_seq, 1u);
  EXPECT_TRUE(ticket.finished());
  EXPECT_EQ(ticket.tenant(), "alice");
  EXPECT_EQ(ticket.kind(), "patternlet");
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(ServiceServerTest, StrideSchedulingIsWeightedAndDeterministic) {
  // One lane, jobs piled up behind a gate: the dispatch order afterwards
  // is a pure function of the stride scheduler. alice (weight 3) must
  // get 3 dispatches for every bob (weight 1) dispatch, interleaved —
  // not front-loaded.
  Gate gate;
  OrderLog log;
  Server server({{"alice", 3.0}, {"bob", 1.0}, {"ops", 1.0}}, one_lane());
  JobTicket gate_ticket = server.submit("ops", gate.job());
  for (int i = 0; i < 6; ++i) {
    server.submit("alice", log.job("a" + std::to_string(i)));
  }
  for (int i = 0; i < 2; ++i) {
    server.submit("bob", log.job("b" + std::to_string(i)));
  }
  gate.release();
  server.drain();
  const std::vector<std::string> expected = {"a0", "b0", "a1", "a2",
                                             "a3", "b1", "a4", "a5"};
  EXPECT_EQ(log.snapshot(), expected);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 9);  // 8 + the gate
}

TEST(ServiceServerTest, PriorityOrdersWithinTenantFifoWithinPriority) {
  Gate gate;
  OrderLog log;
  Server server({{"alice", 1.0}, {"ops", 1.0}}, one_lane());
  server.submit("ops", gate.job());
  JobOptions low;
  low.priority = 0;
  JobOptions high;
  high.priority = 5;
  JobOptions mid;
  mid.priority = 1;
  server.submit("alice", log.job("low0"), low);
  server.submit("alice", log.job("high"), high);
  server.submit("alice", log.job("mid"), mid);
  server.submit("alice", log.job("low1"), low);
  gate.release();
  server.drain();
  const std::vector<std::string> expected = {"high", "mid", "low0", "low1"};
  EXPECT_EQ(log.snapshot(), expected);
}

TEST(ServiceServerTest, HeavyTenantCannotStarveLightTenant) {
  Gate gate;
  Server server({{"heavy", 100.0}, {"light", 1.0}, {"ops", 1.0}},
                one_lane());
  server.submit("ops", gate.job());
  std::vector<JobTicket> heavy_tickets;
  for (int i = 0; i < 50; ++i) {
    heavy_tickets.push_back(server.submit("heavy", jobs::patternlet(16)));
  }
  JobTicket light = server.submit("light", jobs::patternlet(16));
  gate.release();
  server.drain();
  // Stride scheduling: after one heavy dispatch the heavy pass exceeds
  // the light tenant's, so the light job runs second or third overall —
  // not after the 50-job flood.
  EXPECT_EQ(light.wait().status, JobStatus::Done);
  EXPECT_LE(light.wait().completion_seq, 3u);
}

TEST(ServiceServerTest, RejectPolicyShedsLoadWithRetryAfter) {
  Gate gate;
  ServerOptions options = one_lane(1);
  options.admission = AdmissionPolicy::Reject;
  Server server({{"alice", 1.0}}, options);
  JobTicket running = server.submit("alice", gate.job());
  // Wait until the gate actually occupies the lane, so exactly one
  // queue slot is in play.
  while (running.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  JobTicket queued = server.submit("alice", jobs::patternlet(16));
  JobTicket shed = server.submit("alice", jobs::patternlet(16));
  const JobResult& rejected = shed.wait();
  EXPECT_EQ(rejected.status, JobStatus::Rejected);
  EXPECT_GT(rejected.retry_after_s, 0.0);
  EXPECT_FALSE(rejected.error.empty());
  EXPECT_EQ(rejected.completion_seq, 0u);
  gate.release();
  server.drain();
  EXPECT_EQ(queued.wait().status, JobStatus::Done);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_LE(stats.queue_depth_high_water, 1);
}

TEST(ServiceServerTest, BlockPolicyBackpressuresTheSubmitter) {
  Gate gate;
  ServerOptions options = one_lane(1);
  options.admission = AdmissionPolicy::Block;
  Server server({{"alice", 1.0}}, options);
  JobTicket running = server.submit("alice", gate.job());
  while (running.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  server.submit("alice", jobs::patternlet(16));  // fills the one slot
  std::atomic<bool> admitted{false};
  JobTicket blocked;
  std::thread submitter([&] {
    blocked = server.submit("alice", jobs::patternlet(16));
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));
  gate.release();
  submitter.join();
  EXPECT_TRUE(admitted.load(std::memory_order_acquire));
  server.drain();
  EXPECT_EQ(blocked.wait().status, JobStatus::Done);
  EXPECT_EQ(server.stats().rejected, 0);
}

TEST(ServiceServerTest, DeadlineCancelsThroughTheRuntimeDrain) {
  Server server({{"alice", 1.0}}, one_lane());
  JobOptions options;
  options.deadline_s = 0.02;
  JobTicket ticket = server.submit(
      "alice", jobs::patternlet(std::int64_t{1} << 40, rt::Schedule::dynamic(1)),
      options);
  const JobResult& result = ticket.wait();
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_EQ(result.cancel_cause, rt::CancelCause::Deadline);
  EXPECT_GE(result.salvaged_iterations, 0);
  // The server survives a cancelled job: the next one runs normally.
  EXPECT_EQ(server.submit("alice", jobs::patternlet(64)).wait().status,
            JobStatus::Done);
  EXPECT_EQ(server.stats().cancelled, 1);
}

TEST(ServiceServerTest, TicketCancelFiresTheJobsToken) {
  Server server({{"alice", 1.0}}, one_lane());
  JobTicket ticket = server.submit(
      "alice",
      jobs::patternlet(std::int64_t{1} << 40, rt::Schedule::dynamic(1)));
  while (ticket.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  ticket.cancel();
  const JobResult& result = ticket.wait();
  EXPECT_EQ(result.status, JobStatus::Cancelled);
  EXPECT_EQ(result.cancel_cause, rt::CancelCause::Token);
}

TEST(ServiceServerTest, TraceCaptureRidesTheTicket) {
  Server server({{"alice", 1.0}}, one_lane());
  JobOptions traced;
  traced.record_trace = true;
  const JobResult& result =
      server.submit("alice", jobs::patternlet(128), traced).wait();
  EXPECT_EQ(result.status, JobStatus::Done);
  EXPECT_NE(result.outcome.profile, nullptr);
  // Untraced jobs pay no bookkeeping and carry no profile.
  const JobResult& untraced =
      server.submit("alice", jobs::patternlet(128)).wait();
  EXPECT_EQ(untraced.outcome.profile, nullptr);
}

TEST(ServiceServerTest, FailedJobReportsTheError) {
  Server server({{"alice", 1.0}}, one_lane());
  Job bad;
  bad.kind = "throws";
  bad.run = [](JobContext&) -> JobOutcome {
    throw std::runtime_error("lab machine on fire");
  };
  const JobResult& result = server.submit("alice", std::move(bad)).wait();
  EXPECT_EQ(result.status, JobStatus::Failed);
  EXPECT_NE(result.error.find("lab machine on fire"), std::string::npos);
  EXPECT_EQ(server.stats().failed, 1);
}

TEST(ServiceServerTest, ShutdownCancelsQueuedAndRunningJobs) {
  Gate gate;
  Server server({{"alice", 1.0}}, one_lane());
  JobTicket running = server.submit("alice", gate.job());
  while (running.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  JobTicket queued = server.submit("alice", jobs::patternlet(64));
  server.shutdown();
  // The gate polls its token, so shutdown's cancel drains it; the queued
  // job never dispatches.
  EXPECT_EQ(queued.wait().status, JobStatus::Cancelled);
  EXPECT_NE(queued.wait().error.find("before dispatch"), std::string::npos);
  EXPECT_TRUE(running.finished());
  EXPECT_EQ(server.submit("alice", jobs::patternlet(8)).wait().status,
            JobStatus::Rejected);
}

TEST(ServiceServerTest, InFlightAndDepthHighWatersTrackTheBurst) {
  Gate gate;
  Server server({{"alice", 1.0}, {"bob", 2.0}}, one_lane(4096));
  JobTicket running = server.submit("alice", gate.job());
  while (running.status() == JobStatus::Queued) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 50; ++i) {
    server.submit(i % 2 == 0 ? "alice" : "bob", jobs::patternlet(8));
  }
  ServerStats mid = server.stats();
  EXPECT_GE(mid.in_flight_high_water, 51);
  EXPECT_EQ(mid.queue_depth, 50);
  gate.release();
  server.drain();
  ServerStats done = server.stats();
  EXPECT_EQ(done.queue_depth, 0);
  EXPECT_EQ(done.in_flight, 0);
  EXPECT_LE(done.queue_depth_high_water, 4096);
  EXPECT_EQ(done.completed, 51);
}

TEST(ServiceServerTest, ValidationIsLoudAtTheBoundary) {
  Server server({{"alice", 1.0}}, one_lane());
  JobOptions nan_deadline;
  nan_deadline.deadline_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(server.submit("alice", jobs::patternlet(8), nan_deadline),
               util::PreconditionError);
  JobOptions negative_deadline;
  negative_deadline.deadline_s = -1.0;
  EXPECT_THROW(server.submit("alice", jobs::patternlet(8), negative_deadline),
               util::PreconditionError);
  JobOptions zero_cost;
  zero_cost.cost_units = 0.0;
  EXPECT_THROW(server.submit("alice", jobs::patternlet(8), zero_cost),
               util::PreconditionError);
  JobOptions no_threads;
  no_threads.threads = 0;
  EXPECT_THROW(server.submit("alice", jobs::patternlet(8), no_threads),
               util::PreconditionError);
  EXPECT_THROW(server.submit("mallory", jobs::patternlet(8)),
               util::PreconditionError);
  EXPECT_THROW(Server({}, one_lane()), util::PreconditionError);
  EXPECT_THROW(Server({{"a", 1.0}, {"a", 2.0}}, one_lane()),
               util::PreconditionError);
  EXPECT_THROW(Server({{"a", -1.0}}, one_lane()), util::PreconditionError);
  ServerOptions zero_lanes;
  zero_lanes.lanes = 0;
  EXPECT_THROW(Server({{"a", 1.0}}, zero_lanes), util::PreconditionError);
}

TEST(ServiceServerTest, DirectDeadlineFieldWritesAreRejectedByParallel) {
  // The satellite guarantee: a NaN/negative deadline written straight
  // into the field (bypassing .deadline()) fails loudly, not silently.
  rt::ParallelConfig config = rt::ParallelConfig::host(1);
  config.deadline_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(rt::parallel(config, [](rt::TeamContext&) {}),
               util::PreconditionError);
  config.deadline_s = -0.5;
  EXPECT_THROW(rt::parallel(config, [](rt::TeamContext&) {}),
               util::PreconditionError);
}

TEST(ServiceAdapterTest, DrugDesignSweepReportsTheBestBinder) {
  drugdesign::Config config;
  config.num_ligands = 24;
  config.max_ligand_len = 4;
  config.protein_len = 120;
  Server server({{"lab", 1.0}}, one_lane());
  const JobResult& result =
      server.submit("lab", jobs::drugdesign_sweep(config)).wait();
  EXPECT_EQ(result.status, JobStatus::Done);
  EXPECT_EQ(result.outcome.work_items, 24);
  EXPECT_NE(result.outcome.summary.find("best score"), std::string::npos);
}

TEST(ServiceAdapterTest, MapReduceWordCountRunsAndSalvagesOnCancel) {
  Server server({{"lab", 1.0}}, one_lane());
  const JobResult& full =
      server.submit("lab", jobs::mapreduce_word_count(sample_documents()))
          .wait();
  EXPECT_EQ(full.status, JobStatus::Done);
  EXPECT_EQ(full.outcome.work_items,
            static_cast<std::int64_t>(sample_documents().size()));

  // A ticket cancelled before dispatch: the mapreduce adapter's Salvage
  // policy turns the fired token into an empty-but-usable result, not an
  // exception.
  Gate gate;
  Server gated({{"lab", 1.0}, {"ops", 1.0}}, one_lane());
  gated.submit("ops", gate.job());
  JobTicket cancelled =
      gated.submit("lab", jobs::mapreduce_word_count(sample_documents()));
  cancelled.cancel();
  gate.release();
  const JobResult& salvaged = cancelled.wait();
  EXPECT_EQ(salvaged.status, JobStatus::Done);
  EXPECT_EQ(salvaged.outcome.work_items, 0);
  EXPECT_NE(salvaged.outcome.summary.find("cut short"), std::string::npos);
}

TEST(ServiceAdapterTest, ClusterWordCountRunsOnSimulatedRanks) {
  Server server({{"lab", 1.0}}, one_lane());
  const JobResult& result =
      server
          .submit("lab", jobs::cluster_word_count(sample_documents(), 3))
          .wait();
  EXPECT_EQ(result.status, JobStatus::Done);
  EXPECT_NE(result.outcome.summary.find("3 simulated ranks"),
            std::string::npos);
}

TEST(ServiceAdapterTest, MixedJobKindsShareOneServer) {
  drugdesign::Config config;
  config.num_ligands = 12;
  config.max_ligand_len = 3;
  config.protein_len = 80;
  Server server({{"alice", 2.0}, {"bob", 1.0}}, ServerOptions{});
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(server.submit("alice", jobs::patternlet(128)));
    tickets.push_back(server.submit("bob", jobs::drugdesign_sweep(config)));
    tickets.push_back(
        server.submit("alice", jobs::mapreduce_word_count(sample_documents())));
  }
  server.drain();
  for (const JobTicket& ticket : tickets) {
    EXPECT_EQ(ticket.wait().status, JobStatus::Done) << ticket.kind();
  }
}

}  // namespace
}  // namespace pblpar::service
