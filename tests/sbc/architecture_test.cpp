#include "sbc/architecture.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pblpar::sbc {
namespace {

TEST(FlynnTest, ClassificationByStreams) {
  EXPECT_EQ(classify_streams(1, 1), FlynnClass::SISD);
  EXPECT_EQ(classify_streams(1, 8), FlynnClass::SIMD);
  EXPECT_EQ(classify_streams(3, 1), FlynnClass::MISD);
  EXPECT_EQ(classify_streams(4, 4), FlynnClass::MIMD);
  EXPECT_THROW(classify_streams(0, 1), util::PreconditionError);
}

TEST(FlynnTest, NamesAndDescriptions) {
  EXPECT_EQ(to_string(FlynnClass::SIMD), "SIMD");
  EXPECT_NE(describe(FlynnClass::MIMD).find("multicore"),
            std::string::npos);
  for (const FlynnClass f : {FlynnClass::SISD, FlynnClass::SIMD,
                             FlynnClass::MISD, FlynnClass::MIMD}) {
    EXPECT_FALSE(describe(f).empty());
  }
}

TEST(MemoryArchitectureTest, OpenMpUsesSharedMemory) {
  EXPECT_EQ(openmp_architecture(), MemoryArchitecture::SharedUMA);
  EXPECT_NE(describe(openmp_architecture()).find("Raspberry Pi"),
            std::string::npos);
}

TEST(MemoryArchitectureTest, AllVariantsDescribed) {
  for (const MemoryArchitecture a :
       {MemoryArchitecture::SharedUMA, MemoryArchitecture::SharedNUMA,
        MemoryArchitecture::Distributed, MemoryArchitecture::Hybrid}) {
    EXPECT_FALSE(to_string(a).empty());
    EXPECT_FALSE(describe(a).empty());
  }
}

TEST(ProgrammingModelTest, AllVariantsDescribed) {
  for (const ProgrammingModel m :
       {ProgrammingModel::SharedMemory, ProgrammingModel::MessagePassing,
        ProgrammingModel::DataParallel, ProgrammingModel::Hybrid}) {
    EXPECT_FALSE(to_string(m).empty());
    EXPECT_FALSE(describe(m).empty());
  }
}

TEST(BoardTest, PaperAssignmentTwoAnswers) {
  const BoardDescription& pi = raspberry_pi_3bplus();
  // "How many cores does the Raspberry Pi's B+ CPU have?" — four.
  EXPECT_EQ(pi.cores, 4);
  EXPECT_DOUBLE_EQ(pi.clock_ghz, 1.4);
  // "Does Raspberry PI use SOC?" — yes.
  EXPECT_TRUE(pi.is_system_on_chip);
  // ARM (RISC) exposure vs the lecture's x86.
  EXPECT_NE(pi.isa.find("ARM"), std::string::npos);
  // A multicore CPU is MIMD.
  EXPECT_EQ(pi.flynn(), FlynnClass::MIMD);
}

TEST(BoardTest, ComponentInventoryIsVisible) {
  const BoardDescription& pi = raspberry_pi_3bplus();
  EXPECT_GE(pi.components.size(), 6u);
  bool has_cpu = false;
  bool has_sd = false;
  int on_soc = 0;
  for (const Component& component : pi.components) {
    has_cpu = has_cpu || component.name == "CPU";
    has_sd = has_sd || component.detail.find("MicroSD") != std::string::npos;
    on_soc += component.on_soc ? 1 : 0;
  }
  EXPECT_TRUE(has_cpu);
  EXPECT_TRUE(has_sd);  // assignment: install RASPBIAN on MicroSD
  EXPECT_GE(on_soc, 2);  // CPU + GPU at least are on the SoC
}

TEST(SocTest, AdvantagesAnswerAssignmentThree) {
  const auto& advantages = soc_advantages();
  EXPECT_GE(advantages.size(), 4u);
  bool mentions_power = false;
  for (const std::string& advantage : advantages) {
    mentions_power =
        mentions_power || advantage.find("ower") != std::string::npos;
  }
  EXPECT_TRUE(mentions_power);
}

TEST(IsaTest, ComparisonCoversThePaperAspects) {
  const auto& rows = isa_comparison();
  // "data movement, instruction encoding, immediate value representation,
  // and memory layout" — all four must appear.
  const auto has_aspect = [&](const std::string& needle) {
    for (const IsaComparisonRow& row : rows) {
      if (row.aspect.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_aspect("Data movement"));
  EXPECT_TRUE(has_aspect("Instruction encoding"));
  EXPECT_TRUE(has_aspect("Immediate"));
  EXPECT_TRUE(has_aspect("Memory layout"));
  for (const IsaComparisonRow& row : rows) {
    EXPECT_FALSE(row.arm.empty());
    EXPECT_FALSE(row.x86.empty());
  }
}

}  // namespace
}  // namespace pblpar::sbc
