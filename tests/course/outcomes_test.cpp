#include "course/outcomes.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pblpar::course {
namespace {

struct CourseFixture {
  std::vector<Student> students;
  std::vector<Team> teams;
};

CourseFixture paper_setup(std::uint64_t seed = 3) {
  util::Rng rng(seed);
  CourseFixture setup;
  setup.students =
      generate_roster(RosterConfig::paper_cohort(), rng);
  setup.teams =
      form_teams(setup.students, 26, FormationConfig{}, rng).teams;
  return setup;
}

TEST(OutcomesTest, EveryStudentGetsATeamAndAScore) {
  CourseFixture setup = paper_setup();
  util::Rng rng(9);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, OutcomeConfig{}, rng);

  ASSERT_EQ(outcomes.students.size(), 124u);
  ASSERT_EQ(outcomes.teams.size(), 26u);
  for (const StudentOutcome& student : outcomes.students) {
    EXPECT_GE(student.team_id, 0);
    EXPECT_GE(student.module_score, 0.0);
    EXPECT_LE(student.module_score, 100.0);
    EXPECT_EQ(student.cooperation.size(), 5u);
    EXPECT_GE(student.mean_peer_rating, 0.0);
    EXPECT_LE(student.mean_peer_rating, 5.0);
  }
}

TEST(OutcomesTest, FiveGradedAssignmentsPerTeamInRange) {
  CourseFixture setup = paper_setup();
  util::Rng rng(9);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, OutcomeConfig{}, rng);
  for (const TeamOutcome& team : outcomes.teams) {
    ASSERT_EQ(team.assignment_grades.size(), 5u);
    for (const double grade : team.assignment_grades) {
      EXPECT_GE(grade, 0.0);
      EXPECT_LE(grade, 100.0);
    }
  }
}

TEST(OutcomesTest, CoordinatorRoleRotates) {
  CourseFixture setup = paper_setup();
  util::Rng rng(9);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, OutcomeConfig{}, rng);
  // 5 assignments over teams of 4-5: every member coordinates at least
  // once, nobody more than twice.
  for (const StudentOutcome& student : outcomes.students) {
    EXPECT_GE(student.coordinator_count, 1) << student.student_id;
    EXPECT_LE(student.coordinator_count, 2) << student.student_id;
  }
}

TEST(OutcomesTest, FullCooperatorsEarnTheTeamGrade) {
  CourseFixture setup = paper_setup();
  OutcomeConfig config;
  config.partial_cooperation_rate = 0.0;
  config.non_cooperation_rate = 0.0;
  util::Rng rng(9);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, config, rng);
  for (const TeamOutcome& team : outcomes.teams) {
    double mean_grade = 0.0;
    for (const double grade : team.assignment_grades) {
      mean_grade += grade;
    }
    mean_grade /= 5.0;
    const Team& members = setup.teams[static_cast<std::size_t>(team.team_id)];
    for (const int id : members.member_ids) {
      EXPECT_NEAR(outcomes.students[static_cast<std::size_t>(id)]
                      .module_score,
                  mean_grade, 1e-9);
    }
  }
}

TEST(OutcomesTest, NonCooperationCostsTheIndividualNotTheTeam) {
  CourseFixture setup = paper_setup();
  OutcomeConfig config;
  config.non_cooperation_rate = 0.30;  // exaggerate to guarantee cases
  util::Rng rng(42);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, config, rng);

  int penalized = 0;
  for (const StudentOutcome& student : outcomes.students) {
    const bool lapsed =
        std::any_of(student.cooperation.begin(), student.cooperation.end(),
                    [](Cooperation c) { return c != Cooperation::Full; });
    const TeamOutcome& team =
        outcomes.teams[static_cast<std::size_t>(student.team_id)];
    double mean_grade = 0.0;
    for (const double grade : team.assignment_grades) {
      mean_grade += grade;
    }
    mean_grade /= 5.0;
    if (lapsed) {
      EXPECT_LT(student.module_score, mean_grade);
      ++penalized;
    }
  }
  EXPECT_GT(penalized, 20);  // at 30% lapse rate, many are penalized
}

TEST(OutcomesTest, PeerRatingsTrackCooperation) {
  CourseFixture setup = paper_setup();
  OutcomeConfig config;
  config.non_cooperation_rate = 0.20;
  util::Rng rng(7);
  const ModuleOutcomes outcomes =
      simulate_module(setup.students, setup.teams, config, rng);

  double cooperative_sum = 0.0;
  int cooperative_count = 0;
  double lapsing_sum = 0.0;
  int lapsing_count = 0;
  for (const StudentOutcome& student : outcomes.students) {
    const int lapses = static_cast<int>(
        std::count_if(student.cooperation.begin(), student.cooperation.end(),
                      [](Cooperation c) { return c != Cooperation::Full; }));
    if (lapses == 0) {
      cooperative_sum += student.mean_peer_rating;
      ++cooperative_count;
    } else if (lapses >= 2) {
      lapsing_sum += student.mean_peer_rating;
      ++lapsing_count;
    }
  }
  ASSERT_GT(cooperative_count, 0);
  ASSERT_GT(lapsing_count, 0);
  EXPECT_GT(cooperative_sum / cooperative_count,
            lapsing_sum / lapsing_count + 0.5);
}

TEST(OutcomesTest, DeterministicInSeed) {
  CourseFixture setup = paper_setup();
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const ModuleOutcomes a =
      simulate_module(setup.students, setup.teams, OutcomeConfig{}, rng_a);
  const ModuleOutcomes b =
      simulate_module(setup.students, setup.teams, OutcomeConfig{}, rng_b);
  EXPECT_DOUBLE_EQ(a.mean_module_score(), b.mean_module_score());
}

TEST(OutcomesTest, Validation) {
  CourseFixture setup = paper_setup();
  util::Rng rng(1);
  OutcomeConfig bad;
  bad.partial_cooperation_rate = 0.8;
  bad.non_cooperation_rate = 0.5;  // sums beyond 1
  EXPECT_THROW(simulate_module(setup.students, setup.teams, bad, rng),
               util::PreconditionError);
  EXPECT_THROW(simulate_module(setup.students, {}, OutcomeConfig{}, rng),
               util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::course
