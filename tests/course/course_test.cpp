#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "course/assignments.hpp"
#include "course/grading.hpp"
#include "course/student.hpp"
#include "course/teams.hpp"
#include "course/timeline.hpp"
#include "util/error.hpp"

namespace pblpar::course {
namespace {

std::vector<Student> paper_roster(std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return generate_roster(RosterConfig::paper_cohort(), rng);
}

// --- Roster ------------------------------------------------------------------

TEST(RosterTest, PaperCohortShape) {
  const auto roster = paper_roster();
  EXPECT_EQ(roster.size(), 124u);
  int females = 0;
  for (const Student& student : roster) {
    EXPECT_GE(student.gpa, 1.8);
    EXPECT_LE(student.gpa, 4.3);
    EXPECT_GE(student.programming_experience, 1);
    EXPECT_LE(student.programming_experience, 5);
    if (student.gender == Gender::Female) {
      ++females;
    }
  }
  EXPECT_EQ(females, 26);  // 26 of 124 (20.97%)
}

TEST(RosterTest, IdsAreSequential) {
  const auto roster = paper_roster();
  for (std::size_t i = 0; i < roster.size(); ++i) {
    EXPECT_EQ(roster[i].id, static_cast<int>(i));
  }
}

TEST(RosterTest, DeterministicInSeed) {
  const auto a = paper_roster(42);
  const auto b = paper_roster(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].gpa, b[i].gpa);
    EXPECT_EQ(a[i].gender, b[i].gender);
  }
}

TEST(RosterTest, AbilityIndexInRange) {
  for (const Student& student : paper_roster()) {
    EXPECT_GT(student.ability_index(), 0.0);
    EXPECT_LE(student.ability_index(), 5.0);
  }
}

TEST(RosterTest, Validation) {
  util::Rng rng(1);
  RosterConfig bad;
  bad.size = 0;
  EXPECT_THROW(generate_roster(bad, rng), util::PreconditionError);
  bad.size = 10;
  bad.female_fraction = 1.5;
  EXPECT_THROW(generate_roster(bad, rng), util::PreconditionError);
}

// --- Team formation -----------------------------------------------------------

TEST(TeamFormationTest, PartitionIsCompleteAndSized) {
  const auto roster = paper_roster();
  util::Rng rng(7);
  const FormationResult result =
      form_teams(roster, 26, FormationConfig{}, rng);
  ASSERT_EQ(result.teams.size(), 26u);

  std::set<int> seen;
  for (const Team& team : result.teams) {
    EXPECT_GE(team.member_ids.size(), 4u);  // 124 across 26 teams: 4 or 5
    EXPECT_LE(team.member_ids.size(), 5u);
    for (const int id : team.member_ids) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate member " << id;
    }
  }
  EXPECT_EQ(seen.size(), 124u);
}

TEST(TeamFormationTest, BalancedBeatsRandomOnAbilitySpread) {
  const auto roster = paper_roster();
  util::Rng rng_balanced(7);
  util::Rng rng_random(7);
  const auto balanced =
      form_teams(roster, 26, FormationConfig{}, rng_balanced);
  const auto random = form_random_teams(roster, 26, rng_random);
  const BalanceMetrics bm = measure_balance(roster, balanced.teams);
  const BalanceMetrics rm = measure_balance(roster, random.teams);
  EXPECT_LT(bm.ability_spread, rm.ability_spread);
}

TEST(TeamFormationTest, GenderIsSpreadAcrossTeams) {
  const auto roster = paper_roster();
  util::Rng rng(7);
  const auto result = form_teams(roster, 26, FormationConfig{}, rng);
  const BalanceMetrics metrics = measure_balance(roster, result.teams);
  // 26 females over 26 teams. The objective follows Oakley et al.: never
  // leave a woman isolated on a team (so females cluster in 2s, not
  // spread 1 each), while keeping the clusters small.
  EXPECT_EQ(metrics.isolated_females, 0);
  EXPECT_LE(metrics.max_female_gap, 3);
}

TEST(TeamFormationTest, FriendPairsAreSeparated) {
  const auto roster = paper_roster();
  const std::vector<std::pair<int, int>> friends{{0, 1}, {2, 3}, {10, 20}};
  util::Rng rng(7);
  const auto result =
      form_teams(roster, 26, FormationConfig{}, rng, friends);
  const BalanceMetrics metrics =
      measure_balance(roster, result.teams, friends);
  EXPECT_EQ(metrics.friend_pairs_together, 0);
}

TEST(TeamFormationTest, LocalSearchImprovesCost) {
  const auto roster = paper_roster();
  FormationConfig no_search;
  no_search.local_search_iterations = 0;
  FormationConfig with_search;
  util::Rng rng1(7);
  util::Rng rng2(7);
  const double cost_before =
      form_teams(roster, 26, no_search, rng1).cost;
  const double cost_after = form_teams(roster, 26, with_search, rng2).cost;
  EXPECT_LE(cost_after, cost_before);
}

TEST(TeamFormationTest, RejectsOverfullRoster) {
  const auto roster = paper_roster();
  util::Rng rng(7);
  FormationConfig config;
  config.max_team_size = 4;
  EXPECT_THROW(form_teams(roster, 26, config, rng),
               util::PreconditionError);  // 26*4 = 104 < 124
}

TEST(TeamTest, CoordinatorRotatesAcrossAssignments) {
  Team team;
  team.member_ids = {10, 11, 12, 13};
  std::set<int> coordinators;
  for (int assignment = 0; assignment < 4; ++assignment) {
    coordinators.insert(team.coordinator_for(assignment));
  }
  EXPECT_EQ(coordinators.size(), 4u);  // every member got the role
  EXPECT_EQ(team.coordinator_for(0), team.coordinator_for(4));  // wraps
}

// --- Assignments & timeline ----------------------------------------------------

TEST(AssignmentsTest, FiveTwoWeekAssignments) {
  const auto& assignments = five_assignments();
  ASSERT_EQ(assignments.size(), 5u);
  for (std::size_t a = 0; a < assignments.size(); ++a) {
    EXPECT_EQ(assignments[a].number, static_cast<int>(a) + 1);
    EXPECT_EQ(assignments[a].duration_weeks, 2);
    EXPECT_FALSE(assignments[a].study_questions.empty());
  }
}

TEST(AssignmentsTest, FirstIsSoftSkillsOnlyRestAreProgramming) {
  const auto& assignments = five_assignments();
  EXPECT_FALSE(assignments[0].has_programming());
  for (std::size_t a = 1; a < assignments.size(); ++a) {
    EXPECT_TRUE(assignments[a].has_programming()) << "assignment " << a + 1;
  }
}

TEST(AssignmentsTest, MaterialsMatchPaperMapping) {
  const auto& assignments = five_assignments();
  EXPECT_EQ(assignments[0].materials,
            std::vector<Material>{Material::TeamworkBasics});
  // Assignment 3 adds CPU vs SOC.
  EXPECT_NE(std::find(assignments[2].materials.begin(),
                      assignments[2].materials.end(), Material::CpuVsSoc),
            assignments[2].materials.end());
  // Assignment 5 uses the MapReduce reading.
  EXPECT_NE(std::find(assignments[4].materials.begin(),
                      assignments[4].materials.end(),
                      Material::IntroParallelMapReduce),
            assignments[4].materials.end());
}

TEST(AssignmentsTest, ProgrammingTasksCoverThePatternlets) {
  const auto& assignments = five_assignments();
  const auto has_task = [&](int index, const std::string& name) {
    const auto& tasks =
        assignments[static_cast<std::size_t>(index)].programming_tasks;
    return std::find(tasks.begin(), tasks.end(), name) != tasks.end();
  };
  EXPECT_TRUE(has_task(1, "fork-join"));
  EXPECT_TRUE(has_task(1, "spmd"));
  EXPECT_TRUE(has_task(2, "reduction"));
  EXPECT_TRUE(has_task(3, "trapezoid-integration"));
  EXPECT_TRUE(has_task(3, "master-worker"));
  EXPECT_TRUE(has_task(4, "drug-design-openmp"));
}

TEST(AssignmentsTest, DeliverablesAndVideoGuide) {
  EXPECT_EQ(standard_deliverables().size(), 4u);
  EXPECT_EQ(video_presentation_guide().size(), 4u);
}

TEST(TimelineTest, FigOneShape) {
  const auto events = semester_timeline();
  int surveys = 0;
  int assignment_starts = 0;
  int quizzes = 0;
  for (const TimelineEvent& event : events) {
    EXPECT_GE(event.week, 1);
    EXPECT_LE(event.week, kSemesterWeeks);
    switch (event.kind) {
      case EventKind::Survey:
        ++surveys;
        break;
      case EventKind::AssignmentStart:
        ++assignment_starts;
        break;
      case EventKind::Quiz:
        ++quizzes;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(surveys, 2);
  EXPECT_EQ(assignment_starts, 5);
  EXPECT_EQ(quizzes, 5);
}

TEST(TimelineTest, SurveysAtMidAndEnd) {
  const auto events = semester_timeline();
  std::vector<int> survey_weeks;
  for (const TimelineEvent& event : events) {
    if (event.kind == EventKind::Survey) {
      survey_weeks.push_back(event.week);
    }
  }
  ASSERT_EQ(survey_weeks.size(), 2u);
  EXPECT_EQ(survey_weeks[0], kFirstSurveyWeek);
  EXPECT_EQ(survey_weeks[1], kSecondSurveyWeek);
}

TEST(TimelineTest, AssignmentsAreBackToBackTwoWeeks) {
  const auto events = semester_timeline();
  std::vector<int> starts;
  for (const TimelineEvent& event : events) {
    if (event.kind == EventKind::AssignmentStart) {
      starts.push_back(event.week);
    }
  }
  ASSERT_EQ(starts.size(), 5u);
  for (std::size_t a = 1; a < starts.size(); ++a) {
    EXPECT_EQ(starts[a] - starts[a - 1], 2);
  }
}

// --- Grading --------------------------------------------------------------------

TEST(GradingTest, PolicyWeights) {
  const GradingPolicy policy;
  EXPECT_DOUBLE_EQ(policy.module_weight, 0.25);
  EXPECT_DOUBLE_EQ(policy.per_assignment_weight(), 0.05);
}

TEST(GradingTest, CooperationGates) {
  EXPECT_DOUBLE_EQ(assignment_grade(90.0, Cooperation::Full), 90.0);
  EXPECT_DOUBLE_EQ(assignment_grade(90.0, Cooperation::Partial), 0.0);
  EXPECT_DOUBLE_EQ(assignment_grade(90.0, Cooperation::None), 0.0);
  EXPECT_THROW(assignment_grade(101.0, Cooperation::Full),
               util::PreconditionError);
}

TEST(GradingTest, ModuleScoreFullCooperation) {
  const std::vector<double> grades{80, 90, 100, 70, 60};
  const std::vector<Cooperation> coop(5, Cooperation::Full);
  EXPECT_DOUBLE_EQ(module_score(grades, coop), 80.0);
}

TEST(GradingTest, PersistentNonCooperationZeroesRemaining) {
  const std::vector<double> grades{100, 100, 100, 100, 100};
  const std::vector<Cooperation> coop{
      Cooperation::Full, Cooperation::None, Cooperation::None,
      Cooperation::Full, Cooperation::Full};
  // A1 counts (100); A2, A3 are None (zero); the problem persisted, so A4
  // and A5 are zeroed too: 100 / 5 = 20.
  EXPECT_DOUBLE_EQ(module_score(grades, coop), 20.0);
}

TEST(GradingTest, SingleLapseDoesNotZeroRemaining) {
  const std::vector<double> grades{100, 100, 100, 100, 100};
  const std::vector<Cooperation> coop{
      Cooperation::Full, Cooperation::None, Cooperation::Full,
      Cooperation::Full, Cooperation::Full};
  EXPECT_DOUBLE_EQ(module_score(grades, coop), 80.0);
}

TEST(GradingTest, PeerRatingMean) {
  const std::vector<PeerRating> ratings{
      {1, 0, 5}, {2, 0, 4}, {3, 0, 3}, {0, 1, 2}};
  EXPECT_DOUBLE_EQ(mean_peer_rating(ratings, 0), 4.0);
  EXPECT_DOUBLE_EQ(mean_peer_rating(ratings, 1), 2.0);
  EXPECT_DOUBLE_EQ(mean_peer_rating(ratings, 9), 0.0);
}

}  // namespace
}  // namespace pblpar::course
