// Schedule::steal: deque partitioning helpers, exactly-once execution
// under host stress, deterministic replay on the sim backend, the
// steal-event trace schema, and the templated for_each driver that the
// steal path (and everything else) runs through.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::rt {
namespace {

// --- Deque partitioning helpers ---------------------------------------

TEST(StealChunkSizeTest, ExplicitChunkWinsButIsClampedToLoop) {
  EXPECT_EQ(steal_chunk_size(Schedule::steal(8), 1000, 4), 8);
  EXPECT_EQ(steal_chunk_size(Schedule::steal(8), 5, 4), 5);
}

TEST(StealChunkSizeTest, AutoChunkTargetsSixteenChunksPerThread) {
  // 1024 iterations over 4 threads -> 64 chunks of 16.
  EXPECT_EQ(steal_chunk_size(Schedule::steal(), 1024, 4), 16);
  // Tiny loops degenerate to chunk 1 (never 0).
  EXPECT_EQ(steal_chunk_size(Schedule::steal(), 3, 4), 1);
  EXPECT_EQ(steal_chunk_size(Schedule::steal(), 0, 4), 1);
}

TEST(StealSpanTest, InitialSpansTileTheChunkIndexSpace) {
  // 10 chunks over 4 threads: blocks of 3,3,2,2 — contiguous, disjoint,
  // covering [0, 10).
  const std::int64_t total = 100;
  const std::int64_t chunk = 10;
  std::int64_t next = 0;
  for (int tid = 0; tid < 4; ++tid) {
    const StealSpan span = steal_initial_span(total, chunk, 4, tid);
    EXPECT_EQ(span.lo, next);
    next = span.hi;
  }
  EXPECT_EQ(next, 10);
}

TEST(StealSpanTest, EmptyLoopDealsEmptySpans) {
  for (int tid = 0; tid < 4; ++tid) {
    EXPECT_TRUE(steal_initial_span(0, 4, 4, tid).empty());
  }
}

TEST(StealSpanTest, ClaimMapsChunkIndexToIterationsAndClampsTheTail) {
  const StealClaim middle = steal_claim_for(2, 8, 100, 3);
  EXPECT_EQ(middle.begin, 16);
  EXPECT_EQ(middle.count, 8);
  EXPECT_EQ(middle.victim, 3);
  const StealClaim tail = steal_claim_for(12, 8, 100, 0);
  EXPECT_EQ(tail.begin, 96);
  EXPECT_EQ(tail.count, 4);
}

TEST(StealSpanTest, OutOfRangeChunkIndexIsRejected) {
  EXPECT_THROW(steal_claim_for(13, 8, 100, 0), util::PreconditionError);
}

// --- Exactly-once execution -------------------------------------------

/// Every iteration of a steal loop must run exactly once, whatever the
/// interleaving of local pops and steals.
void expect_exactly_once_host(int threads, std::int64_t total,
                              Schedule schedule) {
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  for (auto& hit : hits) {
    hit.store(0, std::memory_order_relaxed);
  }
  parallel(ParallelConfig::host(threads), [&](TeamContext& tc) {
    for_each(tc, Range::upto(total), schedule, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
  });
  for (std::int64_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << "iteration " << i << " with " << threads << " threads";
  }
}

TEST(StealHostTest, EveryIterationRunsExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    expect_exactly_once_host(threads, 1000, Schedule::steal());
    expect_exactly_once_host(threads, 1000, Schedule::steal(7));
  }
}

TEST(StealHostTest, EdgeShapes) {
  // Empty loop, fewer iterations than threads, chunk larger than the
  // loop, single iteration.
  expect_exactly_once_host(4, 0, Schedule::steal());
  expect_exactly_once_host(8, 3, Schedule::steal());
  expect_exactly_once_host(4, 10, Schedule::steal(64));
  expect_exactly_once_host(4, 1, Schedule::steal());
}

TEST(StealHostTest, StressSkewedWorkManyRounds) {
  // Skewed per-iteration work provokes migration; repeated rounds give
  // the thread scheduler chances to produce nasty interleavings (under
  // TSan this is also the race coverage for the deque locking).
  for (int round = 0; round < 20; ++round) {
    const std::int64_t total = 257;  // prime: uneven deal every round
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
    for (auto& hit : hits) {
      hit.store(0, std::memory_order_relaxed);
    }
    std::atomic<std::int64_t> sum{0};
    parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
      for_each(tc, Range::upto(total), Schedule::steal(2),
               [&](std::int64_t i) {
                 volatile double sink = 0.0;
                 for (std::int64_t k = 0; k < (i % 16) * 8; ++k) {
                   sink = sink + 1.0;
                 }
                 hits[static_cast<std::size_t>(i)].fetch_add(
                     1, std::memory_order_relaxed);
                 sum.fetch_add(i, std::memory_order_relaxed);
               });
    });
    for (std::int64_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
    }
    ASSERT_EQ(sum.load(), total * (total - 1) / 2);
  }
}

TEST(StealHostTest, TwoStealLoopsInOneRegion) {
  constexpr std::int64_t kN = 300;
  std::vector<std::atomic<int>> first(kN);
  std::vector<std::atomic<int>> second(kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    first[static_cast<std::size_t>(i)].store(0);
    second[static_cast<std::size_t>(i)].store(0);
  }
  parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
    for_each(tc, Range::upto(kN), Schedule::steal(), [&](std::int64_t i) {
      first[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for_each(tc, Range::upto(kN), Schedule::steal(5), [&](std::int64_t i) {
      second[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(first[static_cast<std::size_t>(i)].load(), 1);
    ASSERT_EQ(second[static_cast<std::size_t>(i)].load(), 1);
  }
}

TEST(StealHostTest, RangeOffsetIsRespected) {
  // for_each hands out global indices: range [100, 164).
  std::vector<std::atomic<int>> hits(64);
  for (auto& hit : hits) {
    hit.store(0);
  }
  parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
    for_each(tc, Range{100, 164}, Schedule::steal(4), [&](std::int64_t i) {
      ASSERT_GE(i, 100);
      ASSERT_LT(i, 164);
      hits[static_cast<std::size_t>(i - 100)].fetch_add(1);
    });
  });
  for (const auto& hit : hits) {
    ASSERT_EQ(hit.load(), 1);
  }
}

// --- Sim backend: determinism and cost modelling -----------------------

/// A compact fingerprint of a traced run: every chunk and steal event in
/// claim order plus the makespan, so two runs can be compared exactly.
std::string fingerprint(const RunResult& run) {
  std::string out = std::to_string(run.elapsed_seconds());
  for (const ChunkEvent& chunk : run.profile->chunks) {
    out += ";c" + std::to_string(chunk.tid) + ":" +
           std::to_string(chunk.begin) + "-" + std::to_string(chunk.end) +
           "@" + std::to_string(chunk.start_s);
  }
  for (const StealEvent& steal : run.profile->steals) {
    out += ";s" + std::to_string(steal.thief_tid) + "<" +
           std::to_string(steal.victim_tid) + ":" +
           std::to_string(steal.begin) + "-" + std::to_string(steal.end);
  }
  return out;
}

RunResult sim_steal_run(std::uint64_t workload_seed) {
  util::Rng rng(workload_seed);
  std::vector<double> ops;
  for (int i = 0; i < 96; ++i) {
    ops.push_back(1e4 * static_cast<double>(1 + rng.next_below(64)));
  }
  CostModel cost;
  cost.ops_fn = [ops](std::int64_t i) {
    return ops[static_cast<std::size_t>(i)];
  };
  return parallel(ParallelConfig::sim_pi(4).traced(), [&](TeamContext& tc) {
    for_each(tc, Range::upto(96), Schedule::steal(2), [](std::int64_t) {},
             cost);
  });
}

TEST(StealSimTest, ReplaysBitForBitAcrossRunsAndSeeds) {
  for (const std::uint64_t seed : {1u, 7u, 2018u}) {
    const std::string first = fingerprint(sim_steal_run(seed));
    const std::string second = fingerprint(sim_steal_run(seed));
    EXPECT_EQ(first, second) << "workload seed " << seed;
    EXPECT_NE(first.find(";s"), std::string::npos)
        << "expected at least one steal for workload seed " << seed;
  }
}

TEST(StealSimTest, EveryIterationRunsExactlyOnceInVirtualTime) {
  constexpr std::int64_t kN = 200;
  std::vector<int> hits(static_cast<std::size_t>(kN), 0);
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) {
    return i % 7 == 0 ? 5e5 : 1e3;  // spiky: forces migration
  };
  parallel(ParallelConfig::sim_pi(4), [&](TeamContext& tc) {
    for_each(tc, Range::upto(kN), Schedule::steal(), [&](std::int64_t i) {
      // The simulator serializes real code, so plain writes are safe.
      ++hits[static_cast<std::size_t>(i)];
    }, cost);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1);
  }
}

TEST(StealSimTest, BalancesASkewedLoopBetterThanStatic) {
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) {
    return i >= 48 ? 2e6 : 1e4;  // heavy tail lands in the last block
  };
  const auto makespan = [&](Schedule schedule) {
    return parallel(ParallelConfig::sim_pi(4), [&](TeamContext& tc) {
             for_each(tc, Range::upto(64), schedule, [](std::int64_t) {},
                      cost);
           })
        .elapsed_seconds();
  };
  EXPECT_LT(makespan(Schedule::steal(1)),
            makespan(Schedule::static_block()) * 0.6);
}

// --- Trace schema ------------------------------------------------------

TEST(StealTraceTest, StealEventsLinkToChunkEventsByClaimOrder) {
  const RunResult run = sim_steal_run(2018);
  const RunProfile& profile = *run.profile;
  ASSERT_FALSE(profile.steals.empty());
  for (const StealEvent& steal : profile.steals) {
    EXPECT_NE(steal.thief_tid, steal.victim_tid);
    EXPECT_LT(steal.begin, steal.end);
    // The thief records a chunk event with the same claim order covering
    // exactly the stolen range.
    bool linked = false;
    for (const ChunkEvent& chunk : profile.chunks) {
      if (chunk.claim_order == steal.claim_order) {
        EXPECT_EQ(chunk.tid, steal.thief_tid);
        EXPECT_EQ(chunk.begin, steal.begin);
        EXPECT_EQ(chunk.end, steal.end);
        EXPECT_EQ(chunk.loop_id, steal.loop_id);
        linked = true;
      }
    }
    EXPECT_TRUE(linked);
  }
  // Sorted by claim order, as documented.
  for (std::size_t i = 1; i < profile.steals.size(); ++i) {
    EXPECT_LE(profile.steals[i - 1].claim_order,
              profile.steals[i].claim_order);
  }
}

TEST(StealTraceTest, PerThreadAggregatesCountStolenWork) {
  const RunResult run = sim_steal_run(2018);
  const RunProfile& profile = *run.profile;
  std::uint64_t steals = 0;
  std::int64_t stolen_iterations = 0;
  for (const ThreadProfile& thread : profile.per_thread()) {
    steals += thread.steals;
    stolen_iterations += thread.stolen_iterations;
  }
  EXPECT_EQ(steals, profile.steals.size());
  std::int64_t expected_iterations = 0;
  for (const StealEvent& steal : profile.steals) {
    expected_iterations += steal.iterations();
  }
  EXPECT_EQ(stolen_iterations, expected_iterations);
}

TEST(StealTraceTest, JsonAndTimelineCarrySteals) {
  const RunResult run = sim_steal_run(2018);
  const std::string json = run.profile->to_json();
  EXPECT_NE(json.find("\"steals\":[{\"loop\":"), std::string::npos);
  EXPECT_NE(json.find("\"thief\":"), std::string::npos);
  EXPECT_NE(json.find("\"victim\":"), std::string::npos);
  EXPECT_NE(json.find("\"stolen_iterations\":"), std::string::npos);
  const std::string chart = run.profile->timeline_chart(0);
  EXPECT_NE(chart.find("steal t"), std::string::npos);
  EXPECT_NE(run.profile->summary().find("stolen"), std::string::npos);
}

TEST(StealTraceTest, NonStealLoopsRecordNoSteals) {
  const RunResult run =
      parallel(ParallelConfig::sim_pi(4).traced(), [&](TeamContext& tc) {
        for_each(tc, Range::upto(64), Schedule::dynamic(2),
                 [](std::int64_t) {}, CostModel::uniform(1e4));
      });
  EXPECT_TRUE(run.profile->steals.empty());
  for (const ThreadProfile& thread : run.profile->per_thread()) {
    EXPECT_EQ(thread.steals, 0u);
    EXPECT_EQ(thread.stolen_iterations, 0);
  }
}

// --- for_each (devirtualized driver) -----------------------------------

TEST(ForEachTest, MatchesForLoopAcrossSchedules) {
  constexpr std::int64_t kN = 500;
  for (const Schedule schedule :
       {Schedule::static_block(), Schedule::static_chunk(3),
        Schedule::dynamic(4), Schedule::guided(1), Schedule::steal(8)}) {
    std::vector<std::atomic<std::int64_t>> each(
        static_cast<std::size_t>(kN));
    std::vector<std::atomic<std::int64_t>> loop(
        static_cast<std::size_t>(kN));
    for (std::int64_t i = 0; i < kN; ++i) {
      each[static_cast<std::size_t>(i)].store(0);
      loop[static_cast<std::size_t>(i)].store(0);
    }
    parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
      for_each(tc, Range::upto(kN), schedule, [&](std::int64_t i) {
        each[static_cast<std::size_t>(i)].fetch_add(i + 1);
      });
    });
    parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
      for_loop(tc, Range::upto(kN), schedule, [&](std::int64_t i) {
        loop[static_cast<std::size_t>(i)].fetch_add(i + 1);
      });
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(each[static_cast<std::size_t>(i)].load(),
                loop[static_cast<std::size_t>(i)].load())
          << "schedule " << schedule.to_string();
    }
  }
}

TEST(ForEachTest, BodyIsNotCopiedPerIteration) {
  // The body is forwarded once per member, never per iteration — a
  // mutable lambda's state survives across its thread's iterations.
  std::atomic<std::int64_t> total{0};
  parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
    std::int64_t local = 0;
    for_each(tc, Range::upto(1000), Schedule::steal(),
             [&local](std::int64_t) { ++local; });
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(StealScheduleTest, ToStringRoundTrip) {
  EXPECT_EQ(Schedule::steal().to_string(), "steal");
  EXPECT_EQ(Schedule::steal(4).to_string(), "steal,4");
  EXPECT_THROW(Schedule::steal(-1), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::rt
