#include <gtest/gtest.h>

#include <cstdint>

#include "rt/for_each.hpp"
#include "rt/host_backend.hpp"
#include "rt/parallel.hpp"

namespace pblpar::rt {
namespace {

TEST(PoolSnapshotTest, CountsRegionsWorkersAndIdleState) {
  const PoolSnapshot before = pool_snapshot();
  parallel(ParallelConfig::host(4), [](TeamContext&) {});
  parallel(ParallelConfig::host(4), [](TeamContext&) {});
  const PoolSnapshot after = pool_snapshot();
  EXPECT_GE(after.pooled_regions + after.spawned_regions,
            before.pooled_regions + before.spawned_regions + 2);
  // A 4-wide pooled region spawns (at least) 3 persistent workers.
  EXPECT_GE(after.workers, 3);
  EXPECT_FALSE(after.busy);
  // No traced region is running, so the live cut reports inactive.
  EXPECT_FALSE(after.live.active);
  EXPECT_EQ(after.live.iterations, 0);
}

TEST(PoolSnapshotTest, LiveTotalsGiveCoherentCutOfTracedRegion) {
  constexpr std::int64_t kIterations = 1000;
  ParallelConfig config = ParallelConfig::host(2).traced();
  LiveTotals seen;
  parallel(config, [&](TeamContext& tc) {
    for_each(tc, Range::upto(kIterations), Schedule::dynamic(64),
             [](std::int64_t) {});
    // The for_each end barrier published every chunk's counters; the
    // other member may still be mid-publish of its barrier counter, so
    // retry the wait-free sample until a coherent cut lands.
    if (tc.thread_num() == 0) {
      seen = pool_snapshot().live;
      for (int attempt = 0; attempt < 100 && !seen.coherent; ++attempt) {
        seen = pool_snapshot().live;
      }
    }
    tc.barrier();
  });
  EXPECT_TRUE(seen.active);
  EXPECT_TRUE(seen.coherent);
  EXPECT_EQ(seen.num_threads, 2);
  EXPECT_EQ(seen.iterations, kIterations);
  EXPECT_GT(seen.chunks, 0u);
  EXPECT_EQ(seen.spills, 0u);
  EXPECT_EQ(seen.merges, 0u);
  // The region has ended, so the observer must have let go.
  EXPECT_FALSE(pool_snapshot().live.active);
}

TEST(PoolSnapshotTest, SnapshotNeverBlocksUntracedRegions) {
  // Untraced regions never attach a recorder; sampling concurrently with
  // them must stay inactive and cheap rather than deadlock or throw.
  parallel(ParallelConfig::host(2), [](TeamContext& tc) {
    for_each(tc, Range::upto(100), Schedule::steal(), [](std::int64_t) {
      const PoolSnapshot snap = pool_snapshot();
      EXPECT_FALSE(snap.live.active);
      EXPECT_TRUE(snap.busy);
    });
  });
}

}  // namespace
}  // namespace pblpar::rt
