#include "rt/reduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <type_traits>

namespace pblpar::rt {
namespace {

ParallelConfig config_for(BackendKind backend, int threads) {
  ParallelConfig config;
  config.backend = backend;
  config.num_threads = threads;
  return config;
}

struct ReduceCase {
  BackendKind backend;
  int threads;
  Schedule schedule;
  ReduceStrategy strategy;
};

std::vector<ReduceCase> reduce_cases() {
  std::vector<ReduceCase> cases;
  for (const BackendKind backend : {BackendKind::Host, BackendKind::Sim}) {
    for (const int threads : {1, 3, 4}) {
      for (const Schedule schedule :
           {Schedule::static_block(), Schedule::dynamic(5),
            Schedule::guided(1)}) {
        for (const ReduceStrategy strategy :
             {ReduceStrategy::PerThreadPartials,
              ReduceStrategy::CriticalPerIteration}) {
          cases.push_back(ReduceCase{backend, threads, schedule, strategy});
        }
      }
    }
  }
  return cases;
}

class ReduceSweepTest : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceSweepTest, SumOfFirstNIntegers) {
  const ReduceCase c = GetParam();
  constexpr std::int64_t kN = 1000;
  const auto result = parallel_reduce<long>(
      config_for(c.backend, c.threads), Range::upto(kN), c.schedule, 0L,
      [](std::int64_t i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; }, {}, c.strategy);
  EXPECT_EQ(result.value, kN * (kN - 1) / 2);
}

std::string reduce_case_name(const ::testing::TestParamInfo<ReduceCase>& i) {
  const ReduceCase& c = i.param;
  std::string name = c.backend == BackendKind::Host ? "host" : "sim";
  name += "_t" + std::to_string(c.threads) + "_";
  std::string sched = c.schedule.to_string();
  for (char& ch : sched) {
    if (ch == ',') {
      ch = '_';
    }
  }
  name += sched;
  name += c.strategy == ReduceStrategy::PerThreadPartials ? "_partials"
                                                          : "_critical";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReduceSweepTest,
                         ::testing::ValuesIn(reduce_cases()),
                         reduce_case_name);

TEST(ReduceTest, MaxReduction) {
  const auto result = parallel_reduce<int>(
      config_for(BackendKind::Sim, 4), Range::upto(500),
      Schedule::static_block(), 0,
      [](std::int64_t i) {
        // Peak in the middle so no thread's block trivially owns the max.
        return static_cast<int>(1000 - std::abs(250 - i));
      },
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(result.value, 1000);
}

TEST(ReduceTest, EmptyRangeYieldsIdentity) {
  const auto result = parallel_reduce<long>(
      config_for(BackendKind::Sim, 4), Range::upto(0),
      Schedule::static_block(), -7L, [](std::int64_t i) { return i; },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(result.value, -7L);
}

TEST(ReduceTest, DoubleSumMatchesSerialWithinTolerance) {
  constexpr std::int64_t kN = 10000;
  double serial = 0.0;
  for (std::int64_t i = 0; i < kN; ++i) {
    serial += 1.0 / (1.0 + static_cast<double>(i));
  }
  const auto result = parallel_reduce<double>(
      config_for(BackendKind::Host, 4), Range::upto(kN),
      Schedule::dynamic(64), 0.0,
      [](std::int64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
      [](double a, double b) { return a + b; });
  EXPECT_NEAR(result.value, serial, 1e-9);
}

TEST(ReduceTest, SimReductionIsDeterministicIncludingFloatingPoint) {
  const auto run_once = [] {
    return parallel_reduce<double>(
               config_for(BackendKind::Sim, 4), Range::upto(5000),
               Schedule::dynamic(16), 0.0,
               [](std::int64_t i) {
                 return std::sin(static_cast<double>(i));
               },
               [](double a, double b) { return a + b; },
               CostModel::uniform(100.0))
        .value;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ReduceTest, ReductionClauseBeatsCriticalPerIteration) {
  // The paper's Assignment 4 contrast, measured in virtual time: with
  // fine-grained iterations, a critical section per iteration serializes
  // (one lock-acquire cost each), while the reduction clause merges once
  // per thread.
  const CostModel cost = CostModel::uniform(1e3);
  const auto time_with = [&](ReduceStrategy strategy) {
    return parallel_reduce<long>(
               config_for(BackendKind::Sim, 4), Range::upto(20000),
               Schedule::static_block(), 0L,
               [](std::int64_t i) { return static_cast<long>(i); },
               [](long a, long b) { return a + b; }, cost, strategy)
        .run.elapsed_seconds();
  };
  const double partials = time_with(ReduceStrategy::PerThreadPartials);
  const double critical = time_with(ReduceStrategy::CriticalPerIteration);
  EXPECT_GT(critical, partials * 1.5);
}

TEST(ReduceTest, ReduceLoopInsideExistingRegion) {
  long sum = 0;
  long count = 0;
  parallel(config_for(BackendKind::Sim, 4), [&](TeamContext& tc) {
    reduce_loop<long>(
        tc, Range::upto(100), Schedule::static_block(), sum,
        [](std::int64_t i) { return static_cast<long>(i); },
        [](long a, long b) { return a + b; });
    // After the reduction barrier every member sees the final value.
    tc.critical([&] {
      if (sum == 99 * 100 / 2) {
        ++count;
      }
    });
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
  EXPECT_EQ(count, 4);
}

/// An accumulator with no default constructor: OpenMP reductions
/// initialize privates from the operation's identity, so requiring T{}
/// was an implementation leak, not a semantic requirement.
struct MinMax {
  explicit MinMax(long value) : lo(value), hi(value) {}
  MinMax(long lo, long hi) : lo(lo), hi(hi) {}
  long lo;
  long hi;
};
static_assert(!std::is_default_constructible_v<MinMax>);

MinMax merge_minmax(const MinMax& a, const MinMax& b) {
  return MinMax(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

TEST(ReduceTest, NonDefaultConstructibleAccumulator) {
  for (const BackendKind backend : {BackendKind::Host, BackendKind::Sim}) {
    const auto result = parallel_reduce<MinMax>(
        config_for(backend, 4), Range{10, 500}, Schedule::dynamic(7),
        MinMax(250),  // a seed inside the range, so it never wins
        [](std::int64_t i) { return MinMax(static_cast<long>(i)); },
        merge_minmax);
    EXPECT_EQ(result.value.lo, 10);
    EXPECT_EQ(result.value.hi, 499);
  }
}

TEST(ReduceTest, NonDefaultConstructibleReduceLoopWithIdleThreads) {
  // More threads than iterations: some members never touch their partial
  // (it stays an empty optional) and must contribute nothing.
  MinMax result(7);
  parallel(config_for(BackendKind::Host, 8), [&](TeamContext& tc) {
    reduce_loop<MinMax>(
        tc, Range::upto(3), Schedule::dynamic(1), result,
        [](std::int64_t i) { return MinMax(static_cast<long>(i) * 10); },
        merge_minmax);
  });
  EXPECT_EQ(result.lo, 0);
  EXPECT_EQ(result.hi, 20);
}

}  // namespace
}  // namespace pblpar::rt
