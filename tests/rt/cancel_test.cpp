#include "rt/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rt/host_backend.hpp"
#include "rt/parallel.hpp"
#include "rt/reduce.hpp"
#include "rt/trace.hpp"
#include "util/error.hpp"

namespace pblpar::rt {
namespace {

/// A follow-up region on the same (pooled) configuration must be fully
/// correct — this is the "cancellation leaves the team reusable" check.
void expect_pool_still_works(const ParallelConfig& config) {
  constexpr std::int64_t kN = 97;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(config, Range::upto(kN), Schedule::dynamic(2),
               [&](std::int64_t i) {
                 counts[static_cast<std::size_t>(i)].fetch_add(1);
               });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(CancelTest, TokenCancelOnPooledHostLeavesPoolReusable) {
  const ParallelConfig base = ParallelConfig::host(4);
  CancelSource source;
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) {
      std::this_thread::yield();
    }
    source.cancel();
  });
  std::atomic<std::int64_t> body_runs{0};
  try {
    parallel_for(base.cancellable(source.token()), Range::upto(1 << 22),
                 Schedule::dynamic(1), [&](std::int64_t) {
                   started.store(true);
                   body_runs.fetch_add(1);
                 });
    canceller.join();
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    canceller.join();
    EXPECT_EQ(cancelled.cause(), CancelCause::Token);
    EXPECT_EQ(cancelled.completed_iterations().size(), 4u);
    EXPECT_LT(cancelled.total_completed(), std::int64_t{1} << 22);
  }
  expect_pool_still_works(base);
}

TEST(CancelTest, UnpooledSpawnRegionCancelsToo) {
  CancelSource source;
  source.cancel();  // pre-cancelled: every member stops at its first claim
  try {
    parallel_for(
        ParallelConfig::host(3).unpooled().cancellable(source.token()),
        Range::upto(1000), Schedule::dynamic(1), [](std::int64_t) {});
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    EXPECT_EQ(cancelled.cause(), CancelCause::Token);
    EXPECT_EQ(cancelled.total_completed(), 0);
  }
}

TEST(CancelTest, DeadlineFiresOnHost) {
  try {
    parallel_for(ParallelConfig::host(2).deadline(std::chrono::milliseconds(2)),
                 Range::upto(std::int64_t{1} << 40), Schedule::dynamic(64),
                 [](std::int64_t) {});
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    EXPECT_EQ(cancelled.cause(), CancelCause::Deadline);
  }
}

TEST(CancelTest, CompletedCountsMatchIterationsActuallyRun) {
  CancelSource source;
  std::atomic<std::int64_t> body_runs{0};
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) {
      std::this_thread::yield();
    }
    source.cancel();
  });
  try {
    parallel_for(ParallelConfig::host(4).cancellable(source.token()),
                 Range::upto(1 << 22), Schedule::dynamic(4),
                 [&](std::int64_t) {
                   started.store(true);
                   body_runs.fetch_add(1);
                 });
    canceller.join();
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    canceller.join();
    // Members stop only at chunk boundaries, so every claimed chunk ran
    // to completion and the per-thread counts are exact.
    EXPECT_EQ(cancelled.total_completed(), body_runs.load());
  }
}

TEST(CancelTest, StaticBlockScheduleStopsAtItsOneBoundary) {
  // static_block has exactly one chunk boundary per member, so a
  // pre-cancelled token means zero iterations run anywhere.
  CancelSource source;
  source.cancel();
  try {
    parallel_for(ParallelConfig::host(4).cancellable(source.token()),
                 Range::upto(1000), Schedule::static_block(),
                 [](std::int64_t) { FAIL() << "body must not run"; });
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    EXPECT_EQ(cancelled.total_completed(), 0);
  }
}

TEST(CancelTest, InvalidConfigArgumentsThrowLoudly) {
  const ParallelConfig config = ParallelConfig::host(2);
  EXPECT_THROW(config.cancellable(CancelToken{}), util::PreconditionError);
  EXPECT_THROW(config.deadline(0.0), util::PreconditionError);
  EXPECT_THROW(config.deadline(-1.0), util::PreconditionError);
  EXPECT_THROW(config.deadline(std::nan("")), util::PreconditionError);
  ChaosPlan bad_probability;
  bad_probability.throw_probability = 2.0;
  EXPECT_THROW(config.with_chaos(bad_probability), util::PreconditionError);
  ChaosPlan bad_delay;
  bad_delay.delay_probability = 0.5;
  bad_delay.delay_s = -1.0;
  EXPECT_THROW(config.with_chaos(bad_delay), util::PreconditionError);
}

TEST(CancelTest, SimDeadlineIsDeterministic) {
  const auto run_once = [] {
    try {
      parallel_for(ParallelConfig::sim_pi(4).traced().deadline(0.002),
                   Range::upto(100000), Schedule::dynamic(8),
                   [](std::int64_t) {}, CostModel::uniform(200.0));
      ADD_FAILURE() << "expected rt::Cancelled";
      return std::make_pair(std::string{}, std::vector<std::int64_t>{});
    } catch (const Cancelled& cancelled) {
      EXPECT_EQ(cancelled.cause(), CancelCause::Deadline);
      EXPECT_NE(cancelled.profile(), nullptr);
      return std::make_pair(cancelled.profile()->to_json(),
                            cancelled.completed_iterations());
    }
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);    // byte-stable event fingerprint
  EXPECT_EQ(first.second, second.second);  // identical salvaged progress
}

TEST(CancelTest, SimChaosDelaysAreDeterministicAndTraced) {
  ChaosPlan plan;
  plan.delay_probability = 0.5;
  plan.delay_s = 1e-4;
  plan.seed = 42;
  const auto run_once = [&plan] {
    const RunResult result = parallel_for(
        ParallelConfig::sim_pi(4).traced().with_chaos(plan),
        Range::upto(64), Schedule::dynamic(1), [](std::int64_t) {},
        CostModel::uniform(100.0));
    EXPECT_NE(result.profile, nullptr);
    return result;
  };
  const RunResult first = run_once();
  const RunResult second = run_once();
  ASSERT_NE(first.profile, nullptr);
  EXPECT_FALSE(first.profile->injects.empty());
  EXPECT_EQ(first.profile->to_json(), second.profile->to_json());
  EXPECT_NE(first.profile->timeline_chart().find("inject"),
            std::string::npos);
  EXPECT_NE(first.profile->to_json().find("\"injects\""), std::string::npos);
}

TEST(CancelTest, HostChaosThrowInjectionDrainsLikeAUserException) {
  ChaosPlan plan;
  plan.throw_probability = 1.0;  // first claim on some member throws
  const ParallelConfig base = ParallelConfig::host(4);
  EXPECT_THROW(parallel_for(base.with_chaos(plan), Range::upto(10000),
                            Schedule::dynamic(1), [](std::int64_t) {}),
               ChaosInjected);
  expect_pool_still_works(base);
}

TEST(CancelTest, CancelledCarriesTraceWithCancelEvents) {
  CancelSource source;
  try {
    // Cancelling from inside the body guarantees at least one chunk ran
    // (and is traced) before the members observe the request.
    parallel_for(ParallelConfig::host(2).traced().cancellable(source.token()),
                 Range::upto(100), Schedule::dynamic(1),
                 [&](std::int64_t) { source.cancel(); });
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    ASSERT_NE(cancelled.profile(), nullptr);
    EXPECT_FALSE(cancelled.profile()->cancels.empty());
    for (const CancelEvent& event : cancelled.profile()->cancels) {
      EXPECT_EQ(event.cause, "token");
    }
    EXPECT_NE(cancelled.profile()->timeline_chart().find("cancel t"),
              std::string::npos);
    EXPECT_NE(cancelled.profile()->to_json().find("\"cancels\""),
              std::string::npos);
  }
}

TEST(CancelTest, ReduceSalvageRescuesPerThreadPartials) {
  CancelSource source;
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load()) {
      std::this_thread::yield();
    }
    source.cancel();
  });
  std::vector<std::optional<std::int64_t>> salvage(4);
  try {
    parallel_reduce<std::int64_t>(
        ParallelConfig::host(4).cancellable(source.token()),
        Range::upto(1 << 22), Schedule::dynamic(4), 0,
        [&](std::int64_t) -> std::int64_t {
          started.store(true);
          return 1;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; }, {},
        ReduceStrategy::PerThreadPartials, &salvage);
    canceller.join();
    FAIL() << "expected rt::Cancelled";
  } catch (const Cancelled& cancelled) {
    canceller.join();
    // With map(i) == 1 the salvaged partials count iterations, so their
    // sum must equal the exception's own completed-iterations total.
    std::int64_t salvaged = 0;
    for (const std::optional<std::int64_t>& slot : salvage) {
      salvaged += slot.value_or(0);
    }
    EXPECT_EQ(salvaged, cancelled.total_completed());
  }
}

TEST(CancelTest, ReduceSalvageRequiresOneSlotPerMember) {
  std::vector<std::optional<int>> too_small(1);
  EXPECT_THROW(parallel_reduce<int>(
                   ParallelConfig::host(2), Range::upto(10),
                   Schedule::dynamic(1), 0, [](std::int64_t) { return 1; },
                   [](int a, int b) { return a + b; }, {},
                   ReduceStrategy::PerThreadPartials, &too_small),
               util::PreconditionError);
}

TEST(CancelTest, AbortableBarrierAbortThenResetIsReusable) {
  AbortableBarrier barrier(2);
  std::atomic<bool> waiter_aborted{false};
  std::thread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const TeamAborted&) {
      waiter_aborted.store(true);
    }
  });
  barrier.abort();
  waiter.join();
  EXPECT_TRUE(waiter_aborted.load());

  // Re-armed, the same object must run a clean two-party rendezvous.
  barrier.reset(2);
  std::atomic<int> passed{0};
  std::thread a([&] {
    barrier.arrive_and_wait();
    passed.fetch_add(1);
  });
  std::thread b([&] {
    barrier.arrive_and_wait();
    passed.fetch_add(1);
  });
  a.join();
  b.join();
  EXPECT_EQ(passed.load(), 2);
}

TEST(CancelTest, PoolSurvivesChurnOfCancelledFailingAndNormalRegions) {
  const ParallelConfig base = ParallelConfig::host(4);
  for (int round = 0; round < 12; ++round) {
    CancelSource source;
    source.cancel();
    EXPECT_THROW(
        parallel_for(base.cancellable(source.token()), Range::upto(256),
                     Schedule::dynamic(1), [](std::int64_t) {}),
        Cancelled);
    EXPECT_THROW(
        parallel_for(base, Range::upto(256), Schedule::dynamic(1),
                     [round](std::int64_t i) {
                       if (i == round) {
                         throw std::runtime_error("boom");
                       }
                     }),
        std::runtime_error);
    expect_pool_still_works(base);
  }
}

}  // namespace
}  // namespace pblpar::rt
