// Deeper worksharing semantics: nowait loops, repeated barriers, mixed
// constructs in one region, and virtual-time monotonicity properties.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"

namespace pblpar::rt {
namespace {

ParallelConfig sim4() { return ParallelConfig::sim_pi(4); }

TEST(WorksharingTest, NowaitOverlapsPostLoopWork) {
  // Skewed loop: thread 0's block is free, the others' blocks are heavy.
  // With nowait, thread 0 starts its post-loop work while the rest still
  // loop, so the makespan shrinks versus the barrier version.
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return i < 4 ? 0.0 : 4e6; };
  const auto makespan_with = [&](bool barrier_at_end) {
    return parallel(sim4(), [&](TeamContext& tc) {
             for_loop(tc, Range::upto(16), Schedule::static_block(),
                      [](std::int64_t) {}, cost, barrier_at_end);
             if (tc.thread_num() == 0) {
               tc.compute(12e6);  // post-loop work only the master does
             }
             tc.barrier();
           })
        .elapsed_seconds();
  };
  const double with_barrier = makespan_with(true);
  const double nowait = makespan_with(false);
  EXPECT_LT(nowait, with_barrier * 0.75);
}

TEST(WorksharingTest, NowaitFollowedByBarrierStillCovers) {
  constexpr std::int64_t kN = 200;
  std::vector<std::atomic<int>> counts(kN);
  parallel(sim4(), [&](TeamContext& tc) {
    for_loop(
        tc, Range::upto(kN), Schedule::dynamic(3),
        [&](std::int64_t i) {
          counts[static_cast<std::size_t>(i)].fetch_add(1);
        },
        {}, /*barrier_at_end=*/false);
    tc.barrier();
    // After the explicit barrier every iteration ran exactly once.
    if (tc.thread_num() == 0) {
      for (std::int64_t i = 0; i < kN; ++i) {
        EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1);
      }
    }
  });
}

TEST(WorksharingTest, ManyBarriersInSequence) {
  const int threads = 4;
  std::vector<int> counter(1, 0);
  parallel(sim4(), [&](TeamContext& tc) {
    for (int round = 0; round < 10; ++round) {
      tc.single([&] { counter[0] += 1; });  // implies a barrier
      tc.barrier();
    }
  });
  (void)threads;
  EXPECT_EQ(counter[0], 10);
}

TEST(WorksharingTest, MixedConstructsInOneRegion) {
  long reduction_result = 0;
  std::atomic<int> singles{0};
  std::atomic<int> masters{0};
  std::vector<std::atomic<int>> loop_counts(64);

  parallel(sim4(), [&](TeamContext& tc) {
    tc.master([&] { masters.fetch_add(1); });
    for_loop(tc, Range::upto(64), Schedule::guided(2), [&](std::int64_t i) {
      loop_counts[static_cast<std::size_t>(i)].fetch_add(1);
    });
    tc.single([&] { singles.fetch_add(1); });
    reduce_loop<long>(
        tc, Range::upto(100), Schedule::dynamic(7), reduction_result,
        [](std::int64_t i) { return static_cast<long>(i); },
        [](long a, long b) { return a + b; });
    tc.single([&] { singles.fetch_add(1); });
  });

  EXPECT_EQ(masters.load(), 1);
  EXPECT_EQ(singles.load(), 2);
  EXPECT_EQ(reduction_result, 99L * 100 / 2);
  for (std::size_t i = 0; i < loop_counts.size(); ++i) {
    EXPECT_EQ(loop_counts[i].load(), 1);
  }
}

TEST(WorksharingTest, VirtualTimeMonotoneInThreadCountOnBalancedWork) {
  const CostModel cost = CostModel::uniform(1e5);
  double previous = 1e100;
  for (const int threads : {1, 2, 4}) {
    const double elapsed =
        parallel_for(ParallelConfig::sim_pi(threads), Range::upto(1024),
                     Schedule::static_block(), [](std::int64_t) {}, cost)
            .elapsed_seconds();
    EXPECT_LT(elapsed, previous) << threads << " threads";
    previous = elapsed;
  }
}

TEST(WorksharingTest, GuidedUsesFewerClaimsThanDynamicOne) {
  // Guided's shrinking chunks mean far fewer trips through the shared
  // queue than dynamic,1 — observable via the simulator's lock counter.
  const CostModel cost = CostModel::uniform(1e4);
  const auto acquires_with = [&](Schedule schedule) {
    const RunResult result =
        parallel_for(sim4(), Range::upto(1000), schedule,
                     [](std::int64_t) {}, cost);
    return result.sim_report->mutex_acquires;
  };
  EXPECT_LT(acquires_with(Schedule::guided(1)),
            acquires_with(Schedule::dynamic(1)) / 5);
}

TEST(WorksharingTest, StaticSchedulesNeverTouchTheQueue) {
  const CostModel cost = CostModel::uniform(1e4);
  const RunResult result =
      parallel_for(sim4(), Range::upto(1000), Schedule::static_chunk(3),
                   [](std::int64_t) {}, cost);
  EXPECT_EQ(result.sim_report->mutex_acquires, 0u);
}

TEST(WorksharingTest, ImbalanceVisibleInPerThreadBusyTimes) {
  // Static block on triangular work: the last thread's busy time
  // dominates; dynamic evens it out.
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return 1e4 * (i + 1.0); };
  const auto busy_spread = [&](Schedule schedule) {
    const RunResult result = parallel_for(
        sim4(), Range::upto(256), schedule, [](std::int64_t) {}, cost);
    const auto& busy = result.sim_report->busy_s;
    double lo = 1e100;
    double hi = 0.0;
    for (const double b : busy) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    return hi / std::max(lo, 1e-12);
  };
  EXPECT_GT(busy_spread(Schedule::static_block()),
            2.0 * busy_spread(Schedule::dynamic(4)));
}

}  // namespace
}  // namespace pblpar::rt
