#include "rt/loops.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pblpar::rt {
namespace {

TEST(ChunkSizeTest, DynamicDefaultIsOne) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(), 100, 4), 1);
}

TEST(ChunkSizeTest, DynamicHonorsChunk) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 100, 4), 8);
}

TEST(ChunkSizeTest, DynamicCapsAtRemaining) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 5, 4), 5);
}

TEST(ChunkSizeTest, ZeroRemainingYieldsZero) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 0, 4), 0);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 0, 4), 0);
}

TEST(ChunkSizeTest, GuidedHalvesRemainingAcrossTeam) {
  // remaining / (2 * threads)
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 800, 4), 100);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 80, 4), 10);
}

TEST(ChunkSizeTest, GuidedRespectsMinimumChunk) {
  EXPECT_EQ(chunk_size_for(Schedule::guided(16), 40, 4), 16);
}

TEST(ChunkSizeTest, GuidedCapsAtRemaining) {
  EXPECT_EQ(chunk_size_for(Schedule::guided(16), 7, 4), 7);
}

TEST(ChunkSizeTest, GuidedShrinksAsWorkDrains) {
  std::int64_t remaining = 1000;
  std::int64_t previous = chunk_size_for(Schedule::guided(), remaining, 4);
  while (remaining > 100) {
    remaining -= previous;
    const std::int64_t next = chunk_size_for(Schedule::guided(), remaining, 4);
    EXPECT_LE(next, previous);
    previous = next;
  }
}

TEST(ScheduleTest, FactoryValidation) {
  EXPECT_THROW(Schedule::static_chunk(0), util::PreconditionError);
  EXPECT_THROW(Schedule::dynamic(0), util::PreconditionError);
  EXPECT_THROW(Schedule::guided(-1), util::PreconditionError);
}

TEST(ScheduleTest, ToString) {
  EXPECT_EQ(Schedule::static_block().to_string(), "static");
  EXPECT_EQ(Schedule::static_chunk(2).to_string(), "static,2");
  EXPECT_EQ(Schedule::dynamic(3).to_string(), "dynamic,3");
  EXPECT_EQ(Schedule::guided(4).to_string(), "guided,4");
}

TEST(RangeTest, SizeAndUpto) {
  EXPECT_EQ((Range{3, 10}).size(), 7);
  EXPECT_EQ((Range{5, 5}).size(), 0);
  EXPECT_EQ((Range{7, 3}).size(), 0);  // inverted ranges are empty
  EXPECT_EQ(Range::upto(12).begin, 0);
  EXPECT_EQ(Range::upto(12).end, 12);
}

TEST(CostModelTest, UniformTotals) {
  const CostModel cost = CostModel::uniform(10.0, 0.5);
  EXPECT_DOUBLE_EQ(cost.total_ops(0, 5), 50.0);
  EXPECT_DOUBLE_EQ(cost.ops_for(3), 10.0);
  EXPECT_DOUBLE_EQ(cost.mem_intensity, 0.5);
  EXPECT_FALSE(cost.empty());
}

TEST(CostModelTest, PerIterationFunction) {
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return static_cast<double>(i); };
  EXPECT_DOUBLE_EQ(cost.total_ops(0, 4), 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(cost.ops_for(7), 7.0);
  EXPECT_FALSE(cost.empty());
}

TEST(CostModelTest, DefaultIsEmpty) {
  EXPECT_TRUE(CostModel{}.empty());
}

}  // namespace
}  // namespace pblpar::rt
