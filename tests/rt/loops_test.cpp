#include "rt/loops.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::rt {
namespace {

TEST(ChunkSizeTest, DynamicDefaultIsOne) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(), 100, 4), 1);
}

TEST(ChunkSizeTest, DynamicHonorsChunk) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 100, 4), 8);
}

TEST(ChunkSizeTest, DynamicCapsAtRemaining) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 5, 4), 5);
}

TEST(ChunkSizeTest, ZeroRemainingYieldsZero) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), 0, 4), 0);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 0, 4), 0);
}

TEST(ChunkSizeTest, GuidedHalvesRemainingAcrossTeam) {
  // remaining / (2 * threads)
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 800, 4), 100);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 80, 4), 10);
}

TEST(ChunkSizeTest, GuidedRespectsMinimumChunk) {
  EXPECT_EQ(chunk_size_for(Schedule::guided(16), 40, 4), 16);
}

TEST(ChunkSizeTest, GuidedCapsAtRemaining) {
  EXPECT_EQ(chunk_size_for(Schedule::guided(16), 7, 4), 7);
}

TEST(ChunkSizeTest, GuidedSmallRemainderFallsBackToMinChunk) {
  // remaining < 2 * num_threads makes the guided quotient zero; the
  // schedule must still hand out at least the minimum chunk.
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 7, 4), 1);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 1, 4), 1);
  EXPECT_EQ(chunk_size_for(Schedule::guided(3), 5, 4), 3);
  // ...but never more than what is left.
  EXPECT_EQ(chunk_size_for(Schedule::guided(3), 2, 4), 2);
}

TEST(ChunkSizeTest, ZeroOrNegativeChunkDefaultsToOne) {
  // Raw Schedule structs can carry chunk = 0 (the factories forbid it);
  // the scheduler treats that as chunk 1 rather than looping forever.
  EXPECT_EQ(chunk_size_for(Schedule{Schedule::Kind::Dynamic, 0}, 100, 4), 1);
  EXPECT_EQ(chunk_size_for(Schedule{Schedule::Kind::Guided, 0}, 6, 4), 1);
  EXPECT_EQ(chunk_size_for(Schedule{Schedule::Kind::Static, 0}, 100, 4), 1);
  EXPECT_EQ(chunk_size_for(Schedule{Schedule::Kind::Dynamic, -5}, 100, 4),
            1);
}

TEST(ChunkSizeTest, NegativeRemainingYieldsZero) {
  EXPECT_EQ(chunk_size_for(Schedule::dynamic(8), -3, 4), 0);
  EXPECT_EQ(chunk_size_for(Schedule::static_chunk(2), 0, 4), 0);
}

TEST(ChunkSizeTest, SingleThreadGuidedHalvesRemaining) {
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 100, 1), 50);
  EXPECT_EQ(chunk_size_for(Schedule::guided(), 1, 1), 1);
}

TEST(ChunkSizeTest, GuidedShrinksAsWorkDrains) {
  std::int64_t remaining = 1000;
  std::int64_t previous = chunk_size_for(Schedule::guided(), remaining, 4);
  while (remaining > 100) {
    remaining -= previous;
    const std::int64_t next = chunk_size_for(Schedule::guided(), remaining, 4);
    EXPECT_LE(next, previous);
    previous = next;
  }
}

TEST(ScheduleTest, FactoryValidation) {
  EXPECT_THROW(Schedule::static_chunk(0), util::PreconditionError);
  EXPECT_THROW(Schedule::dynamic(0), util::PreconditionError);
  EXPECT_THROW(Schedule::guided(-1), util::PreconditionError);
}

TEST(ScheduleTest, ToString) {
  EXPECT_EQ(Schedule::static_block().to_string(), "static");
  EXPECT_EQ(Schedule::static_chunk(2).to_string(), "static,2");
  EXPECT_EQ(Schedule::dynamic(3).to_string(), "dynamic,3");
  EXPECT_EQ(Schedule::guided(4).to_string(), "guided,4");
}

TEST(RangeTest, SizeAndUpto) {
  EXPECT_EQ((Range{3, 10}).size(), 7);
  EXPECT_EQ((Range{5, 5}).size(), 0);
  EXPECT_EQ((Range{7, 3}).size(), 0);  // inverted ranges are empty
  EXPECT_EQ(Range::upto(12).begin, 0);
  EXPECT_EQ(Range::upto(12).end, 12);
}

TEST(CostModelTest, UniformTotals) {
  const CostModel cost = CostModel::uniform(10.0, 0.5);
  EXPECT_DOUBLE_EQ(cost.total_ops(0, 5), 50.0);
  EXPECT_DOUBLE_EQ(cost.ops_for(3), 10.0);
  EXPECT_DOUBLE_EQ(cost.mem_intensity, 0.5);
  EXPECT_FALSE(cost.empty());
}

TEST(CostModelTest, PerIterationFunction) {
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return static_cast<double>(i); };
  EXPECT_DOUBLE_EQ(cost.total_ops(0, 4), 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(cost.ops_for(7), 7.0);
  EXPECT_FALSE(cost.empty());
}

TEST(CostModelTest, DefaultIsEmpty) {
  EXPECT_TRUE(CostModel{}.empty());
}

TEST(StaticRoundRobinTest, HugeChunkDoesNotOverflowInt64) {
  // chunk * tid and chunk_start += chunk * num_threads used to overflow
  // for chunks near INT64_MAX; the chunk is now clamped to the loop
  // length, so a huge chunk degenerates to "thread 0 takes everything".
  constexpr std::int64_t kHuge =
      std::numeric_limits<std::int64_t>::max() / 2;
  std::vector<int> counts(64, 0);
  parallel_for(ParallelConfig::sim_pi(4), Range::upto(64),
               Schedule{Schedule::Kind::Static, kHuge},
               [&](std::int64_t i) {
                 counts[static_cast<std::size_t>(i)] += 1;
               });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 1) << "i=" << i;
  }
}

TEST(StaticRoundRobinTest, LastChunkLandsExactlyOnLoopEnd) {
  // Stride stepping must stop without computing chunk_start past total.
  std::vector<int> counts(10, 0);
  parallel_for(ParallelConfig::sim_pi(3), Range::upto(10),
               Schedule::static_chunk(4), [&](std::int64_t i) {
                 counts[static_cast<std::size_t>(i)] += 1;
               });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 1) << "i=" << i;
  }
}

}  // namespace
}  // namespace pblpar::rt
