#include "rt/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "rt/host_backend.hpp"

namespace pblpar::rt {
namespace {

ParallelConfig make_config(BackendKind backend, int threads) {
  ParallelConfig config;
  config.backend = backend;
  config.num_threads = threads;
  if (backend == BackendKind::Sim) {
    // Zero oversubscription penalty keeps virtual timing simple; the
    // timing-focused tests configure their own machines.
    config.machine = sim::MachineSpec::raspberry_pi_3bplus();
  }
  return config;
}

struct Case {
  BackendKind backend;
  int threads;
  Schedule schedule;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const BackendKind backend : {BackendKind::Host, BackendKind::Sim}) {
    for (const int threads : {1, 2, 3, 4, 7}) {
      for (const Schedule schedule :
           {Schedule::static_block(), Schedule::static_chunk(1),
            Schedule::static_chunk(3), Schedule::dynamic(1),
            Schedule::dynamic(4), Schedule::guided(1), Schedule::guided(2)}) {
        cases.push_back(Case{backend, threads, schedule});
      }
    }
  }
  return cases;
}

class ForLoopCoverageTest : public ::testing::TestWithParam<Case> {};

TEST_P(ForLoopCoverageTest, EveryIterationRunsExactlyOnce) {
  const Case c = GetParam();
  constexpr std::int64_t kN = 137;  // awkward size: not divisible by team
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(make_config(c.backend, c.threads), Range::upto(kN), c.schedule,
               [&](std::int64_t i) {
                 ASSERT_GE(i, 0);
                 ASSERT_LT(i, kN);
                 counts[static_cast<std::size_t>(i)].fetch_add(1);
               });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name =
      c.backend == BackendKind::Host ? "host" : "sim";
  name += "_t" + std::to_string(c.threads) + "_";
  std::string sched = c.schedule.to_string();
  for (char& ch : sched) {
    if (ch == ',') {
      ch = '_';
    }
  }
  return name + sched;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ForLoopCoverageTest,
                         ::testing::ValuesIn(all_cases()), case_name);

class BackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendTest, ThreadNumsAreDistinctAndInRange) {
  const int threads = 5;
  std::set<int> seen;
  parallel(make_config(GetParam(), threads), [&](TeamContext& tc) {
    EXPECT_EQ(tc.num_threads(), threads);
    tc.critical([&] { seen.insert(tc.thread_num()); });
  });
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST_P(BackendTest, MasterRunsOnlyOnThreadZero) {
  std::atomic<int> runs{0};
  std::atomic<int> master_tid{-1};
  parallel(make_config(GetParam(), 4), [&](TeamContext& tc) {
    tc.master([&] {
      runs.fetch_add(1);
      master_tid.store(tc.thread_num());
    });
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(master_tid.load(), 0);
}

TEST_P(BackendTest, SingleRunsExactlyOncePerCallSite) {
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  std::atomic<int> third{0};
  parallel(make_config(GetParam(), 4), [&](TeamContext& tc) {
    tc.single([&] { first.fetch_add(1); });
    tc.single([&] { second.fetch_add(1); });
    tc.single([&] { third.fetch_add(1); });
  });
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
  EXPECT_EQ(third.load(), 1);
}

TEST_P(BackendTest, CriticalSectionsAreMutuallyExclusive) {
  // Non-atomic shared counter: only correct if critical really excludes.
  long counter = 0;
  const int threads = 4;
  const int per_thread = 2000;
  parallel(make_config(GetParam(), threads), [&](TeamContext& tc) {
    for (int i = 0; i < per_thread; ++i) {
      tc.critical([&] { counter += 1; });
    }
  });
  EXPECT_EQ(counter, static_cast<long>(threads) * per_thread);
}

TEST_P(BackendTest, BarrierSeparatesPhases) {
  const int threads = 4;
  std::vector<std::atomic<int>> phase_one(static_cast<std::size_t>(threads));
  std::atomic<bool> all_seen{true};
  parallel(make_config(GetParam(), threads), [&](TeamContext& tc) {
    phase_one[static_cast<std::size_t>(tc.thread_num())].store(1);
    tc.barrier();
    for (int t = 0; t < threads; ++t) {
      if (phase_one[static_cast<std::size_t>(t)].load() != 1) {
        all_seen.store(false);
      }
    }
  });
  EXPECT_TRUE(all_seen.load());
}

TEST_P(BackendTest, ExceptionInBodyPropagates) {
  EXPECT_THROW(
      parallel(make_config(GetParam(), 4),
               [&](TeamContext& tc) {
                 if (tc.thread_num() == 2) {
                   throw std::runtime_error("member failed");
                 }
                 tc.barrier();  // others must not hang
               }),
      std::runtime_error);
}

TEST_P(BackendTest, SingleThreadTeamWorks) {
  int iterations = 0;
  parallel_for(make_config(GetParam(), 1), Range::upto(10),
               Schedule::dynamic(3),
               [&](std::int64_t) { ++iterations; });
  EXPECT_EQ(iterations, 10);
}

TEST_P(BackendTest, EmptyRangeLoopCompletes) {
  int iterations = 0;
  parallel_for(make_config(GetParam(), 4), Range::upto(0),
               Schedule::static_block(),
               [&](std::int64_t) { ++iterations; });
  EXPECT_EQ(iterations, 0);
}

TEST_P(BackendTest, NestedForLoopsInOneRegion) {
  constexpr std::int64_t kN = 50;
  std::vector<std::atomic<int>> first(kN);
  std::vector<std::atomic<int>> second(kN);
  parallel(make_config(GetParam(), 4), [&](TeamContext& tc) {
    for_loop(tc, Range::upto(kN), Schedule::dynamic(2), [&](std::int64_t i) {
      first[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for_loop(tc, Range::upto(kN), Schedule::static_chunk(4),
             [&](std::int64_t i) {
               second[static_cast<std::size_t>(i)].fetch_add(1);
             });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)].load(), 1);
    EXPECT_EQ(second[static_cast<std::size_t>(i)].load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(BackendKind::Host,
                                           BackendKind::Sim),
                         [](const auto& info) {
                           return info.param == BackendKind::Host ? "host"
                                                                  : "sim";
                         });

// --- Simulator-specific behaviour -------------------------------------------

TEST(SimParallelTest, ReportIsPresentAndPlausible) {
  const RunResult result = parallel_for(
      make_config(BackendKind::Sim, 4), Range::upto(1000),
      Schedule::static_block(), [](std::int64_t) {},
      CostModel::uniform(1e6));
  ASSERT_TRUE(result.sim_report.has_value());
  EXPECT_GT(result.sim_report->makespan_s, 0.0);
  EXPECT_EQ(result.elapsed_seconds(), result.sim_report->makespan_s);
}

TEST(SimParallelTest, HostResultHasNoSimReport) {
  const RunResult result =
      parallel(make_config(BackendKind::Host, 2), [](TeamContext&) {});
  EXPECT_FALSE(result.sim_report.has_value());
  EXPECT_GE(result.host_seconds, 0.0);
}

TEST(SimParallelTest, DynamicAssignmentIsDeterministic) {
  const auto run_once = [] {
    std::vector<std::pair<int, std::int64_t>> assignment;
    parallel(make_config(BackendKind::Sim, 4), [&](TeamContext& tc) {
      for_loop(tc, Range::upto(64), Schedule::dynamic(2),
               [&](std::int64_t i) {
                 assignment.emplace_back(tc.thread_num(), i);
               },
               CostModel::uniform(1e5));
    });
    return assignment;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimParallelTest, SpeedupOnFourCores) {
  const CostModel cost = CostModel::uniform(1e6);
  const auto time_with = [&](int threads) {
    return parallel_for(make_config(BackendKind::Sim, threads),
                        Range::upto(4000), Schedule::static_block(),
                        [](std::int64_t) {}, cost)
        .elapsed_seconds();
  };
  const double t1 = time_with(1);
  const double t4 = time_with(4);
  const double speedup = t1 / t4;
  EXPECT_GT(speedup, 3.5);
  EXPECT_LE(speedup, 4.05);
}

TEST(SimParallelTest, DynamicChunkOneCostsMoreThanStaticOnUniformWork) {
  // Assignment 3 lesson: per-chunk claim overhead makes schedule(dynamic,1)
  // slower than static when iterations are uniform.
  const CostModel cost = CostModel::uniform(1e5);
  const auto time_with = [&](Schedule schedule) {
    return parallel_for(make_config(BackendKind::Sim, 4), Range::upto(2000),
                        schedule, [](std::int64_t) {}, cost)
        .elapsed_seconds();
  };
  EXPECT_GT(time_with(Schedule::dynamic(1)),
            time_with(Schedule::static_block()));
}

TEST(SimParallelTest, DynamicBeatsStaticOnImbalancedWork) {
  // Triangular cost: later iterations are much heavier. A block-static
  // split gives the last thread most of the work; dynamic rebalances.
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return 1e4 * static_cast<double>(i); };
  const auto time_with = [&](Schedule schedule) {
    return parallel_for(make_config(BackendKind::Sim, 4), Range::upto(512),
                        schedule, [](std::int64_t) {}, cost)
        .elapsed_seconds();
  };
  EXPECT_LT(time_with(Schedule::dynamic(8)),
            time_with(Schedule::static_block()));
}

TEST(SimParallelTest, ExternalMachineIsReused) {
  sim::Machine machine(sim::MachineSpec::raspberry_pi_3bplus());
  ParallelConfig config = make_config(BackendKind::Sim, 2);
  config.external_machine = &machine;
  const RunResult first = parallel(config, [](TeamContext& tc) {
    tc.compute(1e6);
  });
  const RunResult second = parallel(config, [](TeamContext& tc) {
    tc.compute(1e6);
  });
  ASSERT_TRUE(first.sim_report.has_value());
  ASSERT_TRUE(second.sim_report.has_value());
  EXPECT_DOUBLE_EQ(first.sim_report->makespan_s,
                   second.sim_report->makespan_s);
}

TEST(SimParallelTest, MoreThreadsThanCoresNoGainOnFixedWork) {
  const double total_ops = 4e9;
  const auto time_with = [&](int threads) {
    return parallel_for(make_config(BackendKind::Sim, threads),
                        Range::upto(1000), Schedule::static_block(),
                        [](std::int64_t) {},
                        CostModel::uniform(total_ops / 1000.0))
        .elapsed_seconds();
  };
  const double t4 = time_with(4);
  const double t5 = time_with(5);
  EXPECT_GE(t5, t4 * 0.999);  // the 5th thread never helps
}

TEST(ParallelConfigTest, RejectsNonPositiveThreads) {
  ParallelConfig config = make_config(BackendKind::Host, 0);
  EXPECT_THROW(parallel(config, [](TeamContext&) {}),
               util::PreconditionError);
}

TEST(AbortableBarrierTest, AbortWakesWaiters) {
  AbortableBarrier barrier(2);
  std::atomic<bool> threw{false};
  std::jthread waiter([&] {
    try {
      barrier.arrive_and_wait();
    } catch (const TeamAborted&) {
      threw.store(true);
    }
  });
  // Give the waiter a moment to block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  barrier.abort();
  waiter.join();
  EXPECT_TRUE(threw.load());
}

TEST(AbortableBarrierTest, CyclicReuse) {
  AbortableBarrier barrier(2);
  std::atomic<int> rounds{0};
  std::jthread other([&] {
    for (int i = 0; i < 3; ++i) {
      barrier.arrive_and_wait();
      rounds.fetch_add(1);
    }
  });
  for (int i = 0; i < 3; ++i) {
    barrier.arrive_and_wait();
  }
  other.join();
  EXPECT_EQ(rounds.load(), 3);
}

}  // namespace
}  // namespace pblpar::rt
