// The runtime observability layer: chunk claims, barrier/critical events,
// single winners, RunProfile aggregates, and schema parity between the
// Host and Sim backends.

#include "rt/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/reduce.hpp"

namespace pblpar::rt {
namespace {

std::vector<ParallelConfig> both_backends(int threads) {
  return {ParallelConfig::host(threads), ParallelConfig::sim_pi(threads)};
}

/// Every iteration of [0, total) appears in exactly one chunk of loop 0.
void expect_full_coverage(const RunProfile& profile, std::int64_t total) {
  std::vector<ChunkEvent> chunks = profile.chunks;
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkEvent& a, const ChunkEvent& b) {
              return a.begin < b.begin;
            });
  std::int64_t covered = 0;
  for (const ChunkEvent& chunk : chunks) {
    EXPECT_EQ(chunk.begin, covered) << "gap or overlap in chunk coverage";
    EXPECT_GT(chunk.end, chunk.begin);
    covered = chunk.end;
  }
  EXPECT_EQ(covered, total);
}

TEST(TraceTest, DisabledByDefault) {
  for (const auto& config : both_backends(4)) {
    const RunResult result = parallel_for(
        config, Range::upto(100), Schedule::dynamic(4), [](std::int64_t) {});
    EXPECT_EQ(result.profile, nullptr);
  }
}

TEST(TraceTest, ChunksCoverLoopExactlyOnceOnBothBackends) {
  constexpr std::int64_t kN = 257;  // deliberately not a multiple of 4
  for (const auto& config : both_backends(4)) {
    for (const Schedule schedule :
         {Schedule::static_block(), Schedule::static_chunk(8),
          Schedule::dynamic(3), Schedule::guided(2)}) {
      const RunResult result =
          parallel_for(config.traced(), Range::upto(kN), schedule,
                       [](std::int64_t) {}, CostModel::uniform(100.0));
      ASSERT_NE(result.profile, nullptr) << schedule.to_string();
      expect_full_coverage(*result.profile, kN);
      ASSERT_EQ(result.profile->loops.size(), 1u);
      EXPECT_EQ(result.profile->loops[0].total, kN);
      EXPECT_EQ(result.profile->loops[0].schedule, schedule.to_string());
    }
  }
}

TEST(TraceTest, ClaimOrdersAreUniqueAndSorted) {
  const RunResult result = parallel_for(
      ParallelConfig::sim_pi(4).traced(), Range::upto(100),
      Schedule::dynamic(2), [](std::int64_t) {}, CostModel::uniform(1e3));
  ASSERT_NE(result.profile, nullptr);
  std::set<std::uint64_t> orders;
  std::uint64_t previous = 0;
  for (const ChunkEvent& chunk : result.profile->chunks) {
    EXPECT_GE(chunk.claim_order, previous);
    previous = chunk.claim_order;
    EXPECT_TRUE(orders.insert(chunk.claim_order).second)
        << "duplicate claim order " << chunk.claim_order;
  }
  EXPECT_EQ(orders.size(), result.profile->chunks.size());
}

TEST(TraceTest, ChunkTimestampsAreOrderedAndInsideRegion) {
  for (const auto& config : both_backends(4)) {
    const RunResult result = parallel_for(
        config.traced(), Range::upto(64), Schedule::guided(1),
        [](std::int64_t) {}, CostModel::uniform(1e3));
    ASSERT_NE(result.profile, nullptr);
    EXPECT_GT(result.profile->region_s, 0.0);
    for (const ChunkEvent& chunk : result.profile->chunks) {
      EXPECT_GE(chunk.start_s, 0.0);
      EXPECT_LE(chunk.start_s, chunk.end_s);
      // Host region_s is measured around thread creation too, so chunk
      // ends must stay inside it; same for virtual time by construction.
      EXPECT_LE(chunk.end_s, result.profile->region_s + 1e-9);
    }
  }
}

TEST(TraceTest, PerThreadAggregatesMatchEvents) {
  const RunResult result = parallel_for(
      ParallelConfig::sim_pi(4).traced(), Range::upto(200),
      Schedule::dynamic(5), [](std::int64_t) {}, CostModel::uniform(1e3));
  ASSERT_NE(result.profile, nullptr);
  const auto threads = result.profile->per_thread();
  ASSERT_EQ(threads.size(), 4u);
  std::int64_t iterations = 0;
  std::uint64_t chunks = 0;
  for (const ThreadProfile& thread : threads) {
    iterations += thread.iterations;
    chunks += thread.chunks;
    EXPECT_GE(thread.work_s, 0.0);
  }
  EXPECT_EQ(iterations, 200);
  EXPECT_EQ(chunks, result.profile->chunks.size());
}

TEST(TraceTest, ImplicitLoopBarrierIsRecordedPerThread) {
  for (const auto& config : both_backends(4)) {
    const RunResult result = parallel_for(
        config.traced(), Range::upto(64), Schedule::static_block(),
        [](std::int64_t) {}, CostModel::uniform(1e3));
    ASSERT_NE(result.profile, nullptr);
    EXPECT_EQ(result.profile->barriers.size(), 4u);
    const double fraction = result.profile->barrier_wait_fraction();
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
}

TEST(TraceTest, StaticImbalanceShowsUpInLoadImbalanceRatio) {
  // Triangular cost, static block: the last thread owns the heavy tail.
  CostModel cost;
  cost.ops_fn = [](std::int64_t i) { return 1e4 * (1.0 + double(i)); };
  const auto imbalance_with = [&](Schedule schedule) {
    const RunResult result =
        parallel_for(ParallelConfig::sim_pi(4).traced(), Range::upto(256),
                     schedule, [](std::int64_t) {}, cost);
    return result.profile->load_imbalance();
  };
  const double static_imbalance = imbalance_with(Schedule::static_block());
  const double dynamic_imbalance = imbalance_with(Schedule::dynamic(4));
  EXPECT_GT(static_imbalance, 1.4);
  EXPECT_LT(dynamic_imbalance, 1.2);
  EXPECT_GT(static_imbalance, dynamic_imbalance);
}

TEST(TraceTest, SimTraceIsDeterministic) {
  const auto run = [] {
    return parallel_for(ParallelConfig::sim_pi(4).traced(),
                        Range::upto(100), Schedule::dynamic(3),
                        [](std::int64_t) {}, CostModel::uniform(2e3));
  };
  const RunResult a = run();
  const RunResult b = run();
  ASSERT_NE(a.profile, nullptr);
  ASSERT_NE(b.profile, nullptr);
  EXPECT_EQ(a.profile->to_json(), b.profile->to_json());
}

TEST(TraceTest, CriticalSectionsAreRecordedWithContention) {
  for (const auto& config : both_backends(4)) {
    long shared = 0;
    const RunResult result = parallel(config.traced(), [&](TeamContext& tc) {
      for (int round = 0; round < 5; ++round) {
        tc.critical([&] { shared += 1; });
      }
      tc.barrier();
    });
    ASSERT_NE(result.profile, nullptr);
    EXPECT_EQ(shared, 20);
    EXPECT_EQ(result.profile->criticals.size(), 20u);
    for (const CriticalEvent& critical : result.profile->criticals) {
      EXPECT_LE(critical.request_s, critical.acquire_s + 1e-12);
      EXPECT_LE(critical.acquire_s, critical.release_s + 1e-12);
    }
    const auto threads = result.profile->per_thread();
    for (const ThreadProfile& thread : threads) {
      EXPECT_EQ(thread.criticals, 5u);
    }
  }
}

TEST(TraceTest, SingleWinnersAreRecordedOncePerConstruct) {
  for (const auto& config : both_backends(4)) {
    const RunResult result = parallel(config.traced(), [](TeamContext& tc) {
      tc.single([] {});
      tc.single([] {});
      tc.single([] {});
    });
    ASSERT_NE(result.profile, nullptr);
    ASSERT_EQ(result.profile->singles.size(), 3u);
    for (int id = 0; id < 3; ++id) {
      EXPECT_EQ(result.profile->singles[static_cast<std::size_t>(id)]
                    .single_id,
                id);
      const int winner = result.profile->singles[static_cast<std::size_t>(
                                                     id)]
                             .winner_tid;
      EXPECT_GE(winner, 0);
      EXPECT_LT(winner, 4);
    }
  }
}

TEST(TraceTest, SchemaParityBetweenBackends) {
  // Same program, both backends: same loops, same iteration coverage,
  // same JSON schema (only clock and timings differ).
  const auto run = [](const ParallelConfig& config) {
    return parallel_for(config.traced(), Range::upto(48),
                        Schedule::dynamic(4), [](std::int64_t) {},
                        CostModel::uniform(1e3));
  };
  const RunResult host = run(ParallelConfig::host(4));
  const RunResult sim = run(ParallelConfig::sim_pi(4));
  ASSERT_NE(host.profile, nullptr);
  ASSERT_NE(sim.profile, nullptr);
  EXPECT_EQ(host.profile->clock, TraceClock::HostSteady);
  EXPECT_EQ(sim.profile->clock, TraceClock::SimVirtual);
  expect_full_coverage(*host.profile, 48);
  expect_full_coverage(*sim.profile, 48);
  for (const char* key :
       {"\"clock\"", "\"num_threads\"", "\"region_s\"", "\"loops\"",
        "\"chunks\"", "\"barriers\"", "\"criticals\"", "\"singles\"",
        "\"per_thread\"", "\"load_imbalance\"",
        "\"barrier_wait_fraction\""}) {
    EXPECT_NE(host.profile->to_json().find(key), std::string::npos) << key;
    EXPECT_NE(sim.profile->to_json().find(key), std::string::npos) << key;
  }
  EXPECT_NE(host.profile->to_json().find("host-steady"), std::string::npos);
  EXPECT_NE(sim.profile->to_json().find("sim-virtual"), std::string::npos);
}

TEST(TraceTest, ExportsAndRenderersProduceOutput) {
  const RunResult result = parallel_for(
      ParallelConfig::sim_pi(4).traced(), Range::upto(32),
      Schedule::guided(1), [](std::int64_t) {}, CostModel::uniform(1e4));
  ASSERT_NE(result.profile, nullptr);
  const std::string csv = result.profile->to_csv();
  EXPECT_NE(csv.find("loop,order,thread"), std::string::npos);
  // One CSV line per chunk plus the header.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            result.profile->chunks.size() + 1);
  const std::string chart = result.profile->timeline_chart(0);
  EXPECT_NE(chart.find("t0 |"), std::string::npos);
  EXPECT_NE(chart.find("t3 |"), std::string::npos);
  EXPECT_NE(result.profile->summary().find("load imbalance"),
            std::string::npos);
  EXPECT_GT(result.profile->chunk_table(0).row_count(), 0u);
}

TEST(TraceTest, MultipleLoopsKeepDistinctIds) {
  const RunResult result = parallel(
      ParallelConfig::sim_pi(4).traced(), [](TeamContext& tc) {
        for_loop(tc, Range::upto(40), Schedule::dynamic(2),
                 [](std::int64_t) {}, CostModel::uniform(1e3));
        for_loop(tc, Range::upto(24), Schedule::static_block(),
                 [](std::int64_t) {}, CostModel::uniform(1e3));
      });
  ASSERT_NE(result.profile, nullptr);
  ASSERT_EQ(result.profile->loops.size(), 2u);
  EXPECT_EQ(result.profile->loops[0].loop_id, 0);
  EXPECT_EQ(result.profile->loops[0].total, 40);
  EXPECT_EQ(result.profile->loops[1].loop_id, 1);
  EXPECT_EQ(result.profile->loops[1].total, 24);
  std::int64_t loop0 = 0;
  std::int64_t loop1 = 0;
  for (const ChunkEvent& chunk : result.profile->chunks) {
    (chunk.loop_id == 0 ? loop0 : loop1) += chunk.iterations();
  }
  EXPECT_EQ(loop0, 40);
  EXPECT_EQ(loop1, 24);
}

TEST(TraceTest, SingleThreadProfileIsBalancedByDefinition) {
  const RunResult result = parallel_for(
      ParallelConfig::sim_pi(1).traced(), Range::upto(16),
      Schedule::dynamic(4), [](std::int64_t) {}, CostModel::uniform(1e3));
  ASSERT_NE(result.profile, nullptr);
  EXPECT_DOUBLE_EQ(result.profile->load_imbalance(), 1.0);
  expect_full_coverage(*result.profile, 16);
}

TEST(TraceTest, EmptyLoopYieldsEmptyChunkList) {
  const RunResult result = parallel_for(
      ParallelConfig::sim_pi(4).traced(), Range::upto(0),
      Schedule::static_block(), [](std::int64_t) {});
  ASSERT_NE(result.profile, nullptr);
  EXPECT_TRUE(result.profile->chunks.empty());
  EXPECT_DOUBLE_EQ(result.profile->load_imbalance(), 1.0);
  EXPECT_NE(result.profile->timeline_chart(0).find("no chunks"),
            std::string::npos);
}

}  // namespace
}  // namespace pblpar::rt
