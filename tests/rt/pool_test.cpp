// Persistent worker-pool coverage: host regions reuse one parked team
// across calls, so these tests pin down exactly the properties reuse
// could break — thread identity across regions, worksharing/barrier
// state re-arming, exception propagation leaving the pool usable, team
// width shrinking and regrowing, and the spawn fallback for nested or
// concurrent regions. The stress cases double as the TSan workload for
// the handoff protocol (this file runs under the rt ctest label, which
// the tsan preset includes).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/for_each.hpp"
#include "rt/host_backend.hpp"
#include "rt/parallel.hpp"
#include "rt/trace.hpp"

namespace pblpar::rt {
namespace {

/// Map of tid -> OS thread id observed inside one pooled region.
std::map<int, std::thread::id> region_thread_ids(int num_threads) {
  std::map<int, std::thread::id> ids;
  std::mutex mu;
  parallel(ParallelConfig::host(num_threads), [&](TeamContext& tc) {
    std::lock_guard guard(mu);
    ids[tc.thread_num()] = std::this_thread::get_id();
  });
  return ids;
}

TEST(TeamPoolTest, CallerIsAlwaysMemberZero) {
  for (const int threads : {1, 2, 4}) {
    const auto ids = region_thread_ids(threads);
    ASSERT_EQ(ids.size(), static_cast<std::size_t>(threads));
    EXPECT_EQ(ids.at(0), std::this_thread::get_id())
        << "pooled region must run tid 0 on the calling thread";
  }
}

TEST(TeamPoolTest, ThreadIdsAreStableAcrossBackToBackRegions) {
  const auto first = region_thread_ids(4);
  const auto second = region_thread_ids(4);
  const auto third = region_thread_ids(4);
  EXPECT_EQ(first, second)
      << "back-to-back pooled regions must reuse the same OS threads";
  EXPECT_EQ(first, third);
}

TEST(TeamPoolTest, ShrinkAndRegrowBetweenRegions) {
  std::thread::id wide_worker;
  for (const int threads : {4, 2, 8, 1, 3}) {
    const auto ids = region_thread_ids(threads);
    ASSERT_EQ(ids.size(), static_cast<std::size_t>(threads));
    std::set<std::thread::id> distinct;
    for (const auto& [tid, os_id] : ids) {
      EXPECT_GE(tid, 0);
      EXPECT_LT(tid, threads);
      distinct.insert(os_id);
    }
    EXPECT_EQ(distinct.size(), ids.size())
        << "every member must run on its own OS thread";
    if (threads == 8) {
      wide_worker = ids.at(7);
    }
    if (threads == 3) {
      // The workers parked by the shrink are the same ones a wider later
      // region would wake; meanwhile narrow regions must not touch them.
      EXPECT_EQ(ids.count(7), 0u);
    }
  }
  // Regrowing to the widest width again reuses the previously spawned
  // high-slot worker rather than spawning a new one.
  EXPECT_EQ(region_thread_ids(8).at(7), wide_worker);
}

TEST(TeamPoolTest, WorksharingStateResetsAcrossRegions) {
  // Same loop/single ids in consecutive regions: stale counters or
  // single-arrival flags from region 1 would starve region 2.
  for (int round = 0; round < 3; ++round) {
    std::atomic<std::int64_t> sum{0};
    std::atomic<int> single_runs{0};
    parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
      for_each(tc, Range::upto(100), Schedule::dynamic(1),
               [&](std::int64_t i) {
                 sum.fetch_add(i, std::memory_order_relaxed);
               });
      tc.single([&] { single_runs.fetch_add(1); });
      for_each(tc, Range::upto(64), Schedule::steal(), [&](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2 + 64 * 63 / 2) << "round " << round;
    EXPECT_EQ(single_runs.load(), 1) << "round " << round;
  }
}

TEST(TeamPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  // A member throwing aborts the region's barrier; a pooled team must
  // re-arm that barrier, so throw repeatedly and interleave healthy
  // regions to prove nothing stays poisoned.
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        parallel(ParallelConfig::host(4),
                 [&](TeamContext& tc) {
                   if (tc.thread_num() == 2) {
                     throw std::runtime_error("member 2 failed");
                   }
                   tc.barrier();  // released by the abort, not a hang
                 }),
        std::runtime_error);

    std::atomic<std::int64_t> sum{0};
    parallel(ParallelConfig::host(4), [&](TeamContext& tc) {
      for_each(tc, Range::upto(1000), Schedule::static_block(),
               [&](std::int64_t i) {
                 sum.fetch_add(i, std::memory_order_relaxed);
               });
    });
    EXPECT_EQ(sum.load(), 1000 * 999 / 2) << "round " << round;
  }
}

TEST(TeamPoolTest, NestedRegionFallsBackToSpawnedTeam) {
  // An inner host region started while the pool is busy with the outer
  // one must still work (on freshly spawned threads) from any member.
  std::atomic<std::int64_t> inner_total{0};
  parallel(ParallelConfig::host(2), [&](TeamContext& outer) {
    std::atomic<std::int64_t> inner_sum{0};
    parallel(ParallelConfig::host(2), [&](TeamContext& inner) {
      inner_sum.fetch_add(inner.thread_num() + 1,
                          std::memory_order_relaxed);
    });
    EXPECT_EQ(inner_sum.load(), 3);  // tids 0 and 1, each once
    inner_total.fetch_add(inner_sum.load(), std::memory_order_relaxed);
    outer.barrier();
  });
  EXPECT_EQ(inner_total.load(), 6);  // both outer members ran an inner region
}

TEST(TeamPoolTest, ConcurrentRegionsFromIndependentThreadsStayCorrect) {
  // Two plain std::threads each run a stream of host regions. Whichever
  // loses the race for the pool must transparently spawn; every region
  // must still compute the right answer.
  constexpr int kRegions = 25;
  std::atomic<int> wrong{0};
  auto stream = [&] {
    for (int r = 0; r < kRegions; ++r) {
      std::atomic<std::int64_t> sum{0};
      parallel(ParallelConfig::host(2), [&](TeamContext& tc) {
        for_each(tc, Range::upto(500), Schedule::dynamic(7),
                 [&](std::int64_t i) {
                   sum.fetch_add(i, std::memory_order_relaxed);
                 });
      });
      if (sum.load() != 500 * 499 / 2) {
        wrong.fetch_add(1);
      }
    }
  };
  std::thread a(stream);
  std::thread b(stream);
  a.join();
  b.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(TeamPoolTest, UnpooledConfigSpawnsAndStillWorks) {
  const ParallelConfig config = ParallelConfig::host(4).unpooled();
  EXPECT_FALSE(config.use_pool);
  std::vector<int> visits(4, 0);
  std::mutex mu;
  parallel(config, [&](TeamContext& tc) {
    std::lock_guard guard(mu);
    visits[static_cast<std::size_t>(tc.thread_num())] += 1;
  });
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1, 1}));
}

TEST(TeamPoolTest, WarmUpIsIdempotentAndRegionsRunAfterIt) {
  warm_up(ParallelConfig::host(4));
  warm_up(ParallelConfig::host(2));  // narrower: no-op
  warm_up(ParallelConfig::sim_pi(4));  // sim: no-op
  std::atomic<int> members{0};
  parallel(ParallelConfig::host(4),
           [&](TeamContext&) { members.fetch_add(1); });
  EXPECT_EQ(members.load(), 4);
}

TEST(TeamPoolTest, TracedPooledRegionProducesFullProfile) {
  const RunResult run = parallel_for(
      ParallelConfig::host(3).traced(), Range::upto(300),
      Schedule::dynamic(10), [](std::int64_t) {});
  ASSERT_NE(run.profile, nullptr);
  EXPECT_EQ(run.profile->num_threads, 3);
  EXPECT_EQ(run.profile->clock, TraceClock::HostSteady);
  std::int64_t iterations = 0;
  for (const ChunkEvent& chunk : run.profile->chunks) {
    EXPECT_EQ(chunk.iterations(), 10);
    iterations += chunk.iterations();
  }
  EXPECT_EQ(iterations, 300);
}

TEST(TeamPoolStressTest, ChurningWidthsSchedulesAndFailuresStaysExactlyOnce) {
  // The TSan workload: hammer the handoff protocol with width changes,
  // every schedule family, criticals, singles and periodic member
  // failures, checking exactly-once iteration delivery each region.
  constexpr std::int64_t kIterations = 257;
  const int widths[] = {1, 2, 4, 8, 3};
  const Schedule schedules[] = {Schedule::static_block(), Schedule::dynamic(1),
                                Schedule::guided(1), Schedule::steal()};
  for (int round = 0; round < 40; ++round) {
    const int threads = widths[round % 5];
    const Schedule schedule = schedules[round % 4];
    if (round % 7 == 6 && threads > 1) {
      EXPECT_THROW(parallel(ParallelConfig::host(threads),
                            [&](TeamContext& tc) {
                              if (tc.thread_num() == threads - 1) {
                                throw std::runtime_error("injected");
                              }
                              tc.barrier();
                            }),
                   std::runtime_error);
      continue;
    }
    std::vector<std::atomic<int>> counts(kIterations);
    for (auto& count : counts) {
      count.store(0, std::memory_order_relaxed);
    }
    std::atomic<int> singles{0};
    parallel(ParallelConfig::host(threads), [&](TeamContext& tc) {
      for_each(tc, Range::upto(kIterations), schedule, [&](std::int64_t i) {
        counts[static_cast<std::size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
      });
      tc.single([&] { singles.fetch_add(1); });
      tc.critical([&] {});
    });
    for (std::int64_t i = 0; i < kIterations; ++i) {
      ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1)
          << "iteration " << i << " in round " << round;
    }
    ASSERT_EQ(singles.load(), 1) << "round " << round;
  }
}

}  // namespace
}  // namespace pblpar::rt
