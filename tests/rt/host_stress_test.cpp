// Host-backend edge cases under real concurrency: the AbortableBarrier's
// abort/arrival races and the lock-free dynamic claim path under maximum
// contention.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/host_backend.hpp"
#include "rt/parallel.hpp"
#include "rt/trace.hpp"

namespace pblpar::rt {
namespace {

TEST(AbortableBarrierTest, AbortBeforeArrivalThrowsImmediately) {
  AbortableBarrier barrier(2);
  barrier.abort();
  EXPECT_THROW(barrier.arrive_and_wait(), TeamAborted);
}

TEST(AbortableBarrierTest, AbortIsStickyAcrossGenerations) {
  AbortableBarrier barrier(1);
  barrier.arrive_and_wait();  // single party: releases instantly
  barrier.arrive_and_wait();
  barrier.abort();
  EXPECT_THROW(barrier.arrive_and_wait(), TeamAborted);
  EXPECT_THROW(barrier.arrive_and_wait(), TeamAborted);
}

TEST(AbortableBarrierTest, AbortReleasesAWaiterAndTheLateArriverThrows) {
  // One waiter parked, then abort, then the "last party" arrives: both
  // must observe TeamAborted — the late arrival must not release the
  // barrier normally.
  AbortableBarrier barrier(2);
  std::atomic<int> aborted_count{0};
  std::atomic<bool> waiter_parked{false};
  std::thread waiter([&] {
    try {
      waiter_parked.store(true);
      barrier.arrive_and_wait();
    } catch (const TeamAborted&) {
      aborted_count.fetch_add(1);
    }
  });
  while (!waiter_parked.load()) {
    std::this_thread::yield();
  }
  barrier.abort();
  try {
    barrier.arrive_and_wait();
  } catch (const TeamAborted&) {
    aborted_count.fetch_add(1);
  }
  waiter.join();
  EXPECT_EQ(aborted_count.load(), 2);
}

TEST(AbortableBarrierTest, AbortRacingLastArrivalNeverHangsOrLosesAbort) {
  // The lost-abort edge: parties cycle through the barrier in a loop
  // while another thread calls abort() at a random point — possibly in
  // the same instant the last party releases a generation. Every member
  // must terminate with TeamAborted (no hang, no member looping forever
  // past a lost abort), on every iteration.
  constexpr int kParties = 4;
  constexpr int kRounds = 300;
  for (int round = 0; round < kRounds; ++round) {
    AbortableBarrier barrier(kParties);
    std::atomic<int> aborted_count{0};
    std::atomic<std::uint64_t> laps{0};
    std::vector<std::thread> members;
    members.reserve(kParties);
    for (int t = 0; t < kParties; ++t) {
      members.emplace_back([&] {
        try {
          for (;;) {
            barrier.arrive_and_wait();
            laps.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const TeamAborted&) {
          aborted_count.fetch_add(1);
        }
      });
    }
    // Let the team spin through a few generations, then abort mid-flight.
    while (laps.load(std::memory_order_relaxed) <
           static_cast<std::uint64_t>(kParties) * (round % 3)) {
      std::this_thread::yield();
    }
    barrier.abort();
    for (std::thread& member : members) {
      member.join();  // hangs here (test timeout) if an abort is lost
    }
    EXPECT_EQ(aborted_count.load(), kParties) << "round " << round;
  }
}

TEST(HostClaimTest, DynamicClaimUnderMaxContentionCoversEachIterationOnce) {
  // Chunk size 1 and twice as many threads as cores the container is
  // likely to have: every claim is a CAS fight. Each iteration must still
  // run exactly once.
  constexpr std::int64_t kN = 20000;
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<std::int64_t> executed{0};
  parallel_for(ParallelConfig::host(kThreads), Range::upto(kN),
               Schedule::dynamic(1), [&](std::int64_t i) {
                 counts[static_cast<std::size_t>(i)].fetch_add(1);
                 executed.fetch_add(1, std::memory_order_relaxed);
               });
  EXPECT_EQ(executed.load(), kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(HostClaimTest, GuidedClaimUnderContentionCoversEachIterationOnce) {
  constexpr std::int64_t kN = 20000;
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(ParallelConfig::host(kThreads), Range::upto(kN),
               Schedule::guided(1), [&](std::int64_t i) {
                 counts[static_cast<std::size_t>(i)].fetch_add(1);
               });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(HostClaimTest, TracedDynamicClaimStillCoversUnderContention) {
  // Same fight with the observability layer on: per-thread trace buffers
  // must not perturb the claim protocol, and the recorded chunks must
  // add up to the loop.
  constexpr std::int64_t kN = 5000;
  const RunResult result =
      parallel_for(ParallelConfig::host(8).traced(), Range::upto(kN),
                   Schedule::dynamic(1), [](std::int64_t) {});
  ASSERT_NE(result.profile, nullptr);
  std::int64_t recorded = 0;
  for (const auto& chunk : result.profile->chunks) {
    recorded += chunk.iterations();
  }
  EXPECT_EQ(recorded, kN);
}

}  // namespace
}  // namespace pblpar::rt
