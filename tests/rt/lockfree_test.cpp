// The lock-free core: the Chase–Lev span deque (owner/thief last-element
// race, exactly-once drains under contention), the hand-made RwLock
// (mutual exclusion, shared readers), and the wait-free live-snapshot
// path (RegionObserver sampling a running host region).

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/loops.hpp"
#include "rt/parallel.hpp"
#include "rt/rwlock.hpp"
#include "rt/steal_deque.hpp"
#include "rt/trace.hpp"

namespace pblpar::rt {
namespace {

// --- ChaseLevSpan, single-threaded ------------------------------------

TEST(ChaseLevSpanTest, OwnerDrainsItsSpanInAscendingOrder) {
  ChaseLevSpan deque;
  deque.install(StealSpan{3, 7});
  std::int64_t chunk_index = 0;
  for (std::int64_t expected = 3; expected < 7; ++expected) {
    ASSERT_TRUE(deque.take(&chunk_index));
    EXPECT_EQ(chunk_index, expected);
  }
  EXPECT_FALSE(deque.take(&chunk_index));
  EXPECT_FALSE(deque.take(&chunk_index));  // stays empty, lo restored
}

TEST(ChaseLevSpanTest, ThievesTakeFromTheTopAndReportEmpty) {
  ChaseLevSpan deque;
  deque.install(StealSpan{0, 3});
  std::int64_t chunk_index = 0;
  EXPECT_EQ(deque.steal(&chunk_index), StealOutcome::kGot);
  EXPECT_EQ(chunk_index, 2);
  EXPECT_EQ(deque.steal(&chunk_index), StealOutcome::kGot);
  EXPECT_EQ(chunk_index, 1);
  EXPECT_EQ(deque.steal(&chunk_index), StealOutcome::kGot);
  EXPECT_EQ(chunk_index, 0);
  EXPECT_EQ(deque.steal(&chunk_index), StealOutcome::kEmpty);
}

TEST(ChaseLevSpanTest, ClearEmptiesAndReinstallRearms) {
  ChaseLevSpan deque;
  deque.install(StealSpan{0, 5});
  deque.clear();
  std::int64_t chunk_index = 0;
  EXPECT_FALSE(deque.take(&chunk_index));
  EXPECT_EQ(deque.steal(&chunk_index), StealOutcome::kEmpty);
  deque.install(StealSpan{10, 12});
  ASSERT_TRUE(deque.take(&chunk_index));
  EXPECT_EQ(chunk_index, 10);
}

// --- ChaseLevSpan, the last-element race ------------------------------

/// One owner and two thieves fight over a deque holding exactly one
/// element, round after round: every round exactly one of them may win
/// it, never zero, never two. This is the race the algorithm's single
/// seq_cst fence exists for.
TEST(ChaseLevSpanRaceTest, LastElementIsClaimedExactlyOnce) {
  constexpr int kRounds = 2000;
  constexpr int kThieves = 2;
  ChaseLevSpan deque;
  std::atomic<int> claims{0};
  // All parties re-arm at the top of each round; the owner refills the
  // deque between the two barrier phases, while everyone is quiescent.
  std::barrier sync(1 + kThieves);

  std::thread owner([&] {
    for (int round = 0; round < kRounds; ++round) {
      deque.install(StealSpan{round, round + 1});
      sync.arrive_and_wait();  // release the round
      std::int64_t chunk_index = 0;
      if (deque.take(&chunk_index)) {
        EXPECT_EQ(chunk_index, round);
        claims.fetch_add(1, std::memory_order_relaxed);
      }
      sync.arrive_and_wait();  // everyone done claiming
      // EXPECT (not ASSERT): an early return here would strand the
      // thieves at the barrier and turn a failure into a hang.
      EXPECT_EQ(claims.load(std::memory_order_relaxed), 1)
          << "round " << round;
      claims.store(0, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        sync.arrive_and_wait();
        std::int64_t chunk_index = 0;
        for (;;) {
          const StealOutcome outcome = deque.steal(&chunk_index);
          if (outcome == StealOutcome::kGot) {
            EXPECT_EQ(chunk_index, round);
            claims.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (outcome == StealOutcome::kEmpty) {
            break;
          }
        }
        sync.arrive_and_wait();
      }
    });
  }
  owner.join();
  for (std::thread& thief : thieves) {
    thief.join();
  }
}

/// A full span drained by the owner and three thieves concurrently:
/// every chunk index claimed exactly once, none lost.
TEST(ChaseLevSpanRaceTest, ConcurrentDrainClaimsEveryChunkExactlyOnce) {
  constexpr std::int64_t kTotal = 5000;
  constexpr int kThieves = 3;
  ChaseLevSpan deque;
  deque.install(StealSpan{0, kTotal});
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kTotal));
  for (auto& hit : hits) {
    hit.store(0, std::memory_order_relaxed);
  }
  std::barrier start(1 + kThieves);

  std::thread owner([&] {
    start.arrive_and_wait();
    std::int64_t chunk_index = 0;
    while (deque.take(&chunk_index)) {
      hits[static_cast<std::size_t>(chunk_index)].fetch_add(
          1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      start.arrive_and_wait();
      std::int64_t chunk_index = 0;
      for (;;) {
        const StealOutcome outcome = deque.steal(&chunk_index);
        if (outcome == StealOutcome::kEmpty) {
          break;
        }
        if (outcome == StealOutcome::kGot) {
          hits[static_cast<std::size_t>(chunk_index)].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    });
  }
  owner.join();
  for (std::thread& thief : thieves) {
    thief.join();
  }
  for (std::int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "chunk " << i;
  }
}

// --- RwLock -----------------------------------------------------------

TEST(RwLockTest, WritersAreMutuallyExclusive) {
  constexpr int kWriters = 4;
  constexpr int kIncrements = 5000;
  RwLock lock;
  // Two plain (non-atomic) counters: only writer mutual exclusion keeps
  // them equal and un-torn. TSan would flag any overlap.
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        WriteLock guard(lock);
        ++a;
        ++b;
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(a, kWriters * kIncrements);
  EXPECT_EQ(b, kWriters * kIncrements);
}

TEST(RwLockTest, ReadersShareTheLock) {
  RwLock lock;
  std::atomic<int> inside{0};
  std::atomic<bool> both_inside{false};
  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      ReadLock guard(lock);
      inside.fetch_add(1);
      // Wait (bounded) for the other reader to also be inside the lock:
      // proof the read side admits concurrent holders.
      for (int spin = 0; spin < 200000; ++spin) {
        if (inside.load() == kReaders) {
          both_inside.store(true);
          break;
        }
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_TRUE(both_inside.load());
}

TEST(RwLockTest, ReadersAndWritersInterleaveConsistently) {
  RwLock lock;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ReadLock guard(lock);
      // Under the read lock no writer can be mid-update.
      EXPECT_EQ(a, b);
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < 5000; ++i) {
    WriteLock guard(lock);
    ++a;
    ++b;
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(a, 5000);
}

// --- RegionObserver / live snapshots ----------------------------------

TEST(RegionObserverTest, DetachedObserverReportsInactive) {
  RegionObserver observer;
  const LiveSnapshot snapshot = observer.snapshot();
  EXPECT_FALSE(snapshot.active);
  EXPECT_EQ(snapshot.num_threads, 0);
  EXPECT_TRUE(snapshot.threads.empty());
}

TEST(RegionObserverTest, SamplesARunningRegionWithoutCorruption) {
  const auto observer = std::make_shared<RegionObserver>();
  constexpr std::int64_t kTotal = 8000;
  std::atomic<bool> stop{false};
  std::atomic<bool> saw_active{false};
  std::atomic<bool> sampler_ok{true};

  std::thread sampler([&] {
    std::int64_t last_iterations = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const LiveSnapshot snapshot = observer->snapshot();
      if (!snapshot.active) {
        continue;
      }
      saw_active.store(true, std::memory_order_relaxed);
      const std::int64_t iterations = snapshot.total_iterations();
      // Counters are cumulative within the region: monotone, and never
      // beyond the loop's total. A torn read would break both.
      if (iterations < last_iterations || iterations > kTotal ||
          snapshot.total_chunks() >
              static_cast<std::uint64_t>(kTotal)) {
        sampler_ok.store(false, std::memory_order_relaxed);
      }
      last_iterations = iterations;
      std::this_thread::yield();
    }
  });

  // Re-run the (short) region until the sampler caught it live — on a
  // loaded host one region may finish before the sampler gets a slice.
  const ParallelConfig config = ParallelConfig::host(2).observed(observer);
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::atomic<std::int64_t> sum{0};
    parallel(config, [&](TeamContext& tc) {
      for_each(tc, Range{0, kTotal}, Schedule::dynamic(1),
               [&](std::int64_t i) {
                 sum.fetch_add(i % 3, std::memory_order_relaxed);
               });
    });
    if (saw_active.load(std::memory_order_relaxed)) {
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_TRUE(saw_active.load());
  EXPECT_TRUE(sampler_ok.load());
  // The region is over and the backend detached its recorder.
  EXPECT_FALSE(observer->snapshot().active);
}

TEST(RegionObserverTest, ObservedImpliesTracing) {
  const auto observer = std::make_shared<RegionObserver>();
  const ParallelConfig config = ParallelConfig::host(2).observed(observer);
  EXPECT_TRUE(config.record_trace);
  const RunResult result = parallel(config, [](TeamContext& tc) {
    for_each(tc, Range{0, 100}, Schedule::steal(), [](std::int64_t) {});
  });
  ASSERT_NE(result.profile, nullptr);
  std::int64_t iterations = 0;
  for (const ChunkEvent& chunk : result.profile->chunks) {
    iterations += chunk.iterations();
  }
  EXPECT_EQ(iterations, 100);
}

}  // namespace
}  // namespace pblpar::rt
