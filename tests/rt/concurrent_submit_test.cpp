#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/parallel.hpp"

namespace pblpar::rt {
namespace {

// The persistent host pool serves ONE region at a time (a single busy_
// exchange guards it); every concurrent region falls back to spawning a
// fresh team. A multi-tenant server hammers exactly that edge: many
// submitter threads opening regions at once. These tests drive it hard
// and check the fallback never duplicates, drops, or tears work.

TEST(ConcurrentSubmitTest, ManySubmittersEachIterationRunsExactlyOnce) {
  constexpr int kSubmitters = 8;
  constexpr int kRegionsPerSubmitter = 12;
  constexpr std::int64_t kIterations = 512;

  // One slot per (submitter, region, iteration); each must end at 1.
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(kSubmitters * kRegionsPerSubmitter) *
      static_cast<std::size_t>(kIterations));
  for (auto& h : hits) {
    h.store(0, std::memory_order_relaxed);
  }

  warm_up(ParallelConfig::host(2));  // make the pool exist, then fight for it
  const Schedule schedules[] = {Schedule::static_block(), Schedule::dynamic(8),
                                Schedule::steal()};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int r = 0; r < kRegionsPerSubmitter; ++r) {
        const std::int64_t base =
            (static_cast<std::int64_t>(s) * kRegionsPerSubmitter + r) *
            kIterations;
        const Schedule schedule = schedules[(s + r) % 3];
        parallel(ParallelConfig::host(2), [&](TeamContext& tc) {
          for_each(tc, Range::upto(kIterations), schedule, [&](std::int64_t i) {
            hits[static_cast<std::size_t>(base + i)].fetch_add(
                1, std::memory_order_relaxed);
          });
        });
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  std::int64_t total = 0;
  for (auto& h : hits) {
    const int count = h.load(std::memory_order_relaxed);
    ASSERT_EQ(count, 1);  // never dropped, never duplicated
    total += count;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kSubmitters) *
                       kRegionsPerSubmitter * kIterations);
}

TEST(ConcurrentSubmitTest, PoolStillWorksAfterTheContentionStorm) {
  // After submitters stop fighting over busy_, the pool must be reusable
  // by ordinary sequential regions (the storm must not leave it wedged).
  std::atomic<bool> stop{false};
  std::thread rival([&] {
    while (!stop.load(std::memory_order_acquire)) {
      parallel(ParallelConfig::host(2), [](TeamContext&) {});
    }
  });
  for (int burst = 0; burst < 50; ++burst) {
    std::atomic<std::int64_t> sum{0};
    parallel(ParallelConfig::host(2), [&](TeamContext& tc) {
      for_each(tc, Range::upto(256), Schedule::steal(),
               [&](std::int64_t i) { sum.fetch_add(i); });
    });
    ASSERT_EQ(sum.load(), 256 * 255 / 2);
  }
  stop.store(true, std::memory_order_release);
  rival.join();
  // Storm over: three quiet regions in a row, all on the (reused) pool.
  for (int quiet = 0; quiet < 3; ++quiet) {
    std::atomic<std::int64_t> sum{0};
    parallel(ParallelConfig::host(2), [&](TeamContext& tc) {
      for_each(tc, Range::upto(1000), Schedule::dynamic(16),
               [&](std::int64_t i) { sum.fetch_add(i); });
    });
    EXPECT_EQ(sum.load(), 1000 * 999 / 2);
  }
}

TEST(ConcurrentSubmitTest, ConcurrentTracedRegionsKeepProfilesSeparate) {
  constexpr int kSubmitters = 4;
  std::vector<std::shared_ptr<const RunProfile>> profiles(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      const RunResult result = parallel(
          ParallelConfig::host(2).traced(), [&](TeamContext& tc) {
            for_each(tc, Range::upto(128), Schedule::dynamic(4),
                     [](std::int64_t) {});
          });
      profiles[static_cast<std::size_t>(s)] = result.profile;
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  for (int s = 0; s < kSubmitters; ++s) {
    ASSERT_NE(profiles[static_cast<std::size_t>(s)], nullptr);
    for (int other = s + 1; other < kSubmitters; ++other) {
      EXPECT_NE(profiles[static_cast<std::size_t>(s)],
                profiles[static_cast<std::size_t>(other)]);
    }
  }
}

}  // namespace
}  // namespace pblpar::rt
