// Integration tests of the future-work experiment's claims: distributed
// trapezoid scaling on the simulated Pi cluster, and the ring-vs-tree
// allreduce crossover.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mp/sim_world.hpp"
#include "patternlets/patternlets.hpp"

namespace pblpar {
namespace {

double curve(double x) { return 4.0 / (1.0 + x * x); }

double cluster_trapezoid_seconds(int ranks, std::int64_t n,
                                 double* integral_out = nullptr) {
  const mp::ClusterReport report = mp::SimWorld::run(
      ranks, [&](mp::SimComm& comm) {
        const std::int64_t begin = comm.rank() * n / comm.size();
        const std::int64_t end = (comm.rank() + 1) * n / comm.size();
        const double h = 1.0 / static_cast<double>(n);
        double local = 0.0;
        for (std::int64_t i = begin; i < end; ++i) {
          const double x0 = h * static_cast<double>(i);
          local += 0.5 * h * (curve(x0) + curve(x0 + h));
        }
        comm.context().compute(10.0 * static_cast<double>(end - begin));
        const double total =
            comm.allreduce(local, [](double a, double b) { return a + b; });
        if (comm.rank() == 0 && integral_out != nullptr) {
          *integral_out = total;
        }
      });
  return report.machine.makespan_s;
}

TEST(FutureMpiIntegration, DistributedResultIsCorrect) {
  double integral = 0.0;
  cluster_trapezoid_seconds(4, 200000, &integral);
  EXPECT_NEAR(integral, M_PI, 1e-6);
}

TEST(FutureMpiIntegration, ClusterScalesPastOnePi) {
  constexpr std::int64_t kN = 4'000'000;
  const double shared_4threads =
      patternlets::trapezoid_integration(rt::ParallelConfig::sim_pi(4),
                                         &curve, 0.0, 1.0, kN)
          .run.elapsed_seconds();
  const double cluster8 = cluster_trapezoid_seconds(8, kN);
  const double cluster16 = cluster_trapezoid_seconds(16, kN);
  // Eight single-core nodes beat one quad-core Pi on this compute-bound
  // problem, and sixteen beat eight — the case for teaching MPI.
  EXPECT_LT(cluster8, shared_4threads);
  EXPECT_LT(cluster16, cluster8);
}

TEST(FutureMpiIntegration, LatencyBoundsSmallProblems) {
  // On a tiny problem, communication dominates: more nodes are slower.
  constexpr std::int64_t kTinyN = 2000;
  const double one = cluster_trapezoid_seconds(1, kTinyN);
  const double eight = cluster_trapezoid_seconds(8, kTinyN);
  EXPECT_GT(eight, one);
}

TEST(FutureMpiIntegration, RingVsTreeAllreduceCrossover) {
  const auto allreduce_seconds = [](std::size_t elements, bool ring) {
    const mp::ClusterReport report = mp::SimWorld::run(
        8, [&](mp::SimComm& comm) {
          std::vector<double> data(elements, 1.0);
          if (ring) {
            (void)comm.ring_allreduce_sum(std::move(data));
          } else {
            (void)comm.allreduce(
                data,
                [](std::vector<double> a, const std::vector<double>& b) {
                  for (std::size_t i = 0; i < a.size(); ++i) {
                    a[i] += b[i];
                  }
                  return a;
                });
          }
        });
    return report.machine.makespan_s;
  };
  // Latency-bound regime: the binomial tree (log2 n rounds) wins.
  EXPECT_LT(allreduce_seconds(64, false), allreduce_seconds(64, true));
  // Bandwidth-bound regime: the ring wins, by a lot.
  EXPECT_LT(allreduce_seconds(16384, true),
            allreduce_seconds(16384, false) * 0.6);
}

TEST(FutureMpiIntegration, RingAllreduceValuesMatchTree) {
  mp::SimWorld::run(4, [](mp::SimComm& comm) {
    std::vector<double> data(16);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(comm.rank() + 1) *
                static_cast<double>(i);
    }
    const std::vector<double> tree = comm.allreduce(
        data, [](std::vector<double> a, const std::vector<double>& b) {
          for (std::size_t i = 0; i < a.size(); ++i) {
            a[i] += b[i];
          }
          return a;
        });
    const std::vector<double> ring = comm.ring_allreduce_sum(data);
    ASSERT_EQ(tree.size(), ring.size());
    for (std::size_t i = 0; i < tree.size(); ++i) {
      EXPECT_DOUBLE_EQ(tree[i], ring[i]);
    }
  });
}

}  // namespace
}  // namespace pblpar
