#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/effect.hpp"
#include "stats/ranking.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::stats {
namespace {

// --- Cohen's d ---------------------------------------------------------------

TEST(CohensDTest, PaperTable2CourseEmphasis) {
  // Table 2: means 4.023068 -> 4.124365, sds 0.232416 / 0.172052,
  // SDpooled = 0.204474, d = 0.50.
  const double d =
      cohens_d_pooled(4.023068, 0.232416, 4.124365, 0.172052);
  // Exactly computed d is 0.4954; the paper rounds to 0.50 and labels it
  // 'medium'. The rounded value lands in the Medium band.
  EXPECT_NEAR(d, 0.50, 0.005);
  EXPECT_EQ(interpret_cohens_d(0.50), EffectMagnitude::Medium);
  EXPECT_EQ(interpret_cohens_d(d), EffectMagnitude::Small);
}

TEST(CohensDTest, PaperTable3PersonalGrowth) {
  // Table 3: means 3.81 -> 4.01, sds 0.262204 / 0.198497, d = 0.86.
  const double d = cohens_d_pooled(3.81, 0.262204, 4.01, 0.198497);
  EXPECT_NEAR(d, 0.86, 0.005);
  EXPECT_EQ(interpret_cohens_d(d), EffectMagnitude::Large);
}

TEST(CohensDTest, SignFollowsDirection) {
  EXPECT_GT(cohens_d_pooled(1.0, 1.0, 2.0, 1.0), 0.0);
  EXPECT_LT(cohens_d_pooled(2.0, 1.0, 1.0, 1.0), 0.0);
}

TEST(CohensDTest, InterpretationBoundaries) {
  EXPECT_EQ(interpret_cohens_d(0.1), EffectMagnitude::Trivial);
  EXPECT_EQ(interpret_cohens_d(0.2), EffectMagnitude::Small);
  EXPECT_EQ(interpret_cohens_d(0.5), EffectMagnitude::Medium);
  EXPECT_EQ(interpret_cohens_d(0.8), EffectMagnitude::Large);
  EXPECT_EQ(interpret_cohens_d(-0.9), EffectMagnitude::Large);
}

TEST(CohensDTest, FromSamples) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{3, 4, 5, 6, 7};
  // Means 3 and 5, both sd = sqrt(2.5): d = 2 / sqrt(2.5).
  EXPECT_NEAR(cohens_d(a, b), 2.0 / std::sqrt(2.5), 1e-12);
}

TEST(CohensDTest, RejectsDegenerateInput) {
  EXPECT_THROW(cohens_d_pooled(1.0, 0.0, 2.0, 0.0), util::PreconditionError);
  EXPECT_THROW(cohens_d_pooled(1.0, -1.0, 2.0, 1.0),
               util::PreconditionError);
}

TEST(CohensDTest, RejectsNonFinitePooledInputs) {
  const double nan = std::nan("");
  EXPECT_THROW(cohens_d_pooled(1.0, nan, 2.0, 1.0),
               util::PreconditionError);
  EXPECT_THROW(cohens_d_pooled(nan, 1.0, 2.0, 1.0),
               util::PreconditionError);
  EXPECT_THROW(cohens_d_pooled(1.0, 1.0, 2.0,
                               std::numeric_limits<double>::infinity()),
               util::PreconditionError);
}

TEST(CohensDTest, RejectsSingletonSamples) {
  // A single observation has no defined sample sd; it must not silently
  // flow into the pooled formula as sd = 0.
  const std::vector<double> singleton{4.0};
  const std::vector<double> pair{1.0, 2.0};
  EXPECT_THROW(cohens_d(singleton, pair), util::PreconditionError);
  EXPECT_THROW(cohens_d(pair, singleton), util::PreconditionError);
  EXPECT_THROW(cohens_d(singleton, singleton), util::PreconditionError);
  EXPECT_THROW(cohens_d({}, pair), util::PreconditionError);
}

TEST(EffectMagnitudeTest, Labels) {
  EXPECT_EQ(to_string(EffectMagnitude::Trivial), "trivial");
  EXPECT_EQ(to_string(EffectMagnitude::Small), "small");
  EXPECT_EQ(to_string(EffectMagnitude::Medium), "medium");
  EXPECT_EQ(to_string(EffectMagnitude::Large), "large");
}

// --- Pearson -----------------------------------------------------------------

TEST(PearsonTest, PerfectPositiveAndNegative) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y).r, 1.0, 1e-12);
  const std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z).r, -1.0, 1e-12);
}

TEST(PearsonTest, KnownHandExample) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6};
  const std::vector<double> y{2, 1, 4, 3, 6, 5};
  const PearsonResult result = pearson(x, y);
  EXPECT_NEAR(result.r, 0.8286, 1e-4);
  EXPECT_EQ(result.n, 6u);
  EXPECT_DOUBLE_EQ(result.df, 4.0);
  EXPECT_LT(result.p_two_tailed, 0.05);
}

TEST(PearsonTest, IndependentSamplesNearZero) {
  util::Rng rng(55);
  std::vector<double> x(2000);
  std::vector<double> y(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  const PearsonResult result = pearson(x, y);
  EXPECT_LT(std::fabs(result.r), 0.06);
}

TEST(PearsonTest, RecoversConstructedCorrelation) {
  // y = rho*x + sqrt(1-rho^2)*e gives corr(x, y) = rho in expectation.
  util::Rng rng(77);
  const double rho = 0.6;
  std::vector<double> x(5000);
  std::vector<double> y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rho * x[i] + std::sqrt(1.0 - rho * rho) * rng.normal();
  }
  EXPECT_NEAR(pearson(x, y).r, rho, 0.03);
}

TEST(PearsonTest, SignificanceMatchesTTransform) {
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> y{1.1, 2.3, 2.8, 4.5, 4.9, 6.2, 6.8, 8.4};
  const PearsonResult result = pearson(x, y);
  // t = r*sqrt(df/(1-r^2)) should reproduce p via the t distribution.
  EXPECT_GT(result.t, 0.0);
  EXPECT_LT(result.p_two_tailed, 0.001);
}

TEST(PearsonTest, Validation) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> short_y{1, 2};
  EXPECT_THROW(pearson(x, short_y), util::PreconditionError);
  const std::vector<double> constant{5, 5, 5};
  EXPECT_THROW(pearson(x, constant), util::PreconditionError);
}

TEST(GuilfordTest, BandsMatchThePaper) {
  // Table 4's narrative: 0.38 low, 0.47..0.68 moderate, 0.73 high.
  EXPECT_EQ(guilford_band(0.38), GuilfordBand::Low);
  EXPECT_EQ(guilford_band(0.47), GuilfordBand::Moderate);
  EXPECT_EQ(guilford_band(0.68), GuilfordBand::Moderate);
  EXPECT_EQ(guilford_band(0.73), GuilfordBand::High);
  EXPECT_EQ(guilford_band(0.1), GuilfordBand::Slight);
  EXPECT_EQ(guilford_band(-0.95), GuilfordBand::VeryHigh);
}

TEST(GuilfordTest, Labels) {
  EXPECT_EQ(to_string(GuilfordBand::Slight), "slight");
  EXPECT_EQ(to_string(GuilfordBand::Moderate), "moderate");
  EXPECT_EQ(to_string(GuilfordBand::VeryHigh), "very high");
}

// --- Composite score & ranking -----------------------------------------------

TEST(CompositeScoreTest, AveragesDefinitionAndComponentMean) {
  const std::vector<double> components{4.0, 5.0, 3.0};  // mean 4.0
  EXPECT_DOUBLE_EQ(composite_score(5.0, components), 4.5);
  EXPECT_THROW(composite_score(5.0, {}), util::PreconditionError);
}

TEST(RankingTest, DescendingWithStableTies) {
  const std::vector<std::pair<std::string, double>> items{
      {"Teamwork", 4.38},
      {"Implementation", 4.16},
      {"Problem Definition", 4.16},
      {"Evaluation", 3.66},
  };
  const auto ranked = rank_descending(items);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].name, "Teamwork");
  EXPECT_EQ(ranked[0].rank, 1);
  EXPECT_EQ(ranked[1].name, "Implementation");  // stable tie order
  EXPECT_EQ(ranked[2].name, "Problem Definition");
  EXPECT_EQ(ranked[3].name, "Evaluation");
  EXPECT_EQ(ranked[3].rank, 4);
}

TEST(RankingTest, MaxGapAcrossRankings) {
  const std::vector<std::pair<std::string, double>> emphasis_items{
      {"A", 4.0}, {"B", 3.5}};
  const std::vector<std::pair<std::string, double>> growth_items{
      {"B", 3.45}, {"A", 3.7}};
  const auto emphasis = rank_descending(emphasis_items);
  const auto growth = rank_descending(growth_items);
  EXPECT_NEAR(max_gap(emphasis, growth), 0.30, 1e-12);
}

TEST(RankingTest, MaxGapRequiresSameItems) {
  const auto a = rank_descending(
      std::vector<std::pair<std::string, double>>{{"A", 1.0}});
  const auto b = rank_descending(
      std::vector<std::pair<std::string, double>>{{"B", 1.0}});
  EXPECT_THROW(max_gap(a, b), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::stats
