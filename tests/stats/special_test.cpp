#include "stats/special.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace pblpar::stats {
namespace {

TEST(IbetaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(ibeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ibeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IbetaTest, SymmetricCaseAtHalf) {
  // I_{0.5}(a, a) = 0.5 by symmetry.
  for (const double a : {0.5, 1.0, 2.0, 7.5, 60.0}) {
    EXPECT_NEAR(ibeta(a, a, 0.5), 0.5, 1e-12) << "a=" << a;
  }
}

TEST(IbetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(ibeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IbetaTest, KnownValueAgainstClosedForm) {
  // I_x(2, 2) = x^2 (3 - 2x).
  for (const double x : {0.2, 0.4, 0.6, 0.8}) {
    EXPECT_NEAR(ibeta(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
  }
}

TEST(IbetaTest, ComplementIdentity) {
  EXPECT_NEAR(ibeta(3.0, 5.0, 0.3) + ibeta(5.0, 3.0, 0.7), 1.0, 1e-12);
}

TEST(IbetaTest, RejectsBadArguments) {
  EXPECT_THROW(ibeta(0.0, 1.0, 0.5), util::PreconditionError);
  EXPECT_THROW(ibeta(1.0, 1.0, 1.5), util::PreconditionError);
  EXPECT_THROW(ibeta(1.0, 1.0, -0.1), util::PreconditionError);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.644853627), 0.05, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.998650101968, 1e-9);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (const double p : {0.01, 0.05, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
  }
  EXPECT_THROW(normal_quantile(0.0), util::PreconditionError);
  EXPECT_THROW(normal_quantile(1.0), util::PreconditionError);
}

TEST(StudentTTest, CdfAtZeroIsHalf) {
  for (const double df : {1.0, 5.0, 30.0, 123.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, df), 0.5, 1e-12);
  }
}

TEST(StudentTTest, Df1IsCauchy) {
  // t with 1 df is Cauchy: CDF(1) = 3/4.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
}

TEST(StudentTTest, KnownTwoTailedPValues) {
  // Reference values from standard t tables.
  EXPECT_NEAR(student_t_two_tailed_p(2.228, 10.0), 0.05, 2e-4);
  EXPECT_NEAR(student_t_two_tailed_p(1.96, 1e6), 0.05, 1e-4);
  EXPECT_NEAR(student_t_two_tailed_p(2.0, 10.0), 0.07339, 1e-4);
}

TEST(StudentTTest, PaperTable1Statistics) {
  // The paper reports (t=-2.63, N=124) with p=0.039 and (t=-5.11, N=124)
  // with p=0.002. The correctly computed two-tailed p-values are much
  // smaller; EXPERIMENTS.md documents the discrepancy. Lock in our values.
  EXPECT_NEAR(student_t_two_tailed_p(-2.63, 123.0), 0.00966, 2e-4);
  EXPECT_LT(student_t_two_tailed_p(-5.11, 123.0), 2e-6);
}

TEST(StudentTTest, SymmetryInT) {
  EXPECT_NEAR(student_t_cdf(-1.7, 12.0) + student_t_cdf(1.7, 12.0), 1.0,
              1e-12);
  EXPECT_NEAR(student_t_two_tailed_p(-2.5, 40.0),
              student_t_two_tailed_p(2.5, 40.0), 1e-12);
}

TEST(StudentTTest, ConvergesToNormalForLargeDf) {
  EXPECT_NEAR(student_t_cdf(1.96, 1e7), normal_cdf(1.96), 1e-6);
}

TEST(StudentTTest, CriticalValueRoundTrips) {
  for (const double df : {5.0, 30.0, 123.0}) {
    const double critical = student_t_critical(0.05, df);
    EXPECT_NEAR(student_t_two_tailed_p(critical, df), 0.05, 1e-9)
        << "df=" << df;
  }
  // Classic value: t_{0.975, 10} = 2.2281.
  EXPECT_NEAR(student_t_critical(0.05, 10.0), 2.2281, 1e-3);
}

TEST(StudentTTest, RejectsNonPositiveDf) {
  EXPECT_THROW(student_t_cdf(1.0, 0.0), util::PreconditionError);
  EXPECT_THROW(student_t_two_tailed_p(1.0, -2.0), util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::stats
