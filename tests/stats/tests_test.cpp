#include "stats/tests.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::stats {
namespace {

TEST(SummaryTest, BasicMoments) {
  const std::vector<double> sample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.sd, 2.13809, 1e-5);  // sample sd (n-1)
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.standard_error(), s.sd / std::sqrt(8.0), 1e-12);
}

TEST(SummaryTest, SingleObservation) {
  const std::vector<double> sample{3.5};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.sd, 0.0);
}

TEST(SummaryTest, EmptySampleRejected) {
  EXPECT_THROW(summarize({}), util::PreconditionError);
  EXPECT_THROW(sample_sd(std::vector<double>{1.0}), util::PreconditionError);
}

TEST(PairedTTest, KnownHandComputedExample) {
  // Differences: +1, +2, +1, 0, +1  => mean 1.0, sd ~0.7071
  // t = 1.0 / (0.7071/sqrt(5)) = 3.1623, df = 4, p ~ 0.0341.
  const std::vector<double> before{10, 11, 9, 12, 10};
  const std::vector<double> after{11, 13, 10, 12, 11};
  const TTestResult result = paired_t_test(before, after);
  EXPECT_NEAR(result.mean_difference, 1.0, 1e-12);
  EXPECT_NEAR(result.t, 3.1623, 1e-4);
  EXPECT_DOUBLE_EQ(result.df, 4.0);
  EXPECT_NEAR(result.p_two_tailed, 0.0341, 1e-3);
  EXPECT_TRUE(result.significant());
}

TEST(PairedTTest, DirectionOfMeanDifference) {
  const std::vector<double> first{5, 5, 5, 6};
  const std::vector<double> second{4, 4, 4, 6};
  const TTestResult result = paired_t_test(first, second);
  EXPECT_LT(result.mean_difference, 0.0);
  EXPECT_LT(result.t, 0.0);
}

TEST(PairedTTest, Validation) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{1, 2};
  EXPECT_THROW(paired_t_test(a, b), util::PreconditionError);
  const std::vector<double> same{1, 1, 1};
  EXPECT_THROW(paired_t_test(same, same), util::PreconditionError);
}

TEST(PairedTTest, NullIsRarelyRejectedUnderNull) {
  // Property: with identical distributions, p < 0.05 about 5% of the time.
  util::Rng rng(99);
  int rejections = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> a(30);
    std::vector<double> b(30);
    for (int i = 0; i < 30; ++i) {
      a[static_cast<std::size_t>(i)] = rng.normal();
      b[static_cast<std::size_t>(i)] = rng.normal();
    }
    if (paired_t_test(a, b).significant(0.05)) {
      ++rejections;
    }
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.11);
}

TEST(WelchTTest, EqualSamplesGiveZeroT) {
  const std::vector<double> a{1, 2, 3, 4};
  const TTestResult result = welch_t_test(a, a);
  EXPECT_DOUBLE_EQ(result.t, 0.0);
  EXPECT_NEAR(result.p_two_tailed, 1.0, 1e-12);
}

TEST(WelchTTest, KnownExample) {
  // Classic Welch example with unequal variances.
  const std::vector<double> a{27.5, 21.0, 19.0, 23.6, 17.0, 17.9,
                              16.9, 20.1, 21.9, 22.6, 23.1, 19.6};
  const std::vector<double> b{27.1, 22.0, 20.8, 23.4, 23.4, 23.5,
                              25.8, 22.0, 24.8, 20.2, 21.9, 22.1};
  const TTestResult result = welch_t_test(a, b);
  EXPECT_GT(result.p_two_tailed, 0.0);
  EXPECT_LT(result.p_two_tailed, 1.0);
  EXPECT_GT(result.mean_difference, 0.0);  // b's mean is higher
  // Welch df must lie between min(n1,n2)-1 and n1+n2-2.
  EXPECT_GE(result.df, 11.0);
  EXPECT_LE(result.df, 22.0);
}

TEST(WelchTTest, DetectsObviousDifference) {
  util::Rng rng(7);
  std::vector<double> a(50);
  std::vector<double> b(50);
  for (int i = 0; i < 50; ++i) {
    a[static_cast<std::size_t>(i)] = rng.normal(0.0, 1.0);
    b[static_cast<std::size_t>(i)] = rng.normal(2.0, 1.0);
  }
  const TTestResult result = welch_t_test(a, b);
  EXPECT_TRUE(result.significant(0.001));
  EXPECT_GT(result.t, 5.0);
}

TEST(OneSampleTTest, AgainstHypothesizedMean) {
  const std::vector<double> sample{5.1, 4.9, 5.2, 5.0, 5.3, 4.8};
  const TTestResult at_5 = one_sample_t_test(sample, 5.05);
  EXPECT_FALSE(at_5.significant());
  const TTestResult at_4 = one_sample_t_test(sample, 4.0);
  EXPECT_TRUE(at_4.significant(0.001));
}

}  // namespace
}  // namespace pblpar::stats
