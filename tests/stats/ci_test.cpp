#include <gtest/gtest.h>

#include <vector>

#include "stats/tests.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::stats {
namespace {

TEST(ConfidenceIntervalTest, CoversTheObservedMeanDifference) {
  const std::vector<double> before{10, 11, 9, 12, 10};
  const std::vector<double> after{11, 13, 10, 12, 11};
  const ConfidenceInterval ci = paired_mean_difference_ci(before, after);
  EXPECT_TRUE(ci.contains(1.0));  // the observed mean difference
  EXPECT_LT(ci.lower, ci.upper);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.95);
}

TEST(ConfidenceIntervalTest, AgreesWithTheTTestDecision) {
  // p < 0.05 iff the 95% CI excludes zero — verify both directions.
  const std::vector<double> before{10, 11, 9, 12, 10};
  const std::vector<double> shifted{11, 13, 10, 12, 11};
  EXPECT_TRUE(paired_t_test(before, shifted).significant(0.05));
  EXPECT_FALSE(paired_mean_difference_ci(before, shifted).contains(0.0));

  const std::vector<double> noisy{10.5, 10.4, 9.6, 11.5, 10.0};
  EXPECT_FALSE(paired_t_test(before, noisy).significant(0.05));
  EXPECT_TRUE(paired_mean_difference_ci(before, noisy).contains(0.0));
}

TEST(ConfidenceIntervalTest, HigherConfidenceIsWider) {
  const std::vector<double> before{10, 11, 9, 12, 10, 13, 8, 9};
  const std::vector<double> after{11, 13, 10, 12, 11, 12, 10, 10};
  const ConfidenceInterval ci90 =
      paired_mean_difference_ci(before, after, 0.90);
  const ConfidenceInterval ci99 =
      paired_mean_difference_ci(before, after, 0.99);
  EXPECT_GT(ci99.width(), ci90.width());
}

TEST(ConfidenceIntervalTest, CoverageIsNominal) {
  // Property: the 95% CI for a true difference of 0.5 should contain 0.5
  // about 95% of the time.
  util::Rng rng(321);
  int covered = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a(20);
    std::vector<double> b(20);
    for (int i = 0; i < 20; ++i) {
      a[static_cast<std::size_t>(i)] = rng.normal();
      b[static_cast<std::size_t>(i)] =
          a[static_cast<std::size_t>(i)] + 0.5 + rng.normal(0.0, 0.8);
    }
    if (paired_mean_difference_ci(a, b).contains(0.5)) {
      ++covered;
    }
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.91);
  EXPECT_LT(rate, 0.99);
}

TEST(ConfidenceIntervalTest, Validation) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> short_b{1, 2};
  EXPECT_THROW(paired_mean_difference_ci(a, short_b),
               util::PreconditionError);
  const std::vector<double> b{2, 3, 4};
  EXPECT_THROW(paired_mean_difference_ci(a, b, 0.0),
               util::PreconditionError);
  EXPECT_THROW(paired_mean_difference_ci(a, b, 1.0),
               util::PreconditionError);
}

}  // namespace
}  // namespace pblpar::stats
