#pragma once

#include <string>
#include <vector>

namespace pblpar::sbc {

/// Flynn's taxonomy (the Assignment 3 question: "Classify parallel
/// computers based on Flynn's taxonomy").
enum class FlynnClass { SISD, SIMD, MISD, MIMD };

std::string to_string(FlynnClass flynn);
std::string describe(FlynnClass flynn);

/// Classify a machine by its instruction- and data-stream counts.
FlynnClass classify_streams(int instruction_streams, int data_streams);

/// Parallel computer memory architectures (Assignment 3: "List and
/// briefly describe the types of Parallel Computer Memory Architecture.
/// What type is used by OpenMP and why?").
enum class MemoryArchitecture { SharedUMA, SharedNUMA, Distributed, Hybrid };

std::string to_string(MemoryArchitecture architecture);
std::string describe(MemoryArchitecture architecture);

/// The architecture OpenMP targets (shared memory: every thread
/// addresses one memory space, so no explicit messaging is needed).
MemoryArchitecture openmp_architecture();

/// Parallel programming models surveyed in the course readings.
enum class ProgrammingModel {
  SharedMemory,   // threads over one address space (OpenMP, C++11 threads)
  MessagePassing, // explicit sends/receives (MPI)
  DataParallel,   // same op over partitioned data (MapReduce, GPU)
  Hybrid,         // MPI across nodes + threads within a node
};

std::string to_string(ProgrammingModel model);
std::string describe(ProgrammingModel model);

/// One hardware block of a single-board computer.
struct Component {
  std::string name;
  std::string detail;
  bool on_soc = false;  // integrated on the System-on-Chip die?
};

/// A single-board computer description (Assignment 2: "Identify the
/// components on the Raspberry PI B+. How many cores...").
struct BoardDescription {
  std::string name;
  std::string soc;
  int cores = 0;
  double clock_ghz = 0.0;
  std::string isa;
  int ram_mb = 0;
  bool is_system_on_chip = false;
  std::vector<Component> components;

  FlynnClass flynn() const {
    // A multicore CPU runs independent instruction streams on
    // independent data: MIMD.
    return classify_streams(cores, cores);
  }
};

/// The classroom board: Raspberry Pi 3 Model B+ (the "B+" of the paper's
/// assignments — 4 cores, ARM Cortex-A53, BCM2837B0 SoC).
const BoardDescription& raspberry_pi_3bplus();

/// Advantages of a System-on-Chip over discrete CPU/GPU/RAM (Assignment
/// 3's question), as teachable bullet points.
const std::vector<std::string>& soc_advantages();

/// One row of the ARM (RISC) vs Intel x86 (CISC) comparison the course
/// draws ("data movement, instruction encoding, immediate value
/// representation, and memory layout").
struct IsaComparisonRow {
  std::string aspect;
  std::string arm;   // the Pi's ARM (RISC) behaviour
  std::string x86;   // the CSc 3210 lecture ISA (CISC)
};

const std::vector<IsaComparisonRow>& isa_comparison();

}  // namespace pblpar::sbc
