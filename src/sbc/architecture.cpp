#include "sbc/architecture.hpp"

#include "util/error.hpp"

namespace pblpar::sbc {

std::string to_string(FlynnClass flynn) {
  switch (flynn) {
    case FlynnClass::SISD:
      return "SISD";
    case FlynnClass::SIMD:
      return "SIMD";
    case FlynnClass::MISD:
      return "MISD";
    case FlynnClass::MIMD:
      return "MIMD";
  }
  return "?";
}

std::string describe(FlynnClass flynn) {
  switch (flynn) {
    case FlynnClass::SISD:
      return "Single instruction stream, single data stream: a classic "
             "serial uniprocessor.";
    case FlynnClass::SIMD:
      return "Single instruction stream, multiple data streams: one "
             "operation applied to many elements at once (vector units, "
             "GPUs).";
    case FlynnClass::MISD:
      return "Multiple instruction streams, single data stream: rare in "
             "practice (fault-tolerant redundant pipelines).";
    case FlynnClass::MIMD:
      return "Multiple instruction streams, multiple data streams: "
             "independent cores on independent data — every multicore "
             "CPU, including the Raspberry Pi's.";
  }
  return "?";
}

FlynnClass classify_streams(int instruction_streams, int data_streams) {
  util::require(instruction_streams >= 1 && data_streams >= 1,
                "classify_streams: stream counts must be positive");
  if (instruction_streams == 1) {
    return data_streams == 1 ? FlynnClass::SISD : FlynnClass::SIMD;
  }
  return data_streams == 1 ? FlynnClass::MISD : FlynnClass::MIMD;
}

std::string to_string(MemoryArchitecture architecture) {
  switch (architecture) {
    case MemoryArchitecture::SharedUMA:
      return "Shared memory (UMA)";
    case MemoryArchitecture::SharedNUMA:
      return "Shared memory (NUMA)";
    case MemoryArchitecture::Distributed:
      return "Distributed memory";
    case MemoryArchitecture::Hybrid:
      return "Hybrid distributed-shared";
  }
  return "?";
}

std::string describe(MemoryArchitecture architecture) {
  switch (architecture) {
    case MemoryArchitecture::SharedUMA:
      return "All processors address one memory with uniform access time "
             "— the Raspberry Pi's four cores share one bank.";
    case MemoryArchitecture::SharedNUMA:
      return "One address space, but access time depends on which node "
             "owns the memory.";
    case MemoryArchitecture::Distributed:
      return "Each processor has private memory; data moves via explicit "
             "messages (MPI clusters).";
    case MemoryArchitecture::Hybrid:
      return "Message passing between nodes, shared memory within a node "
             "— most modern clusters.";
  }
  return "?";
}

MemoryArchitecture openmp_architecture() {
  return MemoryArchitecture::SharedUMA;
}

std::string to_string(ProgrammingModel model) {
  switch (model) {
    case ProgrammingModel::SharedMemory:
      return "Shared memory / threads";
    case ProgrammingModel::MessagePassing:
      return "Message passing";
    case ProgrammingModel::DataParallel:
      return "Data parallel";
    case ProgrammingModel::Hybrid:
      return "Hybrid";
  }
  return "?";
}

std::string describe(ProgrammingModel model) {
  switch (model) {
    case ProgrammingModel::SharedMemory:
      return "Threads cooperate through one address space; "
             "synchronization guards shared data (OpenMP, C++11 "
             "threads).";
    case ProgrammingModel::MessagePassing:
      return "Processes own their data and exchange explicit messages "
             "(MPI); no data races by construction, communication is "
             "visible cost.";
    case ProgrammingModel::DataParallel:
      return "The same operation maps over partitioned data; the "
             "framework handles distribution (MapReduce, GPU kernels).";
    case ProgrammingModel::Hybrid:
      return "MPI across nodes combined with threads inside each node.";
  }
  return "?";
}

const BoardDescription& raspberry_pi_3bplus() {
  static const BoardDescription kBoard = [] {
    BoardDescription board;
    board.name = "Raspberry Pi 3 Model B+";
    board.soc = "Broadcom BCM2837B0";
    board.cores = 4;
    board.clock_ghz = 1.4;
    board.isa = "ARMv8-A (Cortex-A53)";
    board.ram_mb = 1024;
    board.is_system_on_chip = true;
    board.components = {
        {"CPU", "4x ARM Cortex-A53 @ 1.4 GHz", true},
        {"GPU", "Broadcom VideoCore IV", true},
        {"RAM", "1 GB LPDDR2 (package-on-package, shared with GPU)", true},
        {"Storage", "MicroSD card slot (boots RASPBIAN)", false},
        {"Ethernet", "Gigabit over USB 2.0 (~300 Mb/s effective)", false},
        {"Wireless", "2.4/5 GHz 802.11ac + Bluetooth 4.2", false},
        {"USB", "4x USB 2.0 ports", false},
        {"HDMI", "Full-size HDMI (connects the classroom monitor)", false},
        {"GPIO", "40-pin header", false},
    };
    return board;
  }();
  return kBoard;
}

const std::vector<std::string>& soc_advantages() {
  static const std::vector<std::string> kAdvantages = {
      "Integration: CPU, GPU and memory controller share one die/package, "
      "so the whole computer fits a credit card.",
      "Cost: one part to fabricate and place instead of several discrete "
      "chips — the Pi kit costs $59.",
      "Power and heat: short on-die interconnects draw far less energy "
      "than board-level buses, enabling fanless mobile devices.",
      "Latency: components communicate across millimetres, not a "
      "motherboard.",
      "Reliability: fewer sockets and traces to fail.",
  };
  return kAdvantages;
}

const std::vector<IsaComparisonRow>& isa_comparison() {
  static const std::vector<IsaComparisonRow> kRows = {
      {"Design philosophy", "RISC: small set of simple, fixed-latency "
                            "instructions",
       "CISC: large set including multi-step memory-operand instructions"},
      {"Data movement",
       "Load/store architecture: only LDR/STR touch memory; arithmetic is "
       "register-to-register",
       "Most instructions may take a memory operand (e.g. ADD from "
       "memory)"},
      {"Instruction encoding", "Fixed 4-byte encodings (A32/A64)",
       "Variable 1-15 byte encodings"},
      {"Immediate values",
       "Limited-width immediates (e.g. 12-bit, or 8-bit rotated); large "
       "constants built in pieces or loaded",
       "Full-width (up to 32/64-bit) immediates embedded in the "
       "instruction"},
      {"Registers", "31 general-purpose registers (A64)",
       "16 general-purpose registers (x86-64)"},
      {"Memory layout/addressing",
       "Simple base+offset / indexed addressing; alignment preferred",
       "Rich addressing modes (base + index*scale + displacement); "
       "unaligned access routine"},
  };
  return kRows;
}

}  // namespace pblpar::sbc
