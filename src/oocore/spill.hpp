#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/wire.hpp"
#include "oocore/io.hpp"

namespace pblpar::oocore {

/// Approximate heap footprint of a value, used by the spillable shuffle's
/// per-worker byte accounting. It intentionally counts payload bytes, not
/// allocator slack — the budget is a target, not a hard rlimit, and the
/// map phase checks it after every record so the overshoot is bounded by
/// one record's emissions.
template <class T>
inline std::size_t approx_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "approx_bytes: add an overload for this type");
  (void)value;
  return sizeof(T);
}

inline std::size_t approx_bytes(const std::string& value) {
  return sizeof(std::string) + value.size();
}

template <class U>
inline std::size_t approx_bytes(const std::vector<U>& values) {
  std::size_t total = sizeof(std::vector<U>);
  for (const U& value : values) {
    total += approx_bytes(value);
  }
  return total;
}

template <class A, class B>
inline std::size_t approx_bytes(const std::pair<A, B>& value) {
  return approx_bytes(value.first) + approx_bytes(value.second);
}

/// Record-stream writer over a SpillWriter. Trivially-copyable records go
/// down raw (fixed-size, no framing); everything else is length-prefixed
/// cluster wire (the same byte-deterministic codec the distributed
/// MapReduce driver ships shuffle blobs with), so a run file's bytes are
/// a pure function of the record sequence.
template <class T>
class RunWriter {
 public:
  explicit RunWriter(SpillWriter& sink) : sink_(&sink) {}

  void push(const T& value) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      sink_->write(&value, sizeof(T));
    } else {
      cluster::Writer writer;
      cluster::WireCodec<T>::write(writer, value);
      const std::vector<std::byte> bytes = writer.take();
      const auto length = static_cast<std::uint32_t>(bytes.size());
      sink_->write(&length, sizeof(length));
      sink_->write(bytes.data(), bytes.size());
    }
    ++records_;
  }

  std::int64_t records() const { return records_; }

 private:
  SpillWriter* sink_;
  std::int64_t records_ = 0;
};

/// Record-stream reader matching RunWriter's framing, templated on the
/// byte source (SpillReader or DoubleBufferedReader) so the per-record
/// read inlines instead of paying a virtual call.
template <class T, class Source = SpillReader>
class RunReader {
 public:
  explicit RunReader(Source& source) : source_(&source) {}

  /// False at end of stream; throws IoError on a torn record.
  bool pull(T* out) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      const std::size_t got = source_->read(out, sizeof(T));
      if (got == 0) {
        return false;
      }
      if (got != sizeof(T)) {
        throw IoError("oocore: torn record at the end of a run file");
      }
      return true;
    } else {
      std::uint32_t length = 0;
      const std::size_t got = source_->read(&length, sizeof(length));
      if (got == 0) {
        return false;
      }
      if (got != sizeof(length)) {
        throw IoError("oocore: torn record header in a run file");
      }
      scratch_.resize(length);
      if (source_->read(scratch_.data(), length) != length) {
        throw IoError("oocore: torn record payload in a run file");
      }
      cluster::Reader reader(scratch_);
      *out = cluster::WireCodec<T>::read(reader);
      if (!reader.done()) {
        throw IoError("oocore: trailing bytes inside a run record");
      }
      return true;
    }
  }

 private:
  Source* source_;
  std::vector<std::byte> scratch_;
};

}  // namespace pblpar::oocore
