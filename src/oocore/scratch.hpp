#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace pblpar::oocore {

/// RAII scratch directory for spill files. Creating one makes a uniquely
/// named directory under the system temp dir; the destructor removes the
/// directory and everything inside it, best-effort, no matter how the
/// scope exits — normal return, thrown exception, or a cancel/deadline
/// drain that abandoned half-written runs. External sort and the
/// spillable shuffle both anchor their temp files here so an aborted job
/// can never leak disk.
class ScratchDir {
 public:
  /// Creates `<tmp>/<prefix>-<pid>-<counter>`. Throws std::runtime_error
  /// if the directory cannot be created.
  explicit ScratchDir(std::string_view prefix = "pblpar-oocore");

  /// Removes the directory recursively; errors are swallowed (there is
  /// nothing useful to do with them during unwinding).
  ~ScratchDir();

  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::filesystem::path& path() const { return path_; }

  /// Returns a fresh unique path inside the directory, e.g.
  /// `<dir>/run-000017`. Does not create the file.
  std::filesystem::path next_path(std::string_view stem);

  /// Number of entries currently inside the directory (files the scope
  /// would leak if the guard were not here). Used by the tmpdir-hygiene
  /// test assertions.
  std::size_t live_entries() const;

 private:
  std::filesystem::path path_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace pblpar::oocore
