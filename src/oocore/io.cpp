#include "oocore/io.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace pblpar::oocore {

namespace {

bool valid_probability(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

std::uint64_t chaos_stream_seed(std::uint64_t seed, std::uint64_t salt) {
  util::SplitMix64 mix(seed ^ (salt * 0x9E3779B97F4A7C15ULL));
  return mix.next();
}

}  // namespace

void IoChaos::validate() const {
  util::require(valid_probability(short_write_probability),
                "IoChaos: short_write_probability must be in [0, 1]");
  util::require(valid_probability(slow_read_probability),
                "IoChaos: slow_read_probability must be in [0, 1]");
  util::require(std::isfinite(slow_read_delay_s) && slow_read_delay_s >= 0.0,
                "IoChaos: slow_read_delay_s must be finite and >= 0");
}

RawFile::RawFile(const std::filesystem::path& path, Mode mode,
                 const IoChaos& chaos, std::uint64_t salt)
    : chaos_(chaos),
      chaos_reads_(chaos.slow_read_probability > 0.0),
      chaos_writes_(chaos.short_write_probability > 0.0),
      rng_(chaos_stream_seed(chaos.seed, salt)) {
  chaos_.validate();
  file_ = std::fopen(path.string().c_str(),
                     mode == Mode::Read ? "rb" : "wb");
  if (file_ == nullptr) {
    throw IoError("oocore: cannot open " + path.string() +
                  (mode == Mode::Read ? " for reading" : " for writing"));
  }
}

RawFile::~RawFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void RawFile::seek(std::uint64_t offset) {
#if defined(_WIN32)
  const int rc = _fseeki64(file_, static_cast<long long>(offset), SEEK_SET);
#else
  const int rc = std::fseek(file_, static_cast<long>(offset), SEEK_SET);
#endif
  if (rc != 0) {
    throw IoError("oocore: seek failed");
  }
}

std::size_t RawFile::read(void* out, std::size_t count) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t off = 0;
  while (off < count) {
    if (chaos_reads_ && rng_.bernoulli(chaos_.slow_read_probability)) {
      // Injected slow read: the disk "went away" for a moment. A merge
      // over DoubleBufferedReaders should ride this out of its other
      // buffers instead of stalling the compare loop.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(chaos_.slow_read_delay_s));
    }
    const std::size_t got = std::fread(dst + off, 1, count - off, file_);
    if (got == 0) {
      if (std::ferror(file_) != 0) {
        throw IoError("oocore: read failed");
      }
      break;  // end of file
    }
    off += got;
  }
  bytes_read_ += static_cast<std::int64_t>(off);
  return off;
}

void RawFile::write(const void* data, std::size_t count) {
  const auto* src = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < count) {
    std::size_t want = count - off;
    if (chaos_writes_ && want > 1 &&
        rng_.bernoulli(chaos_.short_write_probability)) {
      // Injected short write: hand the stream only part of the buffer,
      // as a signal-interrupted or quota-throttled write() would. The
      // loop must pick up exactly where the short write stopped.
      want = (want + 1) / 2;
    }
    const std::size_t put = std::fwrite(src + off, 1, want, file_);
    if (put < want && std::ferror(file_) != 0) {
      throw IoError("oocore: write failed");
    }
    if (put == 0) {
      throw IoError("oocore: write made no progress");
    }
    off += put;
  }
  bytes_written_ += static_cast<std::int64_t>(count);
}

void RawFile::close() {
  if (file_ == nullptr) {
    return;
  }
  const bool flush_ok = std::fflush(file_) == 0;
  const bool error = std::ferror(file_) != 0;
  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!flush_ok || error || !close_ok) {
    throw IoError("oocore: closing a spill file failed (disk full?)");
  }
}

SpillWriter::SpillWriter(const std::filesystem::path& path,
                         std::size_t buffer_bytes, const IoChaos& chaos,
                         std::uint64_t salt)
    : file_(path, RawFile::Mode::Write, chaos, salt) {
  util::require(buffer_bytes > 0, "SpillWriter: buffer_bytes must be > 0");
  buffer_.resize(buffer_bytes);
}

void SpillWriter::write(const void* data, std::size_t count) {
  const auto* src = static_cast<const std::byte*>(data);
  total_bytes_ += static_cast<std::int64_t>(count);
  // Large blocks skip the staging copy once the buffer is drained.
  if (count >= buffer_.size()) {
    flush();
    file_.write(src, count);
    return;
  }
  while (count > 0) {
    const std::size_t room = buffer_.size() - fill_;
    const std::size_t take = std::min(count, room);
    std::memcpy(buffer_.data() + fill_, src, take);
    fill_ += take;
    src += take;
    count -= take;
    if (fill_ == buffer_.size()) {
      flush();
    }
  }
}

void SpillWriter::flush() {
  if (fill_ > 0) {
    file_.write(buffer_.data(), fill_);
    fill_ = 0;
  }
}

void SpillWriter::close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  flush();
  file_.close();
}

SpillReader::SpillReader(const std::filesystem::path& path,
                         std::size_t buffer_bytes, const IoChaos& chaos,
                         std::uint64_t salt, std::uint64_t offset,
                         std::uint64_t limit)
    : file_(path, RawFile::Mode::Read, chaos, salt), remaining_(limit) {
  util::require(buffer_bytes > 0, "SpillReader: buffer_bytes must be > 0");
  buffer_.resize(buffer_bytes);
  if (offset != 0) {
    file_.seek(offset);
  }
}

std::size_t SpillReader::read(void* out, std::size_t count) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t off = 0;
  while (off < count) {
    if (pos_ == len_) {
      std::uint64_t want = buffer_.size();
      if (remaining_ != npos) {
        want = std::min<std::uint64_t>(want, remaining_);
      }
      if (want == 0) {
        break;  // window exhausted
      }
      len_ = file_.read(buffer_.data(), static_cast<std::size_t>(want));
      pos_ = 0;
      if (remaining_ != npos) {
        remaining_ -= len_;
      }
      if (len_ == 0) {
        break;  // end of file
      }
    }
    const std::size_t take = std::min(count - off, len_ - pos_);
    std::memcpy(dst + off, buffer_.data() + pos_, take);
    pos_ += take;
    off += take;
  }
  total_bytes_ += static_cast<std::int64_t>(off);
  return off;
}

Prefetcher::~Prefetcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    ++version_;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Prefetcher::attach(DoubleBufferedReader* reader) {
  std::lock_guard<std::mutex> lock(mu_);
  readers_.push_back(reader);
  ++version_;
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { loop(); });
  }
  cv_.notify_one();
}

void Prefetcher::detach(DoubleBufferedReader* reader) {
  std::lock_guard<std::mutex> lock(mu_);
  readers_.erase(std::remove(readers_.begin(), readers_.end(), reader),
                 readers_.end());
  ++version_;
  // Holding mu_ here means the loop is not mid-fill on `reader`: fills
  // happen with mu_ held, so after detach returns the reader may die.
}

void Prefetcher::poke() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++version_;
  }
  cv_.notify_one();
}

void Prefetcher::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_) {
      return;
    }
    const std::uint64_t seen = version_;
    bool filled = false;
    for (DoubleBufferedReader* reader : readers_) {
      // try_fill runs the fread with mu_ held — that serializes fills
      // (one disk, one prefetch stream) and makes detach() a safe
      // "not currently filling you" barrier. Consumers never take mu_;
      // they only poke() after releasing their own lock.
      filled = reader->try_fill() || filled;
    }
    if (!filled) {
      cv_.wait(lock, [&] { return stop_ || version_ != seen; });
    }
  }
}

DoubleBufferedReader::DoubleBufferedReader(const std::filesystem::path& path,
                                           std::size_t buffer_bytes,
                                           Prefetcher& prefetcher,
                                           const IoChaos& chaos,
                                           std::uint64_t salt)
    : file_(path, RawFile::Mode::Read, chaos, salt), prefetcher_(&prefetcher) {
  util::require(buffer_bytes > 0,
                "DoubleBufferedReader: buffer_bytes must be > 0");
  front_.resize(buffer_bytes);
  back_.resize(buffer_bytes);
  prefetcher_->attach(this);
}

DoubleBufferedReader::~DoubleBufferedReader() { prefetcher_->detach(this); }

bool DoubleBufferedReader::try_fill() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (back_ready_ || file_done_) {
      return false;
    }
  }
  // Between the check above and the store below only this (single)
  // prefetch thread touches back_: the consumer needs back_ready_ true
  // before it may swap, and only this thread sets it.
  const std::size_t got = file_.read(back_.data(), back_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    back_len_ = got;
    back_ready_ = true;
    if (got < back_.size()) {
      file_done_ = true;
    }
  }
  ready_cv_.notify_one();
  return true;
}

std::size_t DoubleBufferedReader::read(void* out, std::size_t count) {
  auto* dst = static_cast<std::byte*>(out);
  std::size_t off = 0;
  while (off < count) {
    if (front_pos_ < front_len_) {
      const std::size_t take = std::min(count - off, front_len_ - front_pos_);
      std::memcpy(dst + off, front_.data() + front_pos_, take);
      front_pos_ += take;
      off += take;
      continue;
    }
    if (exhausted_) {
      break;
    }
    bool refill = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_cv_.wait(lock, [&] { return back_ready_ || file_done_; });
      if (back_ready_) {
        front_.swap(back_);
        front_len_ = back_len_;
        front_pos_ = 0;
        back_ready_ = false;
        if (front_len_ == 0) {
          exhausted_ = true;  // final block was empty
        }
        refill = !file_done_;
      } else {
        exhausted_ = true;  // file done and nothing buffered
      }
    }
    if (refill) {
      prefetcher_->poke();
    }
  }
  return off;
}

}  // namespace pblpar::oocore
