#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "oocore/io.hpp"
#include "oocore/merge.hpp"
#include "oocore/scratch.hpp"
#include "oocore/spill.hpp"
#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::oocore {

/// Derive a byte budget as `multiplier x dataset_bytes`, rejecting the
/// degenerate multipliers loudly (zero, negative, NaN and infinity all
/// silently disable spilling or allocate the world otherwise).
inline std::size_t budget_from_multiplier(double multiplier,
                                          std::int64_t dataset_bytes) {
  util::require(std::isfinite(multiplier) && multiplier > 0.0,
                "budget_from_multiplier: multiplier must be finite and > 0 "
                "(zero, negative and non-finite multipliers are rejected)");
  util::require(dataset_bytes > 0,
                "budget_from_multiplier: dataset_bytes must be > 0");
  const double bytes = multiplier * static_cast<double>(dataset_bytes);
  return static_cast<std::size_t>(std::max(bytes, 1.0));
}

/// Configuration of one external sort.
struct ExtSortOptions {
  /// Total working-set target across all workers. Run formation sizes
  /// each worker's run buffer at budget/threads; the merge derives its
  /// fan-in so concurrent groups' read-ahead buffers stay under it too.
  std::size_t memory_budget_bytes = std::size_t{64} << 20;

  int threads = 0;  // 0 = rt::hardware_threads()

  /// Size of each buffered-I/O block (spill writers, merge read-ahead).
  std::size_t io_buffer_bytes = std::size_t{256} << 10;

  /// Cap on merge fan-in; 0 derives it from the budget. >= 2 otherwise.
  int max_fan_in = 0;

  IoChaos chaos;            // seeded short-write / slow-read injection
  rt::CancelToken cancel;   // polled at chunk claims and inside merges
  double deadline_s = 0.0;  // 0 = none; enforced on the parallel regions
  bool record_trace = false;

  /// Scratch directory for run files; nullptr = the sort creates (and on
  /// scope exit removes) a private one. Passing your own lets several
  /// sorts share cleanup, and lets tests assert the cancel-drain leaves
  /// nothing behind once the guard dies.
  ScratchDir* scratch = nullptr;

  void validate() const {
    util::require(memory_budget_bytes >= (std::size_t{64} << 10),
                  "ExtSortOptions: memory_budget_bytes must be >= 64 KiB");
    util::require(io_buffer_bytes >= 4096,
                  "ExtSortOptions: io_buffer_bytes must be >= 4 KiB");
    util::require(io_buffer_bytes * 4 <= memory_budget_bytes,
                  "ExtSortOptions: budget must cover at least 4 I/O buffers");
    util::require(max_fan_in == 0 || max_fan_in >= 2,
                  "ExtSortOptions: max_fan_in must be 0 (auto) or >= 2");
    util::require(threads >= 0,
                  "ExtSortOptions: threads must be >= 0 (0 = hardware)");
    util::require(std::isfinite(deadline_s) && deadline_s >= 0.0,
                  "ExtSortOptions: deadline_s must be finite and >= 0");
    chaos.validate();
  }
};

/// What one external sort did.
struct ExtSortReport {
  std::int64_t records = 0;
  bool external = false;  // false: fit in budget, sorted in memory
  int initial_runs = 0;
  int merge_passes = 0;
  int merge_fan_in = 0;            // fan-in the merge passes used
  std::int64_t spilled_bytes = 0;  // run + intermediate bytes written

  /// Trace profiles of the parallel regions (run formation first, then
  /// one per merge pass), when record_trace was set.
  std::vector<std::shared_ptr<const rt::RunProfile>> profiles;
};

namespace detail {

/// Cooperative cancellation inside a long merge drain: the loop polls the
/// token between records (chunk claims only poll between groups, and a
/// final merge is one group). Throwing rt::Cancelled out of the body
/// rides the backend's error path: the team aborts, peers drain, the
/// caller sees rt::Cancelled — and the ScratchDir guard unlinks every
/// half-written run on unwind.
inline void poll_merge_cancel(const rt::CancelToken& token) {
  if (token.valid() && token.cancel_requested()) {
    throw rt::Cancelled(rt::CancelCause::Token, {});
  }
}

}  // namespace detail

/// Parallel external sort of a raw record file (a packed array of
/// trivially-copyable T), producing the same packed format at `output`.
///
/// Phase 1 (run formation): the input splits into budget/threads-sized
/// segments; workers on the persistent rt::TeamPool claim segments by
/// work stealing, sort each in memory, and spill sorted runs to scratch
/// with buffered, chaos-aware I/O. Phase 2 (merge): runs merge k ways
/// through a loser tree, each run streamed through a double-buffered
/// read-ahead fed by a shared prefetch thread; when the budget cannot
/// hold every run's buffers at once, intermediate passes cut the run
/// count by the fan-in until one pass writes `output`.
///
/// Peak memory stays O(memory_budget_bytes) regardless of file size; the
/// scratch disk high-water mark is at most ~2x the input (live runs plus
/// the pass being written).
template <class T, class Less = std::less<T>>
ExtSortReport sort_file(const std::filesystem::path& input,
                        const std::filesystem::path& output,
                        const ExtSortOptions& opts, Less less = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "oocore::sort_file sorts packed arrays of trivially-"
                "copyable records");
  opts.validate();
  namespace fs = std::filesystem;

  const std::uint64_t input_bytes = fs::file_size(input);
  util::require(input_bytes % sizeof(T) == 0,
                "sort_file: input size is not a whole number of records");
  const auto records = static_cast<std::int64_t>(input_bytes / sizeof(T));

  ExtSortReport report;
  report.records = records;

  const int threads = opts.threads > 0 ? opts.threads : rt::hardware_threads();

  if (input_bytes <= opts.memory_budget_bytes) {
    // The whole file fits the budget: one in-memory run, no scratch.
    std::vector<T> data(static_cast<std::size_t>(records));
    {
      RawFile in(input, RawFile::Mode::Read, opts.chaos, /*salt=*/1);
      if (in.read(data.data(), static_cast<std::size_t>(input_bytes)) !=
          input_bytes) {
        throw IoError("sort_file: input truncated while reading");
      }
    }
    std::sort(data.begin(), data.end(), less);
    SpillWriter out(output, opts.io_buffer_bytes, opts.chaos, /*salt=*/2);
    out.write(data.data(), static_cast<std::size_t>(input_bytes));
    out.close();
    report.initial_runs = records > 0 ? 1 : 0;
    return report;
  }

  report.external = true;
  std::optional<ScratchDir> own_scratch;
  ScratchDir* scratch = opts.scratch;
  if (scratch == nullptr) {
    own_scratch.emplace("pblpar-extsort");
    scratch = &*own_scratch;
  }

  rt::ParallelConfig config = rt::ParallelConfig::host(threads);
  if (opts.record_trace) {
    config = config.traced();
  }
  if (opts.cancel.valid()) {
    config = config.cancellable(opts.cancel);
  }
  if (opts.deadline_s > 0.0) {
    config = config.deadline(opts.deadline_s);
  }

  // --- Phase 1: parallel run formation over the steal schedule. Each
  // worker's live memory is one run buffer (budget/threads) plus one
  // write buffer, so the phase as a whole respects the budget.
  std::int64_t run_records = static_cast<std::int64_t>(
      opts.memory_budget_bytes / static_cast<std::size_t>(threads) /
      sizeof(T));
  run_records = std::max<std::int64_t>(run_records, 1);
  const std::int64_t num_runs = (records + run_records - 1) / run_records;

  std::vector<fs::path> runs(static_cast<std::size_t>(num_runs));
  for (auto& run : runs) {
    run = scratch->next_path("run");
  }
  std::atomic<std::int64_t> spilled_bytes{0};

  rt::RunResult formed = rt::parallel(config, [&](rt::TeamContext& tc) {
    std::vector<T> buffer;
    rt::for_each(
        tc, rt::Range::upto(num_runs), rt::Schedule::steal(),
        [&](std::int64_t r) {
          const std::int64_t begin = r * run_records;
          const std::int64_t count = std::min(run_records, records - begin);
          const auto bytes = static_cast<std::size_t>(count) * sizeof(T);
          buffer.resize(static_cast<std::size_t>(count));
          {
            RawFile in(input, RawFile::Mode::Read, opts.chaos,
                       /*salt=*/static_cast<std::uint64_t>(3 + 2 * r));
            in.seek(static_cast<std::uint64_t>(begin) * sizeof(T));
            if (in.read(buffer.data(), bytes) != bytes) {
              throw IoError("sort_file: input truncated while forming runs");
            }
          }
          std::sort(buffer.begin(), buffer.end(), less);
          const double start_s = tc.trace_now();
          SpillWriter out(runs[static_cast<std::size_t>(r)],
                          opts.io_buffer_bytes, opts.chaos,
                          /*salt=*/static_cast<std::uint64_t>(4 + 2 * r));
          out.write(buffer.data(), bytes);
          out.close();
          spilled_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                                  std::memory_order_relaxed);
          if (rt::TraceRecorder* tracer = tc.tracer()) {
            tracer->record_spill(tc.thread_num(), "extsort-run", count,
                                 static_cast<std::int64_t>(bytes), start_s,
                                 tc.trace_now());
          }
        });
  });
  if (formed.profile != nullptr) {
    report.profiles.push_back(formed.profile);
  }
  report.initial_runs = static_cast<int>(num_runs);

  // --- Phase 2: k-way merge passes. Fan-in is what the budget can
  // buffer: every concurrently-merging group holds 2 read-ahead blocks
  // per input run, and up to `threads` groups run at once.
  int fan_in = opts.max_fan_in;
  if (fan_in == 0) {
    fan_in = static_cast<int>(opts.memory_budget_bytes /
                              (2 * opts.io_buffer_bytes *
                               static_cast<std::size_t>(threads)));
  }
  fan_in = std::clamp(fan_in, 2, 128);
  report.merge_fan_in = fan_in;

  std::vector<fs::path> current = std::move(runs);
  std::uint64_t merge_salt = 1'000'000;
  while (current.size() > 1) {
    ++report.merge_passes;
    const bool final_pass = current.size() <= static_cast<std::size_t>(fan_in);
    const std::size_t groups =
        (current.size() + static_cast<std::size_t>(fan_in) - 1) /
        static_cast<std::size_t>(fan_in);
    std::vector<fs::path> next(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      next[g] = final_pass ? output : scratch->next_path("merge");
    }

    Prefetcher prefetcher;  // one read-ahead thread serves the whole pass
    rt::RunResult merged = rt::parallel(config, [&](rt::TeamContext& tc) {
      rt::for_each(
          tc, rt::Range::upto(static_cast<std::int64_t>(groups)),
          rt::Schedule::dynamic(1), [&](std::int64_t g) {
            const std::size_t first =
                static_cast<std::size_t>(g) * static_cast<std::size_t>(fan_in);
            const std::size_t last =
                std::min(first + static_cast<std::size_t>(fan_in),
                         current.size());
            const double start_s = tc.trace_now();

            using Source = RunReader<T, DoubleBufferedReader>;
            std::vector<std::unique_ptr<DoubleBufferedReader>> files;
            std::vector<std::unique_ptr<Source>> sources;
            std::vector<Source*> source_ptrs;
            std::int64_t in_bytes = 0;
            for (std::size_t i = first; i < last; ++i) {
              in_bytes += static_cast<std::int64_t>(
                  fs::file_size(current[i]));
              files.push_back(std::make_unique<DoubleBufferedReader>(
                  current[i], opts.io_buffer_bytes, prefetcher, opts.chaos,
                  merge_salt + i));
              sources.push_back(std::make_unique<Source>(*files.back()));
              source_ptrs.push_back(sources.back().get());
            }
            LoserTree<T, Source, Less> tree(std::move(source_ptrs), less);

            SpillWriter out(next[static_cast<std::size_t>(g)],
                            opts.io_buffer_bytes, opts.chaos,
                            merge_salt + 500'000 +
                                static_cast<std::uint64_t>(g));
            T record;
            std::int64_t produced = 0;
            while (tree.pop(&record)) {
              out.write(&record, sizeof(T));
              if ((++produced & 0xFFFF) == 0) {
                detail::poll_merge_cancel(opts.cancel);
              }
            }
            out.close();
            if (!final_pass) {
              spilled_bytes.fetch_add(produced *
                                          static_cast<std::int64_t>(sizeof(T)),
                                      std::memory_order_relaxed);
            }
            if (rt::TraceRecorder* tracer = tc.tracer()) {
              tracer->record_merge(tc.thread_num(),
                                   static_cast<int>(last - first), produced,
                                   in_bytes, start_s, tc.trace_now());
            }
          });
    });
    if (merged.profile != nullptr) {
      report.profiles.push_back(merged.profile);
    }
    // Drop the consumed inputs so scratch disk peaks at ~2x the dataset
    // instead of accumulating every pass.
    for (const fs::path& used : current) {
      std::error_code ec;
      fs::remove(used, ec);
    }
    current = std::move(next);
    merge_salt += 1'000'000;
  }

  if (current.size() == 1 && current.front() != output) {
    // A single initial run (tiny file or huge budget/thread count):
    // nothing to merge, so the run *is* the result. copy+remove instead
    // of rename — scratch usually lives on another filesystem.
    fs::copy_file(current.front(), output,
                  fs::copy_options::overwrite_existing);
    std::error_code ec;
    fs::remove(current.front(), ec);
  }
  report.spilled_bytes =
      spilled_bytes.load(std::memory_order_relaxed);
  return report;
}

/// Convenience for callers holding a vector: sorts in place when it fits
/// the budget, otherwise stages it through a file external sort and reads
/// the result back (the caller's vector is the only O(n) memory; the sort
/// itself stays within the budget).
template <class T, class Less = std::less<T>>
ExtSortReport sort_values(std::vector<T>& values, const ExtSortOptions& opts,
                          Less less = {}) {
  static_assert(std::is_trivially_copyable_v<T>,
                "oocore::sort_values sorts trivially-copyable records");
  opts.validate();
  const std::uint64_t bytes = values.size() * sizeof(T);
  if (bytes <= opts.memory_budget_bytes) {
    std::sort(values.begin(), values.end(), less);
    ExtSortReport report;
    report.records = static_cast<std::int64_t>(values.size());
    report.initial_runs = values.empty() ? 0 : 1;
    return report;
  }

  namespace fs = std::filesystem;
  ScratchDir staging("pblpar-extsort-staging");
  const fs::path in_path = staging.next_path("input");
  const fs::path out_path = staging.next_path("output");
  {
    SpillWriter writer(in_path, opts.io_buffer_bytes);
    writer.write(values.data(), static_cast<std::size_t>(bytes));
    writer.close();
  }
  const std::size_t count = values.size();
  std::vector<T>().swap(values);  // release: the point of going external

  ExtSortReport report = sort_file<T>(in_path, out_path, opts, less);
  {
    std::error_code ec;
    fs::remove(in_path, ec);
  }
  values.resize(count);
  SpillReader reader(out_path, opts.io_buffer_bytes);
  if (reader.read(values.data(), static_cast<std::size_t>(bytes)) != bytes) {
    throw IoError("sort_values: sorted output truncated");
  }
  return report;
}

}  // namespace pblpar::oocore
