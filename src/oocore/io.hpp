#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace pblpar::oocore {

/// A spill file could not be opened, read or written (disk full, unlinked
/// scratch dir, torn record). Unlike rt::Cancelled this is a hard error:
/// the job cannot produce its output.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Seeded I/O fault injection for the out-of-core tier, the disk-side
/// sibling of rt::ChaosPlan: short writes exercise the writer's retry
/// loop, slow reads stall a reader the way a cold disk or a contended
/// spindle would (and so exercise the double-buffered read-ahead
/// overlap). Draws come from one deterministic xoshiro stream per file
/// (derived from `seed` and a per-file salt), so a plan replays
/// identically. Empty plan (the default) = no injection.
struct IoChaos {
  /// Probability, per physical write, of the write stopping short
  /// mid-buffer (the retry loop then continues from the offset).
  double short_write_probability = 0.0;

  /// Probability, per physical read, of stalling `slow_read_delay_s`
  /// before the read is served.
  double slow_read_probability = 0.0;
  double slow_read_delay_s = 0.0;

  std::uint64_t seed = 1;

  bool empty() const {
    return short_write_probability <= 0.0 && slow_read_probability <= 0.0;
  }

  /// Fail loudly on a malformed plan: probabilities in [0, 1], delay
  /// finite and non-negative.
  void validate() const;
};

/// Thin chaos-aware wrapper over one stdio stream. write() always
/// completes or throws: a short write — injected or real — is retried
/// from the offset it stopped at. read() returns the byte count actually
/// delivered (< requested only at end of file).
class RawFile {
 public:
  enum class Mode { Read, Write };

  RawFile(const std::filesystem::path& path, Mode mode, const IoChaos& chaos,
          std::uint64_t salt);
  ~RawFile();

  RawFile(const RawFile&) = delete;
  RawFile& operator=(const RawFile&) = delete;

  void seek(std::uint64_t offset);
  std::size_t read(void* out, std::size_t count);
  void write(const void* data, std::size_t count);

  /// Flush buffered bytes to the OS and close; throws IoError if the
  /// stream reports an error. The destructor closes silently instead
  /// (abandoned spill files are unlinked by ScratchDir anyway).
  void close();

  std::int64_t bytes_read() const { return bytes_read_; }
  std::int64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  IoChaos chaos_;
  bool chaos_reads_ = false;
  bool chaos_writes_ = false;
  util::Rng rng_;
  std::int64_t bytes_read_ = 0;
  std::int64_t bytes_written_ = 0;
};

/// Buffered spill-file writer: small records accumulate in one
/// `buffer_bytes` block, writes at least a block long bypass the copy.
class SpillWriter {
 public:
  SpillWriter(const std::filesystem::path& path, std::size_t buffer_bytes,
              const IoChaos& chaos = {}, std::uint64_t salt = 0);

  void write(const void* data, std::size_t count);

  /// Flush and close; must be called on success paths (the destructor
  /// closes without flushing guarantees, for abandoned files).
  void close();

  std::int64_t bytes_written() const { return total_bytes_; }

 private:
  void flush();

  RawFile file_;
  std::vector<std::byte> buffer_;
  std::size_t fill_ = 0;
  std::int64_t total_bytes_ = 0;
  bool closed_ = false;
};

/// Buffered synchronous reader over a byte window [offset, offset+limit)
/// of a file. `limit` == npos reads to end of file.
class SpillReader {
 public:
  static constexpr std::uint64_t npos = ~std::uint64_t{0};

  SpillReader(const std::filesystem::path& path, std::size_t buffer_bytes,
              const IoChaos& chaos = {}, std::uint64_t salt = 0,
              std::uint64_t offset = 0, std::uint64_t limit = npos);

  /// Returns bytes delivered; < count only at the end of the window.
  std::size_t read(void* out, std::size_t count);

  std::int64_t bytes_read() const { return total_bytes_; }

 private:
  RawFile file_;
  std::vector<std::byte> buffer_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t remaining_;
  std::int64_t total_bytes_ = 0;
};

class DoubleBufferedReader;

/// One background thread that keeps the back buffers of a set of
/// DoubleBufferedReaders full, so a k-way merge overlaps disk reads with
/// compare work. One Prefetcher serves a whole merge pass: every group's
/// readers attach to it, and the thread round-robins whichever back
/// buffers are empty. Readers detach (or die) before the Prefetcher does.
class Prefetcher {
 public:
  Prefetcher() = default;
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  void attach(DoubleBufferedReader* reader);
  void detach(DoubleBufferedReader* reader);

  /// Wake the thread: some back buffer became refillable.
  void poke();

 private:
  void loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<DoubleBufferedReader*> readers_;
  std::uint64_t version_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

/// Double-buffered sequential file reader: the consumer drains the front
/// buffer while the shared Prefetcher thread refills the back buffer, so
/// the next block is (usually) already in memory when the front runs dry.
/// The consumer blocks only when it outruns the disk.
class DoubleBufferedReader {
 public:
  DoubleBufferedReader(const std::filesystem::path& path,
                       std::size_t buffer_bytes, Prefetcher& prefetcher,
                       const IoChaos& chaos = {}, std::uint64_t salt = 0);
  ~DoubleBufferedReader();

  DoubleBufferedReader(const DoubleBufferedReader&) = delete;
  DoubleBufferedReader& operator=(const DoubleBufferedReader&) = delete;

  /// Returns bytes delivered; < count only at end of file.
  std::size_t read(void* out, std::size_t count);

 private:
  friend class Prefetcher;

  /// Prefetcher-side: fill the back buffer if it is refillable. Returns
  /// true when a fill happened.
  bool try_fill();

  RawFile file_;
  Prefetcher* prefetcher_;

  // Consumer-owned.
  std::vector<std::byte> front_;
  std::size_t front_pos_ = 0;
  std::size_t front_len_ = 0;
  bool exhausted_ = false;

  // Handoff state, guarded by mu_. The prefetcher owns back_ while
  // back_ready_ is false; the consumer owns it (for the swap) once true.
  std::mutex mu_;
  std::condition_variable ready_cv_;
  std::vector<std::byte> back_;
  std::size_t back_len_ = 0;
  bool back_ready_ = false;
  bool file_done_ = false;
};

}  // namespace pblpar::oocore
