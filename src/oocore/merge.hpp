#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace pblpar::oocore {

/// Loser-tree k-way merge over already-sorted sources — the classic
/// external-sort selection tree: each pop costs exactly one root-to-leaf
/// replay of ceil(log2 k) comparisons, against the 2*log2 k a binary heap
/// pays for its sift-down, and the tree layout is a flat array.
///
/// Sources expose `bool pull(T* out)` (false at end). Ties between equal
/// heads go to the lower source index, so merging individually
/// stable-sorted segments in segment order reproduces a stable_sort of
/// their concatenation — that tie-break is what makes the spillable
/// shuffle byte-identical to the in-memory path.
///
/// Handles any k >= 0: k == 0 is an always-empty merge, k == 1 a pass-
/// through, and non-power-of-two k uses the standard complete-tree
/// indexing (internal nodes [1, k), leaf j at node k + j).
template <class T, class Source, class Less = std::less<T>>
class LoserTree {
 public:
  explicit LoserTree(std::vector<Source*> sources, Less less = {})
      : sources_(std::move(sources)),
        less_(std::move(less)),
        k_(static_cast<int>(sources_.size())) {
    heads_.resize(sources_.size());
    alive_.assign(sources_.size(), 0);
    for (int j = 0; j < k_; ++j) {
      util::require(sources_[static_cast<std::size_t>(j)] != nullptr,
                    "LoserTree: null source");
      alive_[static_cast<std::size_t>(j)] =
          sources_[static_cast<std::size_t>(j)]->pull(
              &heads_[static_cast<std::size_t>(j)])
              ? 1
              : 0;
    }
    if (k_ == 0) {
      return;
    }
    if (k_ == 1) {
      winner_ = 0;
      return;
    }
    tree_.assign(static_cast<std::size_t>(k_), -1);
    winner_ = build(1);
  }

  /// Pop the smallest head. `source_index` (optional) reports which
  /// source it came from. False once every source is drained.
  bool pop(T* out, int* source_index = nullptr) {
    if (k_ == 0 || alive_[static_cast<std::size_t>(winner_)] == 0) {
      return false;
    }
    const int w = winner_;
    *out = std::move(heads_[static_cast<std::size_t>(w)]);
    if (source_index != nullptr) {
      *source_index = w;
    }
    alive_[static_cast<std::size_t>(w)] =
        sources_[static_cast<std::size_t>(w)]->pull(
            &heads_[static_cast<std::size_t>(w)])
            ? 1
            : 0;
    replay(w);
    return true;
  }

  int fan_in() const { return k_; }

 private:
  /// Does source `a` win the match against source `b`? Drained sources
  /// lose to live ones; between two drained (or two equal) sources the
  /// lower index wins, which is both the stability rule and a total
  /// order that keeps replays consistent.
  bool beats(int a, int b) const {
    const bool a_alive = alive_[static_cast<std::size_t>(a)] != 0;
    const bool b_alive = alive_[static_cast<std::size_t>(b)] != 0;
    if (!a_alive || !b_alive) {
      return a_alive || (!b_alive && a < b);
    }
    const T& ha = heads_[static_cast<std::size_t>(a)];
    const T& hb = heads_[static_cast<std::size_t>(b)];
    if (less_(ha, hb)) {
      return true;
    }
    if (less_(hb, ha)) {
      return false;
    }
    return a < b;
  }

  /// Play the initial tournament under `node`, storing losers at internal
  /// nodes and returning the subtree winner.
  int build(int node) {
    if (node >= k_) {
      return node - k_;  // leaf: its source index
    }
    const int left = build(2 * node);
    const int right = build(2 * node + 1);
    if (beats(right, left)) {
      tree_[static_cast<std::size_t>(node)] = left;
      return right;
    }
    tree_[static_cast<std::size_t>(node)] = right;
    return left;
  }

  /// Source `leaf` changed its head: replay its matches up the tree.
  void replay(int leaf) {
    int s = leaf;
    for (int t = (k_ + leaf) / 2; t >= 1; t /= 2) {
      if (beats(tree_[static_cast<std::size_t>(t)], s)) {
        std::swap(s, tree_[static_cast<std::size_t>(t)]);
      }
    }
    winner_ = s;
  }

  std::vector<Source*> sources_;
  Less less_;
  int k_;
  std::vector<T> heads_;
  std::vector<char> alive_;
  std::vector<int> tree_;  // internal nodes [1, k_): the loser's index
  int winner_ = 0;
};

}  // namespace pblpar::oocore
