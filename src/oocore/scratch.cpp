#include "oocore/scratch.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <system_error>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace pblpar::oocore {

namespace {

std::uint64_t process_id() {
#if defined(_WIN32)
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

// Process-wide counter so two ScratchDirs created back-to-back (or
// concurrently from different threads) never collide on a name.
std::atomic<std::uint64_t>& dir_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace

ScratchDir::ScratchDir(std::string_view prefix) {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path();
  const std::uint64_t pid = process_id();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t id = dir_counter().fetch_add(1);
    char name[128];
    std::snprintf(name, sizeof(name), "%.*s-%" PRIu64 "-%" PRIu64,
                  static_cast<int>(prefix.size()), prefix.data(), pid, id);
    fs::path candidate = base / name;
    std::error_code ec;
    if (fs::create_directory(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw std::runtime_error("oocore: could not create a scratch directory");
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Swallow ec: the destructor runs during cancel drains and stack
  // unwinding, where throwing would terminate the process.
}

std::filesystem::path ScratchDir::next_path(std::string_view stem) {
  char name[128];
  std::snprintf(name, sizeof(name), "%.*s-%06" PRIu64,
                static_cast<int>(stem.size()), stem.data(),
                counter_.fetch_add(1));
  return path_ / name;
}

std::size_t ScratchDir::live_entries() const {
  std::error_code ec;
  std::size_t count = 0;
  std::filesystem::directory_iterator it(path_, ec);
  if (ec) {
    return 0;
  }
  for (const auto& entry : it) {
    (void)entry;
    ++count;
  }
  return count;
}

}  // namespace pblpar::oocore
