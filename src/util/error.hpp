#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace pblpar::util {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (a library bug, not user error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Validate a documented precondition on a public entry point.
inline void require(bool condition, std::string_view message) {
  if (!condition) {
    throw PreconditionError(std::string(message));
  }
}

/// Check an internal invariant; failure indicates a bug in this library.
inline void ensure(bool condition, std::string_view message) {
  if (!condition) {
    throw InvariantError(std::string(message));
  }
}

}  // namespace pblpar::util
