#include "util/text.hpp"

#include <cctype>

namespace pblpar::util {

namespace {

bool is_word_char(unsigned char ch) {
  return std::isalnum(ch) != 0 || ch == '\'';
}

}  // namespace

std::string to_lower(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (const char ch : text) {
    lowered += static_cast<char>(
        std::tolower(static_cast<unsigned char>(ch)));
  }
  return lowered;
}

std::vector<std::string> split(std::string_view text,
                               std::string_view delimiters) {
  std::vector<std::string> pieces;
  std::string current;
  for (const char ch : text) {
    if (delimiters.find(ch) != std::string_view::npos) {
      if (!current.empty()) {
        pieces.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += ch;
    }
  }
  if (!current.empty()) {
    pieces.push_back(std::move(current));
  }
  return pieces;
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (const char ch : text) {
    if (is_word_char(static_cast<unsigned char>(ch))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    words.push_back(std::move(current));
  }
  return words;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char ch : text) {
    if (ch == '\n') {
      if (!current.empty() && current.back() == '\r') {
        current.pop_back();
      }
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) {
    if (current.back() == '\r') {
      current.pop_back();
    }
    lines.push_back(std::move(current));
  }
  return lines;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string joined;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      joined += separator;
    }
    joined += pieces[i];
  }
  return joined;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

}  // namespace pblpar::util
