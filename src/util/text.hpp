#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pblpar::util {

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// Split on any of the given delimiter characters; empty pieces dropped.
std::vector<std::string> split(std::string_view text,
                               std::string_view delimiters);

/// Tokenize into lower-cased words (runs of [A-Za-z0-9']).
std::vector<std::string> tokenize_words(std::string_view text);

/// Split into lines (handles both "\n" and "\r\n").
std::vector<std::string> split_lines(std::string_view text);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view text);

}  // namespace pblpar::util
