#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pblpar::util {

/// Column alignment for rendered tables.
enum class Align { Left, Right };

/// A small report table used by the experiment harnesses to print
/// paper-style tables (ASCII box drawing, Markdown, or CSV).
class Table {
 public:
  explicit Table(std::string title = {});

  /// Define the header row. Must be called before adding rows.
  Table& columns(std::vector<std::string> names,
                 std::vector<Align> aligns = {});

  /// Append a data row; must match the number of columns.
  Table& row(std::vector<std::string> cells);

  /// Append a horizontal separator between row groups.
  Table& separator();

  /// Footnote lines printed under the table.
  Table& note(std::string text);

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  std::string to_ascii() const;
  std::string to_markdown() const;
  std::string to_csv() const;

  /// Format helpers used throughout the harnesses.
  static std::string num(double value, int precision);
  static std::string pvalue(double p);  // "p < 0.001" style when tiny

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

std::ostream& operator<<(std::ostream& out, const Table& table);

}  // namespace pblpar::util
