#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::util {

namespace {

std::string repeat(char fill, std::size_t count) {
  return std::string(count, fill);
}

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) {
    return text;
  }
  const std::string fill = repeat(' ', width - text.size());
  return align == Align::Left ? text + fill : fill + text;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string escaped = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      escaped += '"';
    }
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::vector<std::string> names,
                      std::vector<Align> aligns) {
  require(!names.empty(), "Table::columns: at least one column required");
  require(aligns.empty() || aligns.size() == names.size(),
          "Table::columns: alignment count must match column count");
  headers_ = std::move(names);
  if (aligns.empty()) {
    aligns_.assign(headers_.size(), Align::Left);
  } else {
    aligns_ = std::move(aligns);
  }
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table::row: cell count must match column count");
  rows_.push_back(Row{std::move(cells), false});
  return *this;
}

Table& Table::separator() {
  rows_.push_back(Row{{}, true});
  return *this;
}

Table& Table::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& r : rows_) {
    if (r.is_separator) {
      continue;
    }
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) {
      line += repeat('-', w + 2) + "+";
    }
    return line + "\n";
  }();

  std::ostringstream out;
  if (!title_.empty()) {
    out << title_ << "\n";
  }
  out << rule << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << ' ' << pad(headers_[c], widths[c], Align::Left) << " |";
  }
  out << "\n" << rule;
  for (const Row& r : rows_) {
    if (r.is_separator) {
      out << rule;
      continue;
    }
    out << "|";
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      out << ' ' << pad(r.cells[c], widths[c], aligns_[c]) << " |";
    }
    out << "\n";
  }
  out << rule;
  for (const std::string& n : notes_) {
    out << "  " << n << "\n";
  }
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  if (!title_.empty()) {
    out << "### " << title_ << "\n\n";
  }
  out << "|";
  for (const std::string& h : headers_) {
    out << ' ' << h << " |";
  }
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (aligns_[c] == Align::Right ? " ---: |" : " --- |");
  }
  out << "\n";
  for (const Row& r : rows_) {
    if (r.is_separator) {
      continue;
    }
    out << "|";
    for (const std::string& cell : r.cells) {
      out << ' ' << cell << " |";
    }
    out << "\n";
  }
  for (const std::string& n : notes_) {
    out << "\n> " << n << "\n";
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << csv_escape(headers_[c]);
  }
  out << "\n";
  for (const Row& r : rows_) {
    if (r.is_separator) {
      continue;
    }
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      out << (c ? "," : "") << csv_escape(r.cells[c]);
    }
    out << "\n";
  }
  return out.str();
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::pvalue(double p) {
  if (p < 0.001) {
    return "p < 0.001";
  }
  return "p = " + num(p, 3);
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  return out << table.to_ascii();
}

}  // namespace pblpar::util
