#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace pblpar::util {

Rng::Rng(std::uint64_t seed) {
  SplitMix64 expander(seed);
  for (auto& word : state_) {
    word = expander.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  require(bound > 0, "Rng::next_below: bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t raw = next_u64();
    if (raw >= threshold) {
      return raw % bound;
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must not exceed hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must not exceed hi");
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sd) {
  require(sd >= 0.0, "Rng::normal: sd must be non-negative");
  return mean + sd * normal();
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0, 1]");
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace pblpar::util
