#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace pblpar::util {

/// SplitMix64: used to expand a single seed into state for other generators.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic across platforms,
/// unlike the distributions in <random>, which the standard leaves
/// implementation-defined. All stochastic components of this library draw
/// from this generator so experiments replay bit-identically everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t next_u64();

  /// UniformReal in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, portable).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sd);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent generator (for per-entity streams).
  Rng split();

  // UniformRandomBitGenerator interface (for interop with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pblpar::util
