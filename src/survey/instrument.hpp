#pragma once

#include <array>
#include <string>
#include <vector>

namespace pblpar::survey {

/// The seven skill elements of the Team Design Skills Growth Survey
/// (Beyerlein, Davishahl, Davis, Lyons & Gentili, ASEE 2005 — the paper's
/// reference [12]).
enum class Element {
  Teamwork,
  InformationGathering,
  ProblemDefinition,
  IdeaGeneration,
  EvaluationAndDecisionMaking,
  Implementation,
  Communication,
};

inline constexpr std::array<Element, 7> kAllElements = {
    Element::Teamwork,
    Element::InformationGathering,
    Element::ProblemDefinition,
    Element::IdeaGeneration,
    Element::EvaluationAndDecisionMaking,
    Element::Implementation,
    Element::Communication,
};

inline constexpr std::size_t kElementCount = kAllElements.size();

std::string to_string(Element element);
std::size_t index_of(Element element);

/// The survey's two question categories.
enum class Category { ClassEmphasis, PersonalGrowth };

/// Verbal anchors of the five-point scales, as quoted in the paper.
std::string emphasis_scale_description(int score);
std::string growth_scale_description(int score);

/// One element of the instrument: a definition item plus component
/// ("performance indicator") items.
struct ElementSpec {
  Element element;
  std::string name;
  std::string definition;
  std::vector<std::string> components;

  /// definition + components.
  std::size_t item_count() const { return 1 + components.size(); }
};

/// The full instrument. Teamwork's items are quoted from the paper's
/// Fig. 2; the remaining elements' components are reconstructed from the
/// Beyerlein et al. survey structure (documented in DESIGN.md).
const std::vector<ElementSpec>& instrument();

/// Total number of items per category across all elements.
std::size_t total_item_count();

}  // namespace pblpar::survey
