#pragma once

#include <array>
#include <vector>

#include "survey/instrument.hpp"

namespace pblpar::survey {

/// One student's answers for one element in one category: the definition
/// item plus each component item, all on the 1..5 scale.
struct ElementResponse {
  int definition = 0;
  std::vector<int> components;

  /// Mean of every item (the paper: "Each skill score was created by
  /// averaging all question scores under each skill").
  double average() const;

  /// Beyerlein Composite Score: average of the definition item and the
  /// mean of the component items.
  double composite() const;
};

/// One student's full answer sheet for one administration: every element,
/// both categories.
struct StudentResponse {
  std::array<ElementResponse, kElementCount> emphasis;
  std::array<ElementResponse, kElementCount> growth;

  const std::array<ElementResponse, kElementCount>& category(
      Category which) const {
    return which == Category::ClassEmphasis ? emphasis : growth;
  }

  /// Mean over every item of every element in the category (the variable
  /// behind the paper's Table 1 t-tests).
  double overall_average(Category which) const;

  /// Mean over the items of one element (the per-skill score of Table 4).
  double element_average(Category which, Element element) const;
};

/// Throws util::PreconditionError unless the response matches the
/// instrument's shape and every item is within 1..5.
void validate(const StudentResponse& response);

/// One sitting of the survey by the whole cohort (mid-semester or end).
struct Administration {
  std::vector<StudentResponse> responses;

  std::size_t cohort_size() const { return responses.size(); }

  /// Per-student overall averages (input to the paired t-test).
  std::vector<double> per_student_overall(Category which) const;

  /// Per-student per-element averages (input to Pearson correlations).
  std::vector<double> per_student_element(Category which,
                                          Element element) const;

  /// Cohort mean of an element's per-student averages (Tables 5/6 cells).
  double cohort_element_mean(Category which, Element element) const;

  /// Cohort mean of the Beyerlein composite for an element.
  double cohort_element_composite(Category which, Element element) const;
};

}  // namespace pblpar::survey
