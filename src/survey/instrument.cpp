#include "survey/instrument.hpp"

#include "util/error.hpp"

namespace pblpar::survey {

std::string to_string(Element element) {
  switch (element) {
    case Element::Teamwork:
      return "Teamwork";
    case Element::InformationGathering:
      return "Information Gathering";
    case Element::ProblemDefinition:
      return "Problem Definition";
    case Element::IdeaGeneration:
      return "Idea Generation";
    case Element::EvaluationAndDecisionMaking:
      return "Evaluation and Decision Making";
    case Element::Implementation:
      return "Implementation";
    case Element::Communication:
      return "Communication";
  }
  return "?";
}

std::size_t index_of(Element element) {
  for (std::size_t i = 0; i < kAllElements.size(); ++i) {
    if (kAllElements[i] == element) {
      return i;
    }
  }
  throw util::PreconditionError("index_of: unknown survey element");
}

std::string emphasis_scale_description(int score) {
  switch (score) {
    case 1:
      return "Did not discuss";
    case 2:
      return "Minor emphasis";
    case 3:
      return "Some emphasis";
    case 4:
      return "Significant emphasis";
    case 5:
      return "Major emphasis";
    default:
      throw util::PreconditionError(
          "emphasis_scale_description: score must be 1..5");
  }
}

std::string growth_scale_description(int score) {
  switch (score) {
    case 1:
      return "I did not use this skill within this class";
    case 2:
      return "I used previous skills and had little growth";
    case 3:
      return "I grew some and gained a few new skills";
    case 4:
      return "I experienced a significant growth and added several skills";
    case 5:
      return "I experienced a tremendous growth and added many new skills";
    default:
      throw util::PreconditionError(
          "growth_scale_description: score must be 1..5");
  }
}

const std::vector<ElementSpec>& instrument() {
  static const std::vector<ElementSpec> kInstrument = {
      {Element::Teamwork,
       "Teamwork",
       "Individuals participate effectively in groups or teams.",
       {
           // Quoted from the paper's Fig. 2.
           "Individuals understand their own and other members' styles of "
           "thinking and how they affect teamwork.",
           "Individuals understand the different roles included in "
           "effective teamwork and responsibilities of each role.",
           "Individuals use effective group communication skills: "
           "listening, speaking, visual communication.",
           "Individuals cooperate to support effective teamwork.",
       }},
      {Element::InformationGathering,
       "Information Gathering",
       "Individuals locate, evaluate, and use relevant information "
       "effectively.",
       {
           "Individuals identify what information is needed to make "
           "progress on the problem.",
           "Individuals search provided materials and external sources "
           "systematically.",
           "Individuals judge the credibility and relevance of sources.",
           "Individuals organize gathered information so the team can "
           "use it.",
       }},
      {Element::ProblemDefinition,
       "Problem Definition",
       "Individuals formulate clear, complete statements of the problem "
       "to be solved.",
       {
           "Individuals identify the customer needs and constraints "
           "behind an assignment.",
           "Individuals separate the essential requirements from "
           "incidental details.",
           "Individuals state assumptions and success criteria "
           "explicitly.",
           "Individuals decompose a large problem into tractable parts.",
       }},
      {Element::IdeaGeneration,
       "Idea Generation",
       "Individuals generate a broad range of candidate ideas and "
       "approaches.",
       {
           "Individuals brainstorm multiple alternative solutions before "
           "committing.",
           "Individuals build on and combine other members' ideas.",
           "Individuals draw analogies from prior problems and examples.",
           "Individuals defer judgment while generating options.",
       }},
      {Element::EvaluationAndDecisionMaking,
       "Evaluation and Decision Making",
       "Individuals evaluate alternatives objectively and converge on "
       "sound decisions.",
       {
           "Individuals compare alternatives against the stated criteria.",
           "Individuals weigh trade-offs (time, correctness, effort) "
           "explicitly.",
           "Individuals reach team decisions by consensus-oriented "
           "processes.",
           "Individuals revisit decisions when new evidence appears.",
       }},
      {Element::Implementation,
       "Implementation",
       "Individuals carry solutions through to working, tested results.",
       {
           "Individuals translate a chosen design into working code or "
           "artifacts.",
           "Individuals test and debug their work systematically.",
           "Individuals follow the team's plan, schedule, and task "
           "assignments.",
           "Individuals document what was built and what was observed.",
       }},
      {Element::Communication,
       "Communication",
       "Individuals communicate ideas effectively in oral, written, and "
       "visual form.",
       {
           "Individuals write clear technical reports of methods and "
           "observations.",
           "Individuals present results orally in an organized way.",
           "Individuals use figures, screenshots, and code snippets to "
           "support explanations.",
           "Individuals keep teammates informed through the team's "
           "communication channels.",
       }},
  };
  return kInstrument;
}

std::size_t total_item_count() {
  std::size_t total = 0;
  for (const ElementSpec& spec : instrument()) {
    total += spec.item_count();
  }
  return total;
}

}  // namespace pblpar::survey
