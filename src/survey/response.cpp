#include "survey/response.hpp"

#include "util/error.hpp"

namespace pblpar::survey {

double ElementResponse::average() const {
  util::require(!components.empty(),
                "ElementResponse::average: no component items");
  double sum = definition;
  for (const int score : components) {
    sum += score;
  }
  return sum / static_cast<double>(1 + components.size());
}

double ElementResponse::composite() const {
  util::require(!components.empty(),
                "ElementResponse::composite: no component items");
  double component_sum = 0.0;
  for (const int score : components) {
    component_sum += score;
  }
  const double component_mean =
      component_sum / static_cast<double>(components.size());
  return (static_cast<double>(definition) + component_mean) / 2.0;
}

double StudentResponse::overall_average(Category which) const {
  const auto& elements = category(which);
  double sum = 0.0;
  std::size_t items = 0;
  for (const ElementResponse& element : elements) {
    sum += element.definition;
    ++items;
    for (const int score : element.components) {
      sum += score;
      ++items;
    }
  }
  util::require(items > 0, "StudentResponse::overall_average: empty sheet");
  return sum / static_cast<double>(items);
}

double StudentResponse::element_average(Category which,
                                        Element element) const {
  return category(which)[index_of(element)].average();
}

void validate(const StudentResponse& response) {
  const auto check_category =
      [&](const std::array<ElementResponse, kElementCount>& answers) {
        const auto& specs = instrument();
        for (std::size_t e = 0; e < kElementCount; ++e) {
          const ElementResponse& answer = answers[e];
          util::require(answer.definition >= 1 && answer.definition <= 5,
                        "validate: definition item out of 1..5");
          util::require(
              answer.components.size() == specs[e].components.size(),
              "validate: component count does not match the instrument");
          for (const int score : answer.components) {
            util::require(score >= 1 && score <= 5,
                          "validate: component item out of 1..5");
          }
        }
      };
  check_category(response.emphasis);
  check_category(response.growth);
}

std::vector<double> Administration::per_student_overall(Category which) const {
  std::vector<double> values;
  values.reserve(responses.size());
  for (const StudentResponse& response : responses) {
    values.push_back(response.overall_average(which));
  }
  return values;
}

std::vector<double> Administration::per_student_element(
    Category which, Element element) const {
  std::vector<double> values;
  values.reserve(responses.size());
  for (const StudentResponse& response : responses) {
    values.push_back(response.element_average(which, element));
  }
  return values;
}

double Administration::cohort_element_mean(Category which,
                                           Element element) const {
  util::require(!responses.empty(),
                "Administration::cohort_element_mean: no responses");
  double sum = 0.0;
  for (const StudentResponse& response : responses) {
    sum += response.element_average(which, element);
  }
  return sum / static_cast<double>(responses.size());
}

double Administration::cohort_element_composite(Category which,
                                                Element element) const {
  util::require(!responses.empty(),
                "Administration::cohort_element_composite: no responses");
  double sum = 0.0;
  for (const StudentResponse& response : responses) {
    sum += response.category(which)[index_of(element)].composite();
  }
  return sum / static_cast<double>(responses.size());
}

}  // namespace pblpar::survey
