#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pblpar::race {

/// A vector clock over thread ids. Component `t` counts the number of
/// synchronization epochs thread `t` has passed through.
class VectorClock {
 public:
  /// Clock component for `tid` (0 if never seen).
  std::uint64_t get(int tid) const;

  /// Set component `tid` to `value`.
  void set(int tid, std::uint64_t value);

  /// Increment component `tid`.
  void tick(int tid);

  /// Pointwise maximum with `other` (the "join" of the two clocks).
  void merge(const VectorClock& other);

  /// True if every component of *this is <= the matching one in `other`,
  /// i.e. all events summarized by *this happen-before `other`.
  bool happens_before_or_equal(const VectorClock& other) const;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> components_;
};

/// A single (thread, clock-value) pair — FastTrack's compressed
/// representation of one access event.
struct Epoch {
  int tid = -1;
  std::uint64_t clock = 0;

  bool valid() const { return tid >= 0; }

  /// This access happens-before the thread owning `now` iff the owner has
  /// seen at least `clock` ticks of `tid`.
  bool happens_before(const VectorClock& now) const {
    return clock <= now.get(tid);
  }
};

}  // namespace pblpar::race
