#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "race/vector_clock.hpp"
#include "sim/observer.hpp"

namespace pblpar::race {

/// One detected data race between two annotated accesses.
struct RaceReport {
  enum class Kind { WriteWrite, ReadThenWrite, WriteThenRead };

  const void* addr = nullptr;
  std::size_t size = 0;
  Kind kind = Kind::WriteWrite;
  int first_tid = -1;   // earlier access
  int second_tid = -1;  // racing access
  std::string label;    // human name if the address was labelled

  std::string describe() const;
};

/// Happens-before (FastTrack-style) data-race detector.
///
/// Attach to a sim::Machine via set_observer; the machine feeds it every
/// spawn/join/barrier/lock event plus the annotated reads and writes of
/// race::Shared variables. Because the simulator serializes real code, the
/// detector reports *logical* races — pairs of accesses unordered by
/// happens-before — deterministically, which is exactly the classroom
/// artifact the paper's Assignment 2 aims at ("scope matters").
///
/// The detector can also be driven manually (the HbObserver methods are
/// public) for unit testing or for tracing a hand-written schedule.
class Detector : public sim::HbObserver {
 public:
  /// Give a human-readable name to an address (e.g. "sum").
  void label_address(const void* addr, std::string name);

  const std::vector<RaceReport>& races() const { return races_; }
  bool race_free() const { return races_.empty(); }

  /// Forget all access history and races (keeps labels).
  void reset();

  // --- sim::HbObserver ----------------------------------------------------
  void on_spawn(int parent, int child) override;
  void on_join(int parent, int child) override;
  void on_barrier(std::span<const int> participants) override;
  void on_mutex_acquire(int tid, std::uint64_t mutex_id) override;
  void on_mutex_release(int tid, std::uint64_t mutex_id) override;
  void on_read(int tid, const void* addr, std::size_t size) override;
  void on_write(int tid, const void* addr, std::size_t size) override;

 private:
  struct VarState {
    Epoch last_write;
    // Reads since the last write, one epoch per reading thread.
    std::unordered_map<int, Epoch> reads;
  };

  VectorClock& clock_of(int tid);
  void report(const void* addr, std::size_t size, RaceReport::Kind kind,
              int first, int second);

  std::vector<VectorClock> thread_clocks_;
  std::unordered_map<std::uint64_t, VectorClock> mutex_clocks_;
  std::unordered_map<const void*, VarState> vars_;
  std::unordered_map<const void*, std::string> labels_;
  std::vector<RaceReport> races_;
  std::set<std::tuple<const void*, int, int, int>> seen_;  // dedup key
};

}  // namespace pblpar::race
