#pragma once

#include "sim/machine.hpp"

namespace pblpar::race {

/// A shared variable whose accesses are visible to the race detector.
///
/// This is the library form of the paper's Assignment 2 lesson: "by sharing
/// one bank of memory, programmers need to be a bit more careful about
/// declaring their variables (scope matters)". Code that updates a
/// Shared<T> from multiple simulated threads without synchronization is
/// reported by race::Detector; making the accumulation private-per-thread
/// (see the patternlets) silences it.
template <class T>
class Shared {
 public:
  explicit Shared(T initial = T{}) : value_(initial) {}

  /// Read under the detector's eye.
  T read(sim::Context& ctx) const {
    ctx.annotate_read(&value_, sizeof(T));
    return value_;
  }

  /// Overwrite under the detector's eye.
  void write(sim::Context& ctx, T value) {
    ctx.annotate_write(&value_, sizeof(T));
    value_ = value;
  }

  /// Read-modify-write (the classic racy "sum += x" shape: annotated as a
  /// read followed by a write, so unsynchronized concurrent updates race).
  void add(sim::Context& ctx, T delta) {
    ctx.annotate_read(&value_, sizeof(T));
    ctx.annotate_write(&value_, sizeof(T));
    value_ += delta;
  }

  /// Unannotated peek, for checking final values after the run.
  T unsafe_value() const { return value_; }

  /// Stable address used to label this variable in race reports.
  const void* address() const { return &value_; }

 private:
  T value_;
};

}  // namespace pblpar::race
