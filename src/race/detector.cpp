#include "race/detector.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::race {

std::string RaceReport::describe() const {
  const char* kind_text = nullptr;
  switch (kind) {
    case Kind::WriteWrite:
      kind_text = "write-write";
      break;
    case Kind::ReadThenWrite:
      kind_text = "read-then-write";
      break;
    case Kind::WriteThenRead:
      kind_text = "write-then-read";
      break;
  }
  std::ostringstream out;
  out << kind_text << " race on "
      << (label.empty() ? "<unnamed variable>" : ("'" + label + "'"))
      << " between tid" << first_tid << " and tid" << second_tid;
  return out.str();
}

void Detector::label_address(const void* addr, std::string name) {
  labels_[addr] = std::move(name);
}

void Detector::reset() {
  thread_clocks_.clear();
  mutex_clocks_.clear();
  vars_.clear();
  races_.clear();
  seen_.clear();
}

VectorClock& Detector::clock_of(int tid) {
  util::require(tid >= 0, "Detector: tid must be non-negative");
  const auto index = static_cast<std::size_t>(tid);
  if (index >= thread_clocks_.size()) {
    const auto old_size = thread_clocks_.size();
    thread_clocks_.resize(index + 1);
    for (std::size_t t = old_size; t <= index; ++t) {
      // A thread's own component starts at 1 so its accesses are never
      // vacuously ordered before other threads' clocks.
      thread_clocks_[t].set(static_cast<int>(t), 1);
    }
  }
  return thread_clocks_[index];
}

void Detector::report(const void* addr, std::size_t size,
                      RaceReport::Kind kind, int first, int second) {
  // Dedup symmetrically: a ping-ponging pair of racing threads is one
  // finding per variable and kind, not one per direction.
  const auto key = std::make_tuple(addr, static_cast<int>(kind),
                                   std::min(first, second),
                                   std::max(first, second));
  if (!seen_.insert(key).second) {
    return;
  }
  RaceReport race;
  race.addr = addr;
  race.size = size;
  race.kind = kind;
  race.first_tid = first;
  race.second_tid = second;
  if (const auto it = labels_.find(addr); it != labels_.end()) {
    race.label = it->second;
  }
  races_.push_back(std::move(race));
}

void Detector::on_spawn(int parent, int child) {
  // Touch the higher tid first: clock_of may grow the vector, which would
  // invalidate a previously taken reference.
  clock_of(std::max(parent, child));
  VectorClock& parent_clock = clock_of(parent);
  VectorClock& child_clock = clock_of(child);
  child_clock.merge(parent_clock);
  // Both sides enter fresh epochs so later events on either side are not
  // ordered with the other's.
  parent_clock.tick(parent);
  child_clock.tick(child);
}

void Detector::on_join(int parent, int child) {
  clock_of(std::max(parent, child));
  VectorClock& parent_clock = clock_of(parent);
  parent_clock.merge(clock_of(child));
  parent_clock.tick(parent);
}

void Detector::on_barrier(std::span<const int> participants) {
  int max_tid = 0;
  for (const int tid : participants) {
    max_tid = std::max(max_tid, tid);
  }
  clock_of(max_tid);
  VectorClock merged;
  for (const int tid : participants) {
    merged.merge(clock_of(tid));
  }
  for (const int tid : participants) {
    VectorClock& clock = clock_of(tid);
    clock.merge(merged);
    clock.tick(tid);
  }
}

void Detector::on_mutex_acquire(int tid, std::uint64_t mutex_id) {
  VectorClock& clock = clock_of(tid);
  if (const auto it = mutex_clocks_.find(mutex_id);
      it != mutex_clocks_.end()) {
    clock.merge(it->second);
  }
}

void Detector::on_mutex_release(int tid, std::uint64_t mutex_id) {
  VectorClock& clock = clock_of(tid);
  mutex_clocks_[mutex_id] = clock;
  clock.tick(tid);
}

void Detector::on_read(int tid, const void* addr, std::size_t size) {
  const VectorClock& now = clock_of(tid);
  VarState& var = vars_[addr];
  if (var.last_write.valid() && var.last_write.tid != tid &&
      !var.last_write.happens_before(now)) {
    report(addr, size, RaceReport::Kind::WriteThenRead, var.last_write.tid,
           tid);
  }
  var.reads[tid] = Epoch{tid, now.get(tid)};
}

void Detector::on_write(int tid, const void* addr, std::size_t size) {
  const VectorClock& now = clock_of(tid);
  VarState& var = vars_[addr];
  if (var.last_write.valid() && var.last_write.tid != tid &&
      !var.last_write.happens_before(now)) {
    report(addr, size, RaceReport::Kind::WriteWrite, var.last_write.tid, tid);
  }
  for (const auto& [reader, epoch] : var.reads) {
    if (reader != tid && !epoch.happens_before(now)) {
      report(addr, size, RaceReport::Kind::ReadThenWrite, reader, tid);
    }
  }
  var.last_write = Epoch{tid, now.get(tid)};
  var.reads.clear();
}

}  // namespace pblpar::race
