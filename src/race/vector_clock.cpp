#include "race/vector_clock.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::race {

std::uint64_t VectorClock::get(int tid) const {
  util::require(tid >= 0, "VectorClock::get: tid must be non-negative");
  const auto index = static_cast<std::size_t>(tid);
  return index < components_.size() ? components_[index] : 0;
}

void VectorClock::set(int tid, std::uint64_t value) {
  util::require(tid >= 0, "VectorClock::set: tid must be non-negative");
  const auto index = static_cast<std::size_t>(tid);
  if (index >= components_.size()) {
    components_.resize(index + 1, 0);
  }
  components_[index] = value;
}

void VectorClock::tick(int tid) { set(tid, get(tid) + 1); }

void VectorClock::merge(const VectorClock& other) {
  if (other.components_.size() > components_.size()) {
    components_.resize(other.components_.size(), 0);
  }
  for (std::size_t i = 0; i < other.components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

bool VectorClock::happens_before_or_equal(const VectorClock& other) const {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const std::uint64_t theirs =
        i < other.components_.size() ? other.components_[i] : 0;
    if (components_[i] > theirs) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    out << (i ? "," : "") << components_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace pblpar::race
