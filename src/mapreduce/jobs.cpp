#include "mapreduce/jobs.hpp"

#include "mapreduce/defs.hpp"
#include "mapreduce/job.hpp"

namespace pblpar::mapreduce {

std::vector<std::pair<std::string, long>> word_count(
    const std::vector<std::string>& documents, int threads) {
  Job<int, std::string, std::string, long> job;
  job.threads(threads);
  defs::WordCountDef{}.configure(job);
  return job.run(defs::indexed(documents));
}

std::vector<std::pair<std::string, std::vector<int>>> inverted_index(
    const std::vector<std::string>& documents, int threads) {
  Job<int, std::string, std::string, int, std::vector<int>> job;
  job.threads(threads);
  defs::InvertedIndexDef{}.configure(job);
  return job.run(defs::indexed(documents));
}

std::vector<std::pair<std::string, long>> url_access_counts(
    const std::vector<std::string>& log_lines, int threads) {
  Job<int, std::string, std::string, long> job;
  job.threads(threads);
  defs::UrlAccessCountsDef{}.configure(job);
  return job.run(defs::indexed(log_lines));
}

std::vector<std::pair<int, std::string>> distributed_grep(
    const std::vector<std::string>& lines, const std::string& pattern,
    int threads) {
  Job<int, std::string, int, std::string> job;
  job.threads(threads);
  defs::DistributedGrepDef{pattern}.configure(job);
  return job.run(defs::indexed(lines));
}

std::vector<std::pair<std::string, double>> mean_per_key(
    const std::vector<std::pair<std::string, double>>& samples, int threads) {
  Job<std::string, double, std::string, double> job;
  job.threads(threads);
  defs::MeanPerKeyDef{}.configure(job);
  return job.run(samples);
}

}  // namespace pblpar::mapreduce
