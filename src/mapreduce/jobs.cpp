#include "mapreduce/jobs.hpp"

#include <algorithm>
#include <numeric>

#include "mapreduce/job.hpp"
#include "util/text.hpp"

namespace pblpar::mapreduce {

std::vector<std::pair<std::string, long>> word_count(
    const std::vector<std::string>& documents, int threads) {
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(documents.size());
  for (std::size_t d = 0; d < documents.size(); ++d) {
    inputs.emplace_back(static_cast<int>(d), documents[d]);
  }

  Job<int, std::string, std::string, long> job;
  job.threads(threads)
      .map([](const int&, const std::string& text,
              Emitter<std::string, long>& out) {
        for (std::string& word : util::tokenize_words(text)) {
          out.emit(std::move(word), 1L);
        }
      })
      .combine([](const std::string&, const std::vector<long>& counts) {
        return std::accumulate(counts.begin(), counts.end(), 0L);
      })
      .reduce([](const std::string&, const std::vector<long>& counts) {
        return std::accumulate(counts.begin(), counts.end(), 0L);
      });
  return job.run(inputs);
}

std::vector<std::pair<std::string, std::vector<int>>> inverted_index(
    const std::vector<std::string>& documents, int threads) {
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(documents.size());
  for (std::size_t d = 0; d < documents.size(); ++d) {
    inputs.emplace_back(static_cast<int>(d), documents[d]);
  }

  Job<int, std::string, std::string, int, std::vector<int>> job;
  job.threads(threads)
      .map([](const int& doc_id, const std::string& text,
              Emitter<std::string, int>& out) {
        std::vector<std::string> words = util::tokenize_words(text);
        std::sort(words.begin(), words.end());
        words.erase(std::unique(words.begin(), words.end()), words.end());
        for (std::string& word : words) {
          out.emit(std::move(word), doc_id);
        }
      })
      .reduce([](const std::string&, const std::vector<int>& ids) {
        std::vector<int> sorted = ids;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        return sorted;
      });
  return job.run(inputs);
}

std::vector<std::pair<std::string, long>> url_access_counts(
    const std::vector<std::string>& log_lines, int threads) {
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(log_lines.size());
  for (std::size_t i = 0; i < log_lines.size(); ++i) {
    inputs.emplace_back(static_cast<int>(i), log_lines[i]);
  }

  Job<int, std::string, std::string, long> job;
  job.threads(threads)
      .map([](const int&, const std::string& line,
              Emitter<std::string, long>& out) {
        const std::vector<std::string> fields = util::split(line, " \t");
        if (!fields.empty()) {
          out.emit(fields.front(), 1L);
        }
      })
      .combine([](const std::string&, const std::vector<long>& counts) {
        return std::accumulate(counts.begin(), counts.end(), 0L);
      })
      .reduce([](const std::string&, const std::vector<long>& counts) {
        return std::accumulate(counts.begin(), counts.end(), 0L);
      });
  return job.run(inputs);
}

std::vector<std::pair<int, std::string>> distributed_grep(
    const std::vector<std::string>& lines, const std::string& pattern,
    int threads) {
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    inputs.emplace_back(static_cast<int>(i), lines[i]);
  }

  Job<int, std::string, int, std::string> job;
  job.threads(threads)
      .map([&pattern](const int& line_number, const std::string& line,
                      Emitter<int, std::string>& out) {
        if (line.find(pattern) != std::string::npos) {
          out.emit(line_number, line);
        }
      })
      .reduce([](const int&, const std::vector<std::string>& matched) {
        return matched.front();  // one line per line number
      });
  return job.run(inputs);
}

std::vector<std::pair<std::string, double>> mean_per_key(
    const std::vector<std::pair<std::string, double>>& samples, int threads) {
  Job<std::string, double, std::string, double> job;
  job.threads(threads)
      .map([](const std::string& key, const double& value,
              Emitter<std::string, double>& out) { out.emit(key, value); })
      .reduce([](const std::string&, const std::vector<double>& values) {
        return std::accumulate(values.begin(), values.end(), 0.0) /
               static_cast<double>(values.size());
      });
  return job.run(samples);
}

}  // namespace pblpar::mapreduce
