#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "oocore/io.hpp"
#include "oocore/merge.hpp"
#include "oocore/scratch.hpp"
#include "oocore/spill.hpp"
#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::mapreduce {

/// What a Job does when its deadline fires during the map phase.
enum class DeadlinePolicy {
  /// Rethrow the region's rt::Cancelled: the job produces nothing.
  Abort,

  /// Keep whatever records finished mapping and run shuffle + reduce over
  /// them. Members stop at chunk boundaries only, so every kept record is
  /// whole — the salvaged output equals a full run of the job over
  /// exactly the completed record set (never a torn record, and grouping
  /// order stays the deterministic worker-order scan).
  Salvage,
};

/// Outcome metadata of one Job::run, for callers that opt into deadlines,
/// a shuffle memory budget, or tracing.
struct RunReport {
  bool deadline_hit = false;  // map cut short (deadline or cancel token)
  std::int64_t mapped_records = 0;  // records fully mapped into the output
  std::int64_t total_records = 0;

  // Spillable-shuffle accounting (zero unless memory_budget_bytes is set
  // and the budget actually forced spills).
  std::int64_t spilled_runs = 0;   // shuffle run files written
  std::int64_t spilled_bytes = 0;  // bytes those runs held on disk

  // Region profiles when Job::traced() is on (SpillEvent / MergeEvent
  // records land here alongside the usual chunk timeline).
  std::shared_ptr<const rt::RunProfile> map_profile;
  std::shared_ptr<const rt::RunProfile> reduce_profile;
};

/// Collects the (key, value) pairs a mapper emits. Workers reuse one
/// Emitter across records (clear() keeps the capacity), so steady-state
/// mapping does not allocate per record.
template <class K, class V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  /// Drop the collected pairs but keep the buffer's capacity.
  void clear() { pairs_.clear(); }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// An in-memory, multi-threaded MapReduce job, after the model in the
/// course's Assignment 5 reading ("Introduction to Parallel Programming
/// and MapReduce"): map over input records, shuffle by key, reduce each
/// key's value list.
///
/// K1/V1: input key/value. K2/V2: intermediate. VOut: reducer output
/// (defaults to V2). K2 must be hashable (std::hash) and ordered
/// (operator<); output is sorted by key, so runs are deterministic.
template <class K1, class V1, class K2, class V2, class VOut = V2>
class Job {
 public:
  using MapFn = std::function<void(const K1&, const V1&, Emitter<K2, V2>&)>;
  using ReduceFn = std::function<VOut(const K2&, const std::vector<V2>&)>;
  using CombineFn = std::function<V2(const K2&, const std::vector<V2>&)>;

  Job& map(MapFn fn) {
    map_fn_ = std::move(fn);
    return *this;
  }
  Job& reduce(ReduceFn fn) {
    reduce_fn_ = std::move(fn);
    return *this;
  }

  /// Optional combiner: pre-reduces each map worker's local output before
  /// the shuffle (must be associative/commutative in the usual way).
  Job& combine(CombineFn fn) {
    combine_fn_ = std::move(fn);
    return *this;
  }

  /// Worker count; 0 (the default) means one worker per hardware thread
  /// (rt::hardware_threads()), resolved at run().
  Job& threads(int count) {
    util::require(count >= 0,
                  "Job::threads: count must be >= 0 (0 = hardware threads)");
    num_threads_ = count;
    return *this;
  }

  /// Partition count; 0 (the default) means one partition per worker
  /// thread, resolved at run() — more partitions than reducers only adds
  /// shuffle overhead, fewer starves the reduce phase.
  Job& reducers(int count) {
    util::require(
        count >= 0,
        "Job::reducers: count must be >= 0 (0 = one per worker thread)");
    num_reducers_ = count;
    return *this;
  }

  /// Cap the shuffle's in-memory working set: once the map phase's
  /// buffered (key, value) pairs exceed `bytes` across all workers (each
  /// worker tracks budget/threads of it), every worker spills its sorted
  /// buckets to scratch run files and the reduce phase streams a k-way
  /// merge over runs + leftovers instead of flattening in memory. Output
  /// is byte-identical to the unbudgeted path. Not calling this (the
  /// default) keeps the shuffle fully in memory; a zero or negative
  /// budget is rejected loudly rather than silently meaning "unlimited" —
  /// derive one with oocore::budget_from_multiplier if you want
  /// "fraction of the dataset" semantics.
  Job& memory_budget_bytes(std::int64_t bytes) {
    util::require(bytes > 0,
                  "Job::memory_budget_bytes: budget must be > 0 bytes (do "
                  "not call it to keep the shuffle fully in memory)");
    shuffle_budget_bytes_ = bytes;
    return *this;
  }

  /// Seeded I/O fault injection (short writes, slow reads) applied to
  /// every spill file this job writes or merges — exercises the oocore
  /// retry paths deterministically.
  Job& io_chaos(oocore::IoChaos chaos) {
    chaos.validate();
    io_chaos_ = chaos;
    return *this;
  }

  /// Record rt traces for the map and reduce regions into
  /// RunReport::map_profile / reduce_profile; spill and merge activity
  /// shows up there as SpillEvent / MergeEvent rows.
  Job& traced(bool on = true) {
    traced_ = on;
    return *this;
  }

  /// Job-level budget in host seconds, enforced cooperatively at
  /// chunk-claim boundaries of the map phase; what happens when it fires
  /// is `policy`. With Abort, a map phase that finishes in time passes
  /// the remaining budget on to the reduce phase; with Salvage, the
  /// shuffle/reduce over the kept records always runs to completion (a
  /// salvaged job must still yield a usable result).
  Job& deadline(double seconds, DeadlinePolicy policy = DeadlinePolicy::Abort) {
    util::require(std::isfinite(seconds) && seconds > 0.0,
                  "Job::deadline: need a finite deadline > 0");
    deadline_s_ = seconds;
    deadline_policy_ = policy;
    return *this;
  }

  /// Policy applied when the deadline *or* the cancel token cuts the map
  /// phase, without arming a deadline — lets a purely token-cancellable
  /// job opt into Salvage. deadline() sets the same policy; whichever is
  /// called last wins.
  Job& cut_policy(DeadlinePolicy policy) {
    deadline_policy_ = policy;
    return *this;
  }

  /// External cooperative cancellation, polled at the map phase's
  /// chunk-claim boundaries like a deadline. The deadline policy decides
  /// what a fired token means: Abort rethrows rt::Cancelled (and also
  /// arms the token on the reduce phase); Salvage keeps the fully-mapped
  /// records and always finishes shuffle + reduce over them —
  /// RunReport::deadline_hit covers both a deadline and a token firing.
  Job& cancellable(rt::CancelToken token) {
    util::require(token.valid(),
                  "Job::cancellable: token is not connected to a "
                  "CancelSource (default-constructed tokens never fire)");
    cancel_token_ = std::move(token);
    return *this;
  }

  /// Execute the job over `inputs` and return (key, reduced value) pairs
  /// sorted by key.
  std::vector<std::pair<K2, VOut>> run(
      const std::vector<std::pair<K1, V1>>& inputs) const {
    return run(inputs, nullptr);
  }

  /// run() that also reports how the deadline played out. `report` may be
  /// null; it is only written on successful return (an Abort that fires
  /// throws rt::Cancelled instead).
  std::vector<std::pair<K2, VOut>> run(
      const std::vector<std::pair<K1, V1>>& inputs, RunReport* report) const {
    util::require(map_fn_ != nullptr, "Job::run: map function not set");
    util::require(reduce_fn_ != nullptr, "Job::run: reduce function not set");
    const auto job_start = std::chrono::steady_clock::now();

    const int threads =
        num_threads_ > 0 ? num_threads_ : rt::hardware_threads();
    const int reducers = num_reducers_ > 0 ? num_reducers_ : threads;

    // --- Map phase: each worker fills its own per-partition buckets, so
    // there is no shared mutable state across threads (CP.3). Records are
    // dealt by work stealing: expensive records (long documents, heavy
    // parses) stop being a tail-latency problem because idle workers
    // migrate the remaining chunks.
    using Bucket = std::vector<std::pair<K2, V2>>;
    std::vector<std::vector<Bucket>> worker_buckets(
        static_cast<std::size_t>(threads),
        std::vector<Bucket>(static_cast<std::size_t>(reducers)));

    // Both phases (and every job this process runs after this one) share
    // the persistent host worker pool: warming it here moves one-time
    // thread creation out of the map phase, so a job's cost is map +
    // shuffle + reduce, not spawn + map + spawn + shuffle + reduce.
    rt::ParallelConfig map_config = rt::ParallelConfig::host(threads);
    if (deadline_s_ > 0.0) {
      map_config = map_config.deadline(deadline_s_);
    }
    if (cancel_token_.valid()) {
      map_config = map_config.cancellable(cancel_token_);
    }
    if (traced_) {
      map_config = map_config.traced();
    }
    rt::warm_up(map_config);

    // Spillable-shuffle state. The ScratchDir guard owns every run file
    // this job writes: normal return, a thrown rt::Cancelled (Abort) and
    // any I/O error all unwind through it, so a cancel drain never strands
    // spill files on disk.
    const bool spilling = shuffle_budget_bytes_ > 0;
    const std::int64_t worker_budget =
        spilling ? std::max<std::int64_t>(shuffle_budget_bytes_ / threads, 1)
                 : 0;
    std::optional<oocore::ScratchDir> scratch;
    std::vector<std::vector<std::vector<ShuffleRun>>> worker_runs;
    if (spilling) {
      scratch.emplace("pblpar-shuffle");
      worker_runs.assign(
          static_cast<std::size_t>(threads),
          std::vector<std::vector<ShuffleRun>>(
              static_cast<std::size_t>(reducers)));
    }
    std::atomic<std::int64_t> spilled_runs{0};
    std::atomic<std::int64_t> spilled_bytes{0};

    bool deadline_hit = false;
    std::int64_t mapped_records = static_cast<std::int64_t>(inputs.size());
    std::shared_ptr<const rt::RunProfile> map_profile;
    try {
      rt::RunResult mapped = rt::parallel(map_config, [&](rt::TeamContext&
                                                              tc) {
        const auto tid = static_cast<std::size_t>(tc.thread_num());
        auto& buckets = worker_buckets[tid];
        Emitter<K2, V2> emitter;  // reused: clear() keeps the capacity
        // When a budget is armed the first-record reserve() is skipped:
        // its estimate assumes the whole input's emissions stay resident,
        // which is exactly what the budget forbids.
        bool reserved = spilling;
        std::int64_t buffered_bytes = 0;
        std::uint64_t spill_seq = 0;
        const std::uint64_t worker_salt = static_cast<std::uint64_t>(tid)
                                          << 32;

        // Spill every non-empty bucket as one sorted (combined, if a
        // combiner is set) run file per partition, then reset the byte
        // account. Each run is individually key-stable-sorted, and runs
        // are replayed in (worker, spill order, leftover-last) order at
        // reduce time — concatenating them reproduces this worker's
        // emission order, which is what makes the merged shuffle
        // byte-identical to the in-memory flatten-then-stable_sort.
        const auto spill_worker = [&]() {
          const double start_s = tc.trace_now();
          std::int64_t batch_runs = 0;
          std::int64_t batch_records = 0;
          std::int64_t batch_bytes = 0;
          for (std::size_t p = 0; p < buckets.size(); ++p) {
            auto& bucket = buckets[p];
            if (bucket.empty()) {
              continue;
            }
            if (combine_fn_ != nullptr) {
              bucket = combine_bucket(std::move(bucket));  // key-sorted out
            } else {
              std::stable_sort(bucket.begin(), bucket.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               });
            }
            ShuffleRun run;
            run.path = scratch->next_path("shuffle");
            oocore::SpillWriter sink(run.path, kSpillBufferBytes, io_chaos_,
                                     worker_salt + spill_seq);
            oocore::RunWriter<std::pair<K2, V2>> writer(sink);
            for (const auto& pair : bucket) {
              writer.push(pair);
            }
            sink.close();
            run.records = writer.records();
            run.bytes = sink.bytes_written();
            batch_runs += 1;
            batch_records += run.records;
            batch_bytes += run.bytes;
            worker_runs[tid][p].push_back(std::move(run));
            ++spill_seq;
            bucket.clear();  // keeps capacity: the worker's working set
          }
          buffered_bytes = 0;
          spilled_runs.fetch_add(batch_runs, std::memory_order_relaxed);
          spilled_bytes.fetch_add(batch_bytes, std::memory_order_relaxed);
          if (rt::TraceRecorder* tracer = tc.tracer()) {
            tracer->record_spill(tc.thread_num(), "shuffle", batch_records,
                                 batch_bytes, start_s, tc.trace_now());
          }
        };

        rt::for_each(
            tc, rt::Range::upto(static_cast<std::int64_t>(inputs.size())),
            rt::Schedule::steal(), [&](std::int64_t i) {
              const auto& [key, value] = inputs[static_cast<std::size_t>(i)];
              emitter.clear();
              map_fn_(key, value, emitter);
              if (!reserved && !emitter.pairs().empty()) {
                // First-record estimate: assume every record emits about
                // this many pairs, this worker maps ~1/threads of the
                // input, and the hash spreads pairs evenly over buckets.
                reserved = true;
                const std::size_t estimate =
                    emitter.pairs().size() *
                        (inputs.size() / static_cast<std::size_t>(threads) +
                         1) /
                        static_cast<std::size_t>(reducers) +
                    1;
                for (auto& bucket : buckets) {
                  bucket.reserve(estimate);
                }
              }
              for (auto& [k2, v2] : emitter.pairs()) {
                const std::size_t partition =
                    std::hash<K2>{}(k2) % static_cast<std::size_t>(reducers);
                if (spilling) {
                  buffered_bytes += static_cast<std::int64_t>(
                      oocore::approx_bytes(k2) + oocore::approx_bytes(v2));
                }
                buckets[partition].emplace_back(std::move(k2), std::move(v2));
              }
              // Checked per record, not per pair: the budget overshoot is
              // bounded by a single record's emissions.
              if (spilling && buffered_bytes >= worker_budget) {
                spill_worker();
              }
            });
        if (combine_fn_ != nullptr) {
          for (auto& bucket : buckets) {
            bucket = combine_bucket(std::move(bucket));
          }
        }
      });
      map_profile = mapped.profile;
    } catch (const rt::Cancelled& cancelled) {
      if (deadline_policy_ == DeadlinePolicy::Abort) {
        throw;  // ~ScratchDir drops any runs spilled before the cut
      }
      // Salvage: each record's emissions land in the buckets within its
      // own iteration and members only stop at chunk boundaries, so the
      // buckets hold exactly the completed records — never a torn one.
      // The for_each end barrier gates the combiner, so no worker
      // combined before the drain; skipping the combiner outright keeps
      // every leftover bucket in the same (uncombined) state, which the
      // reducer handles anyway. Runs spilled before the cut were combined
      // at spill time — also fine, the reducer accepts mixed states.
      deadline_hit = true;
      mapped_records = cancelled.total_completed();
      map_profile = cancelled.profile();
    }

    // --- Shuffle + reduce phase: one task per partition, in parallel.
    std::vector<std::vector<std::pair<K2, VOut>>> partition_outputs(
        static_cast<std::size_t>(reducers));
    rt::ParallelConfig reduce_config =
        rt::ParallelConfig::host(std::min(threads, reducers));
    if (cancel_token_.valid() &&
        deadline_policy_ == DeadlinePolicy::Abort) {
      // Salvage promises a usable result, so only Abort lets the token
      // cut the reduce phase too.
      reduce_config = reduce_config.cancellable(cancel_token_);
    }
    if (deadline_s_ > 0.0 && deadline_policy_ == DeadlinePolicy::Abort) {
      // Pass what is left of the budget to the reduce phase; an already
      // overspent budget cancels at the first chunk boundary.
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - job_start)
                                 .count();
      reduce_config =
          reduce_config.deadline(std::max(deadline_s_ - elapsed, 1e-9));
    }
    if (traced_) {
      reduce_config = reduce_config.traced();
    }
    rt::RunResult reduced_result = rt::parallel(reduce_config, [&](
                                                    rt::TeamContext& tc) {
      rt::for_loop(
          tc, rt::Range::upto(reducers), rt::Schedule::dynamic(1),
          [&](std::int64_t p) {
            partition_outputs[static_cast<std::size_t>(p)] =
                spilling ? reduce_partition_spilled(
                               tc, worker_buckets, worker_runs,
                               static_cast<std::size_t>(p), worker_budget)
                         : reduce_partition(worker_buckets,
                                            static_cast<std::size_t>(p));
          });
    });

    // --- Merge: every partition is already key-sorted (the shuffle sorts
    // it), so a balanced merge cascade — O(n log k) comparisons instead
    // of re-sorting the concatenation — yields the same sorted output.
    // Hash partitioning keeps key sets disjoint across partitions, so the
    // merged order is exactly the old concatenate-and-sort order.
    while (partition_outputs.size() > 1) {
      std::vector<std::vector<std::pair<K2, VOut>>> next;
      next.reserve((partition_outputs.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < partition_outputs.size(); i += 2) {
        auto& left = partition_outputs[i];
        auto& right = partition_outputs[i + 1];
        std::vector<std::pair<K2, VOut>> merged;
        merged.reserve(left.size() + right.size());
        std::merge(
            std::make_move_iterator(left.begin()),
            std::make_move_iterator(left.end()),
            std::make_move_iterator(right.begin()),
            std::make_move_iterator(right.end()), std::back_inserter(merged),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        next.push_back(std::move(merged));
      }
      if (partition_outputs.size() % 2 == 1) {
        next.push_back(std::move(partition_outputs.back()));
      }
      partition_outputs = std::move(next);
    }
    if (report != nullptr) {
      report->deadline_hit = deadline_hit;
      report->mapped_records = mapped_records;
      report->total_records = static_cast<std::int64_t>(inputs.size());
      report->spilled_runs = spilled_runs.load(std::memory_order_relaxed);
      report->spilled_bytes = spilled_bytes.load(std::memory_order_relaxed);
      report->map_profile = std::move(map_profile);
      report->reduce_profile = reduced_result.profile;
    }
    return std::move(partition_outputs.front());
  }

 private:
  using BucketT = std::vector<std::pair<K2, V2>>;

  /// One spilled shuffle run: a key-stable-sorted slice of a single
  /// worker's output for a single partition.
  struct ShuffleRun {
    std::filesystem::path path;
    std::int64_t records = 0;
    std::int64_t bytes = 0;
  };

  /// Buffered-I/O block size for spill writes. Reads derive theirs from
  /// the worker budget and fan-in in reduce_partition_spilled.
  static constexpr std::size_t kSpillBufferBytes = std::size_t{128} << 10;

  /// Sort-then-run-length grouping over a flat pair vector: the shuffle
  /// core shared by the combiner and the reducer. stable_sort keeps equal
  /// keys in emission order, so each key's value list is byte-identical
  /// to what the old std::map<K2, std::vector<V2>> grouping produced,
  /// without one node allocation per key.
  template <class Fn, class Out>
  static void group_and_apply(std::vector<std::pair<K2, V2>>& flat,
                              const Fn& fn, std::vector<Out>& out) {
    std::stable_sort(
        flat.begin(), flat.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<V2> values;
    std::size_t i = 0;
    while (i < flat.size()) {
      std::size_t j = i;
      values.clear();
      while (j < flat.size() && !(flat[i].first < flat[j].first)) {
        values.push_back(std::move(flat[j].second));
        ++j;
      }
      auto result = fn(flat[i].first, values);
      out.emplace_back(std::move(flat[i].first), std::move(result));
      i = j;
    }
  }

  BucketT combine_bucket(BucketT bucket) const {
    BucketT combined;
    group_and_apply(bucket, combine_fn_, combined);
    return combined;
  }

  std::vector<std::pair<K2, VOut>> reduce_partition(
      std::vector<std::vector<BucketT>>& worker_buckets,
      std::size_t partition) const {
    // Flatten this partition's slice of every worker's output in worker
    // order — the same scan order the map-based shuffle grouped in.
    std::vector<std::pair<K2, V2>> flat;
    std::size_t total = 0;
    for (const auto& buckets : worker_buckets) {
      total += buckets[partition].size();
    }
    flat.reserve(total);
    for (auto& buckets : worker_buckets) {
      flat.insert(flat.end(),
                  std::make_move_iterator(buckets[partition].begin()),
                  std::make_move_iterator(buckets[partition].end()));
    }
    std::vector<std::pair<K2, VOut>> reduced;
    group_and_apply(flat, reduce_fn_, reduced);
    return reduced;
  }

  /// Spill-aware reduce of one partition: a loser-tree merge over this
  /// partition's run files (in worker order, then each worker's spill
  /// order) plus each worker's in-memory leftover bucket as the worker's
  /// final source. Every source is individually key-stable-sorted and the
  /// tree breaks ties by lower source index, so the merged stream equals
  /// a stable_sort of the worker-order concatenation — i.e. exactly what
  /// reduce_partition's flatten + group_and_apply sees, record for
  /// record. The grouping below is group_and_apply's run-length loop in
  /// streaming form, so the reduced output is byte-identical.
  std::vector<std::pair<K2, VOut>> reduce_partition_spilled(
      rt::TeamContext& tc, std::vector<std::vector<BucketT>>& worker_buckets,
      const std::vector<std::vector<std::vector<ShuffleRun>>>& worker_runs,
      std::size_t partition, std::int64_t worker_budget) const {
    using P = std::pair<K2, V2>;
    struct PairSource {
      virtual ~PairSource() = default;
      virtual bool pull(P* out) = 0;
    };
    struct FileSource final : PairSource {
      oocore::SpillReader bytes;
      oocore::RunReader<P> records;
      FileSource(const std::filesystem::path& path, std::size_t buffer_bytes,
                 const oocore::IoChaos& chaos, std::uint64_t salt)
          : bytes(path, buffer_bytes, chaos, salt), records(bytes) {}
      bool pull(P* out) override { return records.pull(out); }
    };
    struct VecSource final : PairSource {
      BucketT* vec;
      std::size_t i = 0;
      explicit VecSource(BucketT* v) : vec(v) {}
      bool pull(P* out) override {
        if (i >= vec->size()) {
          return false;
        }
        *out = std::move((*vec)[i++]);
        return true;
      }
    };

    std::size_t file_count = 0;
    for (const auto& runs : worker_runs) {
      file_count += runs[partition].size();
    }
    // One merging partition per worker at a time, so the open runs' read
    // buffers must share this worker's slice of the budget.
    const std::size_t buffer_bytes = std::clamp<std::size_t>(
        static_cast<std::size_t>(worker_budget) /
            std::max<std::size_t>(file_count, 1),
        std::size_t{4} << 10, std::size_t{128} << 10);

    const double start_s = tc.trace_now();
    std::vector<std::unique_ptr<PairSource>> sources;
    std::int64_t in_bytes = 0;
    std::uint64_t salt = partition << 16;
    for (std::size_t w = 0; w < worker_runs.size(); ++w) {
      for (const ShuffleRun& run : worker_runs[w][partition]) {
        sources.push_back(std::make_unique<FileSource>(
            run.path, buffer_bytes, io_chaos_, salt++));
        in_bytes += run.bytes;
      }
      BucketT& leftover = worker_buckets[w][partition];
      // Leftovers may be unsorted (no combiner, or a salvaged cut):
      // stable_sort puts each on the same footing as a spilled run.
      std::stable_sort(
          leftover.begin(), leftover.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (!leftover.empty()) {
        sources.push_back(std::make_unique<VecSource>(&leftover));
      }
    }
    std::vector<PairSource*> source_ptrs;
    source_ptrs.reserve(sources.size());
    for (const auto& source : sources) {
      source_ptrs.push_back(source.get());
    }
    const auto key_less = [](const P& a, const P& b) {
      return a.first < b.first;
    };
    oocore::LoserTree<P, PairSource, decltype(key_less)> tree(
        std::move(source_ptrs), key_less);

    std::vector<std::pair<K2, VOut>> reduced;
    std::vector<V2> values;
    std::int64_t merged_records = 0;
    P record;
    bool have = tree.pop(&record);
    while (have) {
      ++merged_records;
      K2 key = std::move(record.first);
      values.clear();
      values.push_back(std::move(record.second));
      while ((have = tree.pop(&record)) && !(key < record.first)) {
        ++merged_records;
        values.push_back(std::move(record.second));
      }
      auto result = reduce_fn_(key, values);
      reduced.emplace_back(std::move(key), std::move(result));
    }
    if (file_count > 0) {
      if (rt::TraceRecorder* tracer = tc.tracer()) {
        tracer->record_merge(tc.thread_num(),
                             static_cast<int>(sources.size()), merged_records,
                             in_bytes, start_s, tc.trace_now());
      }
    }
    return reduced;
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combine_fn_;
  int num_threads_ = 0;   // 0 = rt::hardware_threads() at run()
  int num_reducers_ = 0;  // 0 = one partition per worker thread at run()
  double deadline_s_ = 0.0;  // 0 = no deadline
  DeadlinePolicy deadline_policy_ = DeadlinePolicy::Abort;
  rt::CancelToken cancel_token_;  // invalid = not externally cancellable
  std::int64_t shuffle_budget_bytes_ = 0;  // 0 = fully in-memory shuffle
  oocore::IoChaos io_chaos_;               // applied to spill files only
  bool traced_ = false;
};

}  // namespace pblpar::mapreduce
