#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::mapreduce {

/// What a Job does when its deadline fires during the map phase.
enum class DeadlinePolicy {
  /// Rethrow the region's rt::Cancelled: the job produces nothing.
  Abort,

  /// Keep whatever records finished mapping and run shuffle + reduce over
  /// them. Members stop at chunk boundaries only, so every kept record is
  /// whole — the salvaged output equals a full run of the job over
  /// exactly the completed record set (never a torn record, and grouping
  /// order stays the deterministic worker-order scan).
  Salvage,
};

/// Outcome metadata of one Job::run, for callers that opt into deadlines.
struct RunReport {
  bool deadline_hit = false;  // map cut short (deadline or cancel token)
  std::int64_t mapped_records = 0;  // records fully mapped into the output
  std::int64_t total_records = 0;
};

/// Collects the (key, value) pairs a mapper emits. Workers reuse one
/// Emitter across records (clear() keeps the capacity), so steady-state
/// mapping does not allocate per record.
template <class K, class V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  /// Drop the collected pairs but keep the buffer's capacity.
  void clear() { pairs_.clear(); }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// An in-memory, multi-threaded MapReduce job, after the model in the
/// course's Assignment 5 reading ("Introduction to Parallel Programming
/// and MapReduce"): map over input records, shuffle by key, reduce each
/// key's value list.
///
/// K1/V1: input key/value. K2/V2: intermediate. VOut: reducer output
/// (defaults to V2). K2 must be hashable (std::hash) and ordered
/// (operator<); output is sorted by key, so runs are deterministic.
template <class K1, class V1, class K2, class V2, class VOut = V2>
class Job {
 public:
  using MapFn = std::function<void(const K1&, const V1&, Emitter<K2, V2>&)>;
  using ReduceFn = std::function<VOut(const K2&, const std::vector<V2>&)>;
  using CombineFn = std::function<V2(const K2&, const std::vector<V2>&)>;

  Job& map(MapFn fn) {
    map_fn_ = std::move(fn);
    return *this;
  }
  Job& reduce(ReduceFn fn) {
    reduce_fn_ = std::move(fn);
    return *this;
  }

  /// Optional combiner: pre-reduces each map worker's local output before
  /// the shuffle (must be associative/commutative in the usual way).
  Job& combine(CombineFn fn) {
    combine_fn_ = std::move(fn);
    return *this;
  }

  /// Worker count; 0 (the default) means one worker per hardware thread
  /// (rt::hardware_threads()), resolved at run().
  Job& threads(int count) {
    util::require(count >= 0,
                  "Job::threads: count must be >= 0 (0 = hardware threads)");
    num_threads_ = count;
    return *this;
  }

  /// Partition count; 0 (the default) means one partition per worker
  /// thread, resolved at run() — more partitions than reducers only adds
  /// shuffle overhead, fewer starves the reduce phase.
  Job& reducers(int count) {
    util::require(
        count >= 0,
        "Job::reducers: count must be >= 0 (0 = one per worker thread)");
    num_reducers_ = count;
    return *this;
  }

  /// Job-level budget in host seconds, enforced cooperatively at
  /// chunk-claim boundaries of the map phase; what happens when it fires
  /// is `policy`. With Abort, a map phase that finishes in time passes
  /// the remaining budget on to the reduce phase; with Salvage, the
  /// shuffle/reduce over the kept records always runs to completion (a
  /// salvaged job must still yield a usable result).
  Job& deadline(double seconds, DeadlinePolicy policy = DeadlinePolicy::Abort) {
    util::require(std::isfinite(seconds) && seconds > 0.0,
                  "Job::deadline: need a finite deadline > 0");
    deadline_s_ = seconds;
    deadline_policy_ = policy;
    return *this;
  }

  /// Policy applied when the deadline *or* the cancel token cuts the map
  /// phase, without arming a deadline — lets a purely token-cancellable
  /// job opt into Salvage. deadline() sets the same policy; whichever is
  /// called last wins.
  Job& cut_policy(DeadlinePolicy policy) {
    deadline_policy_ = policy;
    return *this;
  }

  /// External cooperative cancellation, polled at the map phase's
  /// chunk-claim boundaries like a deadline. The deadline policy decides
  /// what a fired token means: Abort rethrows rt::Cancelled (and also
  /// arms the token on the reduce phase); Salvage keeps the fully-mapped
  /// records and always finishes shuffle + reduce over them —
  /// RunReport::deadline_hit covers both a deadline and a token firing.
  Job& cancellable(rt::CancelToken token) {
    util::require(token.valid(),
                  "Job::cancellable: token is not connected to a "
                  "CancelSource (default-constructed tokens never fire)");
    cancel_token_ = std::move(token);
    return *this;
  }

  /// Execute the job over `inputs` and return (key, reduced value) pairs
  /// sorted by key.
  std::vector<std::pair<K2, VOut>> run(
      const std::vector<std::pair<K1, V1>>& inputs) const {
    return run(inputs, nullptr);
  }

  /// run() that also reports how the deadline played out. `report` may be
  /// null; it is only written on successful return (an Abort that fires
  /// throws rt::Cancelled instead).
  std::vector<std::pair<K2, VOut>> run(
      const std::vector<std::pair<K1, V1>>& inputs, RunReport* report) const {
    util::require(map_fn_ != nullptr, "Job::run: map function not set");
    util::require(reduce_fn_ != nullptr, "Job::run: reduce function not set");
    const auto job_start = std::chrono::steady_clock::now();

    const int threads =
        num_threads_ > 0 ? num_threads_ : rt::hardware_threads();
    const int reducers = num_reducers_ > 0 ? num_reducers_ : threads;

    // --- Map phase: each worker fills its own per-partition buckets, so
    // there is no shared mutable state across threads (CP.3). Records are
    // dealt by work stealing: expensive records (long documents, heavy
    // parses) stop being a tail-latency problem because idle workers
    // migrate the remaining chunks.
    using Bucket = std::vector<std::pair<K2, V2>>;
    std::vector<std::vector<Bucket>> worker_buckets(
        static_cast<std::size_t>(threads),
        std::vector<Bucket>(static_cast<std::size_t>(reducers)));

    // Both phases (and every job this process runs after this one) share
    // the persistent host worker pool: warming it here moves one-time
    // thread creation out of the map phase, so a job's cost is map +
    // shuffle + reduce, not spawn + map + spawn + shuffle + reduce.
    rt::ParallelConfig map_config = rt::ParallelConfig::host(threads);
    if (deadline_s_ > 0.0) {
      map_config = map_config.deadline(deadline_s_);
    }
    if (cancel_token_.valid()) {
      map_config = map_config.cancellable(cancel_token_);
    }
    rt::warm_up(map_config);
    bool deadline_hit = false;
    std::int64_t mapped_records = static_cast<std::int64_t>(inputs.size());
    try {
      rt::parallel(map_config, [&](rt::TeamContext& tc) {
        auto& buckets =
            worker_buckets[static_cast<std::size_t>(tc.thread_num())];
        Emitter<K2, V2> emitter;  // reused: clear() keeps the capacity
        bool reserved = false;
        rt::for_each(
            tc, rt::Range::upto(static_cast<std::int64_t>(inputs.size())),
            rt::Schedule::steal(), [&](std::int64_t i) {
              const auto& [key, value] = inputs[static_cast<std::size_t>(i)];
              emitter.clear();
              map_fn_(key, value, emitter);
              if (!reserved && !emitter.pairs().empty()) {
                // First-record estimate: assume every record emits about
                // this many pairs, this worker maps ~1/threads of the
                // input, and the hash spreads pairs evenly over buckets.
                reserved = true;
                const std::size_t estimate =
                    emitter.pairs().size() *
                        (inputs.size() / static_cast<std::size_t>(threads) +
                         1) /
                        static_cast<std::size_t>(reducers) +
                    1;
                for (auto& bucket : buckets) {
                  bucket.reserve(estimate);
                }
              }
              for (auto& [k2, v2] : emitter.pairs()) {
                const std::size_t partition =
                    std::hash<K2>{}(k2) % static_cast<std::size_t>(reducers);
                buckets[partition].emplace_back(std::move(k2), std::move(v2));
              }
            });
        if (combine_fn_ != nullptr) {
          for (auto& bucket : buckets) {
            bucket = combine_bucket(std::move(bucket));
          }
        }
      });
    } catch (const rt::Cancelled& cancelled) {
      if (deadline_policy_ == DeadlinePolicy::Abort) {
        throw;
      }
      // Salvage: each record's emissions land in the buckets within its
      // own iteration and members only stop at chunk boundaries, so the
      // buckets hold exactly the completed records — never a torn one.
      // The for_each end barrier gates the combiner, so no worker
      // combined before the drain; skipping the combiner outright keeps
      // every bucket in the same (uncombined) state, which the reducer
      // handles anyway.
      deadline_hit = true;
      mapped_records = cancelled.total_completed();
    }

    // --- Shuffle + reduce phase: one task per partition, in parallel.
    std::vector<std::vector<std::pair<K2, VOut>>> partition_outputs(
        static_cast<std::size_t>(reducers));
    rt::ParallelConfig reduce_config =
        rt::ParallelConfig::host(std::min(threads, reducers));
    if (cancel_token_.valid() &&
        deadline_policy_ == DeadlinePolicy::Abort) {
      // Salvage promises a usable result, so only Abort lets the token
      // cut the reduce phase too.
      reduce_config = reduce_config.cancellable(cancel_token_);
    }
    if (deadline_s_ > 0.0 && deadline_policy_ == DeadlinePolicy::Abort) {
      // Pass what is left of the budget to the reduce phase; an already
      // overspent budget cancels at the first chunk boundary.
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - job_start)
                                 .count();
      reduce_config =
          reduce_config.deadline(std::max(deadline_s_ - elapsed, 1e-9));
    }
    rt::parallel(reduce_config, [&](rt::TeamContext& tc) {
      rt::for_loop(tc, rt::Range::upto(reducers), rt::Schedule::dynamic(1),
                   [&](std::int64_t p) {
                     partition_outputs[static_cast<std::size_t>(p)] =
                         reduce_partition(worker_buckets,
                                          static_cast<std::size_t>(p));
                   });
    });

    // --- Merge: every partition is already key-sorted (the shuffle sorts
    // it), so a balanced merge cascade — O(n log k) comparisons instead
    // of re-sorting the concatenation — yields the same sorted output.
    // Hash partitioning keeps key sets disjoint across partitions, so the
    // merged order is exactly the old concatenate-and-sort order.
    while (partition_outputs.size() > 1) {
      std::vector<std::vector<std::pair<K2, VOut>>> next;
      next.reserve((partition_outputs.size() + 1) / 2);
      for (std::size_t i = 0; i + 1 < partition_outputs.size(); i += 2) {
        auto& left = partition_outputs[i];
        auto& right = partition_outputs[i + 1];
        std::vector<std::pair<K2, VOut>> merged;
        merged.reserve(left.size() + right.size());
        std::merge(
            std::make_move_iterator(left.begin()),
            std::make_move_iterator(left.end()),
            std::make_move_iterator(right.begin()),
            std::make_move_iterator(right.end()), std::back_inserter(merged),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        next.push_back(std::move(merged));
      }
      if (partition_outputs.size() % 2 == 1) {
        next.push_back(std::move(partition_outputs.back()));
      }
      partition_outputs = std::move(next);
    }
    if (report != nullptr) {
      report->deadline_hit = deadline_hit;
      report->mapped_records = mapped_records;
      report->total_records = static_cast<std::int64_t>(inputs.size());
    }
    return std::move(partition_outputs.front());
  }

 private:
  using BucketT = std::vector<std::pair<K2, V2>>;

  /// Sort-then-run-length grouping over a flat pair vector: the shuffle
  /// core shared by the combiner and the reducer. stable_sort keeps equal
  /// keys in emission order, so each key's value list is byte-identical
  /// to what the old std::map<K2, std::vector<V2>> grouping produced,
  /// without one node allocation per key.
  template <class Fn, class Out>
  static void group_and_apply(std::vector<std::pair<K2, V2>>& flat,
                              const Fn& fn, std::vector<Out>& out) {
    std::stable_sort(
        flat.begin(), flat.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<V2> values;
    std::size_t i = 0;
    while (i < flat.size()) {
      std::size_t j = i;
      values.clear();
      while (j < flat.size() && !(flat[i].first < flat[j].first)) {
        values.push_back(std::move(flat[j].second));
        ++j;
      }
      auto result = fn(flat[i].first, values);
      out.emplace_back(std::move(flat[i].first), std::move(result));
      i = j;
    }
  }

  BucketT combine_bucket(BucketT bucket) const {
    BucketT combined;
    group_and_apply(bucket, combine_fn_, combined);
    return combined;
  }

  std::vector<std::pair<K2, VOut>> reduce_partition(
      std::vector<std::vector<BucketT>>& worker_buckets,
      std::size_t partition) const {
    // Flatten this partition's slice of every worker's output in worker
    // order — the same scan order the map-based shuffle grouped in.
    std::vector<std::pair<K2, V2>> flat;
    std::size_t total = 0;
    for (const auto& buckets : worker_buckets) {
      total += buckets[partition].size();
    }
    flat.reserve(total);
    for (auto& buckets : worker_buckets) {
      flat.insert(flat.end(),
                  std::make_move_iterator(buckets[partition].begin()),
                  std::make_move_iterator(buckets[partition].end()));
    }
    std::vector<std::pair<K2, VOut>> reduced;
    group_and_apply(flat, reduce_fn_, reduced);
    return reduced;
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combine_fn_;
  int num_threads_ = 0;   // 0 = rt::hardware_threads() at run()
  int num_reducers_ = 0;  // 0 = one partition per worker thread at run()
  double deadline_s_ = 0.0;  // 0 = no deadline
  DeadlinePolicy deadline_policy_ = DeadlinePolicy::Abort;
  rt::CancelToken cancel_token_;  // invalid = not externally cancellable
};

}  // namespace pblpar::mapreduce
