#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "rt/parallel.hpp"
#include "util/error.hpp"

namespace pblpar::mapreduce {

/// Collects the (key, value) pairs a mapper emits.
template <class K, class V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// An in-memory, multi-threaded MapReduce job, after the model in the
/// course's Assignment 5 reading ("Introduction to Parallel Programming
/// and MapReduce"): map over input records, shuffle by key, reduce each
/// key's value list.
///
/// K1/V1: input key/value. K2/V2: intermediate. VOut: reducer output
/// (defaults to V2). K2 must be hashable (std::hash) and ordered
/// (operator<); output is sorted by key, so runs are deterministic.
template <class K1, class V1, class K2, class V2, class VOut = V2>
class Job {
 public:
  using MapFn = std::function<void(const K1&, const V1&, Emitter<K2, V2>&)>;
  using ReduceFn = std::function<VOut(const K2&, const std::vector<V2>&)>;
  using CombineFn = std::function<V2(const K2&, const std::vector<V2>&)>;

  Job& map(MapFn fn) {
    map_fn_ = std::move(fn);
    return *this;
  }
  Job& reduce(ReduceFn fn) {
    reduce_fn_ = std::move(fn);
    return *this;
  }

  /// Optional combiner: pre-reduces each map worker's local output before
  /// the shuffle (must be associative/commutative in the usual way).
  Job& combine(CombineFn fn) {
    combine_fn_ = std::move(fn);
    return *this;
  }

  /// Worker count; 0 (the default) means one worker per hardware thread
  /// (rt::hardware_threads()), resolved at run().
  Job& threads(int count) {
    util::require(count >= 0,
                  "Job::threads: count must be >= 0 (0 = hardware threads)");
    num_threads_ = count;
    return *this;
  }

  Job& reducers(int count) {
    util::require(count >= 1, "Job::reducers: need at least one partition");
    num_reducers_ = count;
    return *this;
  }

  /// Execute the job over `inputs` and return (key, reduced value) pairs
  /// sorted by key.
  std::vector<std::pair<K2, VOut>> run(
      const std::vector<std::pair<K1, V1>>& inputs) const {
    util::require(map_fn_ != nullptr, "Job::run: map function not set");
    util::require(reduce_fn_ != nullptr, "Job::run: reduce function not set");

    const int threads =
        num_threads_ > 0 ? num_threads_ : rt::hardware_threads();
    const int reducers = num_reducers_;

    // --- Map phase: each worker fills its own per-partition buckets, so
    // there is no shared mutable state across threads (CP.3).
    using Bucket = std::vector<std::pair<K2, V2>>;
    std::vector<std::vector<Bucket>> worker_buckets(
        static_cast<std::size_t>(threads),
        std::vector<Bucket>(static_cast<std::size_t>(reducers)));

    rt::ParallelConfig map_config = rt::ParallelConfig::host(threads);
    rt::parallel(map_config, [&](rt::TeamContext& tc) {
      auto& buckets = worker_buckets[static_cast<std::size_t>(tc.thread_num())];
      rt::for_loop(
          tc, rt::Range::upto(static_cast<std::int64_t>(inputs.size())),
          rt::Schedule::dynamic(8), [&](std::int64_t i) {
            const auto& [key, value] = inputs[static_cast<std::size_t>(i)];
            Emitter<K2, V2> emitter;
            map_fn_(key, value, emitter);
            for (auto& [k2, v2] : emitter.pairs()) {
              const std::size_t partition =
                  std::hash<K2>{}(k2) % static_cast<std::size_t>(reducers);
              buckets[partition].emplace_back(std::move(k2), std::move(v2));
            }
          });
      if (combine_fn_ != nullptr) {
        for (auto& bucket : buckets) {
          bucket = combine_bucket(bucket);
        }
      }
    });

    // --- Shuffle + reduce phase: one task per partition, in parallel.
    std::vector<std::vector<std::pair<K2, VOut>>> partition_outputs(
        static_cast<std::size_t>(reducers));
    rt::ParallelConfig reduce_config =
        rt::ParallelConfig::host(std::min(threads, reducers));
    rt::parallel(reduce_config, [&](rt::TeamContext& tc) {
      rt::for_loop(tc, rt::Range::upto(reducers), rt::Schedule::dynamic(1),
                   [&](std::int64_t p) {
                     partition_outputs[static_cast<std::size_t>(p)] =
                         reduce_partition(worker_buckets,
                                          static_cast<std::size_t>(p));
                   });
    });

    // --- Merge: concatenate and sort by key for deterministic output.
    std::vector<std::pair<K2, VOut>> output;
    for (auto& partition : partition_outputs) {
      output.insert(output.end(),
                    std::make_move_iterator(partition.begin()),
                    std::make_move_iterator(partition.end()));
    }
    std::sort(output.begin(), output.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return output;
  }

 private:
  using BucketT = std::vector<std::pair<K2, V2>>;

  BucketT combine_bucket(const BucketT& bucket) const {
    std::map<K2, std::vector<V2>> grouped;
    for (const auto& [key, value] : bucket) {
      grouped[key].push_back(value);
    }
    BucketT combined;
    combined.reserve(grouped.size());
    for (const auto& [key, values] : grouped) {
      combined.emplace_back(key, combine_fn_(key, values));
    }
    return combined;
  }

  std::vector<std::pair<K2, VOut>> reduce_partition(
      const std::vector<std::vector<BucketT>>& worker_buckets,
      std::size_t partition) const {
    std::map<K2, std::vector<V2>> grouped;
    for (const auto& buckets : worker_buckets) {
      for (const auto& [key, value] : buckets[partition]) {
        grouped[key].push_back(value);
      }
    }
    std::vector<std::pair<K2, VOut>> reduced;
    reduced.reserve(grouped.size());
    for (const auto& [key, values] : grouped) {
      reduced.emplace_back(key, reduce_fn_(key, values));
    }
    return reduced;
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combine_fn_;
  int num_threads_ = 0;  // 0 = rt::hardware_threads() at run()
  int num_reducers_ = 4;
};

}  // namespace pblpar::mapreduce
