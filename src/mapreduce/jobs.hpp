#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pblpar::mapreduce {

/// The canonical example computations from the Assignment 5 reading
/// ("Introduction to Parallel Programming and MapReduce"), each expressed
/// as a Job over string inputs. `threads = 0` (the default) sizes the
/// worker team to the host's hardware concurrency (rt::hardware_threads())
/// instead of a hard-coded width. The map/combine/reduce definitions live
/// in mapreduce/defs.hpp, shared with the distributed cluster driver.

/// Word frequency across documents. Input: document texts. Output:
/// (word, count) sorted by word.
std::vector<std::pair<std::string, long>> word_count(
    const std::vector<std::string>& documents, int threads = 0);

/// Inverted index. Input: (implicit doc id = position, text). Output:
/// (word, sorted unique doc ids).
std::vector<std::pair<std::string, std::vector<int>>> inverted_index(
    const std::vector<std::string>& documents, int threads = 0);

/// URL access frequency from log lines whose first whitespace-separated
/// field is the URL. Output: (url, hits).
std::vector<std::pair<std::string, long>> url_access_counts(
    const std::vector<std::string>& log_lines, int threads = 0);

/// Distributed grep: return (line number, line) for lines containing
/// `pattern`, in line order.
std::vector<std::pair<int, std::string>> distributed_grep(
    const std::vector<std::string>& lines, const std::string& pattern,
    int threads = 0);

/// Mean value per key.
std::vector<std::pair<std::string, double>> mean_per_key(
    const std::vector<std::pair<std::string, double>>& samples,
    int threads = 0);

}  // namespace pblpar::mapreduce
