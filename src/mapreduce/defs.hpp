#pragma once

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "util/text.hpp"

namespace pblpar::mapreduce::defs {

/// The map/combine/reduce definitions of the Assignment-5 jobs, factored
/// out of the thread-local wrappers so the distributed cluster driver
/// runs byte-identical logic. Each def configures any job type exposing
/// chainable `.map/.combine/.reduce` setters (mapreduce::Job and
/// cluster::DistJob both do).

/// Turn a vector of texts/lines into (index, item) input records.
inline std::vector<std::pair<int, std::string>> indexed(
    const std::vector<std::string>& items) {
  std::vector<std::pair<int, std::string>> inputs;
  inputs.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    inputs.emplace_back(static_cast<int>(i), items[i]);
  }
  return inputs;
}

/// Word frequency: (doc id, text) -> (word, count).
struct WordCountDef {
  template <class JobT>
  void configure(JobT& job) const {
    job.map([](const int&, const std::string& text, auto& out) {
          for (std::string& word : util::tokenize_words(text)) {
            out.emit(std::move(word), 1L);
          }
        })
        .combine([](const std::string&, const std::vector<long>& counts) {
          return std::accumulate(counts.begin(), counts.end(), 0L);
        })
        .reduce([](const std::string&, const std::vector<long>& counts) {
          return std::accumulate(counts.begin(), counts.end(), 0L);
        });
  }
};

/// Inverted index: (doc id, text) -> (word, sorted unique doc ids).
struct InvertedIndexDef {
  template <class JobT>
  void configure(JobT& job) const {
    job.map([](const int& doc_id, const std::string& text, auto& out) {
          std::vector<std::string> words = util::tokenize_words(text);
          std::sort(words.begin(), words.end());
          words.erase(std::unique(words.begin(), words.end()), words.end());
          for (std::string& word : words) {
            out.emit(std::move(word), doc_id);
          }
        })
        .reduce([](const std::string&, const std::vector<int>& ids) {
          std::vector<int> sorted = ids;
          std::sort(sorted.begin(), sorted.end());
          sorted.erase(std::unique(sorted.begin(), sorted.end()),
                       sorted.end());
          return sorted;
        });
  }
};

/// URL access frequency: first whitespace-separated field is the URL.
struct UrlAccessCountsDef {
  template <class JobT>
  void configure(JobT& job) const {
    job.map([](const int&, const std::string& line, auto& out) {
          const std::vector<std::string> fields = util::split(line, " \t");
          if (!fields.empty()) {
            out.emit(fields.front(), 1L);
          }
        })
        .combine([](const std::string&, const std::vector<long>& counts) {
          return std::accumulate(counts.begin(), counts.end(), 0L);
        })
        .reduce([](const std::string&, const std::vector<long>& counts) {
          return std::accumulate(counts.begin(), counts.end(), 0L);
        });
  }
};

/// Distributed grep: (line number, line) for lines containing `pattern`.
struct DistributedGrepDef {
  std::string pattern;

  template <class JobT>
  void configure(JobT& job) const {
    job.map([pattern = pattern](const int& line_number,
                                const std::string& line, auto& out) {
          if (line.find(pattern) != std::string::npos) {
            out.emit(line_number, line);
          }
        })
        .reduce([](const int&, const std::vector<std::string>& matched) {
          return matched.front();  // one line per line number
        });
  }
};

/// Mean value per key.
struct MeanPerKeyDef {
  template <class JobT>
  void configure(JobT& job) const {
    job.map([](const std::string& key, const double& value, auto& out) {
          out.emit(key, value);
        })
        .reduce([](const std::string&, const std::vector<double>& values) {
          return std::accumulate(values.begin(), values.end(), 0.0) /
                 static_cast<double>(values.size());
        });
  }
};

}  // namespace pblpar::mapreduce::defs
