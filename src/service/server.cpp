#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "rt/trace.hpp"

namespace pblpar::service {

namespace detail {

/// Everything the server and the ticket share about one submission.
/// Lock order: Server::mu_ before TicketState::mu, never the reverse.
struct TicketState {
  std::uint64_t id = 0;
  std::string tenant;
  std::string kind;
  Job job;
  JobOptions options;
  rt::CancelSource cancel;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point dispatched_at;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::Queued;
  JobResult result;

  void settle(JobResult terminal) {
    {
      std::lock_guard<std::mutex> guard(mu);
      result = std::move(terminal);
      status = result.status;
    }
    cv.notify_all();
  }
};

}  // namespace detail

std::string to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::Reject:
      return "reject";
    case AdmissionPolicy::Block:
      return "block";
  }
  throw util::InvariantError("to_string(AdmissionPolicy): unknown policy");
}

std::string to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Queued:
      return "queued";
    case JobStatus::Running:
      return "running";
    case JobStatus::Done:
      return "done";
    case JobStatus::Cancelled:
      return "cancelled";
    case JobStatus::Failed:
      return "failed";
    case JobStatus::Rejected:
      return "rejected";
  }
  throw util::InvariantError("to_string(JobStatus): unknown status");
}

// --- JobTicket --------------------------------------------------------------

std::uint64_t JobTicket::id() const {
  util::require(valid(), "JobTicket::id: empty ticket");
  return state_->id;
}

const std::string& JobTicket::tenant() const {
  util::require(valid(), "JobTicket::tenant: empty ticket");
  return state_->tenant;
}

const std::string& JobTicket::kind() const {
  util::require(valid(), "JobTicket::kind: empty ticket");
  return state_->kind;
}

JobStatus JobTicket::status() const {
  util::require(valid(), "JobTicket::status: empty ticket");
  std::lock_guard<std::mutex> guard(state_->mu);
  return state_->status;
}

bool JobTicket::finished() const {
  const JobStatus now = status();
  return now != JobStatus::Queued && now != JobStatus::Running;
}

JobResult JobTicket::wait() const {
  util::require(valid(), "JobTicket::wait: empty ticket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] {
    return state_->status != JobStatus::Queued &&
           state_->status != JobStatus::Running;
  });
  return state_->result;
}

bool JobTicket::wait_for(double timeout_s) const {
  util::require(valid(), "JobTicket::wait_for: empty ticket");
  util::require(std::isfinite(timeout_s) && timeout_s >= 0.0,
                "JobTicket::wait_for: timeout must be finite and >= 0");
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [&] {
        return state_->status != JobStatus::Queued &&
               state_->status != JobStatus::Running;
      });
}

void JobTicket::cancel() const {
  util::require(valid(), "JobTicket::cancel: empty ticket");
  state_->cancel.cancel();
}

// --- Server -----------------------------------------------------------------

Server::Server(std::vector<TenantConfig> tenants, ServerOptions options)
    : options_(options) {
  options_.validate();
  util::require(!tenants.empty(), "Server: need at least one tenant");
  tenants_.reserve(tenants.size());
  for (TenantConfig& config : tenants) {
    util::require(!config.name.empty(), "Server: tenant names must be "
                                        "non-empty");
    util::require(std::isfinite(config.weight) && config.weight > 0.0,
                  "Server: tenant '" + config.name +
                      "' weight must be finite and > 0");
    util::require(tenant_index_.find(config.name) == tenant_index_.end(),
                  "Server: duplicate tenant '" + config.name + "'");
    tenant_index_.emplace(config.name, tenants_.size());
    Tenant tenant;
    tenant.stride = 1.0 / config.weight;
    tenant.stats.name = config.name;
    tenant.stats.weight = config.weight;
    tenant.config = std::move(config);
    tenants_.push_back(std::move(tenant));
  }
  lanes_.reserve(static_cast<std::size_t>(options_.lanes));
  for (int lane = 0; lane < options_.lanes; ++lane) {
    lanes_.emplace_back([this] { lane_main(); });
  }
}

Server::~Server() { shutdown(); }

double Server::retry_after_estimate_locked() const {
  const double backlog_s = static_cast<double>(queued_total_) *
                           service_ewma_s_ /
                           static_cast<double>(options_.lanes);
  return std::max(backlog_s, options_.retry_after_floor_s);
}

void Server::reject_locked(const std::shared_ptr<detail::TicketState>& state,
                           Tenant& tenant, std::string reason,
                           double retry_after_s) {
  ++tenant.stats.rejected;
  JobResult result;
  result.status = JobStatus::Rejected;
  result.error = std::move(reason);
  result.retry_after_s = retry_after_s;
  // Settling under mu_ is fine: settle only takes the ticket's own lock
  // (mu_ -> ticket->mu is the documented order).
  state->settle(std::move(result));
}

JobTicket Server::submit(const std::string& tenant_name, Job job,
                         JobOptions options) {
  options.validate();
  util::require(job.run != nullptr, "Server::submit: job.run must be set");

  auto state = std::make_shared<detail::TicketState>();
  state->tenant = tenant_name;
  state->kind = job.kind;
  state->job = std::move(job);
  state->options = options;
  state->submitted_at = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  const auto it = tenant_index_.find(tenant_name);
  util::require(it != tenant_index_.end(),
                "Server::submit: unknown tenant '" + tenant_name + "'");
  Tenant& tenant = tenants_[it->second];
  state->id = ++submit_seq_;
  ++tenant.stats.submitted;

  if (stopping_) {
    reject_locked(state, tenant, "server is shutting down",
                  options_.retry_after_floor_s);
    return JobTicket(state);
  }
  if (queued_total_ >= options_.max_queue_depth) {
    if (options_.admission == AdmissionPolicy::Reject) {
      reject_locked(state, tenant, "admission queue full",
                    retry_after_estimate_locked());
      return JobTicket(state);
    }
    admit_cv_.wait(lock, [&] {
      return stopping_ || queued_total_ < options_.max_queue_depth;
    });
    if (stopping_) {
      reject_locked(state, tenant, "server is shutting down",
                    options_.retry_after_floor_s);
      return JobTicket(state);
    }
  }

  // Admit. A tenant waking from idle starts at the scheduler's current
  // virtual time — banked idle time must not let it monopolize the lanes.
  if (tenant.queue.empty()) {
    tenant.pass = std::max(tenant.pass, virtual_time_);
  }
  tenant.queue.push(QueueEntry{state->options.priority, state->id, state});
  ++queued_total_;
  ++in_flight_;
  queue_depth_high_water_ = std::max(queue_depth_high_water_, queued_total_);
  in_flight_high_water_ = std::max(in_flight_high_water_, in_flight_);
  work_cv_.notify_one();
  return JobTicket(state);
}

void Server::lane_main() {
  for (;;) {
    std::shared_ptr<detail::TicketState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || queued_total_ > 0; });
      if (queued_total_ == 0) {
        if (stopping_) {
          return;
        }
        continue;
      }
      // Stride scheduling: dispatch the backlogged tenant with the least
      // pass; ties break on registration order. Every dispatch advances
      // the winner's pass by stride * cost, so any backlogged tenant's
      // pass is eventually the minimum — no tenant starves.
      std::size_t best = tenants_.size();
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (tenants_[i].queue.empty()) {
          continue;
        }
        if (best == tenants_.size() ||
            tenants_[i].pass < tenants_[best].pass) {
          best = i;
        }
      }
      Tenant& tenant = tenants_[best];
      state = tenant.queue.top().state;
      tenant.queue.pop();
      --queued_total_;
      ++running_;
      virtual_time_ = tenant.pass;
      tenant.pass += tenant.stride * state->options.cost_units;
      running_jobs_.push_back(state);
      admit_cv_.notify_one();
    }
    run_job(state);
  }
}

void Server::run_job(const std::shared_ptr<detail::TicketState>& state) {
  state->dispatched_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> guard(state->mu);
    state->status = JobStatus::Running;
  }
  JobContext context(state->cancel.token(), state->options,
                     state->dispatched_at);
  JobResult result;
  try {
    result.outcome = state->job.run(context);
    result.status = JobStatus::Done;
  } catch (const rt::Cancelled& cancelled) {
    result.status = JobStatus::Cancelled;
    result.cancel_cause = cancelled.cause();
    result.salvaged_iterations = cancelled.total_completed();
    result.outcome.profile = cancelled.profile();
    result.error = cancelled.what();
  } catch (const std::exception& error) {
    result.status = JobStatus::Failed;
    result.error = error.what();
  }
  finalize(state, std::move(result));
}

void Server::finalize(const std::shared_ptr<detail::TicketState>& state,
                      JobResult result) {
  const auto now = std::chrono::steady_clock::now();
  result.queued_s = std::chrono::duration<double>(state->dispatched_at -
                                                  state->submitted_at)
                        .count();
  result.service_s =
      std::chrono::duration<double>(now - state->dispatched_at).count();
  {
    std::lock_guard<std::mutex> guard(mu_);
    --running_;
    --in_flight_;
    result.completion_seq = ++completion_seq_;
    service_ewma_s_ = 0.8 * service_ewma_s_ + 0.2 * result.service_s;
    Tenant& tenant = tenants_[tenant_index_.at(state->tenant)];
    switch (result.status) {
      case JobStatus::Done:
        ++tenant.stats.completed;
        tenant.stats.completed_cost += state->options.cost_units;
        break;
      case JobStatus::Cancelled:
        ++tenant.stats.cancelled;
        break;
      default:
        ++tenant.stats.failed;
        break;
    }
    running_jobs_.erase(
        std::remove(running_jobs_.begin(), running_jobs_.end(), state),
        running_jobs_.end());
  }
  state->job.run = nullptr;  // release captured resources promptly
  state->settle(std::move(result));
  idle_cv_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queued_total_ == 0 && running_ == 0; });
}

void Server::shutdown() {
  std::vector<std::shared_ptr<detail::TicketState>> orphans;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!stopping_) {
      stopping_ = true;
      for (Tenant& tenant : tenants_) {
        while (!tenant.queue.empty()) {
          orphans.push_back(tenant.queue.top().state);
          tenant.queue.pop();
          ++tenant.stats.cancelled;
          --queued_total_;
          --in_flight_;
        }
      }
      // Running jobs stop at their next chunk boundary.
      for (const auto& running : running_jobs_) {
        running->cancel.cancel();
      }
    }
    work_cv_.notify_all();
    admit_cv_.notify_all();
  }
  for (const auto& orphan : orphans) {
    orphan->job.run = nullptr;
    JobResult result;
    result.status = JobStatus::Cancelled;
    result.error = "server shut down before dispatch";
    orphan->settle(std::move(result));
  }
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) {
      lane.join();
    }
  }
  idle_cv_.notify_all();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  ServerStats stats;
  stats.queue_depth = queued_total_;
  stats.queue_depth_high_water = queue_depth_high_water_;
  stats.in_flight = in_flight_;
  stats.in_flight_high_water = in_flight_high_water_;
  stats.tenants.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) {
    stats.submitted += tenant.stats.submitted;
    stats.rejected += tenant.stats.rejected;
    stats.completed += tenant.stats.completed;
    stats.cancelled += tenant.stats.cancelled;
    stats.failed += tenant.stats.failed;
    stats.tenants.push_back(tenant.stats);
  }
  return stats;
}

}  // namespace pblpar::service
