#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/job.hpp"

namespace pblpar::service {

/// What Server::submit does when the admission queue is full.
enum class AdmissionPolicy {
  /// Return a Rejected ticket carrying a retry-after estimate; the
  /// caller sheds load (the open-loop answer).
  Reject,

  /// Block the submitter until a slot frees or the server shuts down
  /// (the closed-loop answer; backpressure propagates to the producer).
  Block,
};

std::string to_string(AdmissionPolicy policy);

/// Lifecycle of one submission. Queued/Running are transient; the rest
/// are terminal.
enum class JobStatus {
  Queued,     // admitted, waiting for a lane
  Running,    // executing on a lane
  Done,       // finished normally
  Cancelled,  // deadline or cancel token fired (or server shut down)
  Failed,     // the job body threw
  Rejected,   // never admitted (queue full, unknown policy, shutdown)
};

std::string to_string(JobStatus status);

/// Terminal record of one submission.
struct JobResult {
  JobStatus status = JobStatus::Queued;

  /// Only meaningful when status == Cancelled and the job was cut by the
  /// runtime (not by a pre-dispatch shutdown).
  rt::CancelCause cancel_cause = rt::CancelCause::Token;

  /// Worksharing iterations the cancelled job completed before the drain
  /// (from rt::Cancelled), 0 otherwise.
  std::int64_t salvaged_iterations = 0;

  /// Failure or rejection detail.
  std::string error;

  /// The job's outcome (Done; partially filled on Cancelled when a
  /// profile was salvaged).
  JobOutcome outcome;

  /// Seconds spent admitted-but-queued, then running.
  double queued_s = 0.0;
  double service_s = 0.0;

  /// Rejected only: the server's estimate of when a retry is worth
  /// making (seconds from now), always > 0.
  double retry_after_s = 0.0;

  /// 1-based order among the server's terminal dispatched jobs (0 for
  /// rejected and shutdown-orphaned jobs). With one lane this is exactly
  /// the dispatch order, which the fairness checks lean on.
  std::uint64_t completion_seq = 0;
};

namespace detail {
struct TicketState;
}  // namespace detail

/// Shared handle to one submission. Cheap to copy; valid after the
/// server that issued it is destroyed (the result outlives the server).
class JobTicket {
 public:
  JobTicket() = default;

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;
  const std::string& tenant() const;
  const std::string& kind() const;

  JobStatus status() const;
  bool finished() const;

  /// Block until the job reaches a terminal status; returns the result.
  /// By value on purpose: `server.submit(...).wait()` destroys the
  /// temporary ticket (the state's last owner) at the end of the full
  /// expression, so a reference would dangle.
  JobResult wait() const;

  /// Like wait() with a timeout; false if still not terminal.
  bool wait_for(double timeout_s) const;

  /// Fire the job's cancel source. Cooperative: a queued job cancels at
  /// its first chunk boundary once dispatched, a running job at its
  /// next. Safe from any thread, idempotent.
  void cancel() const;

 private:
  friend class Server;
  explicit JobTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

/// One tenant of the server: a name and a fair-share weight. Weights are
/// relative — a weight-8 tenant gets 8x the completed work of a weight-1
/// tenant under saturation.
struct TenantConfig {
  std::string name;
  double weight = 1.0;
};

struct ServerOptions {
  /// Concurrent job executors. Each lane runs one job at a time; jobs go
  /// wide internally via JobOptions::threads on the shared rt::TeamPool.
  int lanes = 2;

  /// Max jobs admitted-but-not-yet-dispatched, across all tenants. The
  /// queue depth never exceeds this.
  int max_queue_depth = 256;

  AdmissionPolicy admission = AdmissionPolicy::Reject;

  /// Floor of the retry-after estimate handed to rejected submitters.
  double retry_after_floor_s = 1e-4;

  void validate() const {
    util::require(lanes >= 1, "ServerOptions::lanes must be >= 1");
    util::require(max_queue_depth >= 1,
                  "ServerOptions::max_queue_depth must be >= 1");
    util::require(
        std::isfinite(retry_after_floor_s) && retry_after_floor_s > 0.0,
        "ServerOptions::retry_after_floor_s must be finite and > 0");
  }
};

struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;  // Done
  std::int64_t cancelled = 0;
  std::int64_t failed = 0;
  /// Sum of cost_units over Done jobs — the fairness bench's measure of
  /// delivered work.
  double completed_cost = 0.0;
};

struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  std::int64_t failed = 0;
  int queue_depth = 0;
  int queue_depth_high_water = 0;
  int in_flight = 0;  // admitted, not yet terminal (queued + running)
  int in_flight_high_water = 0;
  std::vector<TenantStats> tenants;
};

/// The campus server: a long-running multi-tenant front door over the
/// process-wide rt::TeamPool. Thousands of concurrent submissions from
/// many tenants flow through one bounded admission queue and a
/// starvation-free weighted fair-share (stride) scheduler onto a fixed
/// set of executor lanes; every job gets a CancelSource, a service-time
/// deadline and optional per-job trace capture, all plumbed through the
/// runtime's cooperative cancellation drain.
///
/// Scheduling is deterministic given the submission order: all decisions
/// happen under one lock, ties break on tenant registration order, and
/// with lanes == 1 the dispatch sequence is a pure function of the
/// submissions (which the Sim-backend tests replay exactly).
class Server {
 public:
  Server(std::vector<TenantConfig> tenants, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit `job` on behalf of `tenant`. Never blocks under Reject
  /// admission (a full queue returns a Rejected ticket immediately);
  /// under Block it waits for a slot. Unknown tenants and malformed
  /// options are precondition errors, not rejections.
  JobTicket submit(const std::string& tenant, Job job,
                   JobOptions options = {});

  /// Wait until every admitted job is terminal. Jobs submitted while
  /// draining extend the wait.
  void drain();

  /// Stop admitting, cancel queued jobs (they become Cancelled without
  /// running), fire the cancel sources of running jobs, and join the
  /// lanes. Idempotent; the destructor calls it.
  void shutdown();

  ServerStats stats() const;

 private:
  struct QueueEntry {
    int priority = 0;
    std::uint64_t seq = 0;  // admission order, tie-break within priority
    std::shared_ptr<detail::TicketState> state;
  };
  struct QueueOrder {
    // priority_queue keeps the *greatest* on top: higher priority first,
    // then earlier admission.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.priority != b.priority) {
        return a.priority < b.priority;
      }
      return a.seq > b.seq;
    }
  };
  struct Tenant {
    TenantConfig config;
    double stride = 1.0;  // 1 / weight
    double pass = 0.0;    // stride-scheduler virtual time consumed
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueOrder>
        queue;
    TenantStats stats;
  };

  void lane_main();
  void run_job(const std::shared_ptr<detail::TicketState>& state);
  void finalize(const std::shared_ptr<detail::TicketState>& state,
                JobResult result);
  double retry_after_estimate_locked() const;
  void reject_locked(const std::shared_ptr<detail::TicketState>& state,
                     Tenant& tenant, std::string reason, double retry_after_s);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // lanes: queue non-empty or stopping
  std::condition_variable admit_cv_;  // Block submitters: slot freed
  std::condition_variable idle_cv_;   // drain(): everything terminal
  ServerOptions options_;
  std::vector<Tenant> tenants_;
  std::unordered_map<std::string, std::size_t> tenant_index_;
  bool stopping_ = false;
  int queued_total_ = 0;
  int running_ = 0;
  int in_flight_ = 0;
  int queue_depth_high_water_ = 0;
  int in_flight_high_water_ = 0;
  std::uint64_t submit_seq_ = 0;
  std::uint64_t completion_seq_ = 0;
  /// Pass value of the most recent dispatch — late-joining tenants start
  /// here instead of cashing in banked idle time.
  double virtual_time_ = 0.0;
  /// EWMA of job service seconds, feeding the retry-after estimate.
  double service_ewma_s_ = 1e-3;
  /// Running jobs, so shutdown can fire their cancel sources.
  std::vector<std::shared_ptr<detail::TicketState>> running_jobs_;
  std::vector<std::thread> lanes_;
};

}  // namespace pblpar::service
