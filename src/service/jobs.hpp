#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "drugdesign/drugdesign.hpp"
#include "rt/schedule.hpp"
#include "service/job.hpp"

namespace pblpar::service::jobs {

/// Adapters wrapping the three execution tiers — the rt loop runtime,
/// the thread-local MapReduce driver, and the simulated cluster engine —
/// as service::Job values, so one Server multiplexes all of them. Each
/// adapter plumbs the job's CancelToken, remaining deadline and trace
/// flag through its tier's native mechanism (ParallelConfig for rt,
/// Job::deadline/cancellable for mapreduce, ClusterOptions::job_deadline_s
/// for the cluster engine).

/// Patternlet-style rt job: one worksharing loop of `iterations` small
/// spin iterations under `schedule`, reduced to a checksum. The smallest
/// real job the course's Assignment 3 submits to a lab machine.
Job patternlet(std::int64_t iterations,
               rt::Schedule schedule = rt::Schedule::steal(),
               std::int64_t spin_units = 8);

/// Drug-design sweep (Assignment 5's irregular workload): score
/// `config.num_ligands` ligands against the protein and report the best
/// binder. Runs on the host via the job's ParallelConfig; ligand costs
/// vary, so this is the tail-heavy tenant workload.
Job drugdesign_sweep(drugdesign::Config config);

/// Thread-local MapReduce word count over `documents`. The job deadline
/// and cancel token ride the mapreduce driver's Salvage policy: a job
/// cut short still reports the records it fully mapped.
Job mapreduce_word_count(std::vector<std::string> documents);

/// Distributed word count on a simulated `nodes`-rank cluster (rank 0
/// masters). Deterministic virtual time; the job deadline is plumbed
/// into ClusterOptions::job_deadline_s.
Job cluster_word_count(std::vector<std::string> documents, int nodes);

}  // namespace pblpar::service::jobs
