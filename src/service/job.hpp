#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "rt/cancel.hpp"
#include "rt/config.hpp"
#include "util/error.hpp"

namespace pblpar::service {

/// Loud boundary validation shared by every deadline field the service
/// layer touches (mirrors cluster::FaultPlan::validate): NaN, infinity
/// and negative seconds are precondition errors; 0 means "no deadline".
inline void validate_deadline_field(double seconds, std::string_view what) {
  util::require(std::isfinite(seconds) && seconds >= 0.0,
                std::string(what) +
                    ": deadline seconds must be finite and >= 0 "
                    "(0 = no deadline)");
}

/// Per-submission knobs of one service job.
struct JobOptions {
  /// Service-time budget in host seconds, counted from dispatch (queue
  /// time is the server's problem, run time is the job's). Enforced
  /// cooperatively through the runtime's cancellation drain. 0 = none.
  double deadline_s = 0.0;

  /// Higher runs sooner *within its tenant's queue*; cross-tenant order
  /// is the fair-share scheduler's decision, not priority's.
  int priority = 0;

  /// Fair-share charge of this job: a tenant's pass advances by
  /// cost_units / weight per dispatch, so expensive jobs consume more of
  /// the tenant's share. Must be finite and > 0.
  double cost_units = 1.0;

  /// Capture the job's rt::RunProfile (chunk claims, steals, cancels)
  /// into JobResult::outcome.profile.
  bool record_trace = false;

  /// Team width the job's parallel regions should use. Service jobs
  /// default narrow: the server multiplexes many jobs onto the shared
  /// pool, so width comes from concurrent lanes, not from each job.
  int threads = 1;

  void validate() const {
    validate_deadline_field(deadline_s, "JobOptions::deadline_s");
    util::require(std::isfinite(cost_units) && cost_units > 0.0,
                  "JobOptions::cost_units must be finite and > 0");
    util::require(threads >= 1, "JobOptions::threads must be >= 1");
  }
};

/// The view a running job has of the server: its cancellation token,
/// remaining deadline budget and tracing flag, pre-wired into a
/// ready-made rt::ParallelConfig so adapters plumb everything through
/// the runtime's existing cancellation drain with one call.
class JobContext {
 public:
  JobContext(rt::CancelToken token, const JobOptions& options,
             std::chrono::steady_clock::time_point dispatched_at)
      : token_(std::move(token)),
        options_(options),
        dispatched_at_(dispatched_at) {}

  /// The job's cancel token. Always valid — the server owns the matching
  /// CancelSource and fires it on JobTicket::cancel() and shutdown.
  const rt::CancelToken& cancel_token() const { return token_; }

  bool traced() const { return options_.record_trace; }
  int threads() const { return options_.threads; }

  /// Total service budget in seconds; 0 = none.
  double deadline_s() const { return options_.deadline_s; }

  /// Budget left right now (deadline minus time since dispatch), floored
  /// at a tiny epsilon so an overspent budget still arms a deadline that
  /// fires at the first chunk boundary instead of silently disabling
  /// itself. 0 when no deadline is set.
  double remaining_s() const {
    if (options_.deadline_s <= 0.0) {
      return 0.0;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      dispatched_at_)
            .count();
    return std::max(options_.deadline_s - elapsed, 1e-9);
  }

  /// Host-backend ParallelConfig with the job's token, *remaining*
  /// deadline and tracing applied. Multi-region jobs call this per
  /// region, so every region shares the one job budget instead of each
  /// restarting it.
  rt::ParallelConfig parallel_config() const {
    rt::ParallelConfig config = rt::ParallelConfig::host(options_.threads);
    config = config.cancellable(token_);
    if (options_.deadline_s > 0.0) {
      config = config.deadline(remaining_s());
    }
    if (options_.record_trace) {
      config = config.traced();
    }
    return config;
  }

 private:
  rt::CancelToken token_;
  JobOptions options_;
  std::chrono::steady_clock::time_point dispatched_at_;
};

/// What a job run hands back through its ticket.
struct JobOutcome {
  /// Adapter-defined work unit: loop iterations, mapped records, cluster
  /// tasks. The fairness bench sums these per tenant.
  std::int64_t work_items = 0;

  /// One human-readable line, e.g. "best score 11 (3 ligands)".
  std::string summary;

  /// The job's trace, when JobOptions::record_trace was set and the
  /// adapter's backend produces one (rt regions do; a cancelled region's
  /// profile is salvaged from rt::Cancelled by the server).
  std::shared_ptr<const rt::RunProfile> profile;
};

/// The backend-agnostic unit of work of the campus server: one name and
/// one function from JobContext to JobOutcome. Adapters in
/// service/jobs.hpp wrap the rt, mapreduce and cluster entrypoints;
/// anything callable works (tests submit lambdas). A job signals
/// cancellation by letting rt::Cancelled propagate — the server converts
/// it into a Cancelled result with the salvaged iteration counts.
struct Job {
  std::string kind = "job";
  std::function<JobOutcome(JobContext&)> run;
};

}  // namespace pblpar::service
