#include "service/jobs.hpp"

#include <algorithm>
#include <utility>

#include "cluster/jobs.hpp"
#include "mapreduce/defs.hpp"
#include "mapreduce/job.hpp"
#include "mp/sim_world.hpp"
#include "rt/for_each.hpp"
#include "rt/parallel.hpp"
#include "util/rng.hpp"

namespace pblpar::service::jobs {

namespace {

/// Busy work proportional to `units`; volatile so the optimizer keeps it.
void spin(std::int64_t units) {
  volatile double sink = 0.0;
  for (std::int64_t k = 0; k < units; ++k) {
    sink = sink + static_cast<double>(k);
  }
}

}  // namespace

Job patternlet(std::int64_t iterations, rt::Schedule schedule,
               std::int64_t spin_units) {
  util::require(iterations >= 0, "patternlet: iterations must be >= 0");
  util::require(spin_units >= 0, "patternlet: spin_units must be >= 0");
  Job job;
  job.kind = "patternlet";
  job.run = [iterations, schedule, spin_units](JobContext& context) {
    const rt::RunResult run =
        rt::parallel(context.parallel_config(), [&](rt::TeamContext& tc) {
          rt::for_each(tc, rt::Range::upto(iterations), schedule,
                       [&](std::int64_t) { spin(spin_units); });
        });
    JobOutcome outcome;
    outcome.work_items = iterations;
    outcome.summary =
        "patternlet loop of " + std::to_string(iterations) + " iterations";
    outcome.profile = run.profile;
    return outcome;
  };
  return job;
}

Job drugdesign_sweep(drugdesign::Config config) {
  Job job;
  job.kind = "drugdesign";
  job.run = [config = std::move(config)](JobContext& context) {
    util::Rng rng(config.seed);
    const std::vector<std::string> ligands = drugdesign::generate_ligands(
        config.num_ligands, config.max_ligand_len, rng);
    const std::string protein =
        drugdesign::generate_protein(config.protein_len, rng);
    std::vector<int> scores(ligands.size(), 0);
    const rt::RunResult run =
        rt::parallel(context.parallel_config(), [&](rt::TeamContext& tc) {
          rt::for_each(tc,
                       rt::Range::upto(static_cast<std::int64_t>(
                           ligands.size())),
                       config.schedule, [&](std::int64_t i) {
                         const auto index = static_cast<std::size_t>(i);
                         scores[index] =
                             drugdesign::match_score(ligands[index], protein);
                       });
        });
    int best = 0;
    std::int64_t winners = 0;
    for (const int score : scores) {
      if (score > best) {
        best = score;
        winners = 1;
      } else if (score == best) {
        ++winners;
      }
    }
    JobOutcome outcome;
    outcome.work_items = static_cast<std::int64_t>(ligands.size());
    outcome.summary = "best score " + std::to_string(best) + " (" +
                      std::to_string(winners) + " ligands)";
    outcome.profile = run.profile;
    return outcome;
  };
  return job;
}

Job mapreduce_word_count(std::vector<std::string> documents) {
  Job job;
  job.kind = "mapreduce";
  job.run = [documents = std::move(documents)](JobContext& context) {
    mapreduce::Job<int, std::string, std::string, long> word_count;
    mapreduce::defs::WordCountDef{}.configure(word_count);
    word_count.threads(context.threads());
    // Salvage: a deadline or cancellation mid-map keeps the completed
    // records and still reduces them — the service answer to "the lab
    // machine is due back, hand in what you have".
    word_count.cut_policy(mapreduce::DeadlinePolicy::Salvage);
    if (context.deadline_s() > 0.0) {
      word_count.deadline(context.remaining_s(),
                          mapreduce::DeadlinePolicy::Salvage);
    }
    word_count.cancellable(context.cancel_token());
    mapreduce::RunReport report;
    const auto counts =
        word_count.run(mapreduce::defs::indexed(documents), &report);
    JobOutcome outcome;
    outcome.work_items = report.mapped_records;
    outcome.summary = std::to_string(counts.size()) + " distinct words over " +
                      std::to_string(report.mapped_records) + "/" +
                      std::to_string(report.total_records) + " documents" +
                      (report.deadline_hit ? " (cut short)" : "");
    return outcome;
  };
  return job;
}

Job cluster_word_count(std::vector<std::string> documents, int nodes) {
  util::require(nodes >= 2,
                "cluster_word_count: need >= 2 ranks (master + worker)");
  Job job;
  job.kind = "cluster";
  job.run = [documents = std::move(documents), nodes](JobContext& context) {
    cluster::ClusterOptions options;
    if (context.deadline_s() > 0.0) {
      options.job_deadline_s = context.remaining_s();
    }
    options.validate();
    std::vector<std::pair<std::string, long>> counts;
    mp::SimWorld::run(nodes, [&](mp::SimComm& comm) {
      auto result = cluster::jobs::word_count(comm, documents, {}, options);
      if (comm.rank() == 0) {
        counts = std::move(result);
      }
    });
    JobOutcome outcome;
    outcome.work_items = static_cast<std::int64_t>(documents.size());
    outcome.summary = std::to_string(counts.size()) +
                      " distinct words across " + std::to_string(nodes) +
                      " simulated ranks";
    return outcome;
  };
  return job;
}

}  // namespace pblpar::service::jobs
