#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace pblpar::stats {

/// Basic descriptive statistics of one sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double sd = 0.0;        // sample standard deviation (n-1 denominator)
  double variance = 0.0;  // sample variance
  double min = 0.0;
  double max = 0.0;

  /// Standard error of the mean.
  double standard_error() const;

  std::string to_string() const;
};

/// Summarize a sample (requires at least one observation; sd is 0 for a
/// single observation).
Summary summarize(std::span<const double> sample);

/// Arithmetic mean (requires non-empty sample).
double mean_of(std::span<const double> sample);

/// Sample standard deviation, n-1 denominator (requires n >= 2).
double sample_sd(std::span<const double> sample);

}  // namespace pblpar::stats
