#pragma once

namespace pblpar::stats {

/// Regularized incomplete beta function I_x(a, b), for a, b > 0 and
/// x in [0, 1]. Continued-fraction evaluation (modified Lentz), accurate
/// to ~1e-13 over the parameter ranges used by the t distribution.
double ibeta(double a, double b, double x);

/// CDF of the standard normal distribution.
double normal_cdf(double z);

/// Standard normal quantile (inverse CDF), by bisection on normal_cdf.
double normal_quantile(double p);

/// CDF of Student's t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Two-tailed p-value for a t statistic with `df` degrees of freedom.
double student_t_two_tailed_p(double t, double df);

/// Two-tailed critical value: the t with the given tail probability
/// (e.g. alpha = 0.05 gives the 97.5th percentile). Bisection.
double student_t_critical(double alpha, double df);

}  // namespace pblpar::stats
