#include "stats/effect.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace pblpar::stats {

double cohens_d_pooled(double mean1, double sd1, double mean2, double sd2) {
  util::require(std::isfinite(sd1) && std::isfinite(sd2) &&
                    std::isfinite(mean1) && std::isfinite(mean2),
                "cohens_d_pooled: inputs must be finite");
  util::require(sd1 >= 0.0 && sd2 >= 0.0,
                "cohens_d_pooled: standard deviations must be non-negative");
  const double pooled = std::sqrt((sd1 * sd1 + sd2 * sd2) / 2.0);
  util::require(pooled > 0.0,
                "cohens_d_pooled: both standard deviations are zero");
  return (mean2 - mean1) / pooled;
}

double cohens_d(std::span<const double> first,
                std::span<const double> second) {
  // A single observation has no defined sample sd; summarize() would
  // report sd = 0, which either fails the pooled-sd check with a
  // misleading message or silently biases d. Reject it up front.
  util::require(first.size() >= 2 && second.size() >= 2,
                "cohens_d: each sample needs >= 2 observations (sample sd "
                "is undefined for n < 2)");
  const Summary a = summarize(first);
  const Summary b = summarize(second);
  return cohens_d_pooled(a.mean, a.sd, b.mean, b.sd);
}

EffectMagnitude interpret_cohens_d(double d) {
  const double magnitude = std::fabs(d);
  if (magnitude < 0.2) {
    return EffectMagnitude::Trivial;
  }
  if (magnitude < 0.5) {
    return EffectMagnitude::Small;
  }
  if (magnitude < 0.8) {
    return EffectMagnitude::Medium;
  }
  return EffectMagnitude::Large;
}

std::string to_string(EffectMagnitude magnitude) {
  switch (magnitude) {
    case EffectMagnitude::Trivial:
      return "trivial";
    case EffectMagnitude::Small:
      return "small";
    case EffectMagnitude::Medium:
      return "medium";
    case EffectMagnitude::Large:
      return "large";
  }
  return "?";
}

}  // namespace pblpar::stats
