#include "stats/ranking.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pblpar::stats {

double composite_score(double definition_score,
                       std::span<const double> component_scores) {
  util::require(!component_scores.empty(),
                "composite_score: need at least one component");
  double component_sum = 0.0;
  for (const double score : component_scores) {
    component_sum += score;
  }
  const double component_mean =
      component_sum / static_cast<double>(component_scores.size());
  return (definition_score + component_mean) / 2.0;
}

std::vector<RankedItem> rank_descending(
    std::span<const std::pair<std::string, double>> items) {
  util::require(!items.empty(), "rank_descending: need at least one item");
  std::vector<RankedItem> ranked;
  ranked.reserve(items.size());
  for (const auto& [name, value] : items) {
    ranked.push_back(RankedItem{0, name, value});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedItem& a, const RankedItem& b) {
                     return a.value > b.value;
                   });
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    ranked[i].rank = static_cast<int>(i) + 1;
  }
  return ranked;
}

double max_gap(std::span<const RankedItem> emphasis,
               std::span<const RankedItem> growth) {
  util::require(emphasis.size() == growth.size(),
                "max_gap: rankings must cover the same items");
  double gap = 0.0;
  for (const RankedItem& e : emphasis) {
    const auto it = std::find_if(
        growth.begin(), growth.end(),
        [&](const RankedItem& g) { return g.name == e.name; });
    util::require(it != growth.end(),
                  "max_gap: item missing from the second ranking");
    gap = std::max(gap, std::fabs(e.value - it->value));
  }
  return gap;
}

}  // namespace pblpar::stats
