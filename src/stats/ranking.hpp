#pragma once

#include <span>
#include <string>
#include <vector>

namespace pblpar::stats {

/// The Beyerlein et al. Composite Score: the average of the element's
/// 'definition' item and the mean of its component items — "global from
/// the definition and focused from the components".
double composite_score(double definition_score,
                       std::span<const double> component_scores);

/// One ranked item.
struct RankedItem {
  int rank = 0;  // 1-based
  std::string name;
  double value = 0.0;
};

/// Rank items by value, descending (the paper's Tables 5 and 6). Ties keep
/// their input order and receive distinct consecutive ranks.
std::vector<RankedItem> rank_descending(
    std::span<const std::pair<std::string, double>> items);

/// Largest |value difference| between two rankings of the same items;
/// the paper flags course redesign when emphasis - growth exceeds 0.2.
double max_gap(std::span<const RankedItem> emphasis,
               std::span<const RankedItem> growth);

}  // namespace pblpar::stats
