#pragma once

#include <span>
#include <string>

namespace pblpar::stats {

/// Cohen's qualitative bands for |d| (Cohen 1988, as used in the paper).
enum class EffectMagnitude { Trivial, Small, Medium, Large };

/// Cohen's d computed exactly as the paper does (Table 2/3 footnotes):
///   d = (M2 - M1) / SDpooled,  SDpooled = sqrt((SD1^2 + SD2^2) / 2).
double cohens_d_pooled(double mean1, double sd1, double mean2, double sd2);

/// Cohen's d from two raw samples, using the paper's pooled-SD formula.
/// Each sample needs at least two observations (the sample sd of a
/// singleton is undefined); violations raise util::PreconditionError.
double cohens_d(std::span<const double> first, std::span<const double> second);

/// The paper's interpretation rule: 0.2 small, 0.5 medium, 0.8 large;
/// below 0.2 the difference is "trivial although it is statistically
/// significant".
EffectMagnitude interpret_cohens_d(double d);

/// Human label for an EffectMagnitude ("small" / "medium" / "large" ...).
std::string to_string(EffectMagnitude magnitude);

}  // namespace pblpar::stats
