#include "stats/special.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pblpar::stats {

namespace {

/// Continued fraction for the incomplete beta function (Numerical Recipes
/// style modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) {
      return h;
    }
  }
  throw util::InvariantError(
      "ibeta: continued fraction failed to converge (a or b too large?)");
}

}  // namespace

double ibeta(double a, double b, double x) {
  util::require(a > 0.0 && b > 0.0, "ibeta: a and b must be positive");
  util::require(x >= 0.0 && x <= 1.0, "ibeta: x must be in [0, 1]");
  if (x == 0.0) {
    return 0.0;
  }
  if (x == 1.0) {
    return 1.0;
  }
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the continued fraction directly where it converges fast, else the
  // symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double p) {
  util::require(p > 0.0 && p < 1.0,
                "normal_quantile: p must be in (0, 1)");
  double lo = -40.0;
  double hi = 40.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (normal_cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double student_t_cdf(double t, double df) {
  util::require(df > 0.0, "student_t_cdf: df must be positive");
  const double x = df / (df + t * t);
  const double tail = 0.5 * ibeta(0.5 * df, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_tailed_p(double t, double df) {
  util::require(df > 0.0, "student_t_two_tailed_p: df must be positive");
  const double x = df / (df + t * t);
  return ibeta(0.5 * df, 0.5, x);
}

double student_t_critical(double alpha, double df) {
  util::require(alpha > 0.0 && alpha < 1.0,
                "student_t_critical: alpha must be in (0, 1)");
  double lo = 0.0;
  double hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_two_tailed_p(mid, df) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace pblpar::stats
