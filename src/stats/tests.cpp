#include "stats/tests.hpp"

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/error.hpp"

namespace pblpar::stats {

TTestResult paired_t_test(std::span<const double> first,
                          std::span<const double> second) {
  util::require(first.size() == second.size(),
                "paired_t_test: samples must be the same size");
  util::require(first.size() >= 2,
                "paired_t_test: need at least two pairs");
  std::vector<double> differences(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    differences[i] = second[i] - first[i];
  }
  const Summary diff = summarize(differences);
  util::require(diff.sd > 0.0,
                "paired_t_test: zero variance in the differences");

  TTestResult result;
  result.mean_difference = diff.mean;
  result.df = static_cast<double>(first.size() - 1);
  result.t = diff.mean / diff.standard_error();
  result.p_two_tailed = student_t_two_tailed_p(result.t, result.df);
  return result;
}

TTestResult welch_t_test(std::span<const double> first,
                         std::span<const double> second) {
  util::require(first.size() >= 2 && second.size() >= 2,
                "welch_t_test: need at least two observations per sample");
  const Summary a = summarize(first);
  const Summary b = summarize(second);
  const double va_n = a.variance / static_cast<double>(a.n);
  const double vb_n = b.variance / static_cast<double>(b.n);
  util::require(va_n + vb_n > 0.0, "welch_t_test: both samples are constant");

  TTestResult result;
  result.mean_difference = b.mean - a.mean;
  result.t = result.mean_difference / std::sqrt(va_n + vb_n);
  // Welch–Satterthwaite degrees of freedom.
  const double numerator = (va_n + vb_n) * (va_n + vb_n);
  const double denominator =
      va_n * va_n / static_cast<double>(a.n - 1) +
      vb_n * vb_n / static_cast<double>(b.n - 1);
  result.df = numerator / denominator;
  result.p_two_tailed = student_t_two_tailed_p(result.t, result.df);
  return result;
}

ConfidenceInterval paired_mean_difference_ci(std::span<const double> first,
                                             std::span<const double> second,
                                             double confidence) {
  util::require(first.size() == second.size(),
                "paired_mean_difference_ci: samples must be the same size");
  util::require(first.size() >= 2,
                "paired_mean_difference_ci: need at least two pairs");
  util::require(confidence > 0.0 && confidence < 1.0,
                "paired_mean_difference_ci: confidence must be in (0, 1)");
  std::vector<double> differences(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    differences[i] = second[i] - first[i];
  }
  const Summary diff = summarize(differences);
  const double df = static_cast<double>(first.size() - 1);
  const double critical = student_t_critical(1.0 - confidence, df);
  const double margin = critical * diff.standard_error();

  ConfidenceInterval interval;
  interval.confidence = confidence;
  interval.lower = diff.mean - margin;
  interval.upper = diff.mean + margin;
  return interval;
}

TTestResult one_sample_t_test(std::span<const double> sample,
                              double hypothesized_mean) {
  util::require(sample.size() >= 2,
                "one_sample_t_test: need at least two observations");
  const Summary summary = summarize(sample);
  util::require(summary.sd > 0.0, "one_sample_t_test: sample is constant");

  TTestResult result;
  result.mean_difference = summary.mean - hypothesized_mean;
  result.df = static_cast<double>(sample.size() - 1);
  result.t = result.mean_difference / summary.standard_error();
  result.p_two_tailed = student_t_two_tailed_p(result.t, result.df);
  return result;
}

}  // namespace pblpar::stats
