#pragma once

#include <span>

namespace pblpar::stats {

/// Outcome of a t-test.
struct TTestResult {
  double mean_difference = 0.0;  // second - first (the paper reports M2-M1)
  double t = 0.0;
  double df = 0.0;
  double p_two_tailed = 0.0;

  bool significant(double alpha = 0.05) const { return p_two_tailed < alpha; }
};

/// Paired (dependent samples) t-test — the paper's design: the same 124
/// students answered the survey at mid-semester and at the end.
TTestResult paired_t_test(std::span<const double> first,
                          std::span<const double> second);

/// Welch's unequal-variance t-test for independent samples.
TTestResult welch_t_test(std::span<const double> first,
                         std::span<const double> second);

/// One-sample t-test against a hypothesized mean.
TTestResult one_sample_t_test(std::span<const double> sample,
                              double hypothesized_mean);

/// Two-sided confidence interval for a mean difference.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.95;

  bool contains(double value) const {
    return value >= lower && value <= upper;
  }
  double width() const { return upper - lower; }
};

/// CI for the mean of the paired differences (second - first) — the
/// companion to paired_t_test, per the paper's reference [16] on
/// interpreting tests alongside intervals.
ConfidenceInterval paired_mean_difference_ci(
    std::span<const double> first, std::span<const double> second,
    double confidence = 0.95);

}  // namespace pblpar::stats
