#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace pblpar::stats {

double Summary::standard_error() const {
  return n > 0 ? sd / std::sqrt(static_cast<double>(n)) : 0.0;
}

std::string Summary::to_string() const {
  std::ostringstream out;
  out << "n=" << n << " mean=" << mean << " sd=" << sd << " min=" << min
      << " max=" << max;
  return out.str();
}

Summary summarize(std::span<const double> sample) {
  util::require(!sample.empty(), "summarize: sample must be non-empty");
  Summary summary;
  summary.n = sample.size();
  summary.min = sample[0];
  summary.max = sample[0];
  double sum = 0.0;
  for (const double x : sample) {
    sum += x;
    summary.min = std::min(summary.min, x);
    summary.max = std::max(summary.max, x);
  }
  summary.mean = sum / static_cast<double>(sample.size());
  if (sample.size() >= 2) {
    double sum_sq_dev = 0.0;
    for (const double x : sample) {
      const double d = x - summary.mean;
      sum_sq_dev += d * d;
    }
    summary.variance = sum_sq_dev / static_cast<double>(sample.size() - 1);
    summary.sd = std::sqrt(summary.variance);
  }
  return summary;
}

double mean_of(std::span<const double> sample) {
  return summarize(sample).mean;
}

double sample_sd(std::span<const double> sample) {
  util::require(sample.size() >= 2,
                "sample_sd: need at least two observations");
  return summarize(sample).sd;
}

}  // namespace pblpar::stats
