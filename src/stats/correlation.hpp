#pragma once

#include <span>
#include <string>

namespace pblpar::stats {

/// Guilford's (1956) verbal bands for correlation strength, as the paper
/// cites them: <0.2 slight, 0.2–0.4 low, 0.4–0.7 moderate, 0.7–0.9 high,
/// 0.9–1.0 very high.
enum class GuilfordBand { Slight, Low, Moderate, High, VeryHigh };

/// Pearson product-moment correlation with significance via the
/// t transform (df = n - 2).
struct PearsonResult {
  double r = 0.0;
  double t = 0.0;
  double df = 0.0;
  double p_two_tailed = 1.0;
  std::size_t n = 0;

  GuilfordBand band() const;
};

PearsonResult pearson(std::span<const double> x, std::span<const double> y);

GuilfordBand guilford_band(double r);
std::string to_string(GuilfordBand band);

}  // namespace pblpar::stats
