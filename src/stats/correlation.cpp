#include "stats/correlation.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace pblpar::stats {

GuilfordBand PearsonResult::band() const { return guilford_band(r); }

PearsonResult pearson(std::span<const double> x, std::span<const double> y) {
  util::require(x.size() == y.size(),
                "pearson: samples must be the same size");
  util::require(x.size() >= 3, "pearson: need at least three pairs");
  const auto n = static_cast<double>(x.size());

  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
  }
  const double mean_x = sum_x / n;
  const double mean_y = sum_y / n;

  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  util::require(sxx > 0.0 && syy > 0.0,
                "pearson: a sample with zero variance has no correlation");

  PearsonResult result;
  result.n = x.size();
  result.r = sxy / std::sqrt(sxx * syy);
  result.df = n - 2.0;
  // Guard |r| = 1 exactly: the t transform diverges.
  const double r2 = std::min(result.r * result.r, 1.0 - 1e-15);
  result.t = result.r * std::sqrt(result.df / (1.0 - r2));
  result.p_two_tailed = student_t_two_tailed_p(result.t, result.df);
  return result;
}

GuilfordBand guilford_band(double r) {
  const double magnitude = std::fabs(r);
  if (magnitude < 0.2) {
    return GuilfordBand::Slight;
  }
  if (magnitude < 0.4) {
    return GuilfordBand::Low;
  }
  if (magnitude < 0.7) {
    return GuilfordBand::Moderate;
  }
  if (magnitude < 0.9) {
    return GuilfordBand::High;
  }
  return GuilfordBand::VeryHigh;
}

std::string to_string(GuilfordBand band) {
  switch (band) {
    case GuilfordBand::Slight:
      return "slight";
    case GuilfordBand::Low:
      return "low";
    case GuilfordBand::Moderate:
      return "moderate";
    case GuilfordBand::High:
      return "high";
    case GuilfordBand::VeryHigh:
      return "very high";
  }
  return "?";
}

}  // namespace pblpar::stats
