#include "classroom/targets.hpp"

namespace pblpar::classroom {

double PaperTargets::emphasis_overall_mean(int half) const {
  double sum = 0.0;
  for (const ElementTargets& element : elements) {
    sum += element.emphasis_mean[static_cast<std::size_t>(half)];
  }
  return sum / static_cast<double>(elements.size());
}

double PaperTargets::growth_overall_mean(int half) const {
  double sum = 0.0;
  for (const ElementTargets& element : elements) {
    sum += element.growth_mean[static_cast<std::size_t>(half)];
  }
  return sum / static_cast<double>(elements.size());
}

const PaperTargets& PaperTargets::published() {
  // Element order matches survey::kAllElements:
  // Teamwork, Information Gathering, Problem Definition, Idea Generation,
  // Evaluation & Decision Making, Implementation, Communication.
  static const PaperTargets kTargets = [] {
    PaperTargets targets;
    //                     emphasis h1/h2   growth h1/h2     r h1/h2
    targets.elements = {{
        {{4.38, 4.41}, {4.14, 4.33}, {0.38, 0.47}},  // Teamwork
        {{3.81, 3.91}, {3.62, 3.84}, {0.66, 0.68}},  // Information Gathering
        {{4.09, 4.19}, {3.89, 4.00}, {0.62, 0.61}},  // Problem Definition
        {{4.04, 4.09}, {3.84, 3.97}, {0.64, 0.57}},  // Idea Generation
        {{3.66, 3.98}, {3.36, 3.77}, {0.73, 0.73}},  // Eval & Decision Making
        {{4.16, 4.25}, {4.05, 4.22}, {0.59, 0.61}},  // Implementation
        {{4.02, 4.03}, {3.83, 3.97}, {0.67, 0.67}},  // Communication
    }};
    targets.emphasis_overall_sd = {0.232416, 0.172052};  // Table 2
    targets.growth_overall_sd = {0.262204, 0.198497};    // Table 3
    return targets;
  }();
  return kTargets;
}

}  // namespace pblpar::classroom
