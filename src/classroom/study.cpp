#include "classroom/study.hpp"

#include "classroom/calibrate.hpp"
#include "util/rng.hpp"

namespace pblpar::classroom {

SemesterStudy SemesterStudy::simulate(std::uint64_t seed, int cohort_size,
                                      int num_teams) {
  SemesterStudy study;

  util::Rng rng(seed);
  course::RosterConfig roster_config = course::RosterConfig::paper_cohort();
  roster_config.size = cohort_size;
  study.roster = course::generate_roster(roster_config, rng);

  course::FormationConfig formation;
  study.teams =
      course::form_teams(study.roster, num_teams, formation, rng).teams;

  CohortConfig cohort_config;
  cohort_config.cohort_size = cohort_size;
  cohort_config.seed = seed;
  GeneratedStudy generated =
      generate_cohort(calibrated_paper_params(), cohort_config);
  study.first_survey = std::move(generated.first_half);
  study.second_survey = std::move(generated.second_half);

  study.analysis = analyze(study.first_survey, study.second_survey);
  return study;
}

}  // namespace pblpar::classroom
