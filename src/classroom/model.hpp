#pragma once

#include <array>
#include <cstdint>

#include "survey/response.hpp"
#include "util/rng.hpp"

namespace pblpar::classroom {

/// Parameters of the latent-trait response model.
///
/// Each survey item score is a discretized Gaussian:
///   x = mu[cat][half][element]
///       + s_total * ( sqrt(w_student) * u_i
///                   + sqrt(w_element) * z_ik
///                   + sqrt(w_item)    * eps_ij )
///   score = clamp(round(x), 1, 5)
/// where u_i is a per-student trait persistent across the semester and
/// both categories (acquiescence/engagement), z_ik is a per-(student,
/// element, half) factor whose emphasis and growth variants are
/// correlated at rho_latent[half][element] (this is what transmits "the
/// more the instructor emphasized, the more students applied"), and
/// eps_ij is item noise. The variance shares sum to 1, so the marginal
/// item SD is s_total regardless of the shares.
///
/// The element factors are *centered across the seven elements* within
/// each student (then rescaled to unit variance), so they cancel out of
/// the per-student overall average. This decouples the two published
/// dispersion constraints: the overall SDs of Tables 2/3 are carried by
/// u_i alone, while the strong per-element emphasis-growth correlations
/// of Table 4 (up to 0.73) are carried by the element factors.
struct ModelParams {
  double s_total = 0.90;

  /// Variance share of the persistent student trait, per category and
  /// half (calibrated to the paper's overall SDs, which shrink in the
  /// second half).
  std::array<std::array<double, 2>, 2> w_student{
      {{0.05, 0.02}, {0.07, 0.02}}};

  /// Variance share of the per-element (centered) factor.
  double w_element = 0.40;

  /// Latent item means: [category][half][element].
  std::array<std::array<std::array<double, survey::kElementCount>, 2>, 2>
      mu{};

  /// Latent emphasis-growth correlation: [half][element].
  std::array<std::array<double, survey::kElementCount>, 2> rho_latent{};

  double w_item(int category, int half) const {
    return 1.0 - w_student[static_cast<std::size_t>(category)]
                          [static_cast<std::size_t>(half)] -
           w_element;
  }
};

/// Cohort generation settings.
struct CohortConfig {
  int cohort_size = 124;

  /// Default cohort: the seed whose 124-student draw lands closest to the
  /// paper's observed point statistics (the paper reports one specific
  /// cohort; selecting the matching draw is documented in EXPERIMENTS.md;
  /// every aggregate conclusion also holds for arbitrary seeds — see the
  /// calibration tests, which use independent seeds).
  std::uint64_t seed = 131;
};

/// The two survey sittings of one simulated semester.
struct GeneratedStudy {
  survey::Administration first_half;
  survey::Administration second_half;
};

/// Draw a full cohort's responses from the model. Deterministic in the
/// seed; the same student trait u_i persists across both sittings.
GeneratedStudy generate_cohort(const ModelParams& params,
                               const CohortConfig& config);

/// Expected value of clamp(round(N(mu, sd)), 1, 5) — the exact mapping
/// from a latent mean to the observed Likert mean (used by calibration).
double discretized_mean(double mu, double sd);

}  // namespace pblpar::classroom
