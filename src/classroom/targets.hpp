#pragma once

#include <array>

#include "survey/instrument.hpp"

namespace pblpar::classroom {

/// Index of a survey administration: 0 = mid-semester, 1 = end of term.
inline constexpr int kFirstHalf = 0;
inline constexpr int kSecondHalf = 1;

/// The paper's published statistics for one survey element.
struct ElementTargets {
  /// Table 5: cohort mean of Class Emphasis, per half.
  std::array<double, 2> emphasis_mean{};
  /// Table 6: cohort mean of Personal Growth, per half.
  std::array<double, 2> growth_mean{};
  /// Table 4: Pearson r between emphasis and growth, per half.
  std::array<double, 2> correlation{};
};

/// Every number this reproduction calibrates against, transcribed from
/// the paper's Tables 2-6.
struct PaperTargets {
  std::array<ElementTargets, survey::kElementCount> elements{};

  /// Table 2: SD across students of the per-student overall emphasis
  /// average, per half.
  std::array<double, 2> emphasis_overall_sd{};
  /// Table 3: same for personal growth.
  std::array<double, 2> growth_overall_sd{};

  /// Table 2/3 cohort means, derivable from the element means.
  double emphasis_overall_mean(int half) const;
  double growth_overall_mean(int half) const;

  const ElementTargets& of(survey::Element element) const {
    return elements[survey::index_of(element)];
  }

  /// The published values (Younis et al., IPPS 2019).
  static const PaperTargets& published();
};

}  // namespace pblpar::classroom
