#include "classroom/model.hpp"

#include "classroom/targets.hpp"

#include <algorithm>
#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace pblpar::classroom {

namespace {

int discretize(double latent) {
  return static_cast<int>(std::clamp(std::lround(latent), 1L, 5L));
}

/// Fill one student's answers for one (category, half) from the latent
/// components.
void fill_category(
    std::array<survey::ElementResponse, survey::kElementCount>& sheet,
    const ModelParams& params, int category, int half, double u,
    const std::array<double, survey::kElementCount>& z, util::Rng& rng) {
  const auto& specs = survey::instrument();
  const double ws = params.w_student[static_cast<std::size_t>(category)]
                                    [static_cast<std::size_t>(half)];
  const double we = params.w_element;
  const double wi = params.w_item(category, half);
  util::ensure(wi > 0.0, "generate_cohort: variance shares exceed 1");

  for (std::size_t e = 0; e < survey::kElementCount; ++e) {
    const double mu = params.mu[static_cast<std::size_t>(category)]
                               [static_cast<std::size_t>(half)][e];
    const double base =
        std::sqrt(ws) * u + std::sqrt(we) * z[e];
    const auto draw_item = [&] {
      const double latent =
          mu + params.s_total * (base + std::sqrt(wi) * rng.normal());
      return discretize(latent);
    };
    survey::ElementResponse& answer = sheet[e];
    answer.definition = draw_item();
    answer.components.resize(specs[e].components.size());
    for (int& component : answer.components) {
      component = draw_item();
    }
  }
}

}  // namespace

GeneratedStudy generate_cohort(const ModelParams& params,
                               const CohortConfig& config) {
  util::require(config.cohort_size >= 2,
                "generate_cohort: need at least two students");
  util::Rng rng(config.seed);

  GeneratedStudy study;
  study.first_half.responses.resize(
      static_cast<std::size_t>(config.cohort_size));
  study.second_half.responses.resize(
      static_cast<std::size_t>(config.cohort_size));

  for (int i = 0; i < config.cohort_size; ++i) {
    for (int half = 0; half < 2; ++half) {
      // Student trait: shared across categories within a sitting, redrawn
      // per sitting. The paper's Table 1 t-statistics imply near-zero
      // covariance between the two sittings' per-student averages, so a
      // persistent trait would overstate the paired t (see DESIGN.md).
      const double u = rng.normal();
      // Per-element factors: emphasis z_e and growth z_g correlated at
      // rho_latent. Both underlying draws are centered across the seven
      // elements and rescaled to unit variance, so they drop out of the
      // per-student overall average (see ModelParams).
      std::array<double, survey::kElementCount> z_emphasis{};
      std::array<double, survey::kElementCount> z_noise{};
      double mean_e = 0.0;
      double mean_w = 0.0;
      for (std::size_t e = 0; e < survey::kElementCount; ++e) {
        z_emphasis[e] = rng.normal();
        z_noise[e] = rng.normal();
        mean_e += z_emphasis[e];
        mean_w += z_noise[e];
      }
      mean_e /= static_cast<double>(survey::kElementCount);
      mean_w /= static_cast<double>(survey::kElementCount);
      const double rescale = std::sqrt(
          static_cast<double>(survey::kElementCount) /
          static_cast<double>(survey::kElementCount - 1));
      std::array<double, survey::kElementCount> z_growth{};
      for (std::size_t e = 0; e < survey::kElementCount; ++e) {
        z_emphasis[e] = (z_emphasis[e] - mean_e) * rescale;
        z_noise[e] = (z_noise[e] - mean_w) * rescale;
        const double rho =
            params.rho_latent[static_cast<std::size_t>(half)][e];
        z_growth[e] =
            rho * z_emphasis[e] + std::sqrt(1.0 - rho * rho) * z_noise[e];
      }

      survey::StudentResponse& response =
          (half == kFirstHalf ? study.first_half : study.second_half)
              .responses[static_cast<std::size_t>(i)];
      fill_category(response.emphasis, params, 0, half, u, z_emphasis, rng);
      fill_category(response.growth, params, 1, half, u, z_growth, rng);
    }
  }
  return study;
}

double discretized_mean(double mu, double sd) {
  util::require(sd > 0.0, "discretized_mean: sd must be positive");
  // P(score = k) for k in 1..5 with cut points at k +/- 0.5 (clamped at
  // the ends).
  double expectation = 0.0;
  for (int k = 1; k <= 5; ++k) {
    double lower = k - 0.5;
    double upper = k + 0.5;
    double probability = 0.0;
    if (k == 1) {
      probability = stats::normal_cdf((upper - mu) / sd);
    } else if (k == 5) {
      probability = 1.0 - stats::normal_cdf((lower - mu) / sd);
    } else {
      probability = stats::normal_cdf((upper - mu) / sd) -
                    stats::normal_cdf((lower - mu) / sd);
    }
    expectation += k * probability;
  }
  return expectation;
}

}  // namespace pblpar::classroom
