#include "classroom/analysis.hpp"

#include <utility>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace pblpar::classroom {

namespace {

EffectRow effect_row(const std::vector<double>& first,
                     const std::vector<double>& second) {
  const stats::Summary a = stats::summarize(first);
  const stats::Summary b = stats::summarize(second);
  EffectRow row;
  row.mean_first = a.mean;
  row.sd_first = a.sd;
  row.mean_second = b.mean;
  row.sd_second = b.sd;
  row.cohens_d = stats::cohens_d_pooled(a.mean, a.sd, b.mean, b.sd);
  row.magnitude = stats::interpret_cohens_d(row.cohens_d);
  return row;
}

std::vector<stats::RankedItem> ranking_for(
    const survey::Administration& administration, survey::Category category) {
  std::vector<std::pair<std::string, double>> items;
  items.reserve(survey::kElementCount);
  for (const survey::Element element : survey::kAllElements) {
    items.emplace_back(
        survey::to_string(element),
        administration.cohort_element_composite(category, element));
  }
  return stats::rank_descending(items);
}

}  // namespace

StudyAnalysis analyze(const survey::Administration& first,
                      const survey::Administration& second) {
  util::require(first.cohort_size() == second.cohort_size(),
                "analyze: both sittings must cover the same cohort");
  util::require(first.cohort_size() >= 3, "analyze: cohort too small");

  StudyAnalysis analysis;

  // --- Table 1: paired t-tests over per-student overall averages.
  analysis.emphasis_ttest = stats::paired_t_test(
      first.per_student_overall(survey::Category::ClassEmphasis),
      second.per_student_overall(survey::Category::ClassEmphasis));
  analysis.growth_ttest = stats::paired_t_test(
      first.per_student_overall(survey::Category::PersonalGrowth),
      second.per_student_overall(survey::Category::PersonalGrowth));

  // --- Tables 2 and 3: Cohen's d with the paper's pooled-SD formula.
  analysis.emphasis_effect = effect_row(
      first.per_student_overall(survey::Category::ClassEmphasis),
      second.per_student_overall(survey::Category::ClassEmphasis));
  analysis.growth_effect = effect_row(
      first.per_student_overall(survey::Category::PersonalGrowth),
      second.per_student_overall(survey::Category::PersonalGrowth));

  // --- Table 4: Pearson r of per-student element averages,
  // emphasis vs growth, each half.
  for (const survey::Element element : survey::kAllElements) {
    CorrelationRow row;
    row.element = element;
    row.first_half = stats::pearson(
        first.per_student_element(survey::Category::ClassEmphasis, element),
        first.per_student_element(survey::Category::PersonalGrowth,
                                  element));
    row.second_half = stats::pearson(
        second.per_student_element(survey::Category::ClassEmphasis, element),
        second.per_student_element(survey::Category::PersonalGrowth,
                                   element));
    analysis.correlations.push_back(row);
  }

  // --- Tables 5 and 6: composite-score rankings.
  analysis.emphasis_ranking[0] =
      ranking_for(first, survey::Category::ClassEmphasis);
  analysis.emphasis_ranking[1] =
      ranking_for(second, survey::Category::ClassEmphasis);
  analysis.growth_ranking[0] =
      ranking_for(first, survey::Category::PersonalGrowth);
  analysis.growth_ranking[1] =
      ranking_for(second, survey::Category::PersonalGrowth);

  // --- Discussion artifact: emphasis-growth gap per element, second half.
  for (const survey::Element element : survey::kAllElements) {
    EmphasisGrowthGap gap;
    gap.element = element;
    gap.gap = second.cohort_element_mean(survey::Category::ClassEmphasis,
                                         element) -
              second.cohort_element_mean(survey::Category::PersonalGrowth,
                                         element);
    analysis.second_half_gaps.push_back(gap);
  }

  return analysis;
}

}  // namespace pblpar::classroom
