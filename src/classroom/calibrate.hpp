#pragma once

#include <cstdint>

#include "classroom/model.hpp"
#include "classroom/targets.hpp"

namespace pblpar::classroom {

/// Calibration settings. Monte Carlo evaluations use common random
/// numbers, so each bisection objective is a smooth deterministic
/// function of the parameter being solved for.
struct CalibrationOptions {
  int monte_carlo_students = 4000;
  int bisection_iterations = 40;
  std::uint64_t seed = 0xCA11B7A7E5ULL;
};

/// Fits the latent response model to the paper's published statistics:
///  1. latent means mu — solved exactly against the discretized-mean map,
///  2. student-trait shares w_student — matched to the overall SDs
///     (Tables 2/3) by bisection over a common-random-number cohort,
///  3. latent correlations rho — matched to Table 4's r values the same
///     way (this also absorbs the correlation induced by the shared
///     student trait and the attenuation from Likert discretization).
class Calibrator {
 public:
  explicit Calibrator(const PaperTargets& targets,
                      CalibrationOptions options = {});

  ModelParams calibrate() const;

 private:
  PaperTargets targets_;
  CalibrationOptions options_;
};

/// The model fitted to the published paper targets, calibrated once per
/// process and cached (deterministic).
const ModelParams& calibrated_paper_params();

}  // namespace pblpar::classroom
