#pragma once

#include <array>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/effect.hpp"
#include "stats/ranking.hpp"
#include "stats/tests.hpp"
#include "survey/response.hpp"

namespace pblpar::classroom {

/// One row of the paper's Table 2 / Table 3.
struct EffectRow {
  double mean_first = 0.0;
  double sd_first = 0.0;
  double mean_second = 0.0;
  double sd_second = 0.0;
  double cohens_d = 0.0;
  stats::EffectMagnitude magnitude = stats::EffectMagnitude::Trivial;
};

/// One row of the paper's Table 4.
struct CorrelationRow {
  survey::Element element = survey::Element::Teamwork;
  stats::PearsonResult first_half;
  stats::PearsonResult second_half;
};

/// Per-element emphasis-vs-growth gap in one half (the paper flags course
/// redesign when it exceeds 0.2; Implementation's second-half gap is
/// 0.03).
struct EmphasisGrowthGap {
  survey::Element element = survey::Element::Teamwork;
  double gap = 0.0;  // emphasis mean - growth mean
};

/// Everything the paper's evaluation section reports, computed from two
/// survey administrations.
struct StudyAnalysis {
  // Table 1: paired t-tests on per-student overall averages.
  stats::TTestResult emphasis_ttest;
  stats::TTestResult growth_ttest;

  // Tables 2 and 3.
  EffectRow emphasis_effect;
  EffectRow growth_effect;

  // Table 4, one row per element in instrument order.
  std::vector<CorrelationRow> correlations;

  // Tables 5 and 6: rankings per half (composite scores).
  std::array<std::vector<stats::RankedItem>, 2> emphasis_ranking;
  std::array<std::vector<stats::RankedItem>, 2> growth_ranking;

  // Discussion-section artifact: per-element emphasis-growth gaps in the
  // second half.
  std::vector<EmphasisGrowthGap> second_half_gaps;
};

/// Run the paper's full analysis pipeline.
StudyAnalysis analyze(const survey::Administration& first,
                      const survey::Administration& second);

}  // namespace pblpar::classroom
