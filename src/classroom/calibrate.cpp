#include "classroom/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace pblpar::classroom {

namespace {

int discretize(double latent) {
  return static_cast<int>(std::clamp(std::lround(latent), 1L, 5L));
}

/// Bisection for a monotone-increasing objective.
double bisect(const std::function<double(double)>& objective, double target,
              double lo, double hi, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (objective(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Pre-drawn standard normal tables for common-random-number objectives.
struct NormalTable {
  std::vector<double> values;
  explicit NormalTable(std::size_t count, util::Rng& rng) {
    values.resize(count);
    for (double& v : values) {
      v = rng.normal();
    }
  }
  double operator()(std::size_t index) const { return values[index]; }
};

std::size_t items_per_element() {
  // Every element of the instrument has the same item count by
  // construction; assert and return it.
  const auto& specs = survey::instrument();
  const std::size_t count = specs.front().item_count();
  for (const auto& spec : specs) {
    util::ensure(spec.item_count() == count,
                 "calibrate: instrument item counts differ per element");
  }
  return count;
}

}  // namespace

Calibrator::Calibrator(const PaperTargets& targets,
                       CalibrationOptions options)
    : targets_(targets), options_(options) {
  util::require(options_.monte_carlo_students >= 100,
                "Calibrator: need a reasonable Monte Carlo cohort");
}

ModelParams Calibrator::calibrate() const {
  ModelParams params;
  const double s = params.s_total;
  const std::size_t m = items_per_element();
  const auto n = static_cast<std::size_t>(options_.monte_carlo_students);

  // ---- Step 1: latent means, via the exact discretized-mean map.
  for (int category = 0; category < 2; ++category) {
    for (int half = 0; half < 2; ++half) {
      for (std::size_t e = 0; e < survey::kElementCount; ++e) {
        const ElementTargets& element = targets_.elements[e];
        const double target =
            category == 0
                ? element.emphasis_mean[static_cast<std::size_t>(half)]
                : element.growth_mean[static_cast<std::size_t>(half)];
        params.mu[static_cast<std::size_t>(category)]
                 [static_cast<std::size_t>(half)][e] =
            bisect([&](double mu) { return discretized_mean(mu, s); },
                   target, 0.5, 6.5, options_.bisection_iterations);
      }
    }
  }

  // ---- Step 2: student-trait shares, matched to the overall SDs.
  util::Rng rng(options_.seed);
  const NormalTable u_table(n, rng);
  const NormalTable z_table(n * survey::kElementCount, rng);
  const NormalTable eps_table(n * survey::kElementCount * m, rng);

  // Mirror the generator's centered element factors so the objective is
  // the same statistic the generator will produce.
  constexpr double kRescale =
      7.0 / 6.0;  // kElementCount / (kElementCount - 1)
  const auto centered_z = [&](std::size_t student, std::size_t element) {
    double mean = 0.0;
    for (std::size_t e = 0; e < survey::kElementCount; ++e) {
      mean += z_table(student * survey::kElementCount + e);
    }
    mean /= static_cast<double>(survey::kElementCount);
    return (z_table(student * survey::kElementCount + element) - mean) *
           std::sqrt(kRescale);
  };

  const auto overall_sd_for = [&](int category, int half, double w_student) {
    const double we = params.w_element;
    const double wi = 1.0 - w_student - we;
    std::vector<double> overall(n);
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t e = 0; e < survey::kElementCount; ++e) {
        const double mu = params.mu[static_cast<std::size_t>(category)]
                                   [static_cast<std::size_t>(half)][e];
        const double base = std::sqrt(w_student) * u_table(i) +
                            std::sqrt(we) * centered_z(i, e);
        for (std::size_t j = 0; j < m; ++j) {
          const double eps =
              eps_table((i * survey::kElementCount + e) * m + j);
          sum += discretize(mu + s * (base + std::sqrt(wi) * eps));
        }
      }
      overall[i] = sum / static_cast<double>(survey::kElementCount * m);
    }
    return stats::sample_sd(overall);
  };

  for (int category = 0; category < 2; ++category) {
    for (int half = 0; half < 2; ++half) {
      const double target =
          category == 0
              ? targets_.emphasis_overall_sd[static_cast<std::size_t>(half)]
              : targets_.growth_overall_sd[static_cast<std::size_t>(half)];
      params.w_student[static_cast<std::size_t>(category)]
                      [static_cast<std::size_t>(half)] =
          bisect(
              [&](double w) { return overall_sd_for(category, half, w); },
              target, 0.005, 1.0 - params.w_element - 0.05,
              options_.bisection_iterations);
    }
  }

  // ---- Step 3: latent correlations, matched to Table 4's r values.
  const NormalTable w_table(n * survey::kElementCount, rng);
  const NormalTable eps_g_table(n * survey::kElementCount * m, rng);

  const auto observed_r = [&](int half, std::size_t e, double rho) {
    const double we = params.w_element;
    const double ws_e =
        params.w_student[0][static_cast<std::size_t>(half)];
    const double ws_g =
        params.w_student[1][static_cast<std::size_t>(half)];
    const double wi_e = 1.0 - ws_e - we;
    const double wi_g = 1.0 - ws_g - we;
    const double mu_e = params.mu[0][static_cast<std::size_t>(half)][e];
    const double mu_g = params.mu[1][static_cast<std::size_t>(half)][e];

    std::vector<double> emphasis(n);
    std::vector<double> growth(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = u_table(i);
      const double ze = z_table(i * survey::kElementCount + e);
      const double zw = w_table(i * survey::kElementCount + e);
      const double zg = rho * ze + std::sqrt(1.0 - rho * rho) * zw;
      double sum_e = 0.0;
      double sum_g = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t index = (i * survey::kElementCount + e) * m + j;
        sum_e += discretize(mu_e + s * (std::sqrt(ws_e) * u +
                                        std::sqrt(we) * ze +
                                        std::sqrt(wi_e) * eps_table(index)));
        sum_g += discretize(mu_g + s * (std::sqrt(ws_g) * u +
                                        std::sqrt(we) * zg +
                                        std::sqrt(wi_g) *
                                            eps_g_table(index)));
      }
      emphasis[i] = sum_e / static_cast<double>(m);
      growth[i] = sum_g / static_cast<double>(m);
    }
    return stats::pearson(emphasis, growth).r;
  };

  for (int half = 0; half < 2; ++half) {
    for (std::size_t e = 0; e < survey::kElementCount; ++e) {
      const double target =
          targets_.elements[e].correlation[static_cast<std::size_t>(half)];
      params.rho_latent[static_cast<std::size_t>(half)][e] =
          bisect([&](double rho) { return observed_r(half, e, rho); },
                 target, -0.999, 0.999, options_.bisection_iterations);
    }
  }

  return params;
}

const ModelParams& calibrated_paper_params() {
  static const ModelParams kParams =
      Calibrator(PaperTargets::published()).calibrate();
  return kParams;
}

}  // namespace pblpar::classroom
