#pragma once

#include <cstdint>
#include <vector>

#include "classroom/analysis.hpp"
#include "classroom/model.hpp"
#include "course/teams.hpp"

namespace pblpar::classroom {

/// One complete simulated run of the paper's study: the cohort, the
/// criteria-balanced teams, both survey sittings generated from the
/// calibrated model, and the full analysis.
struct SemesterStudy {
  std::vector<course::Student> roster;
  std::vector<course::Team> teams;
  survey::Administration first_survey;
  survey::Administration second_survey;
  StudyAnalysis analysis;

  /// Reproduce the paper's setup: 124 students (26 female), 26 teams of
  /// up to five, two survey sittings. Deterministic in the seed.
  static SemesterStudy simulate(std::uint64_t seed = CohortConfig{}.seed,
                                int cohort_size = 124, int num_teams = 26);
};

}  // namespace pblpar::classroom
