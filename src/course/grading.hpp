#pragma once

#include <vector>

#include "util/error.hpp"

namespace pblpar::course {

/// How far a student cooperated on one assignment (the paper's zero
/// rules).
enum class Cooperation {
  Full,     // receives the team grade
  Partial,  // "refuses to cooperate or partially cooperated": zero
  None,     // zero, and if persistent, zeroes for the rest of the module
};

/// The module's grading policy: 25% of the course grade, split equally
/// across the five assignments; per-assignment zero rules as published.
struct GradingPolicy {
  double module_weight = 0.25;
  int num_assignments = 5;

  double per_assignment_weight() const {
    return module_weight / num_assignments;
  }
};

/// A peer rating of one member's contribution, from the per-assignment
/// peer rating form (0..5).
struct PeerRating {
  int rater_id = -1;
  int ratee_id = -1;
  int score = 0;
};

/// Grade one student's single assignment: the team grade if they
/// cooperated, zero otherwise. `team_grade` in [0, 100].
double assignment_grade(double team_grade, Cooperation cooperation);

/// Grade a student's whole PBL module given the team grade and their
/// cooperation per assignment. Implements the persistence rule: from the
/// second consecutive `None` onwards, all remaining assignments are
/// zeroed ("grade of zeroes will be assigned for the remaining
/// assignments"). Returns the module score in [0, 100].
double module_score(const std::vector<double>& team_grades,
                    const std::vector<Cooperation>& cooperation,
                    const GradingPolicy& policy = {});

/// Mean peer rating received by a student (0 if never rated).
double mean_peer_rating(const std::vector<PeerRating>& ratings,
                        int ratee_id);

}  // namespace pblpar::course
