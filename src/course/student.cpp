#include "course/student.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pblpar::course {

double Student::ability_index() const {
  const double gpa_scaled = gpa / 4.3 * 5.0;
  return (gpa_scaled + programming_experience + systems_experience +
          groupwork_experience + writing_experience) /
         5.0;
}

std::vector<Student> generate_roster(const RosterConfig& config,
                                     util::Rng& rng) {
  util::require(config.size >= 1, "generate_roster: size must be positive");
  util::require(config.female_fraction >= 0.0 &&
                    config.female_fraction <= 1.0,
                "generate_roster: female_fraction must be in [0, 1]");

  const int females =
      static_cast<int>(std::lround(config.female_fraction * config.size));

  std::vector<Student> roster;
  roster.reserve(static_cast<std::size_t>(config.size));
  for (int i = 0; i < config.size; ++i) {
    Student student;
    student.id = i;
    student.gender = i < females ? Gender::Female : Gender::Male;
    student.gpa =
        std::clamp(rng.normal(config.mean_gpa, config.sd_gpa), 1.8, 4.3);
    // Experience scales: centred at 3 with spread, clamped to 1..5.
    const auto scale = [&rng] {
      return static_cast<int>(
          std::clamp(std::lround(rng.normal(3.0, 1.0)), 1L, 5L));
    };
    student.programming_experience = scale();
    student.systems_experience = scale();
    student.groupwork_experience = scale();
    student.writing_experience = scale();
    roster.push_back(student);
  }
  // Shuffle so gender is not correlated with id order.
  rng.shuffle(roster);
  for (int i = 0; i < config.size; ++i) {
    roster[static_cast<std::size_t>(i)].id = i;
  }
  return roster;
}

int female_count(const std::vector<Student>& students,
                 const std::vector<int>& member_ids) {
  int count = 0;
  for (const int id : member_ids) {
    util::require(id >= 0 && id < static_cast<int>(students.size()),
                  "female_count: member id out of range");
    if (students[static_cast<std::size_t>(id)].gender == Gender::Female) {
      ++count;
    }
  }
  return count;
}

}  // namespace pblpar::course
