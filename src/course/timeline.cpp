#include "course/timeline.hpp"

#include "course/assignments.hpp"

namespace pblpar::course {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::TeamFormation:
      return "Team formation";
    case EventKind::AssignmentStart:
      return "Assignment start";
    case EventKind::AssignmentDue:
      return "Assignment due";
    case EventKind::Quiz:
      return "Quiz";
    case EventKind::Survey:
      return "Survey";
    case EventKind::Midterm:
      return "Midterm exam";
    case EventKind::FinalExam:
      return "Final exam";
  }
  return "?";
}

std::vector<TimelineEvent> semester_timeline() {
  std::vector<TimelineEvent> events;
  events.push_back({1, EventKind::TeamFormation, 0,
                    "Students organized into diverse groups of up to five"});

  // Five two-week assignments, back to back from week 2, each followed by
  // a quiz in the week after its due date.
  int week = 2;
  for (const Assignment& assignment : five_assignments()) {
    std::string label = "A";
    label += std::to_string(assignment.number);
    events.push_back({week, EventKind::AssignmentStart, assignment.number,
                      label + ": " + assignment.title});
    events.push_back({week + 1, EventKind::AssignmentDue, assignment.number,
                      label + " due"});
    events.push_back({week + 2 <= kSemesterWeeks ? week + 2 : kSemesterWeeks,
                      EventKind::Quiz, assignment.number, "Quiz on " + label});
    week += 2;
  }

  events.push_back({kFirstSurveyWeek, EventKind::Survey, 0,
                    "Team Design Skills Growth Survey (first sitting)"});
  events.push_back({kFirstSurveyWeek, EventKind::Midterm, 0, "Midterm"});
  events.push_back({kSecondSurveyWeek, EventKind::Survey, 0,
                    "Team Design Skills Growth Survey (second sitting)"});
  events.push_back({kSemesterWeeks, EventKind::FinalExam, 0, "Final exam"});
  return events;
}

}  // namespace pblpar::course
