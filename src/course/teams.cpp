#include "course/teams.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"

namespace pblpar::course {

namespace {

double variance(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double sum_sq = 0.0;
  for (const double v : values) {
    sum_sq += (v - mean) * (v - mean);
  }
  return sum_sq / static_cast<double>(values.size());
}

std::vector<Team> empty_teams(int num_teams) {
  std::vector<Team> teams(static_cast<std::size_t>(num_teams));
  for (int t = 0; t < num_teams; ++t) {
    teams[static_cast<std::size_t>(t)].id = t;
  }
  return teams;
}

void check_inputs(const std::vector<Student>& students, int num_teams,
                  int max_team_size) {
  util::require(num_teams >= 1, "form_teams: need at least one team");
  util::require(!students.empty(), "form_teams: roster is empty");
  util::require(
      static_cast<int>(students.size()) <= num_teams * max_team_size,
      "form_teams: roster does not fit in num_teams * max_team_size");
}

}  // namespace

int Team::coordinator_for(int assignment_index) const {
  util::require(!member_ids.empty(), "Team::coordinator_for: empty team");
  util::require(assignment_index >= 0,
                "Team::coordinator_for: negative assignment index");
  return member_ids[static_cast<std::size_t>(assignment_index) %
                    member_ids.size()];
}

double partition_cost(const std::vector<Student>& students,
                      const std::vector<Team>& teams,
                      const FormationConfig& config,
                      const std::vector<std::pair<int, int>>& friend_pairs) {
  std::vector<double> team_abilities;
  std::vector<double> team_female_counts;
  int isolated = 0;
  team_abilities.reserve(teams.size());
  for (const Team& team : teams) {
    if (team.member_ids.empty()) {
      continue;
    }
    double ability_sum = 0.0;
    for (const int id : team.member_ids) {
      ability_sum += students[static_cast<std::size_t>(id)].ability_index();
    }
    team_abilities.push_back(ability_sum /
                             static_cast<double>(team.member_ids.size()));
    const int females = female_count(students, team.member_ids);
    team_female_counts.push_back(static_cast<double>(females));
    if (females == 1) {
      ++isolated;
    }
  }

  int friends_together = 0;
  for (const auto& [a, b] : friend_pairs) {
    for (const Team& team : teams) {
      const bool has_a = std::find(team.member_ids.begin(),
                                   team.member_ids.end(),
                                   a) != team.member_ids.end();
      const bool has_b = std::find(team.member_ids.begin(),
                                   team.member_ids.end(),
                                   b) != team.member_ids.end();
      if (has_a && has_b) {
        ++friends_together;
        break;
      }
    }
  }

  return config.ability_weight * variance(team_abilities) +
         config.gender_weight * variance(team_female_counts) +
         config.isolation_weight * isolated +
         config.friends_weight * friends_together;
}

FormationResult form_teams(const std::vector<Student>& students,
                           int num_teams, const FormationConfig& config,
                           util::Rng& rng,
                           const std::vector<std::pair<int, int>>&
                               friend_pairs) {
  check_inputs(students, num_teams, config.max_team_size);

  // --- Greedy seeding: snake draft by descending ability so every team
  // gets a spread of strong and weak members.
  std::vector<int> order(students.size());
  for (std::size_t i = 0; i < students.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double ability_a =
        students[static_cast<std::size_t>(a)].ability_index();
    const double ability_b =
        students[static_cast<std::size_t>(b)].ability_index();
    if (ability_a != ability_b) {
      return ability_a > ability_b;
    }
    return a < b;
  });

  std::vector<Team> teams = empty_teams(num_teams);
  int direction = 1;
  int team_index = 0;
  for (const int student_id : order) {
    teams[static_cast<std::size_t>(team_index)].member_ids.push_back(
        student_id);
    if (direction == 1 && team_index == num_teams - 1) {
      direction = -1;
    } else if (direction == -1 && team_index == 0) {
      direction = 1;
    } else {
      team_index += direction;
    }
  }

  // --- Local search: accept member swaps between random teams whenever
  // they lower the objective.
  double cost = partition_cost(students, teams, config, friend_pairs);
  for (int iteration = 0; iteration < config.local_search_iterations;
       ++iteration) {
    const int t1 = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(num_teams)));
    const int t2 = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(num_teams)));
    if (t1 == t2 || teams[static_cast<std::size_t>(t1)].member_ids.empty() ||
        teams[static_cast<std::size_t>(t2)].member_ids.empty()) {
      continue;
    }
    auto& members1 = teams[static_cast<std::size_t>(t1)].member_ids;
    auto& members2 = teams[static_cast<std::size_t>(t2)].member_ids;
    const std::size_t i1 = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(members1.size())));
    const std::size_t i2 = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(members2.size())));
    std::swap(members1[i1], members2[i2]);
    const double new_cost =
        partition_cost(students, teams, config, friend_pairs);
    if (new_cost < cost) {
      cost = new_cost;
    } else {
      std::swap(members1[i1], members2[i2]);  // revert
    }
  }

  FormationResult result;
  result.teams = std::move(teams);
  result.cost = cost;
  return result;
}

FormationResult form_random_teams(const std::vector<Student>& students,
                                  int num_teams, util::Rng& rng) {
  check_inputs(students, num_teams,
               (static_cast<int>(students.size()) + num_teams - 1) /
                   num_teams);
  std::vector<int> order(students.size());
  for (std::size_t i = 0; i < students.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  rng.shuffle(order);

  std::vector<Team> teams = empty_teams(num_teams);
  for (std::size_t i = 0; i < order.size(); ++i) {
    teams[i % static_cast<std::size_t>(num_teams)].member_ids.push_back(
        order[i]);
  }

  FormationResult result;
  result.cost = partition_cost(students, teams, FormationConfig{}, {});
  result.teams = std::move(teams);
  return result;
}

BalanceMetrics measure_balance(
    const std::vector<Student>& students, const std::vector<Team>& teams,
    const std::vector<std::pair<int, int>>& friend_pairs) {
  util::require(!teams.empty(), "measure_balance: no teams");
  BalanceMetrics metrics;
  double min_ability = 1e9;
  double max_ability = -1e9;
  double min_gpa = 1e9;
  double max_gpa = -1e9;
  int min_females = 1 << 20;
  int max_females = 0;
  for (const Team& team : teams) {
    util::require(!team.member_ids.empty(), "measure_balance: empty team");
    double ability_sum = 0.0;
    double gpa_sum = 0.0;
    for (const int id : team.member_ids) {
      ability_sum += students[static_cast<std::size_t>(id)].ability_index();
      gpa_sum += students[static_cast<std::size_t>(id)].gpa;
    }
    const double size = static_cast<double>(team.member_ids.size());
    min_ability = std::min(min_ability, ability_sum / size);
    max_ability = std::max(max_ability, ability_sum / size);
    min_gpa = std::min(min_gpa, gpa_sum / size);
    max_gpa = std::max(max_gpa, gpa_sum / size);
    const int females = female_count(students, team.member_ids);
    min_females = std::min(min_females, females);
    max_females = std::max(max_females, females);
    if (females == 1) {
      ++metrics.isolated_females;
    }
  }
  metrics.ability_spread = max_ability - min_ability;
  metrics.gpa_spread = max_gpa - min_gpa;
  metrics.max_female_gap = max_females - min_females;

  for (const auto& [a, b] : friend_pairs) {
    for (const Team& team : teams) {
      const bool has_a = std::find(team.member_ids.begin(),
                                   team.member_ids.end(),
                                   a) != team.member_ids.end();
      const bool has_b = std::find(team.member_ids.begin(),
                                   team.member_ids.end(),
                                   b) != team.member_ids.end();
      if (has_a && has_b) {
        ++metrics.friend_pairs_together;
        break;
      }
    }
  }
  return metrics;
}

}  // namespace pblpar::course
