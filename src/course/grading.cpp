#include "course/grading.hpp"

namespace pblpar::course {

double assignment_grade(double team_grade, Cooperation cooperation) {
  util::require(team_grade >= 0.0 && team_grade <= 100.0,
                "assignment_grade: team grade must be in [0, 100]");
  return cooperation == Cooperation::Full ? team_grade : 0.0;
}

double module_score(const std::vector<double>& team_grades,
                    const std::vector<Cooperation>& cooperation,
                    const GradingPolicy& policy) {
  util::require(team_grades.size() == cooperation.size(),
                "module_score: one cooperation entry per assignment");
  util::require(static_cast<int>(team_grades.size()) ==
                    policy.num_assignments,
                "module_score: grade count must match the policy");

  double total = 0.0;
  int consecutive_none = 0;
  bool zeroed_out = false;
  for (std::size_t a = 0; a < team_grades.size(); ++a) {
    if (zeroed_out) {
      continue;
    }
    if (cooperation[a] == Cooperation::None) {
      ++consecutive_none;
      if (consecutive_none >= 2) {
        zeroed_out = true;  // problem persisted; remaining are zero
      }
      continue;
    }
    consecutive_none = 0;
    total += assignment_grade(team_grades[a], cooperation[a]);
  }
  return total / policy.num_assignments;
}

double mean_peer_rating(const std::vector<PeerRating>& ratings,
                        int ratee_id) {
  double sum = 0.0;
  int count = 0;
  for (const PeerRating& rating : ratings) {
    util::require(rating.score >= 0 && rating.score <= 5,
                  "mean_peer_rating: scores must be in 0..5");
    if (rating.ratee_id == ratee_id) {
      sum += rating.score;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace pblpar::course
