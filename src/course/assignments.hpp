#pragma once

#include <string>
#include <vector>

namespace pblpar::course {

/// The learning materials the paper distributes with assignments
/// (references [6]–[11]).
enum class Material {
  TeamworkBasics,                 // [6] MIT Sloan teamwork notes
  RaspberryPiMulticore,           // [7] CSinParallel Pi workshop
  OpenMpPatternlets,              // [8] shared-memory patternlets
  IntroParallelComputing,         // [9] LLNL tutorial
  CpuVsSoc,                       // [10]
  IntroParallelMapReduce,         // [11]
};

std::string to_string(Material material);

/// The per-assignment deliverables common to all five assignments.
enum class Deliverable {
  PlanningAndScheduling,  // work breakdown structure
  Collaboration,
  WrittenReport,
  VideoPresentation,  // 5-10 minutes, every member participates
};

std::string to_string(Deliverable deliverable);

/// One two-week project assignment of the PBL module.
struct Assignment {
  int number = 0;  // 1..5
  std::string title;
  int duration_weeks = 2;
  std::vector<Material> materials;
  std::vector<std::string> study_questions;
  std::vector<std::string> programming_tasks;  // names of patternlets/apps

  bool has_programming() const { return !programming_tasks.empty(); }
};

/// The five assignments exactly as the paper describes them (Section II).
const std::vector<Assignment>& five_assignments();

/// All four deliverables, required by every assignment.
const std::vector<Deliverable>& standard_deliverables();

/// The video presentation guide bullet points (quoted from the paper).
const std::vector<std::string>& video_presentation_guide();

}  // namespace pblpar::course
