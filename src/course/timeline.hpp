#pragma once

#include <string>
#include <vector>

namespace pblpar::course {

/// What happens in a given week of the 15-week semester.
enum class EventKind {
  TeamFormation,
  AssignmentStart,
  AssignmentDue,
  Quiz,
  Survey,
  Midterm,
  FinalExam,
};

std::string to_string(EventKind kind);

struct TimelineEvent {
  int week = 0;  // 1-based
  EventKind kind = EventKind::TeamFormation;
  int assignment_number = 0;  // for assignment/quiz events; 0 otherwise
  std::string label;
};

/// The paper's Fig. 1: a 15-week semester with team formation in week 1,
/// five two-week assignments (each followed by a quiz), the survey at the
/// midpoint and at the end, and midterm/final exams.
std::vector<TimelineEvent> semester_timeline();

/// Total length of the semester in weeks.
constexpr int kSemesterWeeks = 15;

/// Weeks at which the survey is administered (mid-semester and end).
constexpr int kFirstSurveyWeek = 8;
constexpr int kSecondSurveyWeek = 15;

}  // namespace pblpar::course
