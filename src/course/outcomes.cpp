#include "course/outcomes.hpp"

#include <algorithm>

#include "course/assignments.hpp"
#include "util/error.hpp"

namespace pblpar::course {

double ModuleOutcomes::mean_module_score() const {
  util::require(!students.empty(), "ModuleOutcomes: no students");
  double sum = 0.0;
  for (const StudentOutcome& student : students) {
    sum += student.module_score;
  }
  return sum / static_cast<double>(students.size());
}

ModuleOutcomes simulate_module(const std::vector<Student>& students,
                               const std::vector<Team>& teams,
                               const OutcomeConfig& config, util::Rng& rng) {
  util::require(!teams.empty(), "simulate_module: no teams");
  util::require(config.partial_cooperation_rate >= 0.0 &&
                    config.non_cooperation_rate >= 0.0 &&
                    config.partial_cooperation_rate +
                            config.non_cooperation_rate <=
                        1.0,
                "simulate_module: cooperation rates must form a "
                "probability");
  const int num_assignments = config.policy.num_assignments;

  ModuleOutcomes outcomes;
  outcomes.policy = config.policy;
  outcomes.students.resize(students.size());
  for (std::size_t i = 0; i < students.size(); ++i) {
    outcomes.students[i].student_id = static_cast<int>(i);
    outcomes.students[i].cooperation.assign(
        static_cast<std::size_t>(num_assignments), Cooperation::Full);
  }

  std::vector<PeerRating> all_ratings;

  for (const Team& team : teams) {
    util::require(!team.member_ids.empty(), "simulate_module: empty team");
    TeamOutcome team_outcome;
    team_outcome.team_id = team.id;

    // Team ability pulls its grades up or down a little.
    double ability_sum = 0.0;
    for (const int id : team.member_ids) {
      ability_sum += students[static_cast<std::size_t>(id)].ability_index();
      outcomes.students[static_cast<std::size_t>(id)].team_id = team.id;
    }
    const double ability_centered =
        ability_sum / static_cast<double>(team.member_ids.size()) - 3.0;

    for (int a = 0; a < num_assignments; ++a) {
      const double grade = std::clamp(
          rng.normal(config.base_team_grade +
                         config.ability_grade_weight * ability_centered,
                     config.team_grade_sd),
          0.0, 100.0);
      team_outcome.assignment_grades.push_back(grade);

      const int coordinator = team.coordinator_for(a);
      outcomes.students[static_cast<std::size_t>(coordinator)]
          .coordinator_count += 1;

      // Cooperation draws; coordinators never bail on their own
      // assignment.
      for (const int id : team.member_ids) {
        Cooperation cooperation = Cooperation::Full;
        if (id != coordinator) {
          const double draw = rng.next_double();
          if (draw < config.non_cooperation_rate) {
            cooperation = Cooperation::None;
          } else if (draw < config.non_cooperation_rate +
                                config.partial_cooperation_rate) {
            cooperation = Cooperation::Partial;
          }
        }
        outcomes.students[static_cast<std::size_t>(id)]
            .cooperation[static_cast<std::size_t>(a)] = cooperation;
      }

      // Peer ratings: full cooperators get 4-5, partial 2-3, none 0-1.
      for (const int rater : team.member_ids) {
        for (const int ratee : team.member_ids) {
          if (rater == ratee) {
            continue;
          }
          const Cooperation c =
              outcomes.students[static_cast<std::size_t>(ratee)]
                  .cooperation[static_cast<std::size_t>(a)];
          int score = 0;
          switch (c) {
            case Cooperation::Full:
              score = static_cast<int>(rng.uniform_int(4, 5));
              break;
            case Cooperation::Partial:
              score = static_cast<int>(rng.uniform_int(2, 3));
              break;
            case Cooperation::None:
              score = static_cast<int>(rng.uniform_int(0, 1));
              break;
          }
          all_ratings.push_back(PeerRating{rater, ratee, score});
        }
      }
    }
    outcomes.teams.push_back(std::move(team_outcome));
  }

  // Final per-student scores via the grading policy's zero rules.
  for (const TeamOutcome& team_outcome : outcomes.teams) {
    const Team& team = teams[static_cast<std::size_t>(team_outcome.team_id)];
    for (const int id : team.member_ids) {
      StudentOutcome& student = outcomes.students[static_cast<std::size_t>(id)];
      student.module_score = module_score(
          team_outcome.assignment_grades, student.cooperation,
          config.policy);
      student.mean_peer_rating = mean_peer_rating(all_ratings, id);
    }
  }
  return outcomes;
}

}  // namespace pblpar::course
