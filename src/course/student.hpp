#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pblpar::course {

enum class Gender { Male, Female };

/// One enrolled student, carrying exactly the attributes the paper's team
/// formation criteria use: "gender, system and programming experience,
/// experience in group work, GPA, and technical writing experience".
struct Student {
  int id = -1;
  Gender gender = Gender::Male;
  double gpa = 0.0;               // 0.0 .. 4.3
  int programming_experience = 1;  // 1..5
  int systems_experience = 1;      // 1..5
  int groupwork_experience = 1;    // 1..5
  int writing_experience = 1;      // 1..5

  /// Composite ability used for balancing: GPA (normalized to 0..5) plus
  /// the four experience scales, equally weighted.
  double ability_index() const;
};

/// Configuration of a synthetic roster that mirrors the paper's cohort.
struct RosterConfig {
  int size = 124;
  double female_fraction = 26.0 / 124.0;  // 26 of 124 students
  double mean_gpa = 3.1;
  double sd_gpa = 0.45;

  static RosterConfig paper_cohort() { return RosterConfig{}; }
};

/// Generate a deterministic synthetic roster (the paper's raw roster is
/// not published; this is the documented substitution).
std::vector<Student> generate_roster(const RosterConfig& config,
                                     util::Rng& rng);

/// Count of female students in a roster subset.
int female_count(const std::vector<Student>& students,
                 const std::vector<int>& member_ids);

}  // namespace pblpar::course
