#pragma once

#include <vector>

#include "course/grading.hpp"
#include "course/teams.hpp"
#include "util/rng.hpp"

namespace pblpar::course {

/// One student's simulated trajectory through the five-assignment module.
struct StudentOutcome {
  int student_id = -1;
  int team_id = -1;
  std::vector<Cooperation> cooperation;  // one entry per assignment
  double mean_peer_rating = 0.0;         // 0..5 across the semester
  double module_score = 0.0;             // 0..100
  int coordinator_count = 0;             // assignments coordinated
};

/// One team's simulated trajectory.
struct TeamOutcome {
  int team_id = -1;
  std::vector<double> assignment_grades;  // 0..100, one per assignment
};

/// The whole module's simulated outcomes.
struct ModuleOutcomes {
  std::vector<TeamOutcome> teams;
  std::vector<StudentOutcome> students;  // indexed by student id
  GradingPolicy policy;

  double mean_module_score() const;
};

/// Simulation knobs (rates loosely follow the experience of running
/// group projects: most students cooperate; a few lapse occasionally).
struct OutcomeConfig {
  double base_team_grade = 84.0;   // mean assignment grade
  double team_grade_sd = 7.0;
  double ability_grade_weight = 4.0;  // team ability's pull on its grade
  double partial_cooperation_rate = 0.04;
  double non_cooperation_rate = 0.015;
  GradingPolicy policy{};
};

/// Simulate the module: per-assignment team grades (ability-linked),
/// per-student cooperation (with the paper's zero rules applied), peer
/// ratings consistent with cooperation, and coordinator rotation.
/// Deterministic in the rng.
ModuleOutcomes simulate_module(const std::vector<Student>& students,
                               const std::vector<Team>& teams,
                               const OutcomeConfig& config, util::Rng& rng);

}  // namespace pblpar::course
