#include "course/assignments.hpp"

namespace pblpar::course {

std::string to_string(Material material) {
  switch (material) {
    case Material::TeamworkBasics:
      return "Teamwork Basics [6]";
    case Material::RaspberryPiMulticore:
      return "Raspberry PI Multicore architecture [7]";
    case Material::OpenMpPatternlets:
      return "Shared Memory Parallel Patternlets in OpenMP [8]";
    case Material::IntroParallelComputing:
      return "Introduction to Parallel Computing [9]";
    case Material::CpuVsSoc:
      return "CPU vs. SOC - The battle for the future of computing [10]";
    case Material::IntroParallelMapReduce:
      return "Introduction to Parallel Programming and MapReduce [11]";
  }
  return "?";
}

std::string to_string(Deliverable deliverable) {
  switch (deliverable) {
    case Deliverable::PlanningAndScheduling:
      return "Planning and Scheduling (work breakdown structure)";
    case Deliverable::Collaboration:
      return "Collaboration";
    case Deliverable::WrittenReport:
      return "Written Report";
    case Deliverable::VideoPresentation:
      return "Video Presentation (5-10 minutes, posted on YouTube)";
  }
  return "?";
}

const std::vector<Assignment>& five_assignments() {
  static const std::vector<Assignment> kAssignments = {
      {1,
       "Teamwork basics and teamwork technologies",
       2,
       {Material::TeamworkBasics},
       {
           "Establish the team Ground Rules: work norms, facilitator "
           "norms, communication norms, meeting norms, handling difficult "
           "behavior, and handling group problems.",
           "Learn, apply and report how to utilize Slack, GitHub, Google "
           "Docs, and YouTube as teamwork technologies.",
       },
       {}},
      {2,
       "Raspberry Pi setup and first shared-memory programs",
       2,
       {Material::RaspberryPiMulticore, Material::OpenMpPatternlets,
        Material::IntroParallelComputing},
       {
           "Identify the components on the Raspberry PI B+.",
           "How many cores does the Raspberry Pi's B+ CPU have?",
           "What is the difference between sequential and parallel "
           "computation and the practical significance of each?",
           "Identify the basic form of data and task parallelism in "
           "computational problems.",
           "Explain the differences between processes and threads.",
           "What is OpenMP and what are OpenMP pragmas?",
           "What applications benefit from multi-core?",
       },
       {"fork-join", "spmd", "shared-memory-data-race"}},
      {3,
       "Parallel loops and scheduling",
       2,
       {Material::RaspberryPiMulticore, Material::OpenMpPatternlets,
        Material::IntroParallelComputing, Material::CpuVsSoc},
       {
           "What is: Task, Pipelining, Shared Memory, Communications, and "
           "Synchronization?",
           "Classify parallel computers based on Flynn's taxonomy.",
           "What are the Parallel Programming Models?",
           "List and describe the types of Parallel Computer Memory "
           "Architecture. What type is used by OpenMP and why?",
           "Compare the Shared Memory Model with the Threads Model.",
           "What is System On Chip (SOC)? Does Raspberry PI use SOC?",
           "What are the advantages of a System on a Chip rather than "
           "separate CPU, GPU and RAM components?",
       },
       {"parallel-loop-equal-chunks", "parallel-loop-scheduling",
        "reduction"}},
      {4,
       "Race conditions, synchronization patterns",
       2,
       {Material::OpenMpPatternlets, Material::IntroParallelComputing},
       {
           "What is the race condition? Why is a race condition difficult "
           "to reproduce and debug? How can it be fixed? Provide an "
           "example from your Assignment 2.",
           "Compare collective synchronization (barrier) with collective "
           "communication (reduction).",
           "Compare master-worker with fork-join.",
       },
       {"trapezoid-integration", "barrier-coordination", "master-worker"}},
      {5,
       "MapReduce and the Drug Design exemplar",
       2,
       {Material::IntroParallelMapReduce, Material::RaspberryPiMulticore},
       {
           "What are the basic steps in building a parallel program?",
           "What is MapReduce? What is a map and what is a reduce?",
           "Why MapReduce? Explain how the MapReduce model is executed.",
           "List and describe three examples that are expressed as "
           "MapReduce computations.",
           "When do we use OpenMP, MPI and MapReduce (Hadoop), and why?",
           "Report your understanding of the Drug Design and DNA problem "
           "and its parallel algorithmic strategy.",
       },
       {"drug-design-sequential", "drug-design-openmp",
        "drug-design-cxx11-threads"}},
  };
  return kAssignments;
}

const std::vector<Deliverable>& standard_deliverables() {
  static const std::vector<Deliverable> kDeliverables = {
      Deliverable::PlanningAndScheduling,
      Deliverable::Collaboration,
      Deliverable::WrittenReport,
      Deliverable::VideoPresentation,
  };
  return kDeliverables;
}

const std::vector<std::string>& video_presentation_guide() {
  static const std::vector<std::string> kGuide = {
      "Introduce yourself and your role.",
      "Identify your task for this assignment and 2-3 key things learned.",
      "How you will apply what you learned in your next assignment, "
      "academic life (future classes), and in the future job.",
      "What was the best/most challenging/worst experience you "
      "encountered.",
  };
  return kGuide;
}

}  // namespace pblpar::course
