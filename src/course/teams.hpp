#pragma once

#include <utility>
#include <vector>

#include "course/student.hpp"
#include "util/rng.hpp"

namespace pblpar::course {

/// One project team. The coordinator role rotates across assignments, as
/// the paper requires ("this role is to be rotated among team members for
/// each assignment").
struct Team {
  int id = -1;
  std::vector<int> member_ids;

  /// The member coordinating assignment `assignment_index` (0-based).
  int coordinator_for(int assignment_index) const;
};

/// Weights of the team-formation objective. The cost of a partition is
/// the weighted sum of:
///  - variance across teams of mean ability (balance in ability),
///  - variance across teams of female count (mixed gender),
///  - number of isolated female students (avoid a lone woman on a team),
///  - friend pairs placed together (avoid predetermined groups of friends).
struct FormationConfig {
  int max_team_size = 5;
  double ability_weight = 1.0;
  double gender_weight = 0.5;
  double isolation_weight = 1.0;
  double friends_weight = 2.0;
  int local_search_iterations = 4000;
};

struct FormationResult {
  std::vector<Team> teams;
  double cost = 0.0;
};

/// Aggregate balance diagnostics used by tests and the ablation bench.
struct BalanceMetrics {
  double ability_spread = 0.0;   // max - min of team mean ability
  double gpa_spread = 0.0;       // max - min of team mean GPA
  int max_female_gap = 0;        // max - min female count per team
  int isolated_females = 0;      // teams with exactly one female
  int friend_pairs_together = 0;
};

/// Criteria-based formation, as the paper prescribes: greedy snake-draft
/// seeding by ability followed by local-search swaps under the objective
/// above. Deterministic given the rng seed.
FormationResult form_teams(const std::vector<Student>& students,
                           int num_teams, const FormationConfig& config,
                           util::Rng& rng,
                           const std::vector<std::pair<int, int>>&
                               friend_pairs = {});

/// Baseline for the ablation: uniformly random partition of the roster.
FormationResult form_random_teams(const std::vector<Student>& students,
                                  int num_teams, util::Rng& rng);

/// Compute the diagnostics for any partition.
BalanceMetrics measure_balance(
    const std::vector<Student>& students, const std::vector<Team>& teams,
    const std::vector<std::pair<int, int>>& friend_pairs = {});

/// The objective value used by form_teams (exposed for tests/ablation).
double partition_cost(const std::vector<Student>& students,
                      const std::vector<Team>& teams,
                      const FormationConfig& config,
                      const std::vector<std::pair<int, int>>& friend_pairs);

}  // namespace pblpar::course
