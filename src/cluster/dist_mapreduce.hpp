#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "cluster/engine.hpp"
#include "cluster/wire.hpp"
#include "mapreduce/job.hpp"  // Emitter
#include "mp/buffer.hpp"
#include "util/error.hpp"

namespace pblpar::cluster {

/// Distributed MapReduce on the fault-tolerant engine: map tasks are
/// record ranges scheduled by the master (re-executed on failure,
/// speculated on stragglers), the shuffle is a partitioned exchange over
/// the mp collectives, reduce runs once per partition on its owning
/// rank, and the sorted output is replicated to every rank.
///
/// SPMD: every rank calls run() with identical inputs (replicated input
/// model — map tasks read their record range from the local copy, only
/// intermediate pairs travel). Output is byte-identical to
/// mapreduce::Job with threads(1): the shuffle concatenates map-task
/// buckets in task order, so each key's value list is in input order,
/// grouping uses the same std::map and the same std::hash partitioner,
/// and the final sort uses the same comparator.
template <class K1, class V1, class K2, class V2, class VOut = V2>
class DistJob {
 public:
  using MapFn = std::function<void(const K1&, const V1&,
                                   mapreduce::Emitter<K2, V2>&)>;
  using ReduceFn = std::function<VOut(const K2&, const std::vector<V2>&)>;
  using CombineFn = std::function<V2(const K2&, const std::vector<V2>&)>;

  DistJob& map(MapFn fn) {
    map_fn_ = std::move(fn);
    return *this;
  }
  DistJob& reduce(ReduceFn fn) {
    reduce_fn_ = std::move(fn);
    return *this;
  }
  DistJob& combine(CombineFn fn) {
    combine_fn_ = std::move(fn);
    return *this;
  }

  DistJob& reducers(int count) {
    util::require(count >= 1, "DistJob::reducers: need at least one");
    num_reducers_ = count;
    return *this;
  }

  /// Records per map task; 0 derives ~4 tasks per worker.
  DistJob& records_per_task(int count) {
    util::require(count >= 0, "DistJob::records_per_task: must be >= 0");
    records_per_task_ = count;
    return *this;
  }

  /// Modelled cost per mapped record / per reduced value (Sim transport
  /// timing; ignored on the host).
  DistJob& map_cost_ops(double ops) {
    map_cost_ops_ = ops;
    return *this;
  }
  DistJob& reduce_cost_ops(double ops) {
    reduce_cost_ops_ = ops;
    return *this;
  }

  template <class CommT>
  std::vector<std::pair<K2, VOut>> run(
      CommT& comm, const std::vector<std::pair<K1, V1>>& inputs,
      const ClusterOptions& options = {}, const FaultPlan* faults = nullptr,
      ClusterProfile* profile = nullptr) const {
    if constexpr (!is_reliable_comm_v<CommT>) {
      if (options.reliability.enabled) {
        // Wrap once for the whole job — engine protocol, shuffle and
        // replication collectives share one sequence state per link (the
        // reliability envelope is not self-describing, so the layers
        // cannot be wrapped piecemeal). run_cluster_tasks sees an
        // already-wrapped comm and does not wrap again.
        ReliableComm<CommT> reliable(comm, options.reliability);
        try {
          auto output = run_impl(reliable, inputs, options, faults, profile);
          reliable.flush();
          if (profile != nullptr && comm.rank() == 0) {
            profile->retry = reliable.retry_stats();
          }
          return output;
        } catch (...) {
          // Even a cancelled/failed rank drains its unacked sends: a
          // peer may still be blocked on a message chaos ate whose
          // retransmit only we can provide.
          reliable.flush();
          if (profile != nullptr && comm.rank() == 0) {
            profile->retry = reliable.retry_stats();
          }
          throw;
        }
      }
    }
    return run_impl(comm, inputs, options, faults, profile);
  }

 private:
  using Bucket = std::vector<std::pair<K2, V2>>;

  template <class CommT>
  std::vector<std::pair<K2, VOut>> run_impl(
      CommT& comm, const std::vector<std::pair<K1, V1>>& inputs,
      const ClusterOptions& options, const FaultPlan* faults,
      ClusterProfile* profile) const {
    using Traits = TransportTraits<CommT>;
    util::require(map_fn_ != nullptr, "DistJob::run: map function not set");
    util::require(reduce_fn_ != nullptr,
                  "DistJob::run: reduce function not set");

    const int size = comm.size();
    const int reducers = num_reducers_;
    const auto record_count = static_cast<std::int64_t>(inputs.size());

    // Replicated-input sanity check: every rank must hold the same
    // record count or the range tasks would read garbage.
    const std::int64_t agreed = comm.allreduce(
        record_count,
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    util::require(agreed == record_count,
                  "DistJob::run: ranks disagree on the input size");

    // --- Map phase on the engine: one task per record range.
    const std::int64_t per_task = task_width(record_count, size);
    std::vector<std::vector<std::byte>> tasks;
    for (std::int64_t begin = 0; begin < record_count; begin += per_task) {
      Writer writer;
      writer.i64(begin);
      writer.i64(std::min(begin + per_task, record_count));
      tasks.push_back(writer.take());
    }

    const TaskFn task_fn = [this, &inputs, reducers](
                               TaskContext& ctx, int,
                               mp::ByteView payload) {
      return map_task(ctx, payload, inputs, reducers);
    };
    ClusterRunResult engine_result =
        run_cluster_tasks(comm, tasks, task_fn, options, faults, profile);

    // --- Cancellation barrier: a cancelled engine run has holes in its
    // result set, so the shuffle below would decode garbage. Only armed
    // runs pay for the extra broadcast (unarmed runs stay byte-identical
    // on the wire); every rank then throws the same ClusterCancelled.
    if (options.job_deadline_s > 0.0 || options.cancel.valid()) {
      std::int32_t cancelled_flag =
          engine_result.is_master && engine_result.job_cancelled ? 1 : 0;
      comm.bcast(cancelled_flag, 0);
      if (cancelled_flag != 0) {
        throw ClusterCancelled(
            "DistJob::run: job cancelled before the map phase completed "
            "(deadline or cancel token)");
      }
    }

    // --- Shuffle plan: the master names the live ranks (dead workers
    // own no partitions); partition p belongs to live[p % live.size()].
    std::vector<std::int32_t> live;
    if (engine_result.is_master) {
      for (int r = 0; r < size; ++r) {
        const bool dead =
            std::find(engine_result.dead_workers.begin(),
                      engine_result.dead_workers.end(),
                      r) != engine_result.dead_workers.end();
        if (!dead) {
          live.push_back(r);
        }
      }
    }
    comm.bcast(live, 0);
    util::ensure(!live.empty(), "DistJob::run: no live ranks in the plan");

    // --- Shuffle: master splits every task's buckets by owner,
    // concatenating in task order so value order == input order. The
    // per-rank blobs travel as owned Buffers (scatter_raw moves them
    // onto the wire; no re-encode copy).
    std::vector<mp::Buffer> rank_blobs(static_cast<std::size_t>(size));
    if (engine_result.is_master) {
      std::vector<std::vector<Bucket>> task_buckets;
      task_buckets.reserve(engine_result.results.size());
      for (const mp::Buffer& result : engine_result.results) {
        task_buckets.push_back(decode_map_result(result, reducers));
      }
      std::vector<Writer> writers(static_cast<std::size_t>(size));
      for (int p = 0; p < reducers; ++p) {
        const int owner =
            live[static_cast<std::size_t>(p) % live.size()];
        Bucket merged;
        for (const auto& buckets : task_buckets) {
          const Bucket& bucket = buckets[static_cast<std::size_t>(p)];
          merged.insert(merged.end(), bucket.begin(), bucket.end());
        }
        WireCodec<Bucket>::write(writers[static_cast<std::size_t>(owner)],
                                 merged);
      }
      for (int r = 0; r < size; ++r) {
        rank_blobs[static_cast<std::size_t>(r)] =
            writers[static_cast<std::size_t>(r)].take();
      }
    }
    const mp::Buffer my_blob = comm.scatter_raw(std::move(rank_blobs), 0);

    // --- Reduce the partitions this rank owns.
    const int my_rank = comm.rank();
    std::vector<std::pair<K2, VOut>> my_output;
    Reader reader(my_blob);
    for (int p = 0; p < reducers; ++p) {
      if (live[static_cast<std::size_t>(p) % live.size()] != my_rank) {
        continue;
      }
      const Bucket bucket = WireCodec<Bucket>::read(reader);
      std::map<K2, std::vector<V2>> grouped;
      for (const auto& [key, value] : bucket) {
        grouped[key].push_back(value);
      }
      Traits::charge_ops(comm, reduce_cost_ops_ *
                                   static_cast<double>(bucket.size()));
      for (const auto& [key, values] : grouped) {
        my_output.emplace_back(key, reduce_fn_(key, values));
      }
    }

    // --- Replicate the output: gather per-rank blobs, broadcast the
    // combined buffer, decode and sort by key on every rank.
    Writer output_writer;
    WireCodec<std::vector<std::pair<K2, VOut>>>::write(output_writer,
                                                       my_output);
    const std::vector<mp::Buffer> gathered =
        comm.gather_raw(mp::Buffer(output_writer.take()), 0);
    mp::Buffer combined;
    if (my_rank == 0) {
      Writer writer;
      writer.u32(static_cast<std::uint32_t>(gathered.size()));
      for (const mp::Buffer& blob : gathered) {
        writer.blob(blob);
      }
      combined = mp::Buffer(writer.take());
    }
    comm.bcast_raw(combined, 0);

    std::vector<std::pair<K2, VOut>> output;
    Reader combined_reader(combined);
    const std::uint32_t rank_count = combined_reader.u32();
    for (std::uint32_t r = 0; r < rank_count; ++r) {
      Reader blob_reader(combined_reader.blob_view());
      std::vector<std::pair<K2, VOut>> part =
          WireCodec<std::vector<std::pair<K2, VOut>>>::read(blob_reader);
      output.insert(output.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    std::sort(output.begin(), output.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return output;
  }

  std::int64_t task_width(std::int64_t records, int size) const {
    if (records_per_task_ > 0) {
      return records_per_task_;
    }
    const int workers = std::max(1, size - 1);
    const std::int64_t target_tasks =
        static_cast<std::int64_t>(workers) * 4;
    return std::max<std::int64_t>(1, (records + target_tasks - 1) /
                                         std::max<std::int64_t>(1,
                                                                target_tasks));
  }

  /// One map task: map the record range, hash-partition the emitted
  /// pairs, optionally combine, and encode the `reducers` buckets in
  /// partition order.
  std::vector<std::byte> map_task(
      TaskContext& ctx, mp::ByteView payload,
      const std::vector<std::pair<K1, V1>>& inputs, int reducers) const {
    Reader reader(payload);
    const std::int64_t begin = reader.i64();
    const std::int64_t end = reader.i64();

    std::vector<Bucket> buckets(static_cast<std::size_t>(reducers));
    for (std::int64_t i = begin; i < end; ++i) {
      ctx.charge(map_cost_ops_);
      ctx.progress();
      const auto& [key, value] = inputs[static_cast<std::size_t>(i)];
      mapreduce::Emitter<K2, V2> emitter;
      map_fn_(key, value, emitter);
      for (auto& [k2, v2] : emitter.pairs()) {
        const std::size_t partition =
            std::hash<K2>{}(k2) % static_cast<std::size_t>(reducers);
        buckets[partition].emplace_back(std::move(k2), std::move(v2));
      }
    }
    if (combine_fn_ != nullptr) {
      for (Bucket& bucket : buckets) {
        bucket = combine_bucket(bucket);
      }
    }
    ctx.progress();

    Writer writer;
    for (const Bucket& bucket : buckets) {
      WireCodec<Bucket>::write(writer, bucket);
    }
    return writer.take();
  }

  Bucket combine_bucket(const Bucket& bucket) const {
    std::map<K2, std::vector<V2>> grouped;
    for (const auto& [key, value] : bucket) {
      grouped[key].push_back(value);
    }
    Bucket combined;
    combined.reserve(grouped.size());
    for (const auto& [key, values] : grouped) {
      combined.emplace_back(key, combine_fn_(key, values));
    }
    return combined;
  }

  std::vector<Bucket> decode_map_result(const mp::Buffer& bytes,
                                        int reducers) const {
    Reader reader(bytes);
    std::vector<Bucket> buckets;
    buckets.reserve(static_cast<std::size_t>(reducers));
    for (int p = 0; p < reducers; ++p) {
      buckets.push_back(WireCodec<Bucket>::read(reader));
    }
    return buckets;
  }

  MapFn map_fn_;
  ReduceFn reduce_fn_;
  CombineFn combine_fn_;
  int num_reducers_ = 4;
  int records_per_task_ = 0;
  double map_cost_ops_ = 4e4;
  double reduce_cost_ops_ = 2e3;
};

}  // namespace pblpar::cluster
