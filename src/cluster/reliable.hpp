#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "mp/comm.hpp"
#include "mp/sim_world.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pblpar::cluster {

/// Tuning for the ack/retry/dedup sublayer (ReliableComm). All times are
/// in the transport's own clock domain: wall seconds on the host world,
/// virtual seconds on the Sim world — which is what makes chaotic Sim
/// runs (retransmits included) replay bit-for-bit.
struct ReliabilityOptions {
  /// Wrap the cluster engine's transport in ReliableComm. Off by
  /// default: a perfect in-process wire needs no acks, and the unarmed
  /// path stays byte-identical to previous releases.
  bool enabled = false;

  /// How long a sequenced message may stay unacked before its first
  /// retransmit.
  double ack_timeout_s = 0.05;

  /// Exponential backoff: each retransmit multiplies the wait by this.
  double backoff_factor = 2.0;

  /// Ceiling on the backed-off wait between retransmits.
  double max_backoff_s = 2.0;

  /// Seeded uniform(0, jitter_s) added to every retransmit wait so
  /// synchronized senders do not retransmit in lockstep.
  double jitter_s = 0.005;

  /// Retransmits per message before the sender abandons it. Abandonment
  /// is deliberate and silent (counted in RetryStats::abandoned): a
  /// peer that never acks is dead, and liveness is the engine's job
  /// (heartbeat timeouts), not the transport's.
  int max_retransmits = 12;

  /// How long ReliableComm::recv_raw may block with no deliverable
  /// message before declaring deadlock (MpDeadlockError), mirroring the
  /// host world's recv timeout.
  double recv_timeout_s = 30.0;

  std::uint64_t seed = 1;

  /// Fail loudly on degenerate tuning (negative retry budgets,
  /// non-finite backoff, zero timeouts).
  void validate() const {
    util::require(std::isfinite(ack_timeout_s) && ack_timeout_s > 0.0,
                  "ReliabilityOptions::validate: ack timeout must be finite "
                  "and positive");
    util::require(std::isfinite(backoff_factor) && backoff_factor >= 1.0,
                  "ReliabilityOptions::validate: backoff factor must be "
                  "finite and at least 1");
    util::require(std::isfinite(max_backoff_s) &&
                      max_backoff_s >= ack_timeout_s,
                  "ReliabilityOptions::validate: backoff ceiling must be "
                  "finite and no smaller than the ack timeout");
    util::require(std::isfinite(jitter_s) && jitter_s >= 0.0,
                  "ReliabilityOptions::validate: retransmit jitter must be "
                  "finite and non-negative");
    util::require(max_retransmits >= 0,
                  "ReliabilityOptions::validate: retransmit budget must be "
                  "non-negative");
    util::require(std::isfinite(recv_timeout_s) && recv_timeout_s > 0.0,
                  "ReliabilityOptions::validate: receive timeout must be "
                  "finite and positive");
  }
};

/// One endpoint's reliability counters. On the Sim world these are a
/// pure function of (workload, chaos plan, seeds) and replay exactly.
struct RetryStats {
  std::uint64_t data_sent = 0;           // sequenced sends
  std::uint64_t fire_and_forget_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t abandoned = 0;           // budget exhausted, peer presumed dead
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_dropped = 0;  // dedup hits (chaos dup or retry echo)
  std::uint64_t out_of_order_stashed = 0;
};

namespace detail {

/// Internal tag of ack messages. Distinct from user tags (>= 0), the
/// collective tags (-2..-9) and the engine tags ((1 << 20) + n).
constexpr int kReliableAckTag = -101;

constexpr std::size_t kEnvelopeBytes = 16;  // [u64 seq][u64 flags]
constexpr std::uint64_t kFlagNeedsAck = 1;

/// Ack payload: the link sequence number being acknowledged.
struct AckRecord {
  std::uint64_t seq = 0;
};

/// "Now" in the wrapped transport's clock domain.
template <class CommT>
struct ReliableClock;

template <>
struct ReliableClock<mp::Comm> {
  static double now(mp::Comm&) {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

template <>
struct ReliableClock<mp::SimComm> {
  static double now(mp::SimComm& comm) { return comm.context().now(); }
};

}  // namespace detail

/// The ack/retry/dedup sublayer: wraps a Comm or SimComm and exposes the
/// same transport concept (rank/size/pipeline_segment_bytes/send_raw/
/// recv_raw/recv_raw_timed), so every collective algorithm and the
/// cluster engine run over it unchanged — but now they survive an armed
/// mp::TransportChaos plan.
///
/// Protocol: every sequenced payload is prefixed with a 16-byte envelope
/// [u64 seq][u64 flags]. Sequence numbers are monotonic per directed
/// link (sender, receiver), so the receiver can (a) deliver strictly in
/// send order — restoring the per-source FIFO that segmented collectives
/// and the engine's Done-then-Request handshake rely on — and (b) drop
/// duplicates exactly-once, whether chaos duplicated the wire message or
/// a retransmit crossed with its own ack. Receivers ack every sequenced
/// message (including duplicates, whose original ack may have been the
/// loss); senders retransmit on an exponential-backoff timer with seeded
/// jitter until acked or the retry budget is spent.
///
/// Every rank of a world must wrap its endpoint (the envelope is not
/// self-describing); heartbeat-style traffic can opt out per message via
/// send_raw_fire_and_forget (seq 0: no ack, no retry, no ordering).
template <class CommT>
class ReliableComm {
 public:
  ReliableComm(CommT& comm, ReliabilityOptions options)
      : comm_(&comm), options_(options) {
    options_.validate();
    util::SplitMix64 mix(options_.seed ^
                         (0xA0761D6478BD642FULL *
                          (static_cast<std::uint64_t>(comm.rank()) + 1)));
    jitter_rng_ = util::Rng(mix.next());
  }

  ReliableComm(const ReliableComm&) = delete;
  ReliableComm& operator=(const ReliableComm&) = delete;

  int rank() const { return comm_->rank(); }
  int size() const { return comm_->size(); }
  std::size_t pipeline_segment_bytes() const {
    return comm_->pipeline_segment_bytes();
  }

  CommT& underlying() { return *comm_; }
  const ReliabilityOptions& options() const { return options_; }
  const RetryStats& retry_stats() const { return stats_; }
  mp::WireStats wire_stats(int rank = -1) const {
    return comm_->wire_stats(rank);
  }

  // --- raw transport (the collective algorithms and engine call these) ------

  void send_raw(int dest, int tag, std::size_t type_hash,
                mp::Buffer payload) {
    const std::uint64_t seq = ++next_seq_[dest];
    mp::Buffer envelope =
        make_envelope(seq, detail::kFlagNeedsAck, payload);
    double now = now_s();
    Pending pending;
    pending.dest = dest;
    pending.tag = tag;
    pending.seq = seq;
    pending.type_hash = type_hash;
    pending.envelope = envelope;
    pending.backoff_s = options_.ack_timeout_s;
    pending.next_retry_s = now + pending.backoff_s + jitter();
    unacked_.push_back(std::move(pending));
    stats_.data_sent += 1;
    comm_->send_raw(dest, tag, type_hash, std::move(envelope));
    pump(now_s());
  }

  /// Unsequenced, unacknowledged send: the message may be lost,
  /// duplicated or reordered under chaos, and the layer will not care.
  /// For idempotent liveness traffic (the engine's heartbeats) where a
  /// retransmit queue would only delay fresher news.
  void send_raw_fire_and_forget(int dest, int tag, std::size_t type_hash,
                                mp::Buffer payload) {
    mp::Buffer envelope = make_envelope(0, 0, payload);
    stats_.fire_and_forget_sent += 1;
    comm_->send_raw(dest, tag, type_hash, std::move(envelope));
  }

  mp::RawMessage recv_raw(int source, int tag) {
    mp::RawMessage out;
    if (!recv_raw_timed(source, tag, options_.recv_timeout_s, &out)) {
      throw mp::MpDeadlockError(
          "ReliableComm::recv_raw: no deliverable message from source " +
          std::to_string(source) + " tag " + std::to_string(tag) +
          " within " + std::to_string(options_.recv_timeout_s) +
          "s (peer dead or retry budget spent?)");
    }
    return out;
  }

  bool recv_raw_timed(int source, int tag, double timeout_s,
                      mp::RawMessage* out) {
    double now = now_s();
    const double deadline_s = now + (timeout_s > 0.0 ? timeout_s : 0.0);
    for (;;) {
      if (take_delivered(source, tag, out)) {
        return true;
      }
      pump(now);
      if (take_delivered(source, tag, out)) {
        return true;
      }
      now = now_s();
      if (now >= deadline_s) {
        return false;
      }
      // Sleep on the underlying transport until the next message, the
      // caller's deadline, or the next retransmit is due — whichever is
      // first.
      double slice_s = deadline_s - now;
      if (!unacked_.empty()) {
        double next_retry = unacked_.front().next_retry_s;
        for (const Pending& pending : unacked_) {
          next_retry = std::min(next_retry, pending.next_retry_s);
        }
        slice_s = std::min(slice_s, next_retry - now);
      }
      slice_s = std::max(slice_s, 1e-4);  // never a pure spin
      mp::RawMessage raw;
      if (comm_->recv_raw_timed(mp::kAnySource, mp::kAnyTag, slice_s,
                                &raw)) {
        demux(std::move(raw));
      }
      now = now_s();
    }
  }

  /// Block until every sequenced send has been acked or abandoned;
  /// returns how many were abandoned (0 = everything confirmed
  /// delivered). Call at protocol wind-down: a sender that simply
  /// returns with messages unacked would strand its peers' last
  /// exchanges.
  std::uint64_t flush() {
    const std::uint64_t abandoned_before = stats_.abandoned;
    while (!unacked_.empty()) {
      double now = now_s();
      pump(now);
      if (unacked_.empty()) {
        break;
      }
      now = now_s();
      double next_retry = unacked_.front().next_retry_s;
      for (const Pending& pending : unacked_) {
        next_retry = std::min(next_retry, pending.next_retry_s);
      }
      const double slice_s = std::max(next_retry - now, 1e-4);
      mp::RawMessage raw;
      if (comm_->recv_raw_timed(mp::kAnySource, mp::kAnyTag, slice_s,
                                &raw)) {
        demux(std::move(raw));
      }
    }
    return stats_.abandoned - abandoned_before;
  }

  // --- point to point (mirrors Comm) ---------------------------------------

  template <class T>
  void send(int dest, int tag, const T& value) {
    util::require(tag >= 0,
                  "ReliableComm::send: user tags must be non-negative");
    send_raw(dest, tag, mp::type_hash_of<T>(), mp::Codec<T>::encode(value));
  }

  template <class U>
  void send(int dest, int tag, std::vector<U>&& values) {
    util::require(tag >= 0,
                  "ReliableComm::send: user tags must be non-negative");
    send_raw(dest, tag, mp::type_hash_of<std::vector<U>>(),
             mp::Codec<std::vector<U>>::encode(std::move(values)));
  }

  void send(int dest, int tag, std::string&& text) {
    util::require(tag >= 0,
                  "ReliableComm::send: user tags must be non-negative");
    send_raw(dest, tag, mp::type_hash_of<std::string>(),
             mp::Codec<std::string>::encode(std::move(text)));
  }

  template <class T>
  T recv(int source = mp::kAnySource, int tag = mp::kAnyTag,
         mp::RecvStatus* status = nullptr) {
    mp::RawMessage message = recv_raw(source, tag);
    if (message.type_hash != mp::type_hash_of<T>()) {
      throw mp::MpTypeError(
          "ReliableComm::recv: matched message has a different payload type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return mp::Codec<T>::decode(message.payload);
  }

  template <class U>
  mp::PayloadView<U> recv_view(int source = mp::kAnySource,
                               int tag = mp::kAnyTag,
                               mp::RecvStatus* status = nullptr) {
    mp::RawMessage message = recv_raw(source, tag);
    if (message.type_hash != mp::type_hash_of<std::vector<U>>()) {
      throw mp::MpTypeError(
          "ReliableComm::recv_view: matched message has a different payload "
          "type");
    }
    if (status != nullptr) {
      status->source = message.source;
      status->tag = message.tag;
    }
    return mp::PayloadView<U>(std::move(message.payload));
  }

  template <class T>
  T sendrecv(int dest, int send_tag, const T& value, int source,
             int recv_tag) {
    send(dest, send_tag, value);
    return recv<T>(source, recv_tag);
  }

  // --- collectives (same algorithms, now loss-tolerant) --------------------

  void barrier() { mp::detail::barrier(*this); }

  template <class T>
  void bcast(T& value, int root = 0) {
    mp::detail::bcast(*this, value, root);
  }

  void bcast_raw(mp::Buffer& payload, int root = 0) {
    mp::detail::bcast_raw(*this, payload, root);
  }

  template <class T, class Op>
  T reduce(const T& value, Op op, int root = 0) {
    return mp::detail::reduce(*this, value, op, root);
  }

  template <class T, class Op>
  T allreduce(const T& value, Op op) {
    return mp::detail::allreduce(*this, value, op);
  }

  template <class U, class Op>
  void reduce_elementwise(std::vector<U>& data, Op op, int root = 0) {
    mp::detail::reduce_elementwise(*this, data, op, root);
  }

  template <class U, class Op>
  void allreduce_elementwise(std::vector<U>& data, Op op) {
    mp::detail::allreduce_elementwise(*this, data, op);
  }

  template <class T>
  T scatter(const std::vector<T>& values, int root = 0) {
    return mp::detail::scatter(*this, values, root);
  }

  mp::Buffer scatter_raw(std::vector<mp::Buffer> blobs, int root = 0) {
    return mp::detail::scatter_raw(*this, std::move(blobs), root);
  }

  template <class T>
  std::vector<T> gather(const T& value, int root = 0) {
    return mp::detail::gather(*this, value, root);
  }

  std::vector<mp::Buffer> gather_raw(mp::Buffer blob, int root = 0) {
    return mp::detail::gather_raw(*this, std::move(blob), root);
  }

  template <class T>
  std::vector<T> allgather(const T& value) {
    return mp::detail::allgather(*this, value);
  }

  template <class U>
  std::vector<mp::PayloadView<U>> allgather_view(std::vector<U>&& values) {
    return mp::detail::allgather_view(*this, std::move(values));
  }

  template <class U, class Op>
  void ring_allreduce(std::vector<U>& data, Op op) {
    mp::detail::ring_allreduce(*this, data, op);
  }

  std::vector<double> ring_allreduce_sum(std::vector<double> data) {
    return mp::detail::ring_allreduce_sum(*this, std::move(data));
  }

 private:
  struct Pending {
    int dest = -1;
    int tag = 0;
    std::uint64_t seq = 0;
    std::size_t type_hash = 0;
    mp::Buffer envelope;  // refcounted; retransmits share the bytes
    double next_retry_s = 0.0;
    double backoff_s = 0.0;
    int retransmits = 0;
  };

  /// Per-source receive ordering: the next link sequence we may deliver
  /// plus a stash of early arrivals.
  struct RecvLink {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, mp::RawMessage> stash;
  };

  double now_s() { return detail::ReliableClock<CommT>::now(*comm_); }

  double jitter() {
    return options_.jitter_s > 0.0
               ? jitter_rng_.uniform(0.0, options_.jitter_s)
               : 0.0;
  }

  mp::Buffer make_envelope(std::uint64_t seq, std::uint64_t flags,
                           const mp::Buffer& payload) {
    mp::Buffer envelope =
        mp::Buffer::uninitialized(detail::kEnvelopeBytes + payload.size());
    std::byte* dst = envelope.mutable_data();
    std::memcpy(dst, &seq, sizeof(seq));
    std::memcpy(dst + sizeof(seq), &flags, sizeof(flags));
    mp::detail::copy_payload(dst + detail::kEnvelopeBytes, payload.data(),
                             payload.size());
    return envelope;
  }

  /// Drain everything the underlying transport has ready (one poll
  /// each), then retransmit whatever is overdue.
  void pump(double now) {
    mp::RawMessage raw;
    while (comm_->recv_raw_timed(mp::kAnySource, mp::kAnyTag, 0.0, &raw)) {
      demux(std::move(raw));
    }
    retransmit_overdue(now);
  }

  void retransmit_overdue(double now) {
    for (std::size_t i = 0; i < unacked_.size();) {
      Pending& pending = unacked_[i];
      if (now < pending.next_retry_s) {
        ++i;
        continue;
      }
      if (pending.retransmits >= options_.max_retransmits) {
        // Budget spent: the peer is presumed dead. Stay silent — the
        // engine's liveness machinery (heartbeat timeouts, speculation)
        // owns that diagnosis, and pure-collective callers surface it
        // as a recv timeout.
        stats_.abandoned += 1;
        unacked_.erase(unacked_.begin() +
                       static_cast<std::ptrdiff_t>(i));
        continue;
      }
      pending.retransmits += 1;
      stats_.retransmits += 1;
      pending.backoff_s = std::min(pending.backoff_s *
                                       options_.backoff_factor,
                                   options_.max_backoff_s);
      pending.next_retry_s = now + pending.backoff_s + jitter();
      comm_->send_raw(pending.dest, pending.tag, pending.type_hash,
                      pending.envelope);
      ++i;
    }
  }

  void demux(mp::RawMessage raw) {
    if (raw.tag == detail::kReliableAckTag) {
      const detail::AckRecord ack =
          mp::Codec<detail::AckRecord>::decode(raw.payload);
      stats_.acks_received += 1;
      for (std::size_t i = 0; i < unacked_.size(); ++i) {
        if (unacked_[i].dest == raw.source && unacked_[i].seq == ack.seq) {
          unacked_.erase(unacked_.begin() +
                         static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      return;
    }
    if (raw.payload.size() < detail::kEnvelopeBytes) {
      throw mp::MpError(
          "ReliableComm: received an unenveloped message — every rank of a "
          "world must wrap its endpoint in ReliableComm");
    }
    std::uint64_t seq = 0;
    std::uint64_t flags = 0;
    std::memcpy(&seq, raw.payload.data(), sizeof(seq));
    std::memcpy(&flags, raw.payload.data() + sizeof(seq), sizeof(flags));
    raw.payload = raw.payload.slice(
        detail::kEnvelopeBytes, raw.payload.size() - detail::kEnvelopeBytes);
    if (seq == 0) {
      delivered_.push_back(std::move(raw));  // fire-and-forget
      return;
    }
    // Ack every sequenced arrival, duplicates included: a duplicate
    // usually means our previous ack (or the original send) was lost.
    if ((flags & detail::kFlagNeedsAck) != 0) {
      detail::AckRecord ack;
      ack.seq = seq;
      stats_.acks_sent += 1;
      comm_->send_raw(raw.source, detail::kReliableAckTag,
                      mp::type_hash_of<detail::AckRecord>(),
                      mp::Codec<detail::AckRecord>::encode(ack));
    }
    RecvLink& link = recv_links_[raw.source];
    if (seq < link.next_expected || link.stash.count(seq) != 0) {
      stats_.duplicates_dropped += 1;
      return;
    }
    if (seq != link.next_expected) {
      stats_.out_of_order_stashed += 1;
      link.stash.emplace(seq, std::move(raw));
      return;
    }
    delivered_.push_back(std::move(raw));
    link.next_expected += 1;
    auto it = link.stash.begin();
    while (it != link.stash.end() && it->first == link.next_expected) {
      delivered_.push_back(std::move(it->second));
      it = link.stash.erase(it);
      link.next_expected += 1;
    }
  }

  bool take_delivered(int source, int tag, mp::RawMessage* out) {
    for (auto it = delivered_.begin(); it != delivered_.end(); ++it) {
      if ((source == mp::kAnySource || it->source == source) &&
          (tag == mp::kAnyTag || it->tag == tag)) {
        *out = std::move(*it);
        delivered_.erase(it);
        return true;
      }
    }
    return false;
  }

  CommT* comm_;
  ReliabilityOptions options_;
  util::Rng jitter_rng_{1};
  RetryStats stats_;
  std::map<int, std::uint64_t> next_seq_;  // per-dest link sequence
  std::vector<Pending> unacked_;
  std::map<int, RecvLink> recv_links_;     // per-source ordering + dedup
  std::deque<mp::RawMessage> delivered_;   // in-order, awaiting a match
};

/// Whether CommT is already a ReliableComm (so wrappers do not wrap
/// twice).
template <class T>
struct is_reliable_comm : std::false_type {};
template <class C>
struct is_reliable_comm<ReliableComm<C>> : std::true_type {};
template <class T>
inline constexpr bool is_reliable_comm_v = is_reliable_comm<T>::value;

}  // namespace pblpar::cluster
