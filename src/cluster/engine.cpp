#include "cluster/engine.hpp"

#include <iomanip>
#include <sstream>

namespace pblpar::cluster {

namespace {

void json_escape(std::ostream& os, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else {
      os << c;
    }
  }
}

}  // namespace

std::string ClusterProfile::event_log() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  for (const ClusterEvent& e : events) {
    os << "[" << std::setw(12) << e.t_s << "] ";
    if (e.worker >= 0) {
      os << "w" << e.worker;
    } else {
      os << "--";
    }
    os << " ";
    if (e.task >= 0) {
      os << "t" << e.task;
    } else {
      os << "--";
    }
    os << " ";
    if (e.claim > 0) {
      os << "c" << e.claim;
    } else {
      os << "--";
    }
    os << " " << e.kind << "\n";
  }
  return os.str();
}

std::string ClusterProfile::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "cluster run: " << stats.tasks << " task(s) on " << stats.workers
     << " worker(s), " << stats.attempts << " attempt(s) ("
     << stats.speculative_attempts << " speculative), " << stats.requeues
     << " requeue(s), " << stats.lost_results << " lost result(s), "
     << stats.dead_workers << " dead worker(s)";
  if (stats.resurrections > 0) {
    os << " (" << stats.resurrections << " came back)";
  }
  if (stats.cancelled_tasks > 0) {
    os << ", " << stats.cancelled_tasks
       << " task(s) cancelled at the job deadline";
  }
  if (stats.restored_tasks > 0) {
    os << ", " << stats.restored_tasks
       << " task(s) restored from a checkpoint";
  }
  if (stats.checkpoints > 0) {
    os << ", " << stats.checkpoints << " checkpoint(s) taken";
  }
  if (retry.retransmits > 0 || retry.abandoned > 0 ||
      retry.duplicates_dropped > 0) {
    os << ", reliability: " << retry.retransmits << " retransmit(s), "
       << retry.duplicates_dropped << " duplicate(s) dropped, "
       << retry.abandoned << " abandoned";
  }
  os << ", " << stats.heartbeats << " heartbeat(s); results complete at "
     << stats.completion_s * 1e3 << " ms, engine wound down at "
     << stats.makespan_s * 1e3 << " ms";
  if (!dead_workers.empty()) {
    os << "; dead:";
    for (const int w : dead_workers) {
      os << " w" << w;
    }
  }
  os << "\n";
  return os.str();
}

std::string ClusterProfile::to_json() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"schema\":\"pblpar.cluster.v1\",\"stats\":{"
     << "\"tasks\":" << stats.tasks << ",\"workers\":" << stats.workers
     << ",\"attempts\":" << stats.attempts
     << ",\"speculative_attempts\":" << stats.speculative_attempts
     << ",\"requeues\":" << stats.requeues
     << ",\"lost_results\":" << stats.lost_results
     << ",\"dead_workers\":" << stats.dead_workers
     << ",\"resurrections\":" << stats.resurrections
     << ",\"heartbeats\":" << stats.heartbeats
     << ",\"cancelled_tasks\":" << stats.cancelled_tasks
     << ",\"checkpoints\":" << stats.checkpoints
     << ",\"restored_tasks\":" << stats.restored_tasks
     << ",\"completion_s\":" << stats.completion_s
     << ",\"makespan_s\":" << stats.makespan_s << "},\"retry\":{"
     << "\"data_sent\":" << retry.data_sent
     << ",\"fire_and_forget_sent\":" << retry.fire_and_forget_sent
     << ",\"retransmits\":" << retry.retransmits
     << ",\"abandoned\":" << retry.abandoned
     << ",\"acks_sent\":" << retry.acks_sent
     << ",\"acks_received\":" << retry.acks_received
     << ",\"duplicates_dropped\":" << retry.duplicates_dropped
     << ",\"out_of_order_stashed\":" << retry.out_of_order_stashed
     << "},\"wire\":{"
     << "\"messages\":[";
  for (std::size_t i = 0; i < wire_messages.size(); ++i) {
    os << (i > 0 ? "," : "") << wire_messages[i];
  }
  os << "],\"bytes\":[";
  for (std::size_t i = 0; i < wire_bytes.size(); ++i) {
    os << (i > 0 ? "," : "") << wire_bytes[i];
  }
  os << "]},\"dead_workers\":[";
  for (std::size_t i = 0; i < dead_workers.size(); ++i) {
    os << (i > 0 ? "," : "") << dead_workers[i];
  }
  os << "],\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ClusterEvent& e = events[i];
    os << (i > 0 ? "," : "") << "{\"t_s\":" << e.t_s
       << ",\"worker\":" << e.worker << ",\"task\":" << e.task
       << ",\"claim\":" << e.claim << ",\"kind\":\"";
    json_escape(os, e.kind);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

SimClusterRun run_sim_cluster(int nodes,
                              const std::vector<std::vector<std::byte>>& tasks,
                              const TaskFn& task_fn,
                              const ClusterOptions& options,
                              const FaultPlan* faults, mp::ClusterSpec spec) {
  util::require(nodes >= 1, "run_sim_cluster: need at least one node");
  // An armed transport-chaos plan in the fault plan is wired into the
  // simulated cluster spec, so the whole rank body (engine protocol plus
  // the collectives a driver runs after it) sees the same lossy wire.
  if (faults != nullptr && faults->transport.armed()) {
    util::require(!spec.chaos.armed(),
                  "run_sim_cluster: transport chaos given both in the "
                  "FaultPlan and the ClusterSpec — pick one");
    spec.chaos = faults->transport;
  }
  SimClusterRun run;
  try {
    run.report = mp::SimWorld::run(
        nodes,
        [&](mp::SimComm& comm) {
          ClusterRunResult result = run_cluster_tasks(
              comm, tasks, task_fn, options, faults,
              comm.rank() == 0 ? &run.profile : nullptr);
          if (result.is_master) {
            run.results = std::move(result.results);
            run.dead_workers = std::move(result.dead_workers);
            run.job_cancelled = result.job_cancelled;
            run.incomplete_tasks = std::move(result.incomplete_tasks);
          }
        },
        spec);
  } catch (const sim::DeadlockError& error) {
    // A correct engine run never deadlocks (the master polls with a
    // timed receive); surface whatever went wrong as a cluster failure
    // instead of a bare machine error.
    throw ClusterError(std::string("cluster run deadlocked: ") +
                       error.what());
  }
  return run;
}

}  // namespace pblpar::cluster
