#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mp/chaos.hpp"
#include "util/error.hpp"

namespace pblpar::cluster {

/// Fail-stop a worker rank while it executes its `nth_task`-th assignment
/// (0-based count of tasks the worker started, speculative duplicates
/// included). The worker does some of the task's work, then silently
/// stops participating in the engine protocol — no Done, no heartbeats —
/// exactly the failure MapReduce's re-execution is built for. The rank's
/// thread itself keeps running, so SPMD code after the engine (e.g. the
/// distributed shuffle collectives) still completes.
struct CrashFault {
  int rank = -1;
  int nth_task = 0;
};

/// Multiply all modelled work charged by `rank` (TaskContext::charge) by
/// `slowdown` — a straggling node, the target of speculative execution.
/// Only meaningful on the Sim transport (host tasks do real work).
struct StragglerFault {
  int rank = -1;
  double slowdown = 1.0;
};

/// Silently discard the `nth_done`-th Done message `rank` tries to send
/// (0-based). Models a result lost in the network: the worker believes it
/// finished; the master must detect the loss and re-queue the task.
struct DropResultFault {
  int rank = -1;
  int nth_done = 0;
};

/// Deterministic fault-injection plan for one cluster run. Empty plan =
/// no faults. Every injected behaviour is a pure function of (plan,
/// rank, per-worker event counts), so two runs with the same plan, seed
/// and workload are bit-identical on the Sim transport.
struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<StragglerFault> stragglers;
  std::vector<DropResultFault> drops;

  /// Upper bound of a seeded uniform extra delay (virtual seconds)
  /// charged by a worker before each protocol send, one independent
  /// xoshiro stream per rank. 0 disables. Sim transport only.
  double delay_jitter_s = 0.0;
  std::uint64_t seed = 1;

  /// Wire-level chaos (seeded drop / delay / duplicate / reorder per
  /// link). run_sim_cluster copies an armed plan into the ClusterSpec so
  /// the whole run — engine protocol and any collectives after it —
  /// sees the same lossy wire. Pair it with
  /// ClusterOptions::reliability.enabled, or dropped protocol messages
  /// surface as lost results and dead workers.
  mp::TransportChaos transport;

  /// Reject malformed plans loudly at engine entry instead of letting
  /// them silently never fire (negative ranks match no worker) or fire
  /// ambiguously (crash_for returns the first of two CrashFaults on the
  /// same rank).
  void validate() const {
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const CrashFault& crash = crashes[i];
      util::require(crash.rank >= 0,
                    "FaultPlan: CrashFault rank must be >= 0, got " +
                        std::to_string(crash.rank));
      util::require(crash.nth_task >= 0,
                    "FaultPlan: CrashFault nth_task must be >= 0");
      for (std::size_t j = 0; j < i; ++j) {
        util::require(crashes[j].rank != crash.rank,
                      "FaultPlan: duplicate CrashFault for rank " +
                          std::to_string(crash.rank));
      }
    }
    for (const StragglerFault& straggler : stragglers) {
      util::require(straggler.rank >= 0,
                    "FaultPlan: StragglerFault rank must be >= 0, got " +
                        std::to_string(straggler.rank));
      util::require(std::isfinite(straggler.slowdown) &&
                        straggler.slowdown > 0.0,
                    "FaultPlan: StragglerFault slowdown must be finite "
                    "and > 0");
    }
    for (const DropResultFault& drop : drops) {
      util::require(drop.rank >= 0,
                    "FaultPlan: DropResultFault rank must be >= 0, got " +
                        std::to_string(drop.rank));
      util::require(drop.nth_done >= 0,
                    "FaultPlan: DropResultFault nth_done must be >= 0");
    }
    util::require(std::isfinite(delay_jitter_s) && delay_jitter_s >= 0.0,
                  "FaultPlan: delay_jitter_s must be finite and >= 0");
    transport.validate();
  }

  /// The crash scheduled for `rank`, or nullptr.
  const CrashFault* crash_for(int rank) const {
    for (const CrashFault& crash : crashes) {
      if (crash.rank == rank) {
        return &crash;
      }
    }
    return nullptr;
  }

  /// Combined work slowdown for `rank` (1.0 = none).
  double slowdown_for(int rank) const {
    double slowdown = 1.0;
    for (const StragglerFault& straggler : stragglers) {
      if (straggler.rank == rank) {
        slowdown *= straggler.slowdown;
      }
    }
    return slowdown;
  }

  /// Whether `rank`'s `nth_done`-th Done message should vanish.
  bool should_drop(int rank, int nth_done) const {
    for (const DropResultFault& drop : drops) {
      if (drop.rank == rank && drop.nth_done == nth_done) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace pblpar::cluster
