#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cluster/dist_mapreduce.hpp"
#include "mapreduce/defs.hpp"

namespace pblpar::cluster::jobs {

/// Distributed ports of the Assignment-5 MapReduce jobs, running the
/// exact map/combine/reduce definitions from mapreduce/defs.hpp on the
/// fault-tolerant cluster engine. Each returns the same bytes as its
/// thread-local counterpart in mapreduce/jobs.hpp, on every rank, even
/// under injected worker crashes and stragglers.

/// Per-job knobs shared by all ports; defaults match DistJob.
struct JobTuning {
  int reducers = 4;
  int records_per_task = 0;  // 0 = ~4 tasks per worker
  double map_cost_ops = 4e4;
  double reduce_cost_ops = 2e3;
};

namespace detail {

template <class K1, class V1, class K2, class V2, class VOut, class DefT,
          class CommT>
std::vector<std::pair<K2, VOut>> run_def(
    CommT& comm, const DefT& def,
    const std::vector<std::pair<K1, V1>>& inputs, const JobTuning& tuning,
    const ClusterOptions& options, const FaultPlan* faults,
    ClusterProfile* profile) {
  DistJob<K1, V1, K2, V2, VOut> job;
  def.configure(job);
  job.reducers(tuning.reducers)
      .records_per_task(tuning.records_per_task)
      .map_cost_ops(tuning.map_cost_ops)
      .reduce_cost_ops(tuning.reduce_cost_ops);
  return job.run(comm, inputs, options, faults, profile);
}

}  // namespace detail

template <class CommT>
std::vector<std::pair<std::string, long>> word_count(
    CommT& comm, const std::vector<std::string>& documents,
    const JobTuning& tuning = {}, const ClusterOptions& options = {},
    const FaultPlan* faults = nullptr, ClusterProfile* profile = nullptr) {
  return detail::run_def<int, std::string, std::string, long, long>(
      comm, mapreduce::defs::WordCountDef{},
      mapreduce::defs::indexed(documents), tuning, options, faults, profile);
}

template <class CommT>
std::vector<std::pair<std::string, std::vector<int>>> inverted_index(
    CommT& comm, const std::vector<std::string>& documents,
    const JobTuning& tuning = {}, const ClusterOptions& options = {},
    const FaultPlan* faults = nullptr, ClusterProfile* profile = nullptr) {
  return detail::run_def<int, std::string, std::string, int,
                         std::vector<int>>(
      comm, mapreduce::defs::InvertedIndexDef{},
      mapreduce::defs::indexed(documents), tuning, options, faults, profile);
}

template <class CommT>
std::vector<std::pair<std::string, long>> url_access_counts(
    CommT& comm, const std::vector<std::string>& log_lines,
    const JobTuning& tuning = {}, const ClusterOptions& options = {},
    const FaultPlan* faults = nullptr, ClusterProfile* profile = nullptr) {
  return detail::run_def<int, std::string, std::string, long, long>(
      comm, mapreduce::defs::UrlAccessCountsDef{},
      mapreduce::defs::indexed(log_lines), tuning, options, faults, profile);
}

template <class CommT>
std::vector<std::pair<int, std::string>> distributed_grep(
    CommT& comm, const std::vector<std::string>& lines,
    const std::string& pattern, const JobTuning& tuning = {},
    const ClusterOptions& options = {}, const FaultPlan* faults = nullptr,
    ClusterProfile* profile = nullptr) {
  return detail::run_def<int, std::string, int, std::string, std::string>(
      comm, mapreduce::defs::DistributedGrepDef{pattern},
      mapreduce::defs::indexed(lines), tuning, options, faults, profile);
}

template <class CommT>
std::vector<std::pair<std::string, double>> mean_per_key(
    CommT& comm, const std::vector<std::pair<std::string, double>>& samples,
    const JobTuning& tuning = {}, const ClusterOptions& options = {},
    const FaultPlan* faults = nullptr, ClusterProfile* profile = nullptr) {
  return detail::run_def<std::string, double, std::string, double, double>(
      comm, mapreduce::defs::MeanPerKeyDef{}, samples, tuning, options,
      faults, profile);
}

}  // namespace pblpar::cluster::jobs
