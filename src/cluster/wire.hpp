#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace pblpar::cluster {

/// A decode ran past the end of the buffer or found an impossible length
/// — the payload was not produced by the matching Writer sequence.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte buffer for building engine message payloads and
/// shuffle blobs. The format is positional: the Reader must consume the
/// exact same sequence of fields the Writer produced (no tags, no
/// padding), which keeps blobs byte-deterministic — equal field
/// sequences encode to equal bytes.
class Writer {
 public:
  void raw(const void* data, std::size_t size) {
    if (size == 0) {
      return;  // empty blobs and strings may pass data() == nullptr
    }
    const auto* bytes = static_cast<const std::byte*>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
  }

  template <class T>
  void trivial(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&value, sizeof(T));
  }

  void u32(std::uint32_t value) { trivial(value); }
  void u64(std::uint64_t value) { trivial(value); }
  void i32(std::int32_t value) { trivial(value); }
  void i64(std::int64_t value) { trivial(value); }
  void f64(double value) { trivial(value); }

  void str(const std::string& text) {
    u32(static_cast<std::uint32_t>(text.size()));
    raw(text.data(), text.size());
  }

  /// Length-prefixed nested buffer.
  void blob(std::span<const std::byte> bytes) {
    u32(static_cast<std::uint32_t>(bytes.size()));
    raw(bytes.data(), bytes.size());
  }

  std::size_t size() const { return bytes_.size(); }

  std::vector<std::byte> take() { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

/// Positional decoder over a byte buffer produced by Writer. Does not own
/// the bytes; the backing storage (vector, mp::Buffer, message payload)
/// must outlive the Reader and any views handed out.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}
  explicit Reader(const std::vector<std::byte>& bytes)
      : bytes_(bytes.data(), bytes.size()) {}

  void raw(void* out, std::size_t size) {
    if (pos_ + size > bytes_.size()) {
      throw WireError("cluster wire: decode ran past the end of the buffer");
    }
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
  }

  template <class T>
  T trivial() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    raw(&value, sizeof(T));
    return value;
  }

  std::uint32_t u32() { return trivial<std::uint32_t>(); }
  std::uint64_t u64() { return trivial<std::uint64_t>(); }
  std::int32_t i32() { return trivial<std::int32_t>(); }
  std::int64_t i64() { return trivial<std::int64_t>(); }
  double f64() { return trivial<double>(); }

  std::string str() {
    const std::uint32_t size = u32();
    if (pos_ + size > bytes_.size()) {
      throw WireError("cluster wire: string length exceeds the buffer");
    }
    std::string text;
    if (size > 0) {
      text.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    }
    pos_ += size;
    return text;
  }

  std::vector<std::byte> blob() {
    std::span<const std::byte> view = blob_view();
    return std::vector<std::byte>(view.begin(), view.end());
  }

  /// Length-prefixed nested buffer as a zero-copy view into the backing
  /// bytes (valid while they live).
  std::span<const std::byte> blob_view() {
    const std::uint32_t size = u32();
    if (pos_ + size > bytes_.size()) {
      throw WireError("cluster wire: blob length exceeds the buffer");
    }
    std::span<const std::byte> view = bytes_.subspan(pos_, size);
    pos_ += size;
    return view;
  }

  bool done() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Typed field codec over Writer/Reader, so the distributed MapReduce
/// driver can ship any key/value type the thread-local jobs use:
/// arithmetic types, std::string, std::pair, and std::vector of those.
template <class T, class Enable = void>
struct WireCodec;

template <class T>
struct WireCodec<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static void write(Writer& writer, const T& value) {
    writer.trivial(value);
  }
  static T read(Reader& reader) { return reader.template trivial<T>(); }
};

template <>
struct WireCodec<std::string> {
  static void write(Writer& writer, const std::string& value) {
    writer.str(value);
  }
  static std::string read(Reader& reader) { return reader.str(); }
};

template <class A, class B>
struct WireCodec<std::pair<A, B>> {
  static void write(Writer& writer, const std::pair<A, B>& value) {
    WireCodec<A>::write(writer, value.first);
    WireCodec<B>::write(writer, value.second);
  }
  static std::pair<A, B> read(Reader& reader) {
    A a = WireCodec<A>::read(reader);
    B b = WireCodec<B>::read(reader);
    return {std::move(a), std::move(b)};
  }
};

template <class U>
struct WireCodec<std::vector<U>> {
  static void write(Writer& writer, const std::vector<U>& values) {
    writer.u32(static_cast<std::uint32_t>(values.size()));
    for (const U& value : values) {
      WireCodec<U>::write(writer, value);
    }
  }
  static std::vector<U> read(Reader& reader) {
    const std::uint32_t count = reader.u32();
    std::vector<U> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      values.push_back(WireCodec<U>::read(reader));
    }
    return values;
  }
};

}  // namespace pblpar::cluster
